//! Umbrella crate for the Adam2 reproduction.
//!
//! Re-exports the workspace crates under one roof:
//!
//! * [`core`] — the Adam2 protocol (aggregation instances, interpolation
//!   point selection, confidence estimation).
//! * [`sim`] — the cycle-driven peer-to-peer simulator.
//! * [`traces`] — synthetic BOINC-like attribute distributions.
//! * [`baselines`] — EquiDepth and random-sampling estimators.

pub use adam2_baselines as baselines;
pub use adam2_core as core;
pub use adam2_sim as sim;
pub use adam2_traces as traces;
