//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot fetch crates.io, so this vendors a small
//! deterministic property-testing runner with the API surface the
//! workspace's tests use:
//!
//! * the [`proptest!`] macro wrapping `#[test]` functions whose arguments
//!   are drawn from strategies (`arg in strategy`);
//! * [`strategy::Strategy`] with `prop_map`, implemented for numeric
//!   ranges;
//! * [`collection::vec`] with exact or ranged sizes;
//! * [`arbitrary::any`] for primitives;
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`].
//!
//! Differences from the real crate: inputs are drawn from a fixed-seed
//! generator derived from the test name (fully reproducible runs, no
//! persistence files) and failing cases are not shrunk — the assertion
//! message reports the raw case. The default of 64 cases per property can
//! be raised with the `PROPTEST_CASES` environment variable.

/// Deterministic test-case generation plumbing used by the
/// [`proptest!`] macro expansion.
pub mod test_runner {
    /// Splittable deterministic generator (SplitMix64) feeding all
    /// strategies of one property test.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from the property-test name so every test gets a distinct
        /// but reproducible stream.
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty sampling bound");
            self.next_u64() % bound
        }
    }

    /// Number of cases per property (`PROPTEST_CASES`, default 64).
    pub fn case_count() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Post-processes generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128 - self.start as u128) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128 - lo as u128 + 1) as u64;
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.unit_f64() as $t * (self.end - self.start)
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    // Map the closed unit interval by including the top ulp
                    // step: draw in [0, 1] via a 53-bit lattice.
                    let u = (rng.next_u64() >> 11) as $t
                        / ((1u64 << 53) - 1) as $t;
                    lo + u * (hi - lo)
                }
            }
        )*};
    }

    float_strategies!(f32, f64);
}

/// Strategies for container types.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Admissible element counts for [`vec`]: either exact or a
    /// half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors with `size.into()` elements drawn from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo
                + if span > 1 {
                    rng.below(span) as usize
                } else {
                    0
                };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `any::<T>()` support for primitives.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy type.
        type Strategy: Strategy<Value = Self>;

        /// The canonical strategy instance.
        fn arbitrary() -> Self::Strategy;
    }

    /// Canonical full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Full-domain strategy for a primitive type.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct PrimitiveAny<T>(core::marker::PhantomData<T>);

    macro_rules! primitive_any {
        ($($t:ty => $draw:expr),* $(,)?) => {$(
            impl Strategy for PrimitiveAny<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let draw: fn(&mut TestRng) -> $t = $draw;
                    draw(rng)
                }
            }

            impl Arbitrary for $t {
                type Strategy = PrimitiveAny<$t>;

                fn arbitrary() -> Self::Strategy {
                    PrimitiveAny(core::marker::PhantomData)
                }
            }
        )*};
    }

    primitive_any! {
        bool => |rng| rng.next_u64() & 1 == 1,
        u8 => |rng| rng.next_u64() as u8,
        u16 => |rng| rng.next_u64() as u16,
        u32 => |rng| rng.next_u64() as u32,
        u64 => |rng| rng.next_u64(),
        usize => |rng| rng.next_u64() as usize,
        i32 => |rng| rng.next_u64() as i32,
        i64 => |rng| rng.next_u64() as i64,
        f64 => |rng| rng.unit_f64(),
    }
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests: `#[test]` functions whose arguments are drawn
/// from strategies via `name in strategy`. Each body runs for
/// [`test_runner::case_count`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::test_runner::case_count();
                let mut proptest_rng =
                    $crate::test_runner::TestRng::for_test(stringify!($name));
                for _ in 0..cases {
                    $(
                        let $arg = $crate::strategy::Strategy::sample(
                            &($strat),
                            &mut proptest_rng,
                        );
                    )+
                    $body
                }
            }
        )+
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs_respect_bounds(
            xs in prop::collection::vec(0.0f64..10.0, 1..20),
            exact in prop::collection::vec(0u64..5, 3),
            q in 0.0f64..=1.0,
            flag in any::<bool>(),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            prop_assert!(xs.iter().all(|x| (0.0..10.0).contains(x)));
            prop_assert_eq!(exact.len(), 3);
            prop_assert!((0.0..=1.0).contains(&q));
            prop_assert!(matches!(flag, true | false));
        }
    }

    proptest! {
        #[test]
        fn prop_map_applies(v in prop::collection::vec(0.0f64..1.0, 2..9)
            .prop_map(|mut v| { v.sort_by(f64::total_cmp); v })) {
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn streams_are_reproducible_per_name() {
        use crate::test_runner::TestRng;
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        let mut c = TestRng::for_test("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
