//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot fetch crates.io, so this vendors a minimal
//! wall-clock benchmark harness with the API surface the workspace's
//! benches use: [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`],
//! [`BenchmarkId`], [`Throughput`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros (both forms).
//!
//! Measurement is deliberately simple: a short warm-up sizes the batch,
//! then several timed batches yield per-iteration samples reported as
//! median with min/max/stddev. No plots or baselines — swap in the real
//! crate via `[patch.crates-io]` for those. When invoked by `cargo test`
//! (cargo passes `--test` to bench targets), every benchmark body runs
//! exactly once so test runs stay fast.

use std::time::{Duration, Instant};

/// Measurement knobs plus the top-level entry point benches receive.
pub struct Criterion {
    /// Number of timed batches per benchmark (clamped to 5..=100); the
    /// total timed budget is split evenly across them.
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Self {
            sample_size: 100,
            test_mode,
        }
    }
}

impl Criterion {
    /// Sets the number of timed batches per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &id.into().label,
            self.test_mode,
            self.sample_size,
            &mut f,
            None,
        );
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named family of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration work volume, reported as a rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(
            &label,
            self.criterion.test_mode,
            self.criterion.sample_size,
            &mut f,
            self.throughput,
        );
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(
            &label,
            self.criterion.test_mode,
            self.criterion.sample_size,
            &mut |b| f(b, input),
            self.throughput,
        );
        self
    }

    /// Ends the group (printing happens eagerly per benchmark).
    pub fn finish(self) {}
}

/// Identifies a benchmark, optionally parameterised.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function/parameter` id.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{}/{parameter}", function.into()),
        }
    }

    /// An id from just a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// Work volume per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-iteration wall-clock samples from the timed batches of one
/// benchmark, each sample the mean ns/iter of one batch.
#[derive(Debug, Clone)]
pub struct SampleStats {
    /// Iterations per timed batch.
    pub iters_per_sample: u64,
    /// Mean ns/iter of each timed batch.
    pub samples: Vec<f64>,
}

impl SampleStats {
    /// Median ns/iter across batches (mean of middle pair when even).
    pub fn median_ns(&self) -> f64 {
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let n = sorted.len();
        if n == 0 {
            return 0.0;
        }
        if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        }
    }

    /// Fastest batch's ns/iter.
    pub fn min_ns(&self) -> f64 {
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Slowest batch's ns/iter.
    pub fn max_ns(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }

    /// Sample standard deviation of batch ns/iter (0 for < 2 samples).
    pub fn stddev_ns(&self) -> f64 {
        let n = self.samples.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.samples.iter().sum::<f64>() / n as f64;
        let var = self
            .samples
            .iter()
            .map(|s| (s - mean) * (s - mean))
            .sum::<f64>()
            / (n - 1) as f64;
        var.sqrt()
    }
}

/// Passed to benchmark bodies; call [`iter`](Bencher::iter) with the
/// code under test.
pub struct Bencher {
    test_mode: bool,
    sample_count: usize,
    measured: Option<SampleStats>,
}

impl Bencher {
    /// Times `f` over several batches, storing per-batch ns/iter samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if self.test_mode {
            std::hint::black_box(f());
            self.measured = Some(SampleStats {
                iters_per_sample: 1,
                samples: vec![0.0],
            });
            return;
        }
        // Warm-up estimates per-iteration cost, then the total timed
        // budget (~200 ms) is split across the sample batches.
        let warmup = Duration::from_millis(50);
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < warmup && warm_iters < 1_000_000 {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let per_iter = start.elapsed().as_nanos().max(1) / warm_iters.max(1) as u128;
        let sample_count = self.sample_count.clamp(5, 100);
        let batch =
            (200_000_000 / per_iter.max(1) / sample_count as u128).clamp(1, 10_000_000) as u64;
        let mut samples = Vec::with_capacity(sample_count);
        for _ in 0..sample_count {
            let timed = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            samples.push(timed.elapsed().as_nanos() as f64 / batch as f64);
        }
        self.measured = Some(SampleStats {
            iters_per_sample: batch,
            samples,
        });
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    test_mode: bool,
    sample_count: usize,
    f: &mut F,
    throughput: Option<Throughput>,
) {
    let mut bencher = Bencher {
        test_mode,
        sample_count,
        measured: None,
    };
    f(&mut bencher);
    let Some(stats) = bencher.measured else {
        println!("bench {label}: body never called Bencher::iter");
        return;
    };
    if test_mode {
        println!("bench {label}: ok (test mode, 1 iteration)");
        return;
    }
    let ns = stats.median_ns();
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(", {:.0} elem/s", n as f64 / (ns / 1e9)),
        Throughput::Bytes(n) => format!(", {:.0} B/s", n as f64 / (ns / 1e9)),
    });
    println!(
        "bench {label}: median {ns:.0} ns/iter (min {:.0}, max {:.0}, stddev {:.1}) over {} \
         samples x {} iters{}",
        stats.min_ns(),
        stats.max_ns(),
        stats.stddev_ns(),
        stats.samples.len(),
        stats.iters_per_sample,
        rate.unwrap_or_default()
    );
}

/// Declares a benchmark group function, in either the list or the
/// `name/config/targets` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 10).label, "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
        assert_eq!(BenchmarkId::from("plain").label, "plain");
    }

    #[test]
    fn groups_and_functions_run_bodies() {
        let mut criterion = Criterion {
            sample_size: 10,
            test_mode: true,
        };
        let mut calls = 0;
        criterion.bench_function("one", |b| b.iter(|| std::hint::black_box(1 + 1)));
        let mut group = criterion.benchmark_group("g");
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::new("with_input", 4), &4, |b, &n| {
            calls += 1;
            b.iter(|| std::hint::black_box(n * 2));
        });
        group.finish();
        assert_eq!(calls, 1);
    }

    #[test]
    fn sample_stats_summarise_batches() {
        let stats = SampleStats {
            iters_per_sample: 10,
            samples: vec![4.0, 2.0, 8.0, 6.0],
        };
        assert_eq!(stats.median_ns(), 5.0);
        assert_eq!(stats.min_ns(), 2.0);
        assert_eq!(stats.max_ns(), 8.0);
        // Sample stddev of {2,4,6,8}: sqrt(20/3).
        assert!((stats.stddev_ns() - (20.0f64 / 3.0).sqrt()).abs() < 1e-12);
        let odd = SampleStats {
            iters_per_sample: 1,
            samples: vec![3.0, 1.0, 2.0],
        };
        assert_eq!(odd.median_ns(), 2.0);
        let single = SampleStats {
            iters_per_sample: 1,
            samples: vec![7.0],
        };
        assert_eq!(single.stddev_ns(), 0.0);
        assert_eq!(single.median_ns(), 7.0);
    }
}
