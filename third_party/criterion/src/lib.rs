//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot fetch crates.io, so this vendors a minimal
//! wall-clock benchmark harness with the API surface the workspace's
//! benches use: [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`],
//! [`BenchmarkId`], [`Throughput`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros (both forms).
//!
//! Measurement is deliberately simple: a short warm-up sizes the batch,
//! then one timed batch yields a mean ns/iter, printed per benchmark. No
//! statistics, plots, or baselines — swap in the real crate via
//! `[patch.crates-io]` for those. When invoked by `cargo test` (cargo
//! passes `--test` to bench targets), every benchmark body runs exactly
//! once so test runs stay fast.

use std::time::{Duration, Instant};

/// Measurement knobs plus the top-level entry point benches receive.
pub struct Criterion {
    /// Accepted for API compatibility; the stub's batch sizing is
    /// time-based rather than sample-count-based.
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Self {
            sample_size: 100,
            test_mode,
        }
    }
}

impl Criterion {
    /// Sets the nominal sample count (accepted, minimally used).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().label, self.test_mode, &mut f, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named family of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration work volume, reported as a rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the nominal sample count (accepted, minimally used).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, self.criterion.test_mode, &mut f, self.throughput);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(
            &label,
            self.criterion.test_mode,
            &mut |b| f(b, input),
            self.throughput,
        );
        self
    }

    /// Ends the group (printing happens eagerly per benchmark).
    pub fn finish(self) {}
}

/// Identifies a benchmark, optionally parameterised.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function/parameter` id.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{}/{parameter}", function.into()),
        }
    }

    /// An id from just a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// Work volume per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to benchmark bodies; call [`iter`](Bencher::iter) with the
/// code under test.
pub struct Bencher {
    test_mode: bool,
    measured: Option<(u64, Duration)>,
}

impl Bencher {
    /// Times `f`, storing mean wall-clock duration per call.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if self.test_mode {
            std::hint::black_box(f());
            self.measured = Some((1, Duration::ZERO));
            return;
        }
        // Warm-up sizes the timed batch to roughly 200 ms.
        let warmup = Duration::from_millis(50);
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < warmup && warm_iters < 1_000_000 {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let per_iter = start.elapsed().as_nanos().max(1) / warm_iters.max(1) as u128;
        let batch = (200_000_000 / per_iter.max(1)).clamp(1, 10_000_000) as u64;
        let timed = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        self.measured = Some((batch, timed.elapsed()));
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    test_mode: bool,
    f: &mut F,
    throughput: Option<Throughput>,
) {
    let mut bencher = Bencher {
        test_mode,
        measured: None,
    };
    f(&mut bencher);
    let Some((iters, elapsed)) = bencher.measured else {
        println!("bench {label}: body never called Bencher::iter");
        return;
    };
    if test_mode {
        println!("bench {label}: ok (test mode, 1 iteration)");
        return;
    }
    let ns = elapsed.as_nanos() as f64 / iters as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(", {:.0} elem/s", n as f64 / (ns / 1e9)),
        Throughput::Bytes(n) => format!(", {:.0} B/s", n as f64 / (ns / 1e9)),
    });
    println!(
        "bench {label}: {ns:.0} ns/iter over {iters} iters{}",
        rate.unwrap_or_default()
    );
}

/// Declares a benchmark group function, in either the list or the
/// `name/config/targets` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 10).label, "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
        assert_eq!(BenchmarkId::from("plain").label, "plain");
    }

    #[test]
    fn groups_and_functions_run_bodies() {
        let mut criterion = Criterion {
            sample_size: 10,
            test_mode: true,
        };
        let mut calls = 0;
        criterion.bench_function("one", |b| b.iter(|| std::hint::black_box(1 + 1)));
        let mut group = criterion.benchmark_group("g");
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::new("with_input", 4), &4, |b, &n| {
            calls += 1;
            b.iter(|| std::hint::black_box(n * 2));
        });
        group.finish();
        assert_eq!(calls, 1);
    }
}
