//! Minimal JSON document model for the offline `serde` stand-in.
//!
//! The real `serde` ecosystem would bring `serde_json`; without network
//! access the workspace still needs one honest JSON reader/writer for
//! artifacts that must survive a round trip through disk (the fault
//! scenario corpus in `adam2-explore`). This module provides a strict
//! recursive-descent parser and a deterministic writer over a small
//! [`Value`] tree.
//!
//! Two deliberate deviations from a float-only JSON model:
//!
//! * Integers that fit `u64` parse to [`Value::Uint`], not `f64`.
//!   Scenario seeds are full-range `u64`s; routing them through `f64`
//!   would silently corrupt anything above 2^53 and break bit-identical
//!   replay.
//! * Objects preserve insertion order (`Vec` of pairs, duplicate keys
//!   rejected), so writing a parsed document reproduces it byte for
//!   byte.

use std::fmt;

/// Maximum nesting depth accepted by [`parse`]; deeper documents are
/// rejected rather than risking stack exhaustion on hostile input.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Non-negative integer literal (no sign, fraction, or exponent).
    Uint(u64),
    /// Any other numeric literal.
    Number(f64),
    String(String),
    Array(Vec<Value>),
    /// Key–value pairs in source/insertion order; keys are unique.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object; `None` for missing keys or
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Uint(u) => Some(u),
            _ => None,
        }
    }

    /// Numeric value as `f64`; integer literals coerce (lossily above
    /// 2^53, which is fine for rates and magnitudes).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Uint(u) => Some(u as f64),
            Value::Number(n) => Some(n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serialises the value as compact JSON. Floats use Rust's shortest
    /// round-trip representation; non-finite floats become `null` (JSON
    /// has no spelling for them).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Uint(u) => {
                use fmt::Write as _;
                let _ = write!(out, "{u}");
            }
            Value::Number(n) => {
                use fmt::Write as _;
                if n.is_finite() {
                    let _ = write!(out, "{n:?}");
                } else {
                    out.push_str("null");
                }
            }
            Value::String(s) => write_escaped(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Why a document failed to parse, with the byte offset of the problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses exactly one JSON value; trailing non-whitespace input is an
/// error. Never panics on malformed input.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing data after value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut pairs: Vec<(String, Value)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(self.error("duplicate object key"));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.error("control character in string")),
                Some(_) => {
                    // Consume one whole UTF-8 scalar; the input is &str so
                    // the boundaries are already valid.
                    let rest = &self.bytes[self.pos..];
                    let len = std::str::from_utf8(rest)
                        .ok()
                        .and_then(|s| s.chars().next())
                        .map(|c| c.len_utf8())
                        .ok_or_else(|| self.error("invalid utf-8"))?;
                    let s = std::str::from_utf8(&rest[..len]).expect("checked above");
                    out.push_str(s);
                    self.pos += len;
                }
            }
        }
    }

    /// Parses the four hex digits after `\u` (the `u` already consumed),
    /// joining surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        let first = self.hex4()?;
        if (0xD800..0xDC00).contains(&first) {
            // High surrogate: require a low surrogate right after.
            if !self.eat_literal("\\u") {
                return Err(self.error("unpaired surrogate"));
            }
            let second = self.hex4()?;
            if !(0xDC00..0xE000).contains(&second) {
                return Err(self.error("invalid low surrogate"));
            }
            let c = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
            char::from_u32(c).ok_or_else(|| self.error("invalid surrogate pair"))
        } else if (0xDC00..0xE000).contains(&first) {
            Err(self.error("unpaired surrogate"))
        } else {
            char::from_u32(first).ok_or_else(|| self.error("invalid unicode escape"))
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a') as u32 + 10,
                Some(c @ b'A'..=b'F') => (c - b'A') as u32 + 10,
                _ => return Err(self.error("expected hex digit")),
            };
            value = value * 16 + d;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        // Integer part: a single 0, or a nonzero digit followed by more.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.error("invalid number")),
        }
        let mut fractional = false;
        if self.peek() == Some(b'.') {
            fractional = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.error("expected digit after '.'"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            fractional = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.error("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if !negative && !fractional {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Uint(u));
            }
            // Falls through for integers beyond u64::MAX.
        }
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "17", "18446744073709551615"] {
            let v = parse(text).unwrap();
            assert_eq!(v.to_json(), text);
        }
    }

    #[test]
    fn u64_seeds_survive_exactly() {
        let seed = 0xDEAD_BEEF_CAFE_F00Du64;
        let text = Value::Uint(seed).to_json();
        assert_eq!(parse(&text).unwrap().as_u64(), Some(seed));
    }

    #[test]
    fn floats_round_trip_shortest() {
        for x in [0.2, -1.5e-9, 3.5, 0.1 + 0.2] {
            let text = Value::Number(x).to_json();
            let back = parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits());
        }
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(Value::Number(f64::NAN).to_json(), "null");
        assert_eq!(Value::Number(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn nested_document_round_trips() {
        let text = r#"{"seed":42,"events":[{"kind":"burst_loss","rate":0.2},{"kind":"x","s":"a\"b\\c\n"}],"ok":true,"none":null}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.get("seed").and_then(Value::as_u64), Some(42));
        assert_eq!(
            v.get("events")
                .and_then(Value::as_array)
                .map(<[Value]>::len),
            Some(2)
        );
        assert_eq!(parse(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn unicode_escapes() {
        let v = parse(r#""\u0041\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé😀"));
    }

    #[test]
    fn malformed_inputs_error_not_panic() {
        for text in [
            "",
            "{",
            "}",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,\"a\":2}",
            "01",
            "1.",
            "1e",
            "--1",
            "nul",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\\ud800\"",
            "[1] extra",
            "\u{1}",
        ] {
            assert!(parse(text).is_err(), "expected error for {text:?}");
        }
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err(), "depth limit");
    }

    #[test]
    fn object_helpers() {
        let v = parse(r#"{"a":1,"b":"x"}"#).unwrap();
        assert_eq!(v.as_object().map(<[(String, Value)]>::len), Some(2));
        assert_eq!(v.get("b").and_then(Value::as_str), Some("x"));
        assert!(v.get("c").is_none());
        assert!(Value::Null.get("a").is_none());
    }
}
