//! Offline stand-in for the `serde` crate.
//!
//! The workspace derives `Serialize` / `Deserialize` on its data types so
//! they are ready for a real serialisation backend, but no code path
//! actually serialises anything yet (the wire codec in `adam2-core` is
//! hand-rolled). Since the build environment cannot fetch crates.io, this
//! stub provides just enough for those derives to compile: empty marker
//! traits, and (behind the `derive` feature) no-op derive macros that
//! accept the `#[serde(...)]` helper attribute and emit nothing.
//!
//! Swapping in the real `serde` later is a one-line change in the
//! workspace `[patch.crates-io]` table; no source edits needed.

pub mod json;

/// Marker for types that would be serialisable with the real `serde`.
pub trait Serialize {}

/// Marker for types that would be deserialisable with the real `serde`.
pub trait Deserialize {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
