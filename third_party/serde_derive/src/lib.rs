//! No-op `Serialize` / `Deserialize` derives for the offline `serde`
//! stand-in: they validate nothing, emit nothing, and exist so that
//! `#[derive(...)]` and `#[serde(...)]` helper attributes parse.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` helpers) and emits
/// no code.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` helpers) and
/// emits no code.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
