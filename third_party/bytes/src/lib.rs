//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no crates.io access, so this vendors the small
//! slice of the `bytes` API the wire codec uses: [`BytesMut`] as an
//! append-only build buffer, [`Bytes`] as a cheaply cloneable immutable
//! view (`Arc<[u8]>` plus a window), and the [`Buf`] / [`BufMut`] traits
//! carrying the little-endian accessors. Reads consume from the front,
//! exactly like the real crate's cursor semantics.

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

/// Read cursor over a byte source; getters consume from the front.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Consumes `n` bytes from the front, returning them as a slice.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` bytes remain; codec code is expected to
    /// check [`remaining`](Buf::remaining) first.
    fn take_front(&mut self, n: usize) -> &[u8];

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_front(1)[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take_front(2).try_into().unwrap())
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_front(4).try_into().unwrap())
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_front(8).try_into().unwrap())
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take_front(8).try_into().unwrap())
    }
}

/// Write sink for bytes; putters append at the back.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// Immutable, cheaply cloneable byte buffer: shared storage plus a
/// `[start, end)` window that reads advance through.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self {
            data: Arc::from(&[][..]),
            start: 0,
            end: 0,
        }
    }

    /// Number of readable bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The remaining bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies the remaining bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// A sub-view sharing the same storage.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or decreasing.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&i) => i,
            Bound::Excluded(&i) => i + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&i) => i + 1,
            Bound::Excluded(&i) => i,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Self {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_front(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.len(), "buffer underflow");
        let out = &self.data[self.start..self.start + n];
        self.start += n;
        out
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        v.to_vec().into()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// Growable build buffer; freeze into [`Bytes`] when done.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with `cap` bytes pre-reserved.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u16_le(513);
        buf.put_u64_le(u64::MAX - 3);
        buf.put_f64_le(2.5);
        let mut bytes = buf.freeze();
        assert_eq!(bytes.len(), 1 + 2 + 8 + 8);
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.get_u16_le(), 513);
        assert_eq!(bytes.get_u64_le(), u64::MAX - 3);
        assert_eq!(bytes.get_f64_le(), 2.5);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn slice_shares_and_windows() {
        let bytes = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        let head = bytes.slice(..3);
        assert_eq!(head.to_vec(), vec![0, 1, 2]);
        let mid = bytes.slice(2..5);
        assert_eq!(mid.to_vec(), vec![2, 3, 4]);
        // Original is untouched by reads on the slice.
        let mut cursor = head.clone();
        cursor.get_u8();
        assert_eq!(head.len(), 3);
        assert_eq!(bytes.len(), 6);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut bytes = Bytes::from(vec![1u8]);
        bytes.get_u16_le();
    }
}
