//! Offline stand-in for the `rand` crate.
//!
//! The build environment of this repository has no access to a crates.io
//! mirror, so the workspace vendors a minimal, dependency-free
//! implementation of exactly the `rand` API surface it uses:
//!
//! * [`Rng`] — object-safe generator core (`next_u32` / `next_u64`), so
//!   `&mut dyn Rng` works as a trait object;
//! * [`RngExt`] — the generic convenience layer (`random`, `random_range`,
//!   `random_bool`), blanket-implemented for every `Rng` including
//!   unsized ones;
//! * [`SeedableRng`] — `seed_from_u64` construction;
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded via
//!   SplitMix64 (the statistical quality is far beyond what the simulator
//!   needs, and the implementation is a dozen lines);
//! * [`seq::SliceRandom`] — Fisher–Yates `shuffle`.
//!
//! Determinism is the only hard requirement for the simulator: the same
//! seed must reproduce the same run bit-for-bit, which this implementation
//! guarantees on every platform (no OS entropy, no platform-dependent
//! paths).

/// Object-safe random generator core.
///
/// Only the raw output methods live here so that `&mut dyn Rng` is a valid
/// trait object; all generic conveniences are on [`RngExt`].
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`next_u64`](Rng::next_u64)
    /// by default).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Types that can be drawn uniformly from a generator via
/// [`RngExt::random`].
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`RngExt::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::draw(rng);
                self.start + u * (self.end - self.start)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::draw(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_range_impls!(f32, f64);

/// Generic convenience methods, available on every [`Rng`] (sized or not).
pub trait RngExt: Rng {
    /// Draws a uniform value of type `T` (`f64` in `[0, 1)`, full range for
    /// integers).
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::draw(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Deterministic construction of generators from small seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is a pure function of
    /// `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++,
    /// seeded through SplitMix64 so that nearby seeds yield decorrelated
    /// streams.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // xoshiro256++ must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngExt as _};

    /// Random reordering of slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom as _;
    use super::{RngExt as _, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn integer_ranges_cover_and_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.random_range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|s| *s));
        for _ in 0..1000 {
            let v = rng.random_range(5..=7u64);
            assert!((5..=7).contains(&v));
        }
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v = rng.random_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&v));
            let w = rng.random_range(1.0..=2.0f64);
            assert!((1.0..=2.0).contains(&w));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice ordered");
    }

    #[test]
    fn dyn_rng_objects_work() {
        let mut rng = StdRng::seed_from_u64(8);
        let dyn_rng: &mut dyn super::Rng = &mut rng;
        let v: f64 = dyn_rng.random();
        assert!((0.0..1.0).contains(&v));
        assert!(dyn_rng.random_range(0..5usize) < 5);
    }

    #[test]
    fn mean_of_unit_draws_is_centred() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
