//! Continuous monitoring under churn, with fully decentralised instance
//! scheduling.
//!
//! This example runs Adam2 the way a deployment would: no external
//! coordinator ever starts an instance — nodes self-select with
//! probability `1/(N̂·R)` per round (one new instance every R ≈ 60 rounds
//! system-wide) while 0.1% of the membership is replaced *every round*
//! (the paper's churn model: 15-minute mean sessions at 1 s gossip
//! period). Fresh nodes inherit estimates from their neighbours and the
//! whole system keeps a live view of its own attribute distribution.
//!
//! Run with: `cargo run --release --example churn_monitoring`

use adam2::core::{
    discrete_max_distance, Adam2Config, Adam2Protocol, AttrValue, Scheduling, StepCdf,
};
use adam2::sim::{ChurnModel, Engine, EngineConfig};
use adam2::traces::{Attribute, Population};
use rand::SeedableRng;

fn main() {
    let nodes = 5_000;
    let mut rng = rand::rngs::StdRng::seed_from_u64(33);
    let population = Population::generate(Attribute::Cpu, nodes, &mut rng);

    let config = Adam2Config::new()
        .with_lambda(50)
        .with_rounds_per_instance(30)
        .with_scheduling(Scheduling::Probabilistic {
            mean_rounds_between: 60.0,
        })
        .with_initial_n_estimate(nodes as f64);
    let fresh = {
        let population = population.clone();
        move |rng: &mut rand::rngs::StdRng| population.draw_fresh(rng)
    };
    let protocol = Adam2Protocol::with_population(config, population.values().to_vec(), fresh);
    let engine_config = EngineConfig::new(nodes, 33).with_churn(ChurnModel::uniform(0.001));
    let mut engine = Engine::new(engine_config, protocol);

    println!("round  instances  coverage  est.N  max CDF error  (0.1%/round churn)");
    for checkpoint in 1..=10 {
        engine.run_rounds(60);
        let truth = current_truth(&engine);
        let mut covered = 0usize;
        let mut n_est_sum = 0.0;
        let mut worst = 0.0f64;
        let mut sampled = 0;
        for (_, node) in engine.nodes().iter() {
            if let Some(est) = node.estimate() {
                covered += 1;
                n_est_sum += node.n_estimate();
                // Sample a subset for the error check to keep this snappy.
                if sampled < 20 {
                    worst = worst.max(discrete_max_distance(&truth, &est.cdf));
                    sampled += 1;
                }
            }
        }
        println!(
            "{:>5}  {:>9}  {:>7.1}%  {:>5.0}  {:>12.4}",
            checkpoint * 60,
            engine.protocol().started_instances().len(),
            covered as f64 / nodes as f64 * 100.0,
            n_est_sum / covered.max(1) as f64,
            worst,
        );
    }
    println!(
        "\nevery node keeps a current distribution estimate despite {} membership changes",
        (nodes as f64 * 0.001 * 600.0) as u64
    );
}

fn current_truth(engine: &Engine<Adam2Protocol>) -> StepCdf {
    let values: Vec<f64> = engine
        .nodes()
        .iter()
        .map(|(_, node)| match node.value() {
            AttrValue::Single(v) => *v,
            AttrValue::Multi(_) => unreachable!("single-valued population"),
        })
        .collect();
    StepCdf::from_values(values)
}
