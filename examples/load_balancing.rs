//! Decentralised load balancing — the paper's motivating application.
//!
//! Every node carries a load value. Using Adam2, each node learns the
//! *distribution* of load across the entire system and can therefore
//! decide autonomously whether it is overloaded relative to everyone else
//! (say, above the 90th percentile) — something a plain gossip *average*
//! cannot tell it. Overloaded nodes then shed load and a second estimation
//! round confirms the imbalance is gone.
//!
//! Run with: `cargo run --release --example load_balancing`

use adam2::core::{Adam2Config, Adam2Node, Adam2Protocol, AttrValue};
use adam2::sim::{Engine, EngineConfig};
use rand::{RngExt as _, SeedableRng};

const NODES: usize = 3_000;
const OVERLOAD_QUANTILE: f64 = 0.9;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);

    // A skewed cluster: most nodes lightly loaded, a hot minority heavily
    // loaded (e.g. popular content holders).
    let loads: Vec<f64> = (0..NODES)
        .map(|_| {
            if rng.random::<f64>() < 0.1 {
                rng.random_range(800.0..1000.0f64).round()
            } else {
                rng.random_range(10.0..200.0f64).round()
            }
        })
        .collect();

    let config = Adam2Config::new()
        .with_lambda(30)
        .with_rounds_per_instance(30);
    let protocol = Adam2Protocol::with_population(config, loads, |rng| {
        rng.random_range(10.0..200.0f64).round()
    });
    let mut engine = Engine::new(EngineConfig::new(NODES, 7), protocol);

    run_estimation(&mut engine, 2);
    report("before rebalancing", &engine);

    // Each node decides *locally* from its own estimate whether it is in
    // the overloaded tail, and sheds load if so (e.g. migrates work).
    let mut shed = 0;
    let decisions: Vec<_> = engine
        .nodes()
        .iter()
        .map(|(id, node)| (id, is_overloaded(node)))
        .collect();
    for (id, overloaded) in decisions {
        if overloaded {
            if let Some(node) = engine.nodes_mut().get_mut(id) {
                node.set_value(AttrValue::Single(150.0));
                shed += 1;
            }
        }
    }
    println!(
        "\n{shed} nodes detected themselves above p{:.0} and shed load\n",
        OVERLOAD_QUANTILE * 100.0
    );

    // Fresh estimation confirms the new, balanced distribution.
    run_estimation(&mut engine, 2);
    report("after rebalancing", &engine);
}

fn is_overloaded(node: &Adam2Node) -> bool {
    let AttrValue::Single(load) = *node.value() else {
        return false;
    };
    let Some(estimate) = node.estimate() else {
        return false;
    };
    estimate.fraction_below(load) > OVERLOAD_QUANTILE
}

fn run_estimation(engine: &mut Engine<Adam2Protocol>, instances: usize) {
    for _ in 0..instances {
        engine.with_ctx(|proto, ctx| {
            let initiator = ctx.nodes.random_id(ctx.rng).expect("nodes exist");
            proto.start_instance(initiator, ctx)
        });
        engine.run_rounds(31);
    }
}

fn report(label: &str, engine: &Engine<Adam2Protocol>) {
    let (_, node) = engine.nodes().iter().next().expect("nodes exist");
    let estimate = node.estimate().expect("estimation ran");
    println!("{label}: one node's view of the global load distribution");
    println!(
        "  p50 = {:>5.0}   p90 = {:>5.0}   p99 = {:>5.0}   max = {:>5.0}",
        estimate.value_at_quantile(0.50),
        estimate.value_at_quantile(0.90),
        estimate.value_at_quantile(0.99),
        estimate.max,
    );
    let spread = estimate.value_at_quantile(0.99) / estimate.value_at_quantile(0.50).max(1.0);
    println!("  p99/p50 imbalance factor: {spread:.1}x");
    let actually_hot = engine
        .nodes()
        .iter()
        .filter(|(_, n)| is_overloaded(n))
        .count();
    println!("  nodes currently judging themselves overloaded: {actually_hot}");
}
