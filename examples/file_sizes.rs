//! Multi-value attributes: the system-wide distribution of *file sizes*.
//!
//! Section IV's extension: each node contributes its whole set of file
//! sizes; Adam2 estimates the CDF over the union of all files at all
//! nodes by averaging per-threshold *counts* alongside the mean number of
//! values per node (`f_i = avg_i / avg`).
//!
//! Run with: `cargo run --release --example file_sizes`

use adam2::core::{discrete_max_distance, Adam2Config, Adam2Protocol, AttrValue, StepCdf};
use adam2::sim::{Engine, EngineConfig};
use adam2::traces::{FileSizeGenerator, MultiValuePopulation};
use rand::SeedableRng;

fn main() {
    let nodes = 2_000;
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);

    // Each node stores 0..40 files with log-normal sizes.
    let generator = FileSizeGenerator::new(0, 40);
    let population = MultiValuePopulation::generate(&generator, nodes, &mut rng);
    let truth = StepCdf::from_values(population.all_values());
    println!(
        "{} nodes holding {} files in total ({}..{} KB)",
        population.len(),
        population.total_values(),
        truth.min(),
        truth.max()
    );

    let mut sets: std::collections::VecDeque<Vec<f64>> =
        population.per_node().iter().cloned().collect();
    let config = Adam2Config::new()
        .with_lambda(40)
        .with_rounds_per_instance(30);
    let protocol = Adam2Protocol::new(config, move |rng| {
        AttrValue::Multi(
            sets.pop_front()
                .unwrap_or_else(|| generator.node_files(rng)),
        )
    });
    let mut engine = Engine::new(EngineConfig::new(nodes, 11), protocol);

    for _ in 0..3 {
        engine.with_ctx(|proto, ctx| {
            let initiator = ctx.nodes.random_id(ctx.rng).expect("nodes exist");
            proto.start_instance(initiator, ctx)
        });
        engine.run_rounds(31);
    }

    let (_, node) = engine.nodes().iter().next().expect("nodes exist");
    let estimate = node.estimate().expect("instances completed");
    println!("\none node's estimate of the global file-size distribution:");
    for (label, q) in [("p25", 0.25), ("median", 0.5), ("p75", 0.75), ("p95", 0.95)] {
        println!(
            "  {label:>6} file size: {:>9.0} KB (true {:>9.0} KB)",
            estimate.value_at_quantile(q),
            true_quantile(&truth, q)
        );
    }
    println!(
        "  fraction of files under 1 MB: {:.1}% (true {:.1}%)",
        estimate.fraction_below(1024.0) * 100.0,
        truth.eval(1024.0) * 100.0
    );
    let err = discrete_max_distance(&truth, &estimate.cdf);
    println!("  max CDF error: {:.4} ({:.2}%)", err, err * 100.0);
}

fn true_quantile(truth: &StepCdf, q: f64) -> f64 {
    let values = truth.values();
    values[((q * (values.len() - 1) as f64) as usize).min(values.len() - 1)]
}
