//! Quickstart: estimate the distribution of a node attribute across a
//! simulated peer-to-peer system.
//!
//! Every node ends up with its own estimate of the full CDF, the system
//! size, and the attribute extrema — all from gossip with random
//! neighbours, no coordinator.
//!
//! Run with: `cargo run --release --example quickstart`

use adam2::core::{Adam2Config, Adam2Protocol, StepCdf};
use adam2::sim::{Engine, EngineConfig};
use adam2::traces::{Attribute, Population};
use rand::SeedableRng;

fn main() {
    let nodes = 5_000;
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);

    // A BOINC-like population: installed RAM per machine (a heavily
    // stepped real-world distribution — the paper's hard case).
    let population = Population::generate(Attribute::Ram, nodes, &mut rng);
    let truth = StepCdf::from_values(population.values().to_vec());

    // The protocol with the paper's defaults: lambda = 50 interpolation
    // points, neighbour-based bootstrap, MinMax refinement.
    let config = Adam2Config::new().with_rounds_per_instance(30);
    let fresh = {
        let population = population.clone();
        move |rng: &mut rand::rngs::StdRng| population.draw_fresh(rng)
    };
    let protocol = Adam2Protocol::with_population(config, population.values().to_vec(), fresh);
    let mut engine = Engine::new(EngineConfig::new(nodes, 42), protocol);

    // Run three aggregation instances — the paper's recipe for a converged
    // estimate at ~120 kB of traffic per node.
    for instance in 1..=3 {
        engine.with_ctx(|proto, ctx| {
            let initiator = ctx.nodes.random_id(ctx.rng).expect("population non-empty");
            proto.start_instance(initiator, ctx)
        });
        engine.run_rounds(31);
        println!("instance {instance} complete (round {})", engine.round());
    }

    // Inspect one arbitrary node's view of the whole system.
    let (id, node) = engine.nodes().iter().next().expect("nodes exist");
    let estimate = node.estimate().expect("instances completed");
    println!("\nnode {id} estimates:");
    println!(
        "  system size : {} (actual {nodes})",
        estimate
            .system_size()
            .map_or("unknown".into(), |n| n.to_string())
    );
    println!(
        "  attribute range : [{}, {}] MB",
        estimate.min, estimate.max
    );
    for q in [0.1, 0.25, 0.5, 0.75, 0.9] {
        println!(
            "  p{:02.0} RAM : {:>6.0} MB (actual {:>6.0} MB)",
            q * 100.0,
            estimate.value_at_quantile(q),
            quantile_of(&truth, q),
        );
    }
    let err = adam2::core::discrete_max_distance(&truth, &estimate.cdf);
    println!(
        "  max CDF error vs ground truth: {:.4} ({:.2}%)",
        err,
        err * 100.0
    );
    let sent = engine.net().node(id).sent_bytes as f64 / 1000.0;
    println!("  traffic sent by this node: {sent:.1} kB");
}

fn quantile_of(truth: &StepCdf, q: f64) -> f64 {
    let values = truth.values();
    values[((q * (values.len() - 1) as f64) as usize).min(values.len() - 1)]
}
