//! Decentralised outlier detection — "estimating the statistical
//! distribution of attribute values also allows identifying outliers and
//! clusters, which can be used to detect hardware and software defects or
//! intrusion attempts" (paper, Section I).
//!
//! Every node monitors a local health metric (say, requests per second).
//! A handful of compromised nodes run hot. With Adam2, every node learns
//! the global distribution and can classify *itself* — and any peer it
//! talks to — against quantile fences, with no coordinator and no
//! threshold baked in at deploy time. Node ranks and ordered slices come
//! from the same estimate for free.
//!
//! Run with: `cargo run --release --example outlier_detection`

use adam2::core::{Adam2Config, Adam2Protocol, AttrValue, Outlier, OutlierDetector};
use adam2::sim::{Engine, EngineConfig};
use rand::{RngExt as _, SeedableRng};

const NODES: usize = 4_000;
const COMPROMISED: usize = 12;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(97);

    // Healthy nodes: 50-500 req/s. Compromised nodes: 5000-9000 req/s.
    let mut metrics: Vec<f64> = (0..NODES - COMPROMISED)
        .map(|_| rng.random_range(50.0..500.0f64).round())
        .collect();
    metrics.extend((0..COMPROMISED).map(|_| rng.random_range(5000.0..9000.0f64).round()));

    let config = Adam2Config::new()
        .with_lambda(40)
        .with_rounds_per_instance(30);
    let protocol = Adam2Protocol::with_population(config, metrics, |rng| {
        rng.random_range(50.0..500.0f64).round()
    });
    let mut engine = Engine::new(EngineConfig::new(NODES, 97), protocol);

    for _ in 0..2 {
        engine.with_ctx(|proto, ctx| {
            let initiator = ctx.nodes.random_id(ctx.rng).expect("nodes exist");
            proto.start_instance(initiator, ctx)
        });
        engine.run_rounds(31);
    }

    // Every node classifies itself against the 0.2%/99.7% fences it
    // derived from its own estimate.
    let detector = OutlierDetector::new(0.002, 0.997);
    let mut flagged = Vec::new();
    let mut missed = 0;
    for (id, node) in engine.nodes().iter() {
        let AttrValue::Single(metric) = *node.value() else {
            continue;
        };
        let Some(estimate) = node.estimate() else {
            continue;
        };
        match detector.classify(estimate, metric) {
            Outlier::High => flagged.push((id, metric)),
            _ if metric >= 5000.0 => missed += 1,
            _ => {}
        }
    }

    let (_, sample) = engine.nodes().iter().next().expect("nodes exist");
    let estimate = sample.estimate().expect("estimation ran");
    let (lo, hi) = detector.normal_band(estimate);
    println!("normal band learned from gossip: [{lo:.0}, {hi:.0}] req/s");
    println!(
        "nodes self-flagging as high outliers: {} (true compromised: {COMPROMISED}, missed: {missed})",
        flagged.len()
    );
    for (id, metric) in flagged.iter().take(5) {
        println!("  {id}: {metric:.0} req/s");
    }
    if flagged.len() > 5 {
        println!("  ... and {} more", flagged.len() - 5);
    }

    // Ranks and slices come from the same estimate.
    let hottest = flagged.iter().map(|(_, m)| *m).fold(0.0f64, f64::max);
    println!(
        "\nthe hottest node estimates its own rank as {} of ~{} (slice {}/10)",
        estimate.rank_of(hottest).expect("size estimated"),
        estimate.system_size().expect("size estimated"),
        estimate.slice_of(hottest, 10)
    );
}
