//! Self-tuning accuracy: use Adam2's confidence estimation (Section VI)
//! to adapt the number of interpolation points until an application
//! target is met — without ever consulting ground truth.
//!
//! The system starts deliberately under-provisioned (lambda = 6) and the
//! [`SelfTuner`](adam2::core::SelfTuner) grows lambda between instances
//! based only on the nodes' *self-assessed* error from verification
//! points.
//!
//! Run with: `cargo run --release --example self_tuning`

use adam2::core::{
    discrete_avg_distance, Adam2Config, Adam2Protocol, ErrorMetric, SelfTuner, StepCdf,
};
use adam2::sim::{Engine, EngineConfig};
use adam2::traces::{Attribute, Population};
use rand::SeedableRng;

fn main() {
    let nodes = 3_000;
    let target = 0.002; // application wants Err_a below 0.2%
    let mut rng = rand::rngs::StdRng::seed_from_u64(21);
    let population = Population::generate(Attribute::Ram, nodes, &mut rng);
    let truth = StepCdf::from_values(population.values().to_vec());

    let config = Adam2Config::new()
        .with_lambda(6)
        .with_verify_points(20)
        .with_verify_metric(ErrorMetric::Average)
        .with_refine(adam2::core::RefineKind::LCut)
        .with_rounds_per_instance(30);
    let fresh = {
        let population = population.clone();
        move |rng: &mut rand::rngs::StdRng| population.draw_fresh(rng)
    };
    let protocol = Adam2Protocol::with_population(config, population.values().to_vec(), fresh);
    let mut engine = Engine::new(EngineConfig::new(nodes, 21), protocol);

    let tuner = SelfTuner::new(target, ErrorMetric::Average, 4, 200);
    println!("target Err_a: {target} — tuner adjusts lambda from self-assessed error only\n");
    println!("instance  lambda  self-assessed  actual Err_a  verdict");

    for instance in 1..=8 {
        engine.with_ctx(|proto, ctx| {
            let initiator = ctx.nodes.random_id(ctx.rng).expect("nodes exist");
            proto.start_instance(initiator, ctx)
        });
        engine.run_rounds(31);

        let (_, node) = engine.nodes().iter().next().expect("nodes exist");
        let estimate = node.estimate().expect("instance completed").clone();
        let assessed = estimate.est_err_avg;
        let actual = discrete_avg_distance(&truth, &estimate.cdf);
        let lambda = engine.protocol().config().lambda;
        let satisfied = tuner.is_satisfied(assessed);
        println!(
            "{instance:>8}  {lambda:>6}  {:>13}  {actual:>12.2e}  {}",
            assessed.map_or("n/a".into(), |e| format!("{e:.2e}")),
            if satisfied {
                "target met"
            } else {
                "growing lambda"
            }
        );
        if satisfied {
            println!("\ntarget reached at lambda = {lambda} after {instance} instances");
            break;
        }
        let next = tuner.next_lambda(lambda, assessed);
        engine.protocol_mut().config_mut().lambda = next;
    }
}
