//! Network-partition (split-brain) behaviour of Adam2.
//!
//! Gossip protocols cannot cross a network partition: each side of a
//! split converges to *its own* sub-population's distribution and size.
//! After healing, the next aggregation instance restores a global view.

use adam2::core::{point_errors, Adam2Config, Adam2Protocol, AttrValue, StepCdf};
use adam2::sim::{Engine, EngineConfig};

const NODES: usize = 1_000;
const ROUNDS: u64 = 40;

fn build() -> Engine<Adam2Protocol> {
    // Deterministic bimodal values: evens low, odds high.
    let values: Vec<f64> = (0..NODES)
        .map(|i| {
            if i % 2 == 0 {
                100.0
            } else {
                900.0 + (i % 50) as f64
            }
        })
        .collect();
    let config = Adam2Config::new()
        .with_lambda(20)
        .with_rounds_per_instance(ROUNDS);
    let proto = Adam2Protocol::with_population(config, values, |_| 100.0);
    Engine::new(EngineConfig::new(NODES, 1234), proto)
}

fn run_instance(engine: &mut Engine<Adam2Protocol>) {
    engine.with_ctx(|proto, ctx| {
        let initiator = ctx.nodes.random_id(ctx.rng).expect("nodes");
        proto.start_instance(initiator, ctx)
    });
    engine.run_rounds(ROUNDS + 1);
}

#[test]
fn split_brain_estimates_cover_only_the_local_partition() {
    let mut engine = build();
    engine.partition_into(2);
    run_instance(&mut engine);

    // Work out which partition the instance ran in: nodes with estimates.
    let mut in_group = [0usize; 2];
    let mut group_values: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
    let mut estimates_per_group = [0usize; 2];
    for (id, node) in engine.nodes().iter() {
        let g = engine.partition_group(id) as usize;
        in_group[g] += 1;
        let AttrValue::Single(v) = *node.value() else {
            continue;
        };
        group_values[g].push(v);
        if node.estimate().is_some() {
            estimates_per_group[g] += 1;
        }
    }
    let active = if estimates_per_group[0] > 0 { 0 } else { 1 };
    let silent = 1 - active;
    assert_eq!(
        estimates_per_group[active], in_group[active],
        "every node of the initiator's partition finishes the instance"
    );
    assert_eq!(
        estimates_per_group[silent], 0,
        "the other partition must never see the instance"
    );

    // The estimates describe the *local* sub-population, including its
    // size.
    let local_truth = StepCdf::from_values(group_values[active].clone());
    for (id, node) in engine.nodes().iter() {
        if engine.partition_group(id) as usize != active {
            continue;
        }
        let est = node.estimate().expect("active partition finished");
        let (max_err, _) = point_errors(&local_truth, &est.thresholds, &est.fractions);
        assert!(max_err < 1e-6, "split estimate not local-exact: {max_err}");
        let n = est.n_hat.expect("weight stays inside the partition");
        assert!(
            (n - in_group[active] as f64).abs() < 1.0,
            "split N estimate {n} vs partition size {}",
            in_group[active]
        );
    }
}

#[test]
fn healing_restores_the_global_view() {
    let mut engine = build();
    engine.partition_into(2);
    run_instance(&mut engine);
    engine.heal_partition();
    run_instance(&mut engine);

    let values: Vec<f64> = engine
        .nodes()
        .iter()
        .map(|(_, n)| match n.value() {
            AttrValue::Single(v) => *v,
            AttrValue::Multi(_) => unreachable!(),
        })
        .collect();
    let truth = StepCdf::from_values(values);
    for (_, node) in engine.nodes().iter() {
        let est = node.estimate().expect("estimate after heal");
        let (max_err, _) = point_errors(&truth, &est.thresholds, &est.fractions);
        assert!(max_err < 1e-6, "post-heal estimate error {max_err}");
        let n = est.n_hat.expect("weight");
        assert!((n - NODES as f64).abs() < 1.0, "post-heal N {n}");
    }
}
