//! Churn resilience integration tests (paper Section VII-G).

use adam2::core::{
    discrete_max_distance, Adam2Config, Adam2Protocol, AttrValue, RefineKind, StepCdf,
};
use adam2::sim::{seeded_rng, ChurnModel, Engine, EngineConfig};
use adam2::traces::{Attribute, Population};

const NODES: usize = 1_200;
const ROUNDS: u64 = 30;

fn engine_with_churn(churn: ChurnModel, seed: u64) -> Engine<Adam2Protocol> {
    let mut rng = seeded_rng(seed);
    let pop = Population::generate(Attribute::Ram, NODES, &mut rng);
    let config = Adam2Config::new()
        .with_lambda(40)
        .with_rounds_per_instance(ROUNDS)
        .with_refine(RefineKind::MinMax);
    let fresh = {
        let pop = pop.clone();
        move |rng: &mut rand::rngs::StdRng| pop.draw_fresh(rng)
    };
    let proto = Adam2Protocol::with_population(config, pop.values().to_vec(), fresh);
    Engine::new(EngineConfig::new(NODES, seed).with_churn(churn), proto)
}

fn run_instances(engine: &mut Engine<Adam2Protocol>, count: usize) {
    for _ in 0..count {
        engine.with_ctx(|proto, ctx| {
            let initiator = ctx.nodes.random_id(ctx.rng).expect("nodes");
            proto.start_instance(initiator, ctx)
        });
        engine.run_rounds(ROUNDS + 1);
    }
}

fn truth_of(engine: &Engine<Adam2Protocol>) -> StepCdf {
    let values: Vec<f64> = engine
        .nodes()
        .iter()
        .map(|(_, n)| match n.value() {
            AttrValue::Single(v) => *v,
            AttrValue::Multi(_) => unreachable!(),
        })
        .collect();
    StepCdf::from_values(values)
}

#[test]
fn typical_churn_preserves_accuracy() {
    // The paper's typical rate: 0.1% per round.
    let mut engine = engine_with_churn(ChurnModel::uniform(0.001), 7);
    run_instances(&mut engine, 4);
    let truth = truth_of(&engine);
    let mut worst: f64 = 0.0;
    let mut with_estimate = 0usize;
    for (_, node) in engine.nodes().iter() {
        if let Some(est) = node.estimate() {
            with_estimate += 1;
            if with_estimate <= 25 {
                worst = worst.max(discrete_max_distance(&truth, &est.cdf));
            }
        }
    }
    // Bootstrapped joiners count: nearly everyone has an estimate.
    assert!(
        with_estimate as f64 / NODES as f64 > 0.97,
        "coverage {with_estimate}/{NODES}"
    );
    assert!(worst < 0.12, "accuracy under 0.1% churn degraded: {worst}");
}

#[test]
fn heavy_churn_degrades_gracefully() {
    let mut light = engine_with_churn(ChurnModel::uniform(0.001), 8);
    let mut heavy = engine_with_churn(ChurnModel::uniform(0.05), 8);
    run_instances(&mut light, 3);
    run_instances(&mut heavy, 3);
    let (lt, ht) = (truth_of(&light), truth_of(&heavy));
    let sample_err = |engine: &Engine<Adam2Protocol>, truth: &StepCdf| {
        let mut worst: f64 = 0.0;
        for (_, node) in engine.nodes().iter().take(25) {
            if let Some(est) = node.estimate() {
                worst = worst.max(discrete_max_distance(truth, &est.cdf));
            } else {
                worst = 1.0;
            }
        }
        worst
    };
    let light_err = sample_err(&light, &lt);
    let heavy_err = sample_err(&heavy, &ht);
    assert!(
        heavy_err >= light_err * 0.5,
        "5% churn ({heavy_err}) should not beat 0.1% churn ({light_err})"
    );
    // Graceful: still a usable estimate, not garbage.
    assert!(
        heavy_err < 0.5,
        "5%/round churn collapsed the estimate: {heavy_err}"
    );
}

#[test]
fn population_and_weight_invariants_hold_under_churn() {
    let mut engine = engine_with_churn(ChurnModel::uniform(0.01), 9);
    let meta = engine
        .with_ctx(|proto, ctx| {
            let initiator = ctx.nodes.random_id(ctx.rng).expect("nodes");
            proto.start_instance(initiator, ctx)
        })
        .expect("instance");
    for _ in 0..ROUNDS {
        engine.run_round();
        assert_eq!(engine.nodes().len(), NODES, "population drifted");
        // Weight mass can only shrink when weight-holding nodes leave; it
        // must never grow (that would inflate 1/N estimates).
        let weight: f64 = engine
            .nodes()
            .iter()
            .filter_map(|(_, n)| n.active_instance(meta.id).map(|i| i.weight))
            .sum();
        assert!(weight <= 1.0 + 1e-9, "weight mass grew to {weight}");
    }
}

#[test]
fn session_churn_behaves_like_uniform_churn() {
    // Mean session of 1000 rounds ~ 0.1% replacement per round.
    let mut engine = engine_with_churn(ChurnModel::sessions(1000.0), 10);
    run_instances(&mut engine, 3);
    let truth = truth_of(&engine);
    let mut worst: f64 = 0.0;
    for (_, node) in engine.nodes().iter().take(25) {
        if let Some(est) = node.estimate() {
            worst = worst.max(discrete_max_distance(&truth, &est.cdf));
        } else {
            worst = 1.0;
        }
    }
    assert!(worst < 0.15, "session churn error {worst}");
}

#[test]
fn joiners_inherit_estimates_from_neighbours() {
    let mut engine = engine_with_churn(ChurnModel::None, 11);
    run_instances(&mut engine, 1);
    engine.set_churn(ChurnModel::uniform(0.02));
    engine.run_rounds(20);
    for (_, node) in engine.nodes().iter() {
        if node.joined_round() > 0 {
            assert!(
                node.estimate().is_some(),
                "joiner at round {} was not bootstrapped",
                node.joined_round()
            );
        }
    }
}
