//! Integration tests of confidence estimation (Section VI) and the
//! self-tuning extension.

use adam2::core::{
    discrete_avg_distance, Adam2Config, Adam2Protocol, ErrorMetric, RefineKind, SelfTuner, StepCdf,
};
use adam2::sim::{seeded_rng, Engine, EngineConfig};
use adam2::traces::{Attribute, Population};

const NODES: usize = 1_000;

fn build(config: Adam2Config, seed: u64) -> (Engine<Adam2Protocol>, StepCdf) {
    let mut rng = seeded_rng(seed);
    let pop = Population::generate(Attribute::Ram, NODES, &mut rng);
    let truth = StepCdf::from_values(pop.values().to_vec());
    let fresh = {
        let pop = pop.clone();
        move |rng: &mut rand::rngs::StdRng| pop.draw_fresh(rng)
    };
    let proto = Adam2Protocol::with_population(config, pop.values().to_vec(), fresh);
    (Engine::new(EngineConfig::new(NODES, seed), proto), truth)
}

fn run_instance(engine: &mut Engine<Adam2Protocol>, rounds: u64) {
    engine.with_ctx(|proto, ctx| {
        let initiator = ctx.nodes.random_id(ctx.rng).expect("nodes");
        proto.start_instance(initiator, ctx)
    });
    engine.run_rounds(rounds + 1);
}

#[test]
fn self_assessment_tracks_actual_average_error() {
    let config = Adam2Config::new()
        .with_lambda(40)
        .with_rounds_per_instance(30)
        .with_refine(RefineKind::LCut)
        .with_verify_points(20)
        .with_verify_metric(ErrorMetric::Average);
    let (mut engine, truth) = build(config, 51);
    for _ in 0..3 {
        run_instance(&mut engine, 30);
    }
    let mut checked = 0;
    for (_, node) in engine.nodes().iter().take(20) {
        let est = node.estimate().expect("estimate");
        let assessed = est.est_err_avg.expect("verification points configured");
        let actual = discrete_avg_distance(&truth, &est.cdf);
        // Paper: ~10% relative estimation error with 20 points. Allow a
        // generous factor at this reduced scale: same order of magnitude.
        assert!(
            assessed < actual * 8.0 && assessed * 8.0 > actual,
            "assessed {assessed} vs actual {actual}"
        );
        checked += 1;
    }
    assert_eq!(checked, 20);
}

#[test]
fn verification_points_cost_traffic_proportionally() {
    // Paper: 20 verification points on lambda = 50 add ~40% traffic.
    let base = Adam2Config::new()
        .with_lambda(50)
        .with_rounds_per_instance(25);
    let verified = base.with_verify_points(20);
    let (mut plain_engine, _) = build(base, 52);
    let (mut verified_engine, _) = build(verified, 52);
    run_instance(&mut plain_engine, 25);
    run_instance(&mut verified_engine, 25);
    let plain = plain_engine.net().total_bytes() as f64;
    let with_verify = verified_engine.net().total_bytes() as f64;
    let overhead = with_verify / plain - 1.0;
    assert!(
        (0.25..0.55).contains(&overhead),
        "verification overhead {overhead} (expected ~0.40)"
    );
}

#[test]
fn self_tuner_reaches_the_accuracy_target() {
    let target = 0.004;
    let config = Adam2Config::new()
        .with_lambda(6)
        .with_rounds_per_instance(30)
        .with_refine(RefineKind::LCut)
        .with_verify_points(20)
        .with_verify_metric(ErrorMetric::Average);
    let (mut engine, truth) = build(config, 53);
    let tuner = SelfTuner::new(target, ErrorMetric::Average, 4, 400);

    let mut reached = false;
    for _ in 0..10 {
        run_instance(&mut engine, 30);
        let (_, node) = engine.nodes().iter().next().expect("nodes");
        let est = node.estimate().expect("estimate");
        let assessed = est.est_err_avg;
        if tuner.is_satisfied(assessed) {
            // Check the *actual* error is also at target scale.
            let actual = discrete_avg_distance(&truth, &est.cdf);
            assert!(
                actual < target * 10.0,
                "satisfied but actual error {actual}"
            );
            reached = true;
            break;
        }
        let lambda = engine.protocol().config().lambda;
        engine.protocol_mut().config_mut().lambda = tuner.next_lambda(lambda, assessed);
    }
    assert!(reached, "tuner never reached the target");
    assert!(
        engine.protocol().config().lambda > 6,
        "tuner should have grown lambda"
    );
}

#[test]
fn max_metric_verification_points_are_denser_near_steps() {
    // With ErrorMetric::Max the verification points come from gap
    // bisection of the previous estimate — after one instance on RAM they
    // should concentrate where the CDF moves.
    let config = Adam2Config::new()
        .with_lambda(30)
        .with_rounds_per_instance(30)
        .with_verify_points(30)
        .with_verify_metric(ErrorMetric::Max);
    let (mut engine, truth) = build(config, 54);
    run_instance(&mut engine, 30); // bootstrap instance (uniform verify)
    run_instance(&mut engine, 30); // refined instance (bisection verify)
    let meta = engine
        .protocol()
        .started_instances()
        .last()
        .expect("two instances")
        .clone();
    assert_eq!(meta.verify_thresholds.len(), 30);
    // Count verification points in the busy half of the domain (below the
    // median): must hold a clear majority since the mass is there.
    let median = {
        let v = truth.values();
        v[v.len() / 2]
    };
    let busy = meta
        .verify_thresholds
        .iter()
        .filter(|t| **t <= median)
        .count();
    assert!(
        busy > 15,
        "only {busy}/30 verification points near the mass (median {median})"
    );
}
