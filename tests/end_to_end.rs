//! End-to-end integration: the full Adam2 pipeline against its baselines
//! on the synthetic BOINC-like traces — the paper's headline comparisons
//! at reduced scale.

use adam2::baselines::{sample_estimate, EquiDepthConfig, EquiDepthProtocol};
use adam2::core::{
    discrete_avg_distance, discrete_max_distance, Adam2Config, Adam2Protocol, RefineKind, StepCdf,
};
use adam2::sim::{seeded_rng, Engine, EngineConfig};
use adam2::traces::{Attribute, Population};

const NODES: usize = 1_500;
const ROUNDS: u64 = 30;

fn population(attr: Attribute, seed: u64) -> (Population, StepCdf) {
    let mut rng = seeded_rng(seed);
    let pop = Population::generate(attr, NODES, &mut rng);
    let truth = StepCdf::from_values(pop.values().to_vec());
    (pop, truth)
}

fn run_adam2(
    pop: &Population,
    refine: RefineKind,
    instances: usize,
    seed: u64,
) -> Engine<Adam2Protocol> {
    let config = Adam2Config::new()
        .with_lambda(50)
        .with_rounds_per_instance(ROUNDS)
        .with_refine(refine);
    let fresh = {
        let pop = pop.clone();
        move |rng: &mut rand::rngs::StdRng| pop.draw_fresh(rng)
    };
    let proto = Adam2Protocol::with_population(config, pop.values().to_vec(), fresh);
    let mut engine = Engine::new(EngineConfig::new(NODES, seed), proto);
    for _ in 0..instances {
        engine.with_ctx(|proto, ctx| {
            let initiator = ctx.nodes.random_id(ctx.rng).expect("nodes");
            proto.start_instance(initiator, ctx)
        });
        engine.run_rounds(ROUNDS + 1);
    }
    engine
}

fn adam2_errors(engine: &Engine<Adam2Protocol>, truth: &StepCdf) -> (f64, f64) {
    let mut max = 0.0f64;
    let mut sum = 0.0f64;
    let mut count = 0usize;
    for (_, node) in engine.nodes().iter().take(25) {
        let est = node.estimate().expect("estimate");
        max = max.max(discrete_max_distance(truth, &est.cdf));
        sum += discrete_avg_distance(truth, &est.cdf);
        count += 1;
    }
    (max, sum / count as f64)
}

#[test]
fn minmax_reaches_low_max_error_on_stepped_ram() {
    let (pop, truth) = population(Attribute::Ram, 100);
    let engine = run_adam2(&pop, RefineKind::MinMax, 4, 100);
    let (errm, _) = adam2_errors(&engine, &truth);
    // Paper: ~2% on the real trace at 100k nodes. Allow headroom at small
    // scale, but it must be far below EquiDepth's ~10%.
    assert!(errm < 0.06, "MinMax Err_m = {errm}");
}

#[test]
fn lcut_reaches_low_avg_error() {
    for attr in [Attribute::Cpu, Attribute::Ram] {
        let (pop, truth) = population(attr, 101);
        let engine = run_adam2(&pop, RefineKind::LCut, 4, 101);
        let (_, erra) = adam2_errors(&engine, &truth);
        assert!(erra < 0.01, "LCut Err_a on {attr} = {erra}");
    }
}

#[test]
fn smooth_cpu_is_easier_than_stepped_ram() {
    let (pop_cpu, truth_cpu) = population(Attribute::Cpu, 102);
    let (pop_ram, truth_ram) = population(Attribute::Ram, 102);
    let e_cpu = run_adam2(&pop_cpu, RefineKind::MinMax, 2, 102);
    let e_ram = run_adam2(&pop_ram, RefineKind::MinMax, 2, 102);
    let (cpu_m, _) = adam2_errors(&e_cpu, &truth_cpu);
    let (ram_m, _) = adam2_errors(&e_ram, &truth_ram);
    assert!(
        cpu_m <= ram_m * 1.5 + 0.01,
        "cpu ({cpu_m}) should not be much harder than ram ({ram_m})"
    );
}

#[test]
fn adam2_beats_equidepth_like_the_paper() {
    let (pop, truth) = population(Attribute::Ram, 103);
    let adam2 = run_adam2(&pop, RefineKind::LCut, 4, 103);
    let (_, adam2_erra) = adam2_errors(&adam2, &truth);

    let fresh = {
        let pop = pop.clone();
        move |rng: &mut rand::rngs::StdRng| pop.draw_fresh(rng)
    };
    let proto = EquiDepthProtocol::with_population(
        EquiDepthConfig::new(50, ROUNDS),
        pop.values().to_vec(),
        fresh,
    );
    let mut ed = Engine::new(EngineConfig::new(NODES, 103), proto);
    for _ in 0..4 {
        ed.with_ctx(|proto, ctx| {
            let initiator = ctx.nodes.random_id(ctx.rng).expect("nodes");
            proto.start_phase(initiator, ctx)
        });
        ed.run_rounds(ROUNDS + 1);
    }
    let mut ed_sum = 0.0;
    let mut count = 0;
    for (_, node) in ed.nodes().iter().take(25) {
        ed_sum += discrete_avg_distance(&truth, node.estimate().expect("estimate"));
        count += 1;
    }
    let ed_erra = ed_sum / count as f64;
    assert!(
        adam2_erra * 3.0 < ed_erra,
        "Adam2 LCut ({adam2_erra}) should beat EquiDepth ({ed_erra}) clearly"
    );
}

#[test]
fn sampling_needs_many_samples_to_match_adam2() {
    let (pop, truth) = population(Attribute::Ram, 104);
    let engine = run_adam2(&pop, RefineKind::MinMax, 3, 104);
    let (adam2_errm, _) = adam2_errors(&engine, &truth);

    let mut rng = seeded_rng(104);
    let small = sample_estimate(pop.values(), 30, &mut rng);
    let small_err = discrete_max_distance(&truth, &small.cdf);
    assert!(
        small_err > adam2_errm,
        "30 samples ({small_err}) should be worse than Adam2 ({adam2_errm})"
    );
    let large = sample_estimate(pop.values(), 20_000, &mut rng);
    let large_err = discrete_max_distance(&truth, &large.cdf);
    assert!(
        large_err < 0.03,
        "20k samples should be accurate ({large_err})"
    );
}

#[test]
fn every_node_learns_n_min_max() {
    let (pop, truth) = population(Attribute::Bandwidth, 105);
    let engine = run_adam2(&pop, RefineKind::MinMax, 1, 105);
    for (_, node) in engine.nodes().iter() {
        let est = node.estimate().expect("estimate");
        assert_eq!(est.min, truth.min());
        assert_eq!(est.max, truth.max());
        let n = est.n_hat.expect("weight received");
        assert!(
            (n - NODES as f64).abs() / (NODES as f64) < 0.01,
            "system size estimate {n} vs {NODES}"
        );
    }
}

#[test]
fn cost_is_independent_of_system_size() {
    // Paper Section VII-I: per-node traffic depends only on lambda and
    // rounds, not on N.
    let mut per_node = Vec::new();
    for nodes in [300usize, 1200] {
        let mut rng = seeded_rng(106);
        let pop = Population::generate(Attribute::Cpu, nodes, &mut rng);
        let config = Adam2Config::new()
            .with_lambda(50)
            .with_rounds_per_instance(25);
        let fresh = {
            let pop = pop.clone();
            move |rng: &mut rand::rngs::StdRng| pop.draw_fresh(rng)
        };
        let proto = Adam2Protocol::with_population(config, pop.values().to_vec(), fresh);
        let mut engine = Engine::new(EngineConfig::new(nodes, 106), proto);
        engine.with_ctx(|proto, ctx| {
            let initiator = ctx.nodes.random_id(ctx.rng).expect("nodes");
            proto.start_instance(initiator, ctx)
        });
        engine.run_rounds(26);
        per_node.push(engine.net().total_bytes() as f64 / nodes as f64);
    }
    let ratio = per_node[1] / per_node[0];
    assert!(
        (0.8..1.25).contains(&ratio),
        "per-node cost varies with N: {per_node:?}"
    );
    // And the absolute magnitude matches the paper: ~1.7 kB of global
    // traffic per node per round at lambda = 50 once the instance has
    // spread (~40 kB over 25 rounds, minus the epidemic spreading lag).
    assert!(
        (25_000.0..60_000.0).contains(&per_node[0]),
        "unexpected per-node traffic {per_node:?}"
    );
}
