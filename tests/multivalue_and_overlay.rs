//! Integration tests of the multi-value extension (file sizes) and of
//! realistic overlay/peer-sampling variants.

use adam2::core::{
    discrete_max_distance, point_errors, Adam2Config, Adam2Protocol, AttrValue, StepCdf,
};
use adam2::sim::{seeded_rng, Engine, EngineConfig, OverlayConfig};
use adam2::traces::{Attribute, FileSizeGenerator, MultiValuePopulation, Population};

#[test]
fn file_size_distribution_is_estimated_over_the_multiset() {
    let nodes = 600;
    let mut rng = seeded_rng(31);
    let generator = FileSizeGenerator::new(0, 25);
    let population = MultiValuePopulation::generate(&generator, nodes, &mut rng);
    let truth = StepCdf::from_values(population.all_values());

    let mut sets: std::collections::VecDeque<Vec<f64>> =
        population.per_node().iter().cloned().collect();
    let config = Adam2Config::new()
        .with_lambda(40)
        .with_rounds_per_instance(30);
    let proto = Adam2Protocol::new(config, move |rng| {
        AttrValue::Multi(
            sets.pop_front()
                .unwrap_or_else(|| generator.node_files(rng)),
        )
    });
    let mut engine = Engine::new(EngineConfig::new(nodes, 31), proto);
    for _ in 0..3 {
        engine.with_ctx(|proto, ctx| {
            let initiator = ctx.nodes.random_id(ctx.rng).expect("nodes");
            proto.start_instance(initiator, ctx)
        });
        engine.run_rounds(31);
    }

    for (_, node) in engine.nodes().iter().take(20) {
        let est = node.estimate().expect("estimate");
        // The aggregated fractions at the thresholds are essentially exact
        // even in multi-value mode.
        let (max_err, _) = point_errors(&truth, &est.thresholds, &est.fractions);
        assert!(max_err < 1e-6, "point error {max_err}");
        // The interpolated CDF is a decent fit of the multiset CDF.
        let errm = discrete_max_distance(&truth, &est.cdf);
        assert!(errm < 0.1, "multiset Err_m {errm}");
        // Extrema over all values of all nodes.
        assert_eq!(est.min, truth.min());
        assert_eq!(est.max, truth.max());
    }
}

#[test]
fn nodes_with_no_values_participate_harmlessly() {
    // A third of the nodes hold no files at all.
    let nodes = 300;
    let mut rng = seeded_rng(32);
    let mut sets = Vec::new();
    let mut all = Vec::new();
    for i in 0..nodes {
        if i % 3 == 0 {
            sets.push(Vec::new());
        } else {
            let files: Vec<f64> = (0..5)
                .map(|k| ((i * 7 + k * 13) % 100 + 1) as f64)
                .collect();
            all.extend(files.iter().copied());
            sets.push(files);
        }
    }
    let truth = StepCdf::from_values(all);
    let mut queue: std::collections::VecDeque<Vec<f64>> = sets.into_iter().collect();
    let config = Adam2Config::new()
        .with_lambda(20)
        .with_rounds_per_instance(30);
    let proto = Adam2Protocol::new(config, move |_| {
        AttrValue::Multi(queue.pop_front().unwrap_or_default())
    });
    let mut engine = Engine::new(EngineConfig::new(nodes, 32), proto);
    let _ = &mut rng;
    for _ in 0..2 {
        engine.with_ctx(|proto, ctx| {
            let initiator = ctx.nodes.random_id(ctx.rng).expect("nodes");
            proto.start_instance(initiator, ctx)
        });
        engine.run_rounds(31);
    }
    for (_, node) in engine.nodes().iter().take(20) {
        let est = node.estimate().expect("estimate");
        let (max_err, _) = point_errors(&truth, &est.thresholds, &est.fractions);
        assert!(max_err < 1e-6, "point error {max_err} with empty-set nodes");
    }
}

#[test]
fn results_hold_on_cyclon_style_shuffle_overlay() {
    // The oracle overlay is an idealisation; the protocol must also work
    // on a realistic partial-view peer-sampling service.
    let nodes = 800;
    let mut rng = seeded_rng(33);
    let pop = Population::generate(Attribute::Ram, nodes, &mut rng);
    let truth = StepCdf::from_values(pop.values().to_vec());
    let config = Adam2Config::new()
        .with_lambda(40)
        .with_rounds_per_instance(35);
    let fresh = {
        let pop = pop.clone();
        move |rng: &mut rand::rngs::StdRng| pop.draw_fresh(rng)
    };
    let proto = Adam2Protocol::with_population(config, pop.values().to_vec(), fresh);
    let engine_config = EngineConfig::new(nodes, 33).with_overlay(OverlayConfig::shuffle(20));
    let mut engine = Engine::new(engine_config, proto);
    for _ in 0..2 {
        engine.with_ctx(|proto, ctx| {
            let initiator = ctx.nodes.random_id(ctx.rng).expect("nodes");
            proto.start_instance(initiator, ctx)
        });
        engine.run_rounds(36);
    }
    for (_, node) in engine.nodes().iter().take(20) {
        let est = node.estimate().expect("estimate");
        let (max_err, _) = point_errors(&truth, &est.thresholds, &est.fractions);
        assert!(max_err < 1e-4, "shuffle-overlay point error {max_err}");
        let n = est.n_hat.expect("weight");
        assert!(
            (n - nodes as f64).abs() / (nodes as f64) < 0.05,
            "size estimate {n} on shuffle overlay"
        );
    }
}
