//! Streaming estimation: pipelined time-faded Adam2 instances tracking
//! drifting distributions.
//!
//! A single Adam2 aggregation instance is a *snapshot* protocol: its
//! indicator contributions are fixed when each node enrols, so the
//! estimate it delivers describes the distribution as of the instance's
//! own lifetime. When the underlying attribute drifts (load changes,
//! capacity upgrades, population turnover — the [`adam2_sim::DriftModel`]
//! axis), any single snapshot goes stale within a handful of rounds.
//!
//! This crate turns the snapshot protocol into a *tracker*:
//!
//! * an [`InstancePipeline`] keeps up to `max_overlap` instances in
//!   flight on a staggered schedule (one launch every `launch_period`
//!   rounds — Adam2 explicitly supports concurrent instances, and gossip
//!   exchanges piggyback every active instance, so overlap costs bytes,
//!   not messages);
//! * completed estimates are blended by an
//!   [`adam2_core::BlendedTracker`] with exponentially time-faded
//!   weights, so the newest snapshot dominates and older ones fade
//!   smoothly instead of being dropped at a cliff;
//! * an [`adam2_core::DriftController`] watches the inter-instance
//!   divergence (how far each fresh estimate lands from the current
//!   blend) and adapts the launch period — drift speeds launches up,
//!   stability backs them off — with a restart trigger that drops faded
//!   history after an abrupt step change.
//!
//! The [`TrackerMode`] matrix pits this design against the naive
//! restart-per-instance baseline at equal message budget; `bench_stream`
//! exports the comparison as `BENCH_streaming.json`.

use std::sync::Arc;

use adam2_bench::{adam2_engine_with, current_truth, start_instance, ExperimentSetup};
use adam2_core::{
    discrete_errors_over, Adam2Config, Adam2Protocol, BlendedTracker, DistributionEstimate,
    DriftController, FadeConfig, InstanceMeta, InterpCdf,
};
use adam2_sim::{Engine, FaultScenario};

/// How completed estimates are turned into the served tracking estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrackerMode {
    /// The baseline: one instance at a time, back to back, and each
    /// completed estimate *replaces* the previous one outright.
    RestartNaive,
    /// Pipelined overlapping instances at a fixed launch period; completed
    /// estimates join the time-faded blend.
    PipelinedFixedFade,
    /// Pipelined with the [`DriftController`] adapting the launch period
    /// to the measured inter-instance divergence.
    PipelinedAdaptiveFade,
    /// Like [`TrackerMode::PipelinedAdaptiveFade`], plus the Spectra-style
    /// restart: an abrupt divergence spike drops the faded history before
    /// absorbing the fresh estimate.
    PipelinedAdaptiveRestart,
}

impl TrackerMode {
    /// Every mode of the comparison matrix, baseline first.
    pub const ALL: [TrackerMode; 4] = [
        TrackerMode::RestartNaive,
        TrackerMode::PipelinedFixedFade,
        TrackerMode::PipelinedAdaptiveFade,
        TrackerMode::PipelinedAdaptiveRestart,
    ];

    /// Stable wire/report name.
    pub fn label(self) -> &'static str {
        match self {
            TrackerMode::RestartNaive => "restart_naive",
            TrackerMode::PipelinedFixedFade => "pipelined_fixed_fade",
            TrackerMode::PipelinedAdaptiveFade => "pipelined_adaptive_fade",
            TrackerMode::PipelinedAdaptiveRestart => "pipelined_adaptive_restart",
        }
    }

    /// Parses a [`TrackerMode::label`] back to the mode.
    pub fn from_label(label: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|m| m.label() == label)
    }

    /// Whether instances overlap (everything except the naive baseline).
    pub fn is_pipelined(self) -> bool {
        self != TrackerMode::RestartNaive
    }

    /// Whether the launch period adapts to measured divergence.
    pub fn is_adaptive(self) -> bool {
        matches!(
            self,
            TrackerMode::PipelinedAdaptiveFade | TrackerMode::PipelinedAdaptiveRestart
        )
    }
}

/// Schedule and blend parameters of one [`InstancePipeline`].
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Tracking mode (see [`TrackerMode`]).
    pub mode: TrackerMode,
    /// Rounds between staggered instance launches (the adaptive modes
    /// treat this as the initial period).
    pub launch_period: u64,
    /// Maximum instances in flight; a due launch is deferred while the
    /// pipeline is full. Forced to 1 by [`TrackerMode::RestartNaive`].
    pub max_overlap: usize,
    /// Gossip rounds each instance runs before finalising.
    pub instance_rounds: u64,
    /// Exponential fade of the blended tracker.
    pub fade: FadeConfig,
    /// Launch-frequency controller for the adaptive modes.
    pub controller: DriftController,
}

impl StreamConfig {
    /// A sensible default schedule for `mode`: launches every 10 rounds,
    /// up to 4 overlapping 30-round instances, fade half-life of one
    /// launch period, and a controller targeting 8 % divergence (above
    /// the interpolation floor of successive estimates) with a 20 %
    /// restart threshold.
    pub fn for_mode(mode: TrackerMode) -> Self {
        Self {
            mode,
            launch_period: 10,
            max_overlap: 4,
            instance_rounds: 30,
            fade: FadeConfig::new(10.0, 4),
            controller: DriftController::new(0.08, 0.20, 2, 40),
        }
    }

    /// Overrides the launch period (and keeps the fade half-life at one
    /// period, the schedule-relative default: under drift an estimate one
    /// launch older carries half the weight, so staleness decays as fast
    /// as fresh snapshots arrive).
    pub fn with_launch_period(mut self, period: u64) -> Self {
        self.launch_period = period;
        self.fade = FadeConfig::new(period.max(1) as f64, self.fade.max_tracked);
        self
    }

    /// Overrides the per-instance round count.
    pub fn with_instance_rounds(mut self, rounds: u64) -> Self {
        self.instance_rounds = rounds;
        self
    }

    /// The overlap cap the mode actually runs with.
    pub fn effective_overlap(&self) -> usize {
        if self.mode.is_pipelined() {
            self.max_overlap
        } else {
            1
        }
    }

    fn validate(&self) {
        assert!(self.launch_period > 0, "launch_period must be positive");
        assert!(self.max_overlap > 0, "max_overlap must be positive");
        assert!(self.instance_rounds > 0, "instance_rounds must be positive");
    }
}

/// One per-round sample of the served tracking estimate's error against
/// the *current* (drifted) population truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackSample {
    /// Engine round the sample was taken after.
    pub round: u64,
    /// `Err_m` of the blended estimate over the whole current-truth
    /// domain (1.0 while no instance has completed yet).
    pub err_max: f64,
    /// `Err_a` of the blended estimate.
    pub err_avg: f64,
    /// Estimates in the blend at sample time.
    pub tracked: usize,
    /// Launch period in force at sample time.
    pub period: u64,
}

/// Aggregates of one pipeline run (see [`InstancePipeline::report`]).
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Mode the pipeline ran in.
    pub mode: TrackerMode,
    /// Rounds sampled.
    pub rounds: usize,
    /// Time-averaged `Err_a` — the headline tracking-error metric.
    pub time_avg_err: f64,
    /// Time-averaged `Err_m`.
    pub time_avg_err_max: f64,
    /// `Err_a` of the final sample.
    pub final_err: f64,
    /// Instances launched / completed over the run.
    pub launched: u64,
    /// See [`StreamReport::launched`].
    pub completed: u64,
    /// Tracker resets (naive mode resets on every completion by design).
    pub restarts: u64,
    /// Mean inter-instance divergence over all completions that had a
    /// blend to diverge from (`NaN` if none).
    pub mean_divergence: f64,
    /// Launch period in force when the run ended.
    pub final_period: u64,
    /// Total network messages — the budget axis: gossip piggybacks all
    /// active instances per exchange, so every mode pays the same count.
    pub messages: u64,
    /// Total network bytes (overlap shows up here, not in messages).
    pub bytes: u64,
    /// FNV-1a digest over the full per-round error series; bit-identical
    /// replay at any thread count reproduces it exactly.
    pub fingerprint: u64,
}

/// FNV-1a over the little-endian bytes of `v`, folded into `h`.
fn mix(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Runs overlapping Adam2 instances on a staggered schedule over a
/// simulated (possibly drifting) population and serves their time-faded
/// blend — see the crate docs for the design.
pub struct InstancePipeline {
    engine: Engine<Adam2Protocol>,
    config: StreamConfig,
    tracker: BlendedTracker,
    /// Launched instances awaiting completion, launch order.
    pending: Vec<Arc<InstanceMeta>>,
    /// Launch period currently in force (adapts in adaptive modes).
    period: u64,
    next_launch: u64,
    launched: u64,
    completed: u64,
    lost: u64,
    restarts: u64,
    divergences: Vec<f64>,
    samples: Vec<TrackSample>,
}

impl InstancePipeline {
    /// Wraps an engine (population, faults and drift already configured)
    /// in a streaming pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `config` has a zero launch period, overlap cap, or
    /// instance duration.
    pub fn new(engine: Engine<Adam2Protocol>, config: StreamConfig) -> Self {
        config.validate();
        let period = config.launch_period;
        let next_launch = engine.round();
        Self {
            engine,
            tracker: BlendedTracker::new(config.fade),
            config,
            pending: Vec::new(),
            period,
            next_launch,
            launched: 0,
            completed: 0,
            lost: 0,
            restarts: 0,
            divergences: Vec::new(),
            samples: Vec::new(),
        }
    }

    /// Convenience constructor mirroring the bench harness: builds the
    /// engine over `setup`'s population with `threads` workers, applies
    /// the optional fault/drift scenario, and wraps it.
    pub fn over(
        setup: &ExperimentSetup,
        adam2: Adam2Config,
        seed: u64,
        scenario: Option<FaultScenario>,
        threads: usize,
        config: StreamConfig,
    ) -> Self {
        let mut engine = adam2_engine_with(setup, adam2, seed, |c| c.with_threads(threads));
        if let Some(s) = scenario {
            engine.set_fault_scenario(s).expect("valid fault scenario");
        }
        Self::new(engine, config)
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &Engine<Adam2Protocol> {
        &self.engine
    }

    /// Mutable access to the wrapped engine (telemetry detach/export).
    pub fn engine_mut(&mut self) -> &mut Engine<Adam2Protocol> {
        &mut self.engine
    }

    /// The blended tracker serving the current estimate.
    pub fn tracker(&self) -> &BlendedTracker {
        &self.tracker
    }

    /// The launch period currently in force.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Per-round samples recorded so far.
    pub fn samples(&self) -> &[TrackSample] {
        &self.samples
    }

    /// The blend rendered as a single CDF as of `now` (`None` until the
    /// first instance completes).
    pub fn blended_cdf(&self, now: u64) -> Option<InterpCdf> {
        let (min, max, thresholds, fractions) = self.tracker.snapshot_points(now)?;
        InterpCdf::from_points(min, max, &thresholds, &fractions).ok()
    }

    /// Advances one gossip round: launches a due instance (unless the
    /// pipeline is full — a deferred launch fires as soon as a slot
    /// frees), runs the round on the phase-split parallel path, absorbs
    /// any instance that finalised, and samples the tracking error.
    pub fn step(&mut self) {
        let round = self.engine.round();
        if round >= self.next_launch && self.pending.len() < self.config.effective_overlap() {
            let meta = start_instance(&mut self.engine);
            self.pending.push(meta);
            self.launched += 1;
            self.next_launch = round + self.period;
        }
        self.engine.run_round_parallel();
        self.probe_completions();
        self.sample();
    }

    /// Runs `rounds` rounds (see [`InstancePipeline::step`]).
    pub fn run(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Moves estimates of finalised instances into the tracker. Nodes are
    /// probed in slot order, so the first completed copy found is
    /// deterministic; an instance whose every participant crashed before
    /// finalising is dropped and counted as lost.
    fn probe_completions(&mut self) {
        let now = self.engine.round();
        let due: Vec<Arc<InstanceMeta>> = {
            let (done, still): (Vec<_>, Vec<_>) = std::mem::take(&mut self.pending)
                .into_iter()
                .partition(|meta| now > meta.end_round);
            self.pending = still;
            done
        };
        for meta in due {
            let found: Option<DistributionEstimate> =
                self.engine.nodes().iter().find_map(|(_, node)| {
                    node.estimate()
                        .filter(|est| est.instance == meta.id)
                        .cloned()
                });
            match found {
                Some(est) => self.absorb(est),
                None => self.lost += 1,
            }
        }
    }

    /// Feeds one completed estimate through the mode's policy: measure
    /// divergence against the blend, let the controller adapt the launch
    /// period, restart if the mode calls for it, then absorb.
    fn absorb(&mut self, est: DistributionEstimate) {
        let now = self.engine.round();
        let divergence = self.tracker.divergence(&est.cdf, now);
        if let Some(d) = divergence {
            self.divergences.push(d);
        }
        let mut restart = self.config.mode == TrackerMode::RestartNaive;
        if self.config.mode.is_adaptive() {
            let decision = self.config.controller.observe(self.period, divergence);
            self.period = decision.next_period;
            if decision.restart && self.config.mode == TrackerMode::PipelinedAdaptiveRestart {
                restart = true;
            }
        }
        if restart && !self.tracker.is_empty() {
            self.tracker.reset();
            self.restarts += 1;
        }
        self.tracker.absorb(est.instance.as_u64(), now, est.cdf);
        self.completed += 1;
    }

    /// Scores the served blend against the *current* population truth —
    /// the tracking error a consumer of the estimate would experience
    /// right now, drift included.
    fn sample(&mut self) {
        let now = self.engine.round();
        let truth = current_truth(&self.engine);
        let (err_max, err_avg) = match self.blended_cdf(now) {
            Some(cdf) => discrete_errors_over(&truth, &cdf, truth.min(), truth.max()),
            None => (1.0, 1.0),
        };
        self.samples.push(TrackSample {
            round: now,
            err_max,
            err_avg,
            tracked: self.tracker.len(),
            period: self.period,
        });
    }

    /// Aggregates the run into a [`StreamReport`].
    pub fn report(&self) -> StreamReport {
        let n = self.samples.len().max(1) as f64;
        let time_avg_err = self.samples.iter().map(|s| s.err_avg).sum::<f64>() / n;
        let time_avg_err_max = self.samples.iter().map(|s| s.err_max).sum::<f64>() / n;
        let mut fingerprint = 0xcbf2_9ce4_8422_2325u64;
        for s in &self.samples {
            fingerprint = mix(fingerprint, s.round);
            fingerprint = mix(fingerprint, s.err_max.to_bits());
            fingerprint = mix(fingerprint, s.err_avg.to_bits());
            fingerprint = mix(fingerprint, s.tracked as u64);
            fingerprint = mix(fingerprint, s.period);
        }
        let mean_divergence = if self.divergences.is_empty() {
            f64::NAN
        } else {
            self.divergences.iter().sum::<f64>() / self.divergences.len() as f64
        };
        StreamReport {
            mode: self.config.mode,
            rounds: self.samples.len(),
            time_avg_err,
            time_avg_err_max,
            final_err: self.samples.last().map_or(1.0, |s| s.err_avg),
            launched: self.launched,
            completed: self.completed,
            restarts: self.restarts,
            mean_divergence,
            final_period: self.period,
            messages: self.engine.net().total_msgs(),
            bytes: self.engine.net().total_bytes(),
            fingerprint,
        }
    }

    /// Instances that never delivered an estimate (all participants
    /// crashed before finalising).
    pub fn lost(&self) -> u64 {
        self.lost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adam2_bench::setup;
    use adam2_core::BootstrapKind;
    use adam2_sim::DriftModel;
    use adam2_traces::Attribute;

    const NODES: usize = 300;
    const SEED: u64 = 11;

    fn adam2() -> Adam2Config {
        Adam2Config::new()
            .with_lambda(16)
            .with_rounds_per_instance(25)
            .with_bootstrap(BootstrapKind::Neighbours)
    }

    fn config(mode: TrackerMode) -> StreamConfig {
        StreamConfig::for_mode(mode)
            .with_launch_period(8)
            .with_instance_rounds(25)
    }

    fn ramp_scenario() -> FaultScenario {
        FaultScenario::new(5).with_drift(10, 210, DriftModel::LinearRamp { per_round: 30.0 })
    }

    #[test]
    fn stable_population_converges() {
        let s = setup(Attribute::Ram, NODES, SEED);
        let mut p = InstancePipeline::over(
            &s,
            adam2(),
            SEED,
            None,
            1,
            config(TrackerMode::PipelinedFixedFade),
        );
        p.run(80);
        let r = p.report();
        assert!(r.completed >= 3, "completed {}", r.completed);
        assert_eq!(r.restarts, 0);
        assert!(r.final_err < 0.05, "final err {}", r.final_err);
        // The blend is live once the first instance lands.
        assert!(p.tracker().len() >= 2);
    }

    #[test]
    fn pipelined_fade_beats_restart_naive_under_ramp() {
        let s = setup(Attribute::Ram, NODES, SEED);
        let run = |mode| {
            let mut p =
                InstancePipeline::over(&s, adam2(), SEED, Some(ramp_scenario()), 1, config(mode));
            p.run(220);
            p.report()
        };
        let naive = run(TrackerMode::RestartNaive);
        let faded = run(TrackerMode::PipelinedFixedFade);
        // Equal message budget: gossip piggybacks instances, so overlap
        // costs bytes, not messages.
        assert_eq!(naive.messages, faded.messages);
        assert!(faded.bytes >= naive.bytes);
        assert!(
            faded.time_avg_err < naive.time_avg_err,
            "pipelined+faded {} must beat naive {}",
            faded.time_avg_err,
            naive.time_avg_err
        );
    }

    #[test]
    fn adaptive_restart_fires_on_step_change() {
        let s = setup(Attribute::Ram, NODES, SEED);
        // A large step at round 40: pre-step estimates are badly wrong,
        // so the first post-step completion diverges past the restart
        // threshold.
        let scenario =
            FaultScenario::new(5).with_drift(40, 41, DriftModel::Step { shift: 3_000.0 });
        let mut p = InstancePipeline::over(
            &s,
            adam2(),
            SEED,
            Some(scenario),
            1,
            config(TrackerMode::PipelinedAdaptiveRestart),
        );
        p.run(120);
        let r = p.report();
        assert!(r.restarts >= 1, "step change must trigger a restart");
        // After the restart the tracker recovers on the post-step truth.
        assert!(r.final_err < 0.1, "final err {}", r.final_err);
    }

    #[test]
    fn adaptive_mode_backs_off_when_stable() {
        let s = setup(Attribute::Ram, NODES, SEED);
        let mut p = InstancePipeline::over(
            &s,
            adam2(),
            SEED,
            None,
            1,
            config(TrackerMode::PipelinedAdaptiveFade),
        );
        p.run(140);
        let r = p.report();
        // Zero divergence on a stable population: the controller grows the
        // period toward its ceiling.
        assert!(
            r.final_period > 8,
            "period should back off from 8, got {}",
            r.final_period
        );
        assert_eq!(r.restarts, 0);
    }

    #[test]
    fn replay_is_bit_identical_across_thread_counts() {
        let s = setup(Attribute::Ram, NODES, SEED);
        let run = |threads| {
            let mut p = InstancePipeline::over(
                &s,
                adam2(),
                SEED,
                Some(ramp_scenario()),
                threads,
                config(TrackerMode::PipelinedAdaptiveFade),
            );
            p.run(100);
            p.report().fingerprint
        };
        assert_eq!(run(1), run(3), "thread count must not change the series");
    }

    #[test]
    fn naive_mode_never_overlaps() {
        let s = setup(Attribute::Ram, NODES, SEED);
        let mut p = InstancePipeline::over(
            &s,
            adam2(),
            SEED,
            None,
            1,
            config(TrackerMode::RestartNaive),
        );
        for _ in 0..90 {
            p.step();
            assert!(p.tracker().len() <= 1, "naive mode keeps a single estimate");
        }
        let r = p.report();
        // Every completion after the first resets the (single-entry)
        // tracker.
        assert_eq!(r.restarts + 1, r.completed);
    }

    #[test]
    fn mode_labels_round_trip() {
        for mode in TrackerMode::ALL {
            assert_eq!(TrackerMode::from_label(mode.label()), Some(mode));
        }
        assert_eq!(TrackerMode::from_label("nope"), None);
    }

    #[test]
    #[should_panic(expected = "launch_period must be positive")]
    fn zero_period_is_rejected() {
        let s = setup(Attribute::Ram, 50, SEED);
        let mut c = config(TrackerMode::PipelinedFixedFade);
        c.launch_period = 0;
        InstancePipeline::over(&s, adam2(), SEED, None, 1, c);
    }
}
