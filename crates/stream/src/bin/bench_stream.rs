//! Streaming-tracker matrix: time-averaged tracking error of the
//! pipelined time-faded blend versus the naive restart-per-instance
//! baseline, on drifting populations, at equal message budget.
//!
//! Two drift scenarios (a sustained linear ramp and an abrupt step
//! change) are each run under all four [`TrackerMode`]s. Gossip exchanges
//! piggyback every active instance, so the pipelined modes pay exactly
//! the same *message* count as the baseline — overlap shows up in bytes
//! only — which makes the time-averaged error comparison an equal-budget
//! one by construction. Results go to `BENCH_streaming.json` at the
//! repository root (override with `--out PATH`).
//!
//! Extra flags: `--out PATH`, `--threads T`, `--check` (assert the
//! streaming invariants — the pipelined faded tracker beats the naive
//! baseline on both drift scenarios at equal messages, the adaptive
//! restart fires on the step change, replay is bit-identical at two
//! thread counts, and a deploy daemon-mode cluster serves blended
//! estimates end to end; CI's streaming-smoke job runs this). The
//! standard `--nodes` / `--seed` / `--lambda` / `--telemetry` flags also
//! apply; defaults are calibrated for the drift magnitudes below
//! (nodes=300, seed=11, lambda=16 over the RAM attribute).

use std::time::Duration;

use adam2_bench::{adam2_engine_with, maybe_attach_telemetry, setup, Args, ExperimentSetup};
use adam2_core::{Adam2Config, AttrValue, BootstrapKind};
use adam2_deploy::{Cluster, ClusterConfig, DaemonConfig, NodeConfig, DAEMON_INSTANCE_BASE};
use adam2_sim::{DriftModel, FaultScenario, RunManifest};
use adam2_stream::{InstancePipeline, StreamConfig, StreamReport, TrackerMode};
use adam2_traces::Attribute;

/// Rounds each tracker runs (long enough for ~25 staggered instances).
const STREAM_ROUNDS: u64 = 220;

/// Initial rounds between staggered launches (the adaptive modes move it).
const LAUNCH_PERIOD: u64 = 8;

/// Gossip rounds per instance.
const INSTANCE_ROUNDS: u64 = 25;

/// Linear-ramp drift rate (MB per round on the RAM attribute, whose truth
/// spans roughly 120..8000 MB — ~0.4 %/round, fast enough that a stale
/// snapshot visibly lags).
const RAMP_PER_ROUND: f64 = 30.0;

/// Step-change magnitude (MB): an abrupt fleet-wide upgrade.
const STEP_SHIFT: f64 = 2_000.0;

/// The drift scenarios of the matrix.
const SCENARIOS: &[&str] = &["ramp30", "step2000"];

fn scenario_for(name: &str, seed: u64) -> FaultScenario {
    match name {
        "ramp30" => FaultScenario::new(seed).with_drift(
            10,
            STREAM_ROUNDS - 10,
            DriftModel::LinearRamp {
                per_round: RAMP_PER_ROUND,
            },
        ),
        "step2000" => {
            FaultScenario::new(seed).with_drift(60, 61, DriftModel::Step { shift: STEP_SHIFT })
        }
        other => panic!("unknown scenario {other}"),
    }
}

/// One matrix point reduced to the reported numbers.
struct StreamResult {
    scenario: &'static str,
    mode: &'static str,
    report: StreamReport,
}

fn run_one(
    s: &ExperimentSetup,
    args: &Args,
    scenario: &'static str,
    mode: TrackerMode,
    threads: usize,
) -> StreamResult {
    let adam2 = Adam2Config::new()
        .with_lambda(args.lambda)
        .with_rounds_per_instance(INSTANCE_ROUNDS)
        .with_bootstrap(BootstrapKind::Neighbours);
    let mut engine = adam2_engine_with(s, adam2, args.seed, |c| c.with_threads(threads));
    maybe_attach_telemetry(&mut engine, args.telemetry.as_ref());
    engine
        .set_fault_scenario(scenario_for(scenario, args.seed))
        .expect("valid drift scenario");
    let config = StreamConfig::for_mode(mode)
        .with_launch_period(LAUNCH_PERIOD)
        .with_instance_rounds(INSTANCE_ROUNDS);
    let mut pipeline = InstancePipeline::new(engine, config);
    pipeline.run(STREAM_ROUNDS);
    let report = pipeline.report();
    if let Some(dir) = &args.telemetry {
        adam2_bench::export_telemetry(
            pipeline.engine_mut(),
            dir,
            &format!("stream_{scenario}_{}", mode.label()),
            "bench_stream",
            &format!(
                "scenario={scenario} mode={} nodes={} lambda={} rounds={STREAM_ROUNDS} \
                 period={LAUNCH_PERIOD} final_period={}",
                mode.label(),
                args.nodes,
                args.lambda,
                report.final_period
            ),
            args.seed,
        );
    }
    StreamResult {
        scenario,
        mode: mode.label(),
        report,
    }
}

fn take_flag(raw: &mut Vec<String>, name: &str) -> bool {
    let before = raw.len();
    raw.retain(|a| a != name);
    raw.len() != before
}

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let check = take_flag(&mut raw, "--check");
    // Streaming defaults calibrated for the drift magnitudes above; any
    // explicitly passed flag still wins.
    for (flag, default) in [("--nodes", "300"), ("--seed", "11"), ("--lambda", "16")] {
        if !raw.iter().any(|a| a == flag) {
            raw.push(flag.to_string());
            raw.push(default.to_string());
        }
    }
    let args = match Args::try_parse(raw) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("bench_stream: {msg}");
            eprintln!(
                "usage: bench_stream [--nodes N] [--seed S] [--lambda L] [--threads T] \
                 [--telemetry DIR] [--out PATH] [--check]"
            );
            std::process::exit(if msg == "help requested" { 0 } else { 2 });
        }
    };
    let threads: usize = args
        .extra_parsed("threads")
        .unwrap_or_else(|e| panic!("{e}"))
        .unwrap_or(0);
    let default_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_streaming.json");
    let out = args.extra("out").unwrap_or(default_out).to_string();
    let detected = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let effective_threads = if threads == 0 { detected } else { threads };
    let nodes = args.nodes;

    println!("== bench_stream — tracking error under drift, all tracker modes ==");
    println!(
        "nodes={nodes} seed={} lambda={} threads={effective_threads} rounds={STREAM_ROUNDS} \
         period={LAUNCH_PERIOD} instance_rounds={INSTANCE_ROUNDS}",
        args.seed, args.lambda
    );
    println!();

    let s = setup(Attribute::Ram, nodes, args.seed);
    let mut results: Vec<StreamResult> = Vec::new();
    for &scenario in SCENARIOS {
        for mode in TrackerMode::ALL {
            results.push(run_one(&s, &args, scenario, mode, threads));
        }
    }

    for r in &results {
        let rep = &r.report;
        println!(
            "{:<9} {:<26} err={:.4} err_max={:.4} final={:.4} launched={:<3} completed={:<3} \
             restarts={:<2} period={:<2} msgs={} bytes={}",
            r.scenario,
            r.mode,
            rep.time_avg_err,
            rep.time_avg_err_max,
            rep.final_err,
            rep.launched,
            rep.completed,
            rep.restarts,
            rep.final_period,
            rep.messages,
            rep.bytes
        );
    }

    let json = render_json(&args, nodes, effective_threads, detected, &results);
    match std::fs::write(&out, &json) {
        Ok(()) => println!("\nwrote {out}"),
        Err(e) => {
            eprintln!("bench_stream: cannot write {out}: {e}");
            std::process::exit(1);
        }
    }

    if check {
        run_checks(&results);
        run_determinism_check(&s, &args, effective_threads);
        run_daemon_check();
        println!("all streaming-tracker checks passed");
    }
}

fn render_json(
    args: &Args,
    nodes: usize,
    threads: usize,
    detected: usize,
    results: &[StreamResult],
) -> String {
    let manifest = RunManifest::new(
        "bench_stream",
        &format!(
            "nodes={nodes} lambda={} rounds={STREAM_ROUNDS} period={LAUNCH_PERIOD} \
             instance_rounds={INSTANCE_ROUNDS} ramp={RAMP_PER_ROUND} step={STEP_SHIFT}",
            args.lambda
        ),
        args.seed,
        threads,
    );
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"streaming_tracker\",\n");
    json.push_str(&format!("  \"manifest\": {},\n", manifest.to_inline_json()));
    json.push_str(&format!("  \"nodes\": {nodes},\n"));
    json.push_str(&format!("  \"seed\": {},\n", args.seed));
    json.push_str(&format!("  \"lambda\": {},\n", args.lambda));
    json.push_str(&format!("  \"rounds\": {STREAM_ROUNDS},\n"));
    json.push_str(&format!("  \"launch_period\": {LAUNCH_PERIOD},\n"));
    json.push_str(&format!("  \"instance_rounds\": {INSTANCE_ROUNDS},\n"));
    json.push_str(&format!("  \"detected_cores\": {detected},\n"));
    // `{:.6e}` would print NaN/inf verbatim, which is not JSON.
    let num = |v: f64| {
        if v.is_finite() {
            format!("{v:.6e}")
        } else {
            "null".to_string()
        }
    };
    json.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let rep = &r.report;
        json.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"mode\": \"{}\", \"time_avg_err\": {}, \
             \"time_avg_err_max\": {}, \"final_err\": {}, \"launched\": {}, \"completed\": {}, \
             \"restarts\": {}, \"mean_divergence\": {}, \"final_period\": {}, \"messages\": {}, \
             \"bytes\": {}, \"fingerprint\": {}}}{}\n",
            r.scenario,
            r.mode,
            num(rep.time_avg_err),
            num(rep.time_avg_err_max),
            num(rep.final_err),
            rep.launched,
            rep.completed,
            rep.restarts,
            num(rep.mean_divergence),
            rep.final_period,
            rep.messages,
            rep.bytes,
            rep.fingerprint,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    json
}

fn find<'a>(results: &'a [StreamResult], scenario: &str, mode: &str) -> &'a StreamReport {
    &results
        .iter()
        .find(|r| r.scenario == scenario && r.mode == mode)
        .expect("matrix point present")
        .report
}

fn run_checks(results: &[StreamResult]) {
    let mut failures = Vec::new();
    for &scenario in SCENARIOS {
        let naive = find(results, scenario, "restart_naive");

        // Equal message budget: gossip piggybacks every active instance,
        // so the pipelined modes pay the identical message count.
        for mode in TrackerMode::ALL {
            let r = find(results, scenario, mode.label());
            if r.messages != naive.messages {
                failures.push(format!(
                    "{scenario}/{}: {} messages differ from the baseline's {} — the equal-budget \
                     premise is broken",
                    mode.label(),
                    r.messages,
                    naive.messages
                ));
            }
        }

        // The headline claim: the pipelined time-faded tracker beats the
        // naive restart-per-instance baseline on time-averaged tracking
        // error, at that equal message budget.
        let faded = find(results, scenario, "pipelined_fixed_fade");
        if faded.time_avg_err >= naive.time_avg_err {
            failures.push(format!(
                "{scenario}: pipelined+faded time_avg_err {:.4} does not beat naive {:.4}",
                faded.time_avg_err, naive.time_avg_err
            ));
        }
        if faded.bytes < naive.bytes {
            failures.push(format!(
                "{scenario}: pipelined run sent fewer bytes ({} < {}) — overlap never happened",
                faded.bytes, naive.bytes
            ));
        }
    }

    // The step change must trip the Spectra-style restart, and dropping
    // the poisoned pre-step history must not lose to the baseline.
    let restart = find(results, "step2000", "pipelined_adaptive_restart");
    if restart.restarts == 0 {
        failures.push("step2000: adaptive restart never fired on the step change".to_string());
    }
    let naive_step = find(results, "step2000", "restart_naive");
    if restart.time_avg_err >= naive_step.time_avg_err {
        failures.push(format!(
            "step2000: adaptive restart time_avg_err {:.4} does not beat naive {:.4}",
            restart.time_avg_err, naive_step.time_avg_err
        ));
    }

    // Sustained drift holds the adaptive launch period at/below the fixed
    // rate; it must never fall outside the controller's clamp band.
    let adaptive = find(results, "ramp30", "pipelined_adaptive_fade");
    if !(2..=40).contains(&adaptive.final_period) {
        failures.push(format!(
            "ramp30: adaptive final_period {} escaped the clamp band [2, 40]",
            adaptive.final_period
        ));
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("bench_stream check FAILED: {f}");
        }
        std::process::exit(1);
    }
}

/// Re-runs one adaptive matrix point at a different worker count and
/// requires the exact same per-round fingerprint.
fn run_determinism_check(s: &ExperimentSetup, args: &Args, effective_threads: usize) {
    let other = if effective_threads == 2 { 1 } else { 2 };
    let a = run_one(s, args, "ramp30", TrackerMode::PipelinedAdaptiveFade, 1);
    let b = run_one(s, args, "ramp30", TrackerMode::PipelinedAdaptiveFade, other);
    assert_eq!(
        a.report.fingerprint, b.report.fingerprint,
        "streaming pipeline not bit-identical (threads 1 vs {other})"
    );
    println!(
        "determinism OK: threads 1 == threads {other} (fingerprint {:016x})",
        a.report.fingerprint
    );
}

/// Boots a small daemon-mode cluster and requires every node to serve a
/// blended estimate from the daemon's periodic instances — the deploy-side
/// end of the streaming subsystem, exercised over real sockets.
fn run_daemon_check() {
    let n = 8;
    let values: Vec<AttrValue> = (0..n).map(|i| AttrValue::Single(i as f64)).collect();
    let config = ClusterConfig::try_new(NodeConfig {
        tick: Duration::from_millis(25),
        io_timeout: Duration::from_millis(15),
        retries: 2,
        queue_capacity: 4,
        view_size: 10,
        seed: 7,
    })
    .expect("valid node config")
    .with_daemon(DaemonConfig {
        launch_period_rounds: 8,
        instance_rounds: 16,
        thresholds: vec![2.0, 4.0, 6.0],
        half_life_rounds: 8.0,
        max_tracked: 4,
    })
    .expect("valid daemon config");
    let cluster = Cluster::launch(values, config).expect("daemon cluster launch");
    while cluster.current_round() <= 48 {
        std::thread::sleep(Duration::from_millis(10));
    }
    let estimates = cluster.collect_estimates(Duration::from_secs(5));
    let got: Vec<_> = estimates.iter().flatten().collect();
    assert!(
        got.len() >= n - 1,
        "only {}/{n} daemon nodes served a blended estimate",
        got.len()
    );
    for est in &got {
        assert!(
            est.instance >= DAEMON_INSTANCE_BASE,
            "estimate not from the daemon id space"
        );
        for pair in est.fractions.windows(2) {
            assert!(pair[0] <= pair[1] + 1e-9, "blended fractions not monotone");
        }
    }
    assert!(
        got.iter().any(|e| e.instance > DAEMON_INSTANCE_BASE),
        "no daemon node blended a second instance"
    );
    assert!(cluster.shutdown().clean, "daemon cluster shutdown unclean");
    println!(
        "daemon OK: {}/{n} nodes served blended estimates",
        got.len()
    );
}
