//! Per-node runtime counters.
//!
//! Every node thread (listener, clock, sender) increments lock-free atomics
//! here; the cluster driver samples them once per tick, diffs against the
//! previous sample, and feeds the deltas into `adam2-telemetry` round
//! snapshots. Peaks (in-flight exchanges, outbound queue depth) use
//! `fetch_max` so the driver reads the high-water mark since its last reset.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Shared counter block for one node. All methods are callable from any
/// thread; relaxed ordering is enough because readers only need eventually
/// consistent totals, not synchronisation edges.
#[derive(Debug, Default)]
pub struct NodeStats {
    frames_sent: AtomicU64,
    frames_received: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    malformed_frames: AtomicU64,
    frames_rejected_invalid: AtomicU64,
    shim_dropped: AtomicU64,
    exchanges_started: AtomicU64,
    exchanges_completed: AtomicU64,
    exchanges_aborted: AtomicU64,
    retransmissions: AtomicU64,
    backpressure_drops: AtomicU64,
    connections_accepted: AtomicU64,
    inflight: AtomicU64,
    inflight_peak: AtomicU64,
    queue_depth_peak: AtomicU64,
    latencies_us: Mutex<Vec<u64>>,
}

macro_rules! bump {
    ($($method:ident => $field:ident),+ $(,)?) => {
        $(
            #[doc = concat!("Increment `", stringify!($field), "` by one.")]
            pub fn $method(&self) {
                self.$field.fetch_add(1, Ordering::Relaxed);
            }
        )+
    };
}

impl NodeStats {
    bump! {
        record_malformed_frame => malformed_frames,
        record_invalid_frame => frames_rejected_invalid,
        record_shim_drop => shim_dropped,
        record_exchange_started => exchanges_started,
        record_exchange_completed => exchanges_completed,
        record_exchange_aborted => exchanges_aborted,
        record_retransmission => retransmissions,
        record_backpressure_drop => backpressure_drops,
        record_connection_accepted => connections_accepted,
    }

    /// Record one outbound frame of `bytes` length.
    pub fn record_frame_sent(&self, bytes: usize) {
        self.frames_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Record one inbound frame of `bytes` length.
    pub fn record_frame_received(&self, bytes: usize) {
        self.frames_received.fetch_add(1, Ordering::Relaxed);
        self.bytes_received
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Mark an exchange as entering flight; updates the concurrent peak.
    pub fn enter_flight(&self) {
        let now = self.inflight.fetch_add(1, Ordering::Relaxed) + 1;
        self.inflight_peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Mark an exchange as leaving flight (completed or aborted).
    pub fn leave_flight(&self) {
        self.inflight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Report the outbound queue depth observed after an enqueue.
    pub fn record_queue_depth(&self, depth: usize) {
        self.queue_depth_peak
            .fetch_max(depth as u64, Ordering::Relaxed);
    }

    /// Record one round-trip exchange latency in microseconds.
    pub fn record_latency_us(&self, us: u64) {
        self.latencies_us.lock().expect("latency lock").push(us);
    }

    /// Drain the latency samples accumulated since the last call.
    pub fn take_latencies(&self) -> Vec<u64> {
        std::mem::take(&mut *self.latencies_us.lock().expect("latency lock"))
    }

    /// Reset the peak gauges; the driver calls this after each sample so a
    /// peak describes one sampling interval, not the whole run.
    pub fn reset_peaks(&self) {
        let inflight_now = self.inflight.load(Ordering::Relaxed);
        self.inflight_peak.store(inflight_now, Ordering::Relaxed);
        self.queue_depth_peak.store(0, Ordering::Relaxed);
    }

    /// Copy every counter into a plain value.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            frames_received: self.frames_received.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            malformed_frames: self.malformed_frames.load(Ordering::Relaxed),
            frames_rejected_invalid: self.frames_rejected_invalid.load(Ordering::Relaxed),
            shim_dropped: self.shim_dropped.load(Ordering::Relaxed),
            exchanges_started: self.exchanges_started.load(Ordering::Relaxed),
            exchanges_completed: self.exchanges_completed.load(Ordering::Relaxed),
            exchanges_aborted: self.exchanges_aborted.load(Ordering::Relaxed),
            retransmissions: self.retransmissions.load(Ordering::Relaxed),
            backpressure_drops: self.backpressure_drops.load(Ordering::Relaxed),
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            inflight: self.inflight.load(Ordering::Relaxed),
            inflight_peak: self.inflight_peak.load(Ordering::Relaxed),
            queue_depth_peak: self.queue_depth_peak.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of a [`NodeStats`] block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub frames_sent: u64,
    pub frames_received: u64,
    pub bytes_sent: u64,
    pub bytes_received: u64,
    pub malformed_frames: u64,
    pub frames_rejected_invalid: u64,
    pub shim_dropped: u64,
    pub exchanges_started: u64,
    pub exchanges_completed: u64,
    pub exchanges_aborted: u64,
    pub retransmissions: u64,
    pub backpressure_drops: u64,
    pub connections_accepted: u64,
    pub inflight: u64,
    pub inflight_peak: u64,
    pub queue_depth_peak: u64,
}

impl StatsSnapshot {
    /// Per-field difference `self - earlier`, saturating at zero so a reset
    /// between samples cannot produce wrap-around garbage.
    pub fn delta(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            frames_sent: self.frames_sent.saturating_sub(earlier.frames_sent),
            frames_received: self.frames_received.saturating_sub(earlier.frames_received),
            bytes_sent: self.bytes_sent.saturating_sub(earlier.bytes_sent),
            bytes_received: self.bytes_received.saturating_sub(earlier.bytes_received),
            malformed_frames: self
                .malformed_frames
                .saturating_sub(earlier.malformed_frames),
            frames_rejected_invalid: self
                .frames_rejected_invalid
                .saturating_sub(earlier.frames_rejected_invalid),
            shim_dropped: self.shim_dropped.saturating_sub(earlier.shim_dropped),
            exchanges_started: self
                .exchanges_started
                .saturating_sub(earlier.exchanges_started),
            exchanges_completed: self
                .exchanges_completed
                .saturating_sub(earlier.exchanges_completed),
            exchanges_aborted: self
                .exchanges_aborted
                .saturating_sub(earlier.exchanges_aborted),
            retransmissions: self.retransmissions.saturating_sub(earlier.retransmissions),
            backpressure_drops: self
                .backpressure_drops
                .saturating_sub(earlier.backpressure_drops),
            connections_accepted: self
                .connections_accepted
                .saturating_sub(earlier.connections_accepted),
            // Gauges, not counters: carry the later value through.
            inflight: self.inflight,
            inflight_peak: self.inflight_peak,
            queue_depth_peak: self.queue_depth_peak,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counters_accumulate_across_threads() {
        let stats = Arc::new(NodeStats::default());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&stats);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.record_frame_sent(10);
                        s.record_frame_received(20);
                        s.record_exchange_started();
                        s.record_exchange_completed();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = stats.snapshot();
        assert_eq!(snap.frames_sent, 4000);
        assert_eq!(snap.bytes_sent, 40_000);
        assert_eq!(snap.frames_received, 4000);
        assert_eq!(snap.bytes_received, 80_000);
        assert_eq!(snap.exchanges_started, 4000);
        assert_eq!(snap.exchanges_completed, 4000);
    }

    #[test]
    fn flight_tracking_records_the_peak() {
        let stats = NodeStats::default();
        stats.enter_flight();
        stats.enter_flight();
        stats.enter_flight();
        stats.leave_flight();
        let snap = stats.snapshot();
        assert_eq!(snap.inflight, 2);
        assert_eq!(snap.inflight_peak, 3);

        stats.reset_peaks();
        let snap = stats.snapshot();
        assert_eq!(snap.inflight_peak, 2, "peak resets to the current level");
    }

    #[test]
    fn deltas_subtract_counters_but_carry_gauges() {
        let stats = NodeStats::default();
        stats.record_frame_sent(100);
        let first = stats.snapshot();
        stats.record_frame_sent(50);
        stats.record_queue_depth(7);
        let second = stats.snapshot();
        let delta = second.delta(&first);
        assert_eq!(delta.frames_sent, 1);
        assert_eq!(delta.bytes_sent, 50);
        assert_eq!(delta.queue_depth_peak, 7);
    }

    #[test]
    fn latencies_drain_once() {
        let stats = NodeStats::default();
        stats.record_latency_us(120);
        stats.record_latency_us(250);
        assert_eq!(stats.take_latencies(), vec![120, 250]);
        assert!(stats.take_latencies().is_empty());
    }
}
