//! Length-prefixed frame protocol spoken on the loopback sockets.
//!
//! Every frame is `u32 length (LE) + u8 kind + body`; the length covers
//! the kind byte and the body and is capped at [`MAX_FRAME`] so a garbage
//! length prefix can never trigger an unbounded read or allocation. Gossip
//! payloads are the exact [`GossipMessage`] bytes from `adam2_core::wire`
//! — the format the simulator charges per exchange — so the deploy runtime
//! and the simulator account identical bytes for identical state.
//!
//! All nodes live on 127.0.0.1, so peers are identified by their u16
//! listener port throughout.

use std::io::{self, Read, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use adam2_core::wire::GossipMessage;
use adam2_core::{DistributionEstimate, WireError};

/// Hard cap on the encoded size of one frame (kind byte + body).
pub const MAX_FRAME: usize = 1 << 20;

const KIND_REQUEST: u8 = 1;
const KIND_RESPONSE: u8 = 2;
const KIND_JOIN: u8 = 3;
const KIND_JOIN_ACK: u8 = 4;
const KIND_START_INSTANCE: u8 = 5;
const KIND_GET_ESTIMATE: u8 = 6;
const KIND_ESTIMATE: u8 = 7;
const KIND_ACK: u8 = 8;

/// Why an incoming frame was rejected. The runtime counts these and drops
/// the connection — a malformed frame must never panic a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversized(usize),
    /// The kind byte is not part of the protocol.
    UnknownKind(u8),
    /// The body ended before its declared contents.
    Truncated,
    /// The embedded gossip payload failed to decode.
    Wire(WireError),
    /// The gossip payload decoded structurally but carries values no
    /// honest node can emit (non-finite floats, out-of-range weight or
    /// fractions). Rejecting them at the wire keeps a poisoned peer from
    /// ever reaching the merge path.
    InvalidValues(&'static str),
}

impl From<WireError> for FrameError {
    fn from(e: WireError) -> Self {
        FrameError::Wire(e)
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized(len) => write!(f, "frame length {len} exceeds {MAX_FRAME}"),
            FrameError::UnknownKind(kind) => write!(f, "unknown frame kind {kind}"),
            FrameError::Truncated => write!(f, "truncated frame body"),
            FrameError::Wire(e) => write!(f, "bad gossip payload: {e:?}"),
            FrameError::InvalidValues(what) => write!(f, "implausible gossip payload: {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// A node's distribution estimate as sent over the control socket —
/// everything the bench harness needs to rebuild the interpolated CDF and
/// score it against ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateWire {
    /// Instance that produced the estimate.
    pub instance: u64,
    /// Round (deploy gossip clock) at which it completed.
    pub completed_round: u64,
    /// System-size estimate (`NaN` encodes "no weight received").
    pub n_hat: Option<f64>,
    /// Converged global minimum.
    pub min: f64,
    /// Converged global maximum.
    pub max: f64,
    /// Interpolation thresholds.
    pub thresholds: Vec<f64>,
    /// Aggregated fractions at the thresholds.
    pub fractions: Vec<f64>,
}

impl From<&DistributionEstimate> for EstimateWire {
    fn from(est: &DistributionEstimate) -> Self {
        Self {
            instance: est.instance.as_u64(),
            completed_round: est.completed_round,
            n_hat: est.n_hat,
            min: est.min,
            max: est.max,
            thresholds: est.thresholds.clone(),
            fractions: est.fractions.clone(),
        }
    }
}

/// One frame of the deploy protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Push half of an exchange: the initiator's gossip state plus the
    /// port its own listener answers on (so the responder can extend its
    /// view).
    Request {
        /// Initiator's listener port.
        sender_port: u16,
        /// Initiator's instance state snapshot.
        msg: GossipMessage,
    },
    /// Pull half of an exchange: the responder's pre-merge state plus a
    /// peer-sampling digest of its view.
    Response {
        /// Sample of the responder's view (its own port included).
        peers: Vec<u16>,
        /// Responder's pre-merge instance state.
        msg: GossipMessage,
    },
    /// Bootstrap: a starting node introduces itself to the seed node.
    Join {
        /// Joiner's listener port.
        port: u16,
    },
    /// Bootstrap reply: ports the joiner should seed its view with.
    JoinAck {
        /// Current member sample.
        peers: Vec<u16>,
    },
    /// Control: instructs the receiving node to begin the carried instance
    /// as initiator (the harness injects the instance this way).
    StartInstance {
        /// Exactly one instance payload describing the new instance.
        msg: GossipMessage,
    },
    /// Control: asks for the node's current distribution estimate.
    GetEstimate,
    /// Control reply: the estimate, if any instance completed yet.
    Estimate(Option<EstimateWire>),
    /// Generic acknowledgement for control frames.
    Ack,
}

fn put_ports(buf: &mut BytesMut, ports: &[u16]) {
    buf.put_u16_le(ports.len() as u16);
    for p in ports {
        buf.put_u16_le(*p);
    }
}

fn get_ports(buf: &mut Bytes) -> Result<Vec<u16>, FrameError> {
    if buf.remaining() < 2 {
        return Err(FrameError::Truncated);
    }
    let n = buf.get_u16_le() as usize;
    if buf.remaining() < n * 2 {
        return Err(FrameError::Truncated);
    }
    Ok((0..n).map(|_| buf.get_u16_le()).collect())
}

fn put_f64_vec(buf: &mut BytesMut, values: &[f64]) {
    buf.put_u16_le(values.len() as u16);
    for v in values {
        buf.put_f64_le(*v);
    }
}

fn get_f64_vec(buf: &mut Bytes) -> Result<Vec<f64>, FrameError> {
    if buf.remaining() < 2 {
        return Err(FrameError::Truncated);
    }
    let n = buf.get_u16_le() as usize;
    if buf.remaining() < n * 8 {
        return Err(FrameError::Truncated);
    }
    Ok((0..n).map(|_| buf.get_f64_le()).collect())
}

/// Screens a decoded gossip payload for values no honest node can emit.
/// Honest weights start at 1 (initiator) or 0 (join) and only ever
/// average, so they stay in `[0, 1]`; indicator fractions likewise, except
/// multi-value instances whose per-node counts may exceed 1. Everything
/// else must simply be finite. `Estimate` control frames are exempt —
/// their `NaN` `n_hat` legally encodes "no weight received".
fn validate_msg(msg: &GossipMessage) -> Result<(), FrameError> {
    for inst in &msg.instances {
        let floats = inst
            .thresholds
            .iter()
            .chain(inst.verify_thresholds.iter())
            .chain(inst.fractions.iter())
            .chain(inst.verify_fractions.iter())
            .chain([&inst.weight, &inst.count, &inst.min, &inst.max]);
        for v in floats {
            if !v.is_finite() {
                return Err(FrameError::InvalidValues("non-finite value"));
            }
        }
        if !(0.0..=1.0).contains(&inst.weight) {
            return Err(FrameError::InvalidValues("weight outside [0, 1]"));
        }
        if inst.count < 0.0 {
            return Err(FrameError::InvalidValues("negative count"));
        }
        let fractions = inst.fractions.iter().chain(inst.verify_fractions.iter());
        for f in fractions {
            if *f < 0.0 {
                return Err(FrameError::InvalidValues("negative fraction"));
            }
            if !inst.multi && *f > 1.0 {
                return Err(FrameError::InvalidValues("fraction above 1"));
            }
        }
    }
    Ok(())
}

impl Frame {
    fn kind(&self) -> u8 {
        match self {
            Frame::Request { .. } => KIND_REQUEST,
            Frame::Response { .. } => KIND_RESPONSE,
            Frame::Join { .. } => KIND_JOIN,
            Frame::JoinAck { .. } => KIND_JOIN_ACK,
            Frame::StartInstance { .. } => KIND_START_INSTANCE,
            Frame::GetEstimate => KIND_GET_ESTIMATE,
            Frame::Estimate(_) => KIND_ESTIMATE,
            Frame::Ack => KIND_ACK,
        }
    }

    /// Encodes the frame, length prefix included.
    pub fn encode(&self) -> Bytes {
        let mut body = BytesMut::new();
        body.put_u8(self.kind());
        match self {
            Frame::Request { sender_port, msg } => {
                body.put_u16_le(*sender_port);
                body.put_slice(msg.encode().as_slice());
            }
            Frame::Response { peers, msg } => {
                put_ports(&mut body, peers);
                body.put_slice(msg.encode().as_slice());
            }
            Frame::Join { port } => body.put_u16_le(*port),
            Frame::JoinAck { peers } => put_ports(&mut body, peers),
            Frame::StartInstance { msg } => body.put_slice(msg.encode().as_slice()),
            Frame::GetEstimate | Frame::Ack => {}
            Frame::Estimate(est) => match est {
                None => body.put_u8(0),
                Some(e) => {
                    body.put_u8(1);
                    body.put_u64_le(e.instance);
                    body.put_u64_le(e.completed_round);
                    body.put_f64_le(e.n_hat.unwrap_or(f64::NAN));
                    body.put_f64_le(e.min);
                    body.put_f64_le(e.max);
                    put_f64_vec(&mut body, &e.thresholds);
                    put_f64_vec(&mut body, &e.fractions);
                }
            },
        }
        assert!(body.len() <= MAX_FRAME, "frame exceeds MAX_FRAME");
        let body = body.freeze();
        let mut framed = BytesMut::with_capacity(4 + body.len());
        framed.put_u32_le(body.len() as u32);
        framed.put_slice(body.as_slice());
        framed.freeze()
    }

    /// Decodes a frame body (kind byte + payload, length prefix already
    /// stripped and validated against [`MAX_FRAME`]).
    pub fn decode(mut body: Bytes) -> Result<Self, FrameError> {
        if body.remaining() < 1 {
            return Err(FrameError::Truncated);
        }
        let kind = body.get_u8();
        match kind {
            KIND_REQUEST => {
                if body.remaining() < 2 {
                    return Err(FrameError::Truncated);
                }
                let sender_port = body.get_u16_le();
                let msg = GossipMessage::decode(body)?;
                validate_msg(&msg)?;
                Ok(Frame::Request { sender_port, msg })
            }
            KIND_RESPONSE => {
                let peers = get_ports(&mut body)?;
                let msg = GossipMessage::decode(body)?;
                validate_msg(&msg)?;
                Ok(Frame::Response { peers, msg })
            }
            KIND_JOIN => {
                if body.remaining() < 2 {
                    return Err(FrameError::Truncated);
                }
                Ok(Frame::Join {
                    port: body.get_u16_le(),
                })
            }
            KIND_JOIN_ACK => Ok(Frame::JoinAck {
                peers: get_ports(&mut body)?,
            }),
            KIND_START_INSTANCE => {
                let msg = GossipMessage::decode(body)?;
                validate_msg(&msg)?;
                Ok(Frame::StartInstance { msg })
            }
            KIND_GET_ESTIMATE => Ok(Frame::GetEstimate),
            KIND_ESTIMATE => {
                if body.remaining() < 1 {
                    return Err(FrameError::Truncated);
                }
                if body.get_u8() == 0 {
                    return Ok(Frame::Estimate(None));
                }
                if body.remaining() < 8 * 5 {
                    return Err(FrameError::Truncated);
                }
                let instance = body.get_u64_le();
                let completed_round = body.get_u64_le();
                let n_hat = body.get_f64_le();
                let min = body.get_f64_le();
                let max = body.get_f64_le();
                let thresholds = get_f64_vec(&mut body)?;
                let fractions = get_f64_vec(&mut body)?;
                Ok(Frame::Estimate(Some(EstimateWire {
                    instance,
                    completed_round,
                    n_hat: if n_hat.is_nan() { None } else { Some(n_hat) },
                    min,
                    max,
                    thresholds,
                    fractions,
                })))
            }
            KIND_ACK => Ok(Frame::Ack),
            other => Err(FrameError::UnknownKind(other)),
        }
    }
}

/// Reads one frame. The outer `io::Result` carries socket-level failures
/// (timeout, reset, EOF mid-frame); the inner result reports protocol
/// violations the caller should count as malformed and answer by dropping
/// the connection.
pub fn read_frame(stream: &mut impl Read) -> io::Result<Result<Frame, FrameError>> {
    read_frame_counted(stream).map(|(_, frame)| frame)
}

/// Like [`read_frame`], additionally reporting the total bytes consumed
/// (length prefix included) so callers can meter traffic.
pub fn read_frame_counted(
    stream: &mut impl Read,
) -> io::Result<(usize, Result<Frame, FrameError>)> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        // Don't try to drain an adversarial length; the caller closes the
        // connection.
        return Ok((4, Err(FrameError::Oversized(len))));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    Ok((4 + len, Frame::decode(Bytes::from(body))))
}

/// Writes one frame (length prefix included). Returns the bytes written.
pub fn write_frame(stream: &mut impl Write, frame: &Frame) -> io::Result<usize> {
    let bytes = frame.encode();
    stream.write_all(bytes.as_slice())?;
    stream.flush()?;
    Ok(bytes.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use adam2_core::wire::InstancePayload;
    use adam2_core::{AttrValue, InstanceId, InstanceLocal, InstanceMeta};

    fn sample_msg() -> GossipMessage {
        let meta = Arc::new(InstanceMeta {
            id: InstanceId::from_u64(99),
            thresholds: vec![1.0, 2.0].into(),
            verify_thresholds: vec![1.5].into(),
            start_round: 0,
            end_round: 30,
            multi: false,
        });
        let local = InstanceLocal::join(meta, &AttrValue::Single(1.25), true);
        let mut msg = GossipMessage {
            seq: 77,
            instances: vec![InstancePayload::from(&local)],
        };
        msg.seq = 77;
        msg
    }

    fn roundtrip(frame: Frame) -> Frame {
        let encoded = frame.encode();
        let len = u32::from_le_bytes(encoded.as_slice()[..4].try_into().unwrap()) as usize;
        assert_eq!(len + 4, encoded.len());
        Frame::decode(encoded.slice(4..)).expect("roundtrip decode")
    }

    #[test]
    fn every_variant_roundtrips() {
        let frames = vec![
            Frame::Request {
                sender_port: 4501,
                msg: sample_msg(),
            },
            Frame::Response {
                peers: vec![4501, 4502, 4503],
                msg: sample_msg(),
            },
            Frame::Join { port: 9999 },
            Frame::JoinAck {
                peers: vec![1, 2, 3, 4],
            },
            Frame::StartInstance { msg: sample_msg() },
            Frame::GetEstimate,
            Frame::Estimate(None),
            Frame::Estimate(Some(EstimateWire {
                instance: 99,
                completed_round: 30,
                n_hat: Some(64.0),
                min: 0.5,
                max: 9.5,
                thresholds: vec![1.0, 2.0, 3.0],
                fractions: vec![0.1, 0.6, 0.9],
            })),
            Frame::Estimate(Some(EstimateWire {
                instance: 1,
                completed_round: 2,
                n_hat: None, // NaN-encoded on the wire
                min: 0.0,
                max: 1.0,
                thresholds: vec![],
                fractions: vec![],
            })),
            Frame::Ack,
        ];
        for frame in frames {
            assert_eq!(roundtrip(frame.clone()), frame);
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_reading() {
        let mut raw = Vec::new();
        raw.extend_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
        raw.extend_from_slice(&[0u8; 16]);
        let mut cursor = std::io::Cursor::new(raw);
        let err = read_frame(&mut cursor).unwrap().unwrap_err();
        assert!(matches!(err, FrameError::Oversized(_)));
    }

    #[test]
    fn unknown_kind_and_truncations_are_errors_not_panics() {
        assert!(matches!(
            Frame::decode(Bytes::from(vec![200u8])),
            Err(FrameError::UnknownKind(200))
        ));
        assert!(matches!(
            Frame::decode(Bytes::new()),
            Err(FrameError::Truncated)
        ));
        // Truncate a valid frame body at every length.
        let full = Frame::Request {
            sender_port: 1,
            msg: sample_msg(),
        }
        .encode();
        for cut in 4..full.len() - 1 {
            assert!(
                Frame::decode(full.slice(4..cut)).is_err(),
                "cut at {cut} decoded"
            );
        }
    }

    #[test]
    fn garbage_bodies_never_panic() {
        let mut state = 0x1234_5678_9abc_def0u64;
        for len in 0..256 {
            let body: Vec<u8> = (0..len)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (state >> 56) as u8
                })
                .collect();
            let _ = Frame::decode(Bytes::from(body));
        }
    }

    /// Encodes a request whose payload was mutated by `poison` and decodes
    /// it back.
    fn poisoned_roundtrip(
        poison: impl FnOnce(&mut adam2_core::wire::InstancePayload),
    ) -> Result<Frame, FrameError> {
        let mut msg = sample_msg();
        poison(&mut msg.instances[0]);
        let encoded = Frame::Request {
            sender_port: 7,
            msg,
        }
        .encode();
        Frame::decode(encoded.slice(4..))
    }

    type PayloadCorruption = Box<dyn FnOnce(&mut InstancePayload)>;

    #[test]
    fn poisoned_payload_values_are_rejected_at_decode() {
        let cases: Vec<(&str, PayloadCorruption)> = vec![
            ("nan fraction", Box::new(|p| p.fractions[0] = f64::NAN)),
            ("inf fraction", Box::new(|p| p.fractions[0] = f64::INFINITY)),
            ("nan weight", Box::new(|p| p.weight = f64::NAN)),
            ("inflated weight", Box::new(|p| p.weight = 1e6)),
            ("negative weight", Box::new(|p| p.weight = -0.25)),
            ("negative fraction", Box::new(|p| p.fractions[0] = -0.5)),
            ("fraction above 1", Box::new(|p| p.fractions[0] = 40.0)),
            ("nan verify", Box::new(|p| p.verify_fractions[0] = f64::NAN)),
            ("nan min", Box::new(|p| p.min = f64::NAN)),
            ("inf max", Box::new(|p| p.max = f64::NEG_INFINITY)),
            ("negative count", Box::new(|p| p.count = -3.0)),
        ];
        for (label, poison) in cases {
            let got = poisoned_roundtrip(poison);
            assert!(
                matches!(got, Err(FrameError::InvalidValues(_))),
                "{label}: decoded as {got:?}"
            );
        }
        // The untouched message still passes.
        assert!(poisoned_roundtrip(|_| {}).is_ok());
    }

    #[test]
    fn multi_instance_fractions_may_exceed_one() {
        // Multi-value instances average per-node *counts*, so fractions
        // above 1 are honest there — only non-finite and negative values
        // are implausible.
        let got = poisoned_roundtrip(|p| {
            p.multi = true;
            p.fractions[0] = 7.5;
        });
        assert!(got.is_ok(), "multi count rejected: {got:?}");
        let got = poisoned_roundtrip(|p| {
            p.multi = true;
            p.fractions[0] = f64::INFINITY;
        });
        assert!(matches!(got, Err(FrameError::InvalidValues(_))));
    }

    #[test]
    fn fuzzed_poisoned_floats_never_pass_validation() {
        // Sweep a poisoned f64 through every float field via raw bit
        // patterns: whatever decodes must be Ok only when the value is
        // plausible, and must never panic.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..512 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let v = f64::from_bits(state);
            let field = (state >> 60) % 4;
            let got = poisoned_roundtrip(|p| match field {
                0 => p.fractions[0] = v,
                1 => p.weight = v,
                2 => p.min = v,
                _ => p.verify_fractions[0] = v,
            });
            if let Ok(Frame::Request { msg, .. }) = &got {
                let p = &msg.instances[0];
                let all_finite = p.fractions.iter().all(|f| f.is_finite())
                    && p.verify_fractions.iter().all(|f| f.is_finite())
                    && p.weight.is_finite()
                    && p.min.is_finite();
                assert!(all_finite, "non-finite value passed validation");
                assert!((0.0..=1.0).contains(&p.weight));
            }
        }
    }

    #[test]
    fn frames_stream_back_to_back() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::Join { port: 7 }).unwrap();
        write_frame(&mut buf, &Frame::GetEstimate).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cursor).unwrap().unwrap(),
            Frame::Join { port: 7 }
        );
        assert_eq!(
            read_frame(&mut cursor).unwrap().unwrap(),
            Frame::GetEstimate
        );
    }
}
