//! The reactor backend: a small pool of event-loop threads multiplexing
//! every node of a cluster over nonblocking sockets.
//!
//! The thread-per-node backend burns three OS threads per node, capping
//! deployed clusters around 10² nodes. Here the cluster's nodes are
//! partitioned into contiguous *shards*, one reactor thread per shard, and
//! each thread owns everything its nodes do with the network:
//!
//! - **accept sweeps** — the per-node listeners stay nonblocking; the
//!   reactor sweeps them at a rate-limited interval (scaled to the shard's
//!   node count), letting the kernel's listen backlog buffer connections
//!   between sweeps. No `epoll` is needed — with loopback sockets and
//!   round lengths in the tens of milliseconds and up, bounded-latency
//!   polling over nonblocking fds is enough, and it keeps the crate free
//!   of platform dependencies.
//! - **a deadline timer wheel** — the sim crate's [`TimerWheel`] (shards =
//!   1, millisecond ticks against the cluster epoch) drives node round
//!   ticks, per-attempt I/O deadlines, and shim-induced retry delays.
//!   Node ticks are phase-staggered by a hash of the listener port so ten
//!   thousand nodes don't connect in the same millisecond. Stale timers
//!   are invalidated by a generation counter on the exchange slab rather
//!   than cancelled in the wheel.
//! - **per-connection state machines** — inbound connections run
//!   read-frame → [`NodeShared::respond_frame`] → write-reply → close;
//!   outbound exchanges run the same attempt loop as the threaded sender
//!   (shim draws, bounded retries, same-seq retransmission) as an
//!   incremental connect/write/read machine with wheel deadlines instead
//!   of blocking socket timeouts.
//! - **outbound budgets** — the threaded backend's bounded-queue
//!   backpressure survives as a per-node budget: at most `queue_capacity`
//!   exchanges may be live per node, and a round whose exchange would
//!   exceed it is shed and counted, exactly like a full queue.
//!
//! Protocol state stays in the backend-neutral [`NodeShared`], so the
//! frames on the wire — and the seq-cache/retransmission contract — are
//! identical to the threaded backend's, which is what makes mixed-backend
//! clusters work.

use std::io::{self, Read as _, Write as _};
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use adam2_core::runtime::PendingExchange;
use adam2_sim::TimerWheel;
use bytes::Bytes;

use crate::frame::{Frame, FrameError, MAX_FRAME};
use crate::node::NodeShared;
use crate::shim::Direction;

/// Upper bound on connections accepted from one listener per sweep, so a
/// hot node cannot starve the rest of the shard.
const ACCEPTS_PER_SWEEP: usize = 64;

/// A pool of reactor threads running a set of nodes. Internal to the
/// crate — selected through [`crate::RuntimeKind::Reactor`].
pub(crate) struct ReactorPool {
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl ReactorPool {
    /// Splits `nodes` into `threads` contiguous shards and spawns one
    /// reactor thread per (non-empty) shard.
    pub(crate) fn launch(
        nodes: Vec<(Arc<NodeShared>, TcpListener)>,
        threads: usize,
        epoch: Instant,
    ) -> Self {
        let shutdown = Arc::new(AtomicBool::new(false));
        let threads = threads.max(1).min(nodes.len().max(1));
        let per_shard = nodes.len().div_ceil(threads.max(1)).max(1);
        let mut handles = Vec::new();
        let mut nodes = nodes;
        let mut shard_idx = 0usize;
        while !nodes.is_empty() {
            let rest = nodes.split_off(per_shard.min(nodes.len()));
            let shard_nodes = std::mem::replace(&mut nodes, rest);
            let flag = Arc::clone(&shutdown);
            let handle = std::thread::Builder::new()
                .name(format!("adam2-reactor-{shard_idx}"))
                .spawn(move || ShardRuntime::new(shard_nodes, epoch, flag).run())
                .expect("spawn reactor thread");
            handles.push(handle);
            shard_idx += 1;
        }
        Self {
            shutdown,
            threads: handles,
        }
    }

    /// Signals every reactor thread to stop and joins them. Returns `true`
    /// when all threads exited cleanly (none panicked).
    pub(crate) fn shutdown(mut self) -> bool {
        self.shutdown.store(true, Ordering::Relaxed);
        let mut clean = true;
        for handle in self.threads.drain(..) {
            clean &= handle.join().is_ok();
        }
        clean
    }
}

/// Timers multiplexed through the shard's wheel. Exchange timers carry the
/// generation stamped when they were scheduled; a mismatch on firing means
/// the attempt (or the whole exchange) they guarded is already over.
enum Timer {
    /// A node's next round boundary (phase-staggered).
    NodeTick { node: usize },
    /// Outbound attempt deadline: the peer did not answer in time.
    Deadline { conn: usize, gen: u64 },
    /// Delayed attempt start (shim request-drop burn, shim extra delay).
    Retry { conn: usize, gen: u64 },
}

/// Outcome of one poll pass over an outbound connection, computed while
/// the slab entry is borrowed and acted on once the borrow ends.
enum OutboundStep {
    /// Nothing to do (no entry, waiting, or the socket would block).
    Idle,
    /// The current attempt failed; move to the next one.
    Fail,
    /// A gossip response arrived.
    Complete {
        node: usize,
        bytes: usize,
        peers: Vec<u16>,
        msg: adam2_core::wire::GossipMessage,
    },
}

/// Result of polling a nonblocking frame read.
enum ReadPoll {
    /// No complete frame yet; the socket would block.
    Pending,
    /// A full length-prefixed frame arrived: total bytes consumed plus the
    /// decode result.
    Frame(usize, Result<Frame, FrameError>),
    /// EOF or socket error mid-frame.
    Closed,
}

/// Incremental reader for one `u32 length (LE) + body` frame.
struct FrameReader {
    header: [u8; 4],
    header_got: usize,
    body: Vec<u8>,
    body_got: usize,
}

impl FrameReader {
    fn new() -> Self {
        Self {
            header: [0; 4],
            header_got: 0,
            body: Vec::new(),
            body_got: 0,
        }
    }

    fn poll(&mut self, stream: &mut TcpStream) -> ReadPoll {
        loop {
            if self.header_got < 4 {
                match stream.read(&mut self.header[self.header_got..]) {
                    Ok(0) => return ReadPoll::Closed,
                    Ok(n) => {
                        self.header_got += n;
                        if self.header_got == 4 {
                            let len = u32::from_le_bytes(self.header) as usize;
                            if len > MAX_FRAME {
                                // Same contract as `read_frame_counted`:
                                // never allocate for an adversarial prefix.
                                return ReadPoll::Frame(4, Err(FrameError::Oversized(len)));
                            }
                            self.body = vec![0u8; len];
                            self.body_got = 0;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return ReadPoll::Pending,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => return ReadPoll::Closed,
                }
            } else if self.body_got < self.body.len() {
                let got = self.body_got;
                match stream.read(&mut self.body[got..]) {
                    Ok(0) => return ReadPoll::Closed,
                    Ok(n) => self.body_got += n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return ReadPoll::Pending,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => return ReadPoll::Closed,
                }
            } else {
                let body = std::mem::take(&mut self.body);
                let total = 4 + body.len();
                return ReadPoll::Frame(total, Frame::decode(Bytes::from(body)));
            }
        }
    }
}

enum WritePoll {
    Pending,
    /// The whole frame went out; carries its length for traffic metering.
    Done(usize),
    Closed,
}

/// Incremental writer for one encoded frame.
struct FrameWriter {
    buf: Bytes,
    off: usize,
}

impl FrameWriter {
    fn new(buf: Bytes) -> Self {
        Self { buf, off: 0 }
    }

    fn poll(&mut self, stream: &mut TcpStream) -> WritePoll {
        while self.off < self.buf.len() {
            match stream.write(&self.buf.as_slice()[self.off..]) {
                Ok(0) => return WritePoll::Closed,
                Ok(n) => self.off += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return WritePoll::Pending,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return WritePoll::Closed,
            }
        }
        WritePoll::Done(self.buf.len())
    }
}

/// One accepted connection being served: read a frame, answer it, close.
struct Inbound {
    node: usize,
    stream: TcpStream,
    reader: FrameReader,
    writer: Option<FrameWriter>,
    expires: Instant,
}

/// State of one initiated exchange between attempts and within one.
enum OutboundState {
    /// Waiting for a `Retry` timer before the next attempt.
    Waiting,
    /// An attempt is on the wire.
    Active {
        stream: TcpStream,
        writer: Option<FrameWriter>,
        reader: FrameReader,
    },
}

/// One outbound exchange occupying a slot of its node's budget.
struct Outbound {
    node: usize,
    peer: u16,
    round: u64,
    pending: PendingExchange,
    /// The encoded request — identical bytes every attempt (same seq), so
    /// the responder's cache replays rather than re-merging.
    request: Bytes,
    started: Instant,
    /// Bumped whenever the attempt state changes; timers carrying an older
    /// generation are stale and ignored.
    gen: u64,
    state: OutboundState,
}

/// All runtime state of one reactor thread.
struct ShardRuntime {
    nodes: Vec<(Arc<NodeShared>, TcpListener)>,
    shutdown: Arc<AtomicBool>,
    epoch: Instant,
    wheel: TimerWheel<Timer>,
    slab: Vec<Option<Outbound>>,
    free: Vec<usize>,
    inbound: Vec<Inbound>,
    /// Live exchanges per node — the outbound budget.
    active: Vec<u32>,
    last_round: Vec<Option<u64>>,
    tick_ms: u64,
    io_ms: u64,
    connect_timeout: Duration,
    inbound_idle: Duration,
    sweep_every: Duration,
    poll_every: Duration,
}

impl ShardRuntime {
    fn new(
        nodes: Vec<(Arc<NodeShared>, TcpListener)>,
        epoch: Instant,
        shutdown: Arc<AtomicBool>,
    ) -> Self {
        let config = nodes[0].0.config().clone();
        let tick_ms = (config.tick.as_millis() as u64).max(1);
        let io_ms = (config.io_timeout.as_millis() as u64).max(1);
        let n = nodes.len() as u64;
        // Sweeping n listeners costs ~n nonblocking syscalls, so the sweep
        // interval grows with the shard: ~40 listeners per millisecond of
        // interval, floored at 5 ms and capped at a quarter second (the
        // kernel backlog buffers arrivals in between).
        let sweep_every = Duration::from_millis((n / 40).clamp(5, 250));
        // Same reasoning for per-connection polls, at a finer grain.
        let poll_every = Duration::from_millis((n / 1000).clamp(1, 10));
        let active = vec![0; nodes.len()];
        let last_round = vec![None; nodes.len()];
        Self {
            nodes,
            shutdown,
            epoch,
            wheel: TimerWheel::new(4 * tick_ms, 1),
            slab: Vec::new(),
            free: Vec::new(),
            inbound: Vec::new(),
            active,
            last_round,
            tick_ms,
            io_ms,
            connect_timeout: config.io_timeout.min(Duration::from_millis(5)),
            inbound_idle: (config.io_timeout * 4).max(Duration::from_millis(500)),
            sweep_every,
            poll_every,
        }
    }

    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Phase offset of a node's round tick within the tick period, keyed
    /// by its port so the stagger is stable and spread.
    fn tick_offset(&self, node: usize) -> u64 {
        let port = u64::from(self.nodes[node].0.port());
        (port.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) % self.tick_ms
    }

    fn run(mut self) {
        let now = self.now_ms();
        for node in 0..self.nodes.len() {
            let offset = self.tick_offset(node);
            self.wheel.push(now + offset, 0, Timer::NodeTick { node });
        }
        let mut last_sweep = Instant::now() - self.sweep_every;
        while !self.shutdown.load(Ordering::Relaxed) {
            let now = self.now_ms();
            while let Some((_, _, timer)) = self.wheel.pop_at_or_before(now) {
                self.handle_timer(timer);
            }
            if last_sweep.elapsed() >= self.sweep_every {
                last_sweep = Instant::now();
                self.sweep_accepts();
            }
            self.poll_inbound();
            self.poll_outbound();
            std::thread::sleep(self.poll_every);
        }
    }

    fn handle_timer(&mut self, timer: Timer) {
        match timer {
            Timer::NodeTick { node } => self.on_node_tick(node),
            Timer::Deadline { conn, gen } => {
                let stale = match self.slab.get(conn).and_then(Option::as_ref) {
                    Some(ob) => ob.gen != gen || !matches!(ob.state, OutboundState::Active { .. }),
                    None => true,
                };
                if !stale {
                    // The peer never answered within io_timeout: burn this
                    // attempt, move to the next.
                    self.start_attempt(conn);
                }
            }
            Timer::Retry { conn, gen } => {
                let stale = match self.slab.get(conn).and_then(Option::as_ref) {
                    Some(ob) => ob.gen != gen || !matches!(ob.state, OutboundState::Waiting),
                    None => true,
                };
                if !stale {
                    self.start_attempt(conn);
                }
            }
        }
    }

    // -----------------------------------------------------------------------
    // Round ticks
    // -----------------------------------------------------------------------

    fn on_node_tick(&mut self, node: usize) {
        let shared = Arc::clone(&self.nodes[node].0);
        let round = shared.current_round();
        if self.last_round[node] != Some(round) {
            self.last_round[node] = Some(round);
            if let Some(peer) = shared.plan_round(round) {
                let capacity = shared.config().queue_capacity as u32;
                if self.active[node] >= capacity {
                    // Budget exhausted: same backpressure shedding as the
                    // threaded backend's full queue.
                    shared.stats.record_backpressure_drop();
                } else {
                    self.start_exchange(node, peer, round);
                }
            }
        }
        let next = ((round + 1) * self.tick_ms + self.tick_offset(node)).max(self.now_ms() + 1);
        self.wheel.push(next, 0, Timer::NodeTick { node });
    }

    // -----------------------------------------------------------------------
    // Outbound exchange state machine
    // -----------------------------------------------------------------------

    fn start_exchange(&mut self, node: usize, peer: u16, round: u64) {
        let shared = &self.nodes[node].0;
        let pending = shared.begin_exchange(round);
        let request = Frame::Request {
            sender_port: shared.port(),
            msg: pending.sent.clone(),
        }
        .encode();
        shared.stats.record_exchange_started();
        shared.stats.enter_flight();
        self.active[node] += 1;
        shared.stats.record_queue_depth(self.active[node] as usize);
        let delay_ticks = shared.shim().extra_delay_ticks(round);
        let outbound = Outbound {
            node,
            peer,
            round,
            pending,
            request,
            started: Instant::now(),
            gen: 0,
            state: OutboundState::Waiting,
        };
        let conn = match self.free.pop() {
            Some(idx) => {
                self.slab[idx] = Some(outbound);
                idx
            }
            None => {
                self.slab.push(Some(outbound));
                self.slab.len() - 1
            }
        };
        if delay_ticks > 0 {
            // The shim's extra latency, expressed the same way the
            // threaded sender sleeps: up to 2 ms per delay tick.
            let delay = self.tick_ms.min(2) * delay_ticks;
            self.wheel.push(
                self.now_ms() + delay.max(1),
                0,
                Timer::Retry { conn, gen: 0 },
            );
        } else {
            self.start_attempt(conn);
        }
    }

    /// Drives the attempt loop forward: draws shim loss, connects, and
    /// either arms the next state's timer or finishes the exchange when
    /// the attempt budget is spent.
    fn start_attempt(&mut self, conn: usize) {
        loop {
            let ob = self.slab[conn].as_mut().expect("live exchange");
            let Some(attempt) = ob.pending.next_attempt() else {
                self.finish_exchange(conn, false);
                return;
            };
            let shared = Arc::clone(&self.nodes[ob.node].0);
            if attempt > 0 {
                shared.stats.record_retransmission();
            }
            if shared
                .shim()
                .should_drop(ob.round, ob.pending.seq(), attempt, Direction::Request)
            {
                // The request "left" but never arrives: wait out the
                // timeout the initiator would have spent, then retry.
                shared.stats.record_shim_drop();
                ob.gen += 1;
                ob.state = OutboundState::Waiting;
                let timer = Timer::Retry { conn, gen: ob.gen };
                self.wheel.push(self.now_ms() + self.io_ms, 0, timer);
                return;
            }
            let addr = SocketAddr::from((Ipv4Addr::LOCALHOST, ob.peer));
            // Loopback connects complete inside the syscall; the short cap
            // bounds the stall if a peer's backlog is momentarily full.
            match TcpStream::connect_timeout(&addr, self.connect_timeout) {
                Ok(stream) => {
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_nodelay(true);
                    ob.gen += 1;
                    let timer = Timer::Deadline { conn, gen: ob.gen };
                    ob.state = OutboundState::Active {
                        stream,
                        writer: Some(FrameWriter::new(ob.request.clone())),
                        reader: FrameReader::new(),
                    };
                    self.wheel.push(self.now_ms() + self.io_ms, 0, timer);
                    return;
                }
                Err(_) => continue, // connect refused/timed out: next attempt
            }
        }
    }

    /// Tears down the current attempt's socket and moves to the next one.
    fn fail_attempt(&mut self, conn: usize) {
        let ob = self.slab[conn].as_mut().expect("live exchange");
        ob.gen += 1; // invalidate the armed deadline
        ob.state = OutboundState::Waiting;
        self.start_attempt(conn);
    }

    fn finish_exchange(&mut self, conn: usize, completed: bool) {
        let ob = self.slab[conn].take().expect("live exchange");
        self.free.push(conn);
        self.active[ob.node] -= 1;
        let shared = &self.nodes[ob.node].0;
        shared.stats.leave_flight();
        if completed {
            shared.stats.record_exchange_completed();
            shared
                .stats
                .record_latency_us(ob.started.elapsed().as_micros() as u64);
        } else {
            shared.stats.record_exchange_aborted();
        }
    }

    fn poll_outbound(&mut self) {
        for conn in 0..self.slab.len() {
            let step = 'step: {
                let Some(ob) = self.slab[conn].as_mut() else {
                    break 'step OutboundStep::Idle;
                };
                let node = ob.node;
                let OutboundState::Active {
                    stream,
                    writer,
                    reader,
                } = &mut ob.state
                else {
                    break 'step OutboundStep::Idle;
                };
                if let Some(w) = writer {
                    match w.poll(stream) {
                        WritePoll::Pending => break 'step OutboundStep::Idle,
                        WritePoll::Done(n) => {
                            self.nodes[node].0.stats.record_frame_sent(n);
                            *writer = None;
                        }
                        WritePoll::Closed => break 'step OutboundStep::Fail,
                    }
                }
                match reader.poll(stream) {
                    ReadPoll::Pending => OutboundStep::Idle,
                    ReadPoll::Closed => OutboundStep::Fail,
                    ReadPoll::Frame(n, Ok(Frame::Response { peers, msg })) => {
                        OutboundStep::Complete {
                            node,
                            bytes: n,
                            peers,
                            msg,
                        }
                    }
                    ReadPoll::Frame(_, Ok(_)) => OutboundStep::Fail,
                    ReadPoll::Frame(_, Err(FrameError::InvalidValues(_))) => {
                        self.nodes[node].0.stats.record_invalid_frame();
                        OutboundStep::Fail
                    }
                    ReadPoll::Frame(_, Err(_)) => {
                        self.nodes[node].0.stats.record_malformed_frame();
                        OutboundStep::Fail
                    }
                }
            };
            match step {
                OutboundStep::Idle => {}
                OutboundStep::Fail => self.fail_attempt(conn),
                OutboundStep::Complete {
                    node,
                    bytes,
                    peers,
                    msg,
                } => {
                    let shared = Arc::clone(&self.nodes[node].0);
                    shared.stats.record_frame_received(bytes);
                    let pending = &self.slab[conn].as_ref().expect("live exchange").pending;
                    shared.complete_exchange(pending, &peers, &msg);
                    self.finish_exchange(conn, true);
                }
            }
        }
    }

    // -----------------------------------------------------------------------
    // Inbound connections
    // -----------------------------------------------------------------------

    fn sweep_accepts(&mut self) {
        let deadline = Instant::now() + self.inbound_idle;
        for node in 0..self.nodes.len() {
            for _ in 0..ACCEPTS_PER_SWEEP {
                match self.nodes[node].1.accept() {
                    Ok((stream, _)) => {
                        self.nodes[node].0.stats.record_connection_accepted();
                        let _ = stream.set_nonblocking(true);
                        let _ = stream.set_nodelay(true);
                        self.inbound.push(Inbound {
                            node,
                            stream,
                            reader: FrameReader::new(),
                            writer: None,
                            expires: deadline,
                        });
                    }
                    Err(_) => break, // WouldBlock or transient error
                }
            }
        }
    }

    fn poll_inbound(&mut self) {
        let now = Instant::now();
        let mut i = 0;
        while i < self.inbound.len() {
            if self.step_inbound(i) || now >= self.inbound[i].expires {
                self.inbound.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }

    /// Advances one inbound connection; returns `true` when it is done
    /// (answered, failed, or closed) and should be dropped.
    fn step_inbound(&mut self, idx: usize) -> bool {
        let inbound = &mut self.inbound[idx];
        let node = inbound.node;
        if inbound.writer.is_none() {
            match inbound.reader.poll(&mut inbound.stream) {
                ReadPoll::Pending => return false,
                ReadPoll::Closed => return true,
                ReadPoll::Frame(n, Ok(frame)) => {
                    let shared = Arc::clone(&self.nodes[node].0);
                    shared.stats.record_frame_received(n);
                    match shared.respond_frame(frame) {
                        Some(reply) => {
                            self.inbound[idx].writer = Some(FrameWriter::new(reply));
                        }
                        None => return true, // no reply (or shim-dropped)
                    }
                }
                ReadPoll::Frame(_, Err(e)) => {
                    // Protocol violation: count it, drop the connection.
                    match e {
                        FrameError::InvalidValues(_) => {
                            self.nodes[node].0.stats.record_invalid_frame();
                        }
                        _ => self.nodes[node].0.stats.record_malformed_frame(),
                    }
                    return true;
                }
            }
        }
        let inbound = &mut self.inbound[idx];
        if let Some(writer) = &mut inbound.writer {
            match writer.poll(&mut inbound.stream) {
                WritePoll::Pending => return false,
                WritePoll::Done(n) => {
                    self.nodes[node].0.stats.record_frame_sent(n);
                    return true;
                }
                WritePoll::Closed => return true,
            }
        }
        false
    }
}
