//! Deterministic socket-level fault injection.
//!
//! The simulator expresses faults through `FaultScenario` (burst loss windows,
//! extra delay, duplication). The deploy runtime cannot intercept the
//! scheduler — there is none — so loss is injected at the socket edge
//! instead: before the sender thread opens a connection for a request, and
//! before the listener writes a response back. Both decisions are pure
//! functions of `(seed, seq, attempt, direction)` so a run is reproducible
//! regardless of thread interleaving, and so the *retransmission* of a
//! dropped frame (a new attempt number) rolls fresh dice, exactly like the
//! per-delivery loss draw in the simulator.

use adam2_sim::FaultScenario;

/// Which half of an exchange a loss draw applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// The initiator's request frame (dropped before connecting).
    Request,
    /// The responder's response frame (dropped after the state merge, which
    /// reproduces the "response lost" perturbation the repair path heals).
    Response,
}

impl Direction {
    fn tag(self) -> u64 {
        match self {
            Direction::Request => 0x52_45_51,
            Direction::Response => 0x52_45_53,
        }
    }
}

/// Loss/delay policy shared by every node of a cluster.
#[derive(Debug, Clone, Default)]
pub struct LossShim {
    seed: u64,
    flat_rate: f64,
    scenario: Option<FaultScenario>,
}

impl LossShim {
    /// A shim that never drops or delays anything.
    pub fn none() -> Self {
        Self::default()
    }

    /// Drop every frame independently with probability `rate`.
    pub fn flat(seed: u64, rate: f64) -> Self {
        Self {
            seed,
            flat_rate: rate.clamp(0.0, 1.0),
            scenario: None,
        }
    }

    /// Reuse the simulator's fault windows: the drop probability and extra
    /// delay for a frame follow `scenario.loss_rate_at` / `extra_delay_at`
    /// for the gossip round the frame is sent in.
    pub fn from_scenario(seed: u64, scenario: FaultScenario) -> Self {
        Self {
            seed,
            flat_rate: 0.0,
            scenario: Some(scenario),
        }
    }

    /// True when no configuration can ever drop a frame.
    pub fn is_noop(&self) -> bool {
        self.flat_rate == 0.0 && self.scenario.is_none()
    }

    fn rate_at(&self, round: u64) -> f64 {
        match &self.scenario {
            Some(s) => s.loss_rate_at(round).unwrap_or(0.0),
            None => self.flat_rate,
        }
    }

    /// Extra per-frame delay, in gossip ticks, active at `round`.
    pub fn extra_delay_ticks(&self, round: u64) -> u64 {
        self.scenario
            .as_ref()
            .map(|s| s.extra_delay_at(round))
            .unwrap_or(0)
    }

    /// Deterministic loss draw for one delivery attempt of one frame.
    pub fn should_drop(&self, round: u64, seq: u64, attempt: u32, direction: Direction) -> bool {
        let rate = self.rate_at(round);
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        let h = splitmix(
            self.seed
                ^ seq.rotate_left(17)
                ^ u64::from(attempt).rotate_left(41)
                ^ direction.tag().rotate_left(7),
        );
        // Map the top 53 bits to [0, 1): the full-precision uniform draw.
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        unit < rate
    }
}

/// SplitMix64 finalizer: a cheap, well-mixed hash for the loss draw.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_shim_never_drops() {
        let shim = LossShim::none();
        assert!(shim.is_noop());
        for seq in 0..200 {
            assert!(!shim.should_drop(3, seq, 0, Direction::Request));
            assert!(!shim.should_drop(3, seq, 1, Direction::Response));
        }
        assert_eq!(shim.extra_delay_ticks(5), 0);
    }

    #[test]
    fn draws_are_deterministic_and_keyed() {
        let shim = LossShim::flat(42, 0.5);
        let a = shim.should_drop(0, 7, 0, Direction::Request);
        let b = shim.should_drop(0, 7, 0, Direction::Request);
        assert_eq!(a, b, "same key must give the same draw");

        // Different attempts and directions decorrelate: over many seqs the
        // four keys can't all agree everywhere.
        let mut any_disagreement = false;
        for seq in 0..64 {
            let r0 = shim.should_drop(0, seq, 0, Direction::Request);
            let r1 = shim.should_drop(0, seq, 1, Direction::Request);
            let s0 = shim.should_drop(0, seq, 0, Direction::Response);
            if r0 != r1 || r0 != s0 {
                any_disagreement = true;
                break;
            }
        }
        assert!(any_disagreement, "attempt/direction must enter the key");
    }

    #[test]
    fn flat_rate_is_approximately_honoured() {
        let shim = LossShim::flat(9, 0.1);
        let trials = 20_000;
        let dropped = (0..trials)
            .filter(|&seq| shim.should_drop(1, seq, 0, Direction::Request))
            .count();
        let observed = dropped as f64 / trials as f64;
        assert!(
            (observed - 0.1).abs() < 0.01,
            "observed drop rate {observed} too far from 0.1"
        );
    }

    #[test]
    fn scenario_windows_gate_the_rate() {
        let scenario = FaultScenario::new(1).with_burst_loss(10, 20, 0.9);
        let shim = LossShim::from_scenario(5, scenario);
        // Outside the window nothing drops.
        for seq in 0..100 {
            assert!(!shim.should_drop(5, seq, 0, Direction::Request));
            assert!(!shim.should_drop(25, seq, 0, Direction::Response));
        }
        // Inside the window the 0.9 rate bites almost always.
        let dropped = (0..1000)
            .filter(|&seq| shim.should_drop(15, seq, 0, Direction::Request))
            .count();
        assert!(dropped > 800, "only {dropped}/1000 dropped at rate 0.9");
    }

    #[test]
    fn extremes_short_circuit() {
        let always = LossShim::flat(0, 1.0);
        let never = LossShim::flat(0, 0.0);
        for seq in 0..32 {
            assert!(always.should_drop(0, seq, 0, Direction::Request));
            assert!(!never.should_drop(0, seq, 0, Direction::Request));
        }
    }
}
