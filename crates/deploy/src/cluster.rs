//! Cluster driver: boots N loopback nodes, bootstraps their views through
//! introducer nodes, injects aggregation instances, samples telemetry,
//! collects estimates over the control sockets, and joins everything on
//! shutdown.
//!
//! The driver is the deploy-side analogue of the simulator's engine loop,
//! except the nodes run themselves — the driver only observes (per-tick
//! stats sampling into `adam2-telemetry`) and speaks the control frames
//! ([`Frame::StartInstance`], [`Frame::GetEstimate`]). Which runtime
//! executes the nodes — thread-per-node, the reactor pool, or a mix of
//! both — is chosen by [`ClusterConfig`]; the driver path is identical
//! either way because both backends answer the same control frames.

use std::io;
use std::net::{Ipv4Addr, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use adam2_core::wire::GossipMessage;
use adam2_core::{AttrValue, FadeConfig, InstanceId, InstanceLocal, InstanceMeta};
use adam2_telemetry::{CounterId, GaugeId, HistogramId, RoundSnapshot, RunManifest, Telemetry};

use crate::config::{ClusterConfig, DaemonConfig, RuntimeKind};
use crate::frame::{read_frame, write_frame, EstimateWire, Frame};
use crate::node::{NodeHandle, NodeShared};
use crate::reactor::ReactorPool;
use crate::stats::StatsSnapshot;

/// Joiners bootstrapped sequentially through the seed before the parallel
/// fan-out phase; they become the introducer core the rest join through.
const BOOTSTRAP_CORE: usize = 64;

/// Control connections one driver worker thread owns during parallel
/// bootstrap and estimate collection.
const NODES_PER_WORKER: usize = 64;

/// Cap on driver worker threads.
const MAX_WORKERS: usize = 64;

/// Instance-id space the daemon scheduler launches in, disjoint from
/// harness-injected ids so the two never collide in a node's instance map.
pub const DAEMON_INSTANCE_BASE: u64 = 1 << 48;

/// Summary returned by [`Cluster::shutdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterReport {
    /// Whether every node/reactor thread joined without panicking.
    pub clean: bool,
    /// Nodes the cluster ran.
    pub nodes: usize,
}

/// A running loopback cluster.
pub struct Cluster {
    /// Backend-neutral node state, in launch order.
    shared: Vec<Arc<NodeShared>>,
    threaded: Vec<NodeHandle>,
    reactor: Option<ReactorPool>,
    daemon: Option<DaemonDriver>,
    config: ClusterConfig,
}

/// The daemon-mode scheduler thread: keeps launching instances until the
/// cluster shuts down.
struct DaemonDriver {
    stop: Arc<AtomicBool>,
    thread: JoinHandle<()>,
}

impl Cluster {
    /// Spawns one node per attribute value on the configured runtime and
    /// bootstraps every view: each joiner sends a real `Join` frame to an
    /// introducer's listener and admits the `JoinAck` digest it gets back.
    ///
    /// `config` is valid by construction ([`ClusterConfig`] cannot be
    /// built otherwise), so the only failures left are socket-level.
    pub fn launch(values: Vec<AttrValue>, config: ClusterConfig) -> io::Result<Self> {
        assert!(values.len() >= 2, "a cluster needs at least two nodes");
        let epoch = Instant::now();
        let shim = Arc::new(config.shim().clone());
        let runtime = config.runtime();
        let fade = config
            .daemon()
            .map(|d| FadeConfig::new(d.half_life_rounds, d.max_tracked));
        let mut shared = Vec::with_capacity(values.len());
        let mut threaded = Vec::new();
        let mut reactor_nodes = Vec::new();
        for (i, value) in values.into_iter().enumerate() {
            let mut node_config = config.node().clone();
            node_config.seed = node_config.seed.wrapping_add(i as u64);
            let on_reactor = match runtime {
                RuntimeKind::Threaded => false,
                RuntimeKind::Reactor { .. } => true,
                // Alternate backends node-by-node; the seed (node 0) runs
                // threaded.
                RuntimeKind::Mixed { .. } => i % 2 == 1,
            };
            if on_reactor {
                let (node, listener) = NodeShared::create(
                    value,
                    config.initial_n_estimate(),
                    node_config,
                    Arc::clone(&shim),
                    epoch,
                    fade,
                )?;
                shared.push(Arc::clone(&node));
                reactor_nodes.push((node, listener));
            } else {
                let handle = NodeHandle::spawn(
                    value,
                    config.initial_n_estimate(),
                    node_config,
                    Arc::clone(&shim),
                    epoch,
                    fade,
                )?;
                shared.push(Arc::clone(&handle.shared));
                threaded.push(handle);
            }
        }
        let reactor = match runtime {
            RuntimeKind::Threaded => None,
            RuntimeKind::Reactor { threads }
            | RuntimeKind::Mixed {
                reactor_threads: threads,
            } => Some(ReactorPool::launch(reactor_nodes, threads, epoch)),
        };
        let mut cluster = Self {
            shared,
            threaded,
            reactor,
            daemon: None,
            config,
        };
        cluster.bootstrap()?;
        if let Some(daemon) = cluster.config.daemon().cloned() {
            cluster.daemon = Some(cluster.spawn_daemon(daemon));
        }
        Ok(cluster)
    }

    /// Spawns the daemon scheduler: every `launch_period_rounds` it injects
    /// a fresh instance through a rotating initiator's control socket, so a
    /// long-running cluster always has completed estimates fading through
    /// every node's blended tracker.
    fn spawn_daemon(&self, daemon: DaemonConfig) -> DaemonDriver {
        let stop = Arc::new(AtomicBool::new(false));
        let nodes: Vec<Arc<NodeShared>> = self.shared.clone();
        let timeout = self.config.control_timeout();
        let tick = self.config.node().tick;
        let thread = std::thread::Builder::new()
            .name("adam2-daemon".into())
            .spawn({
                let stop = Arc::clone(&stop);
                move || daemon_loop(&nodes, &daemon, timeout, tick, &stop)
            })
            .expect("spawn daemon thread");
        DaemonDriver { stop, thread }
    }

    /// Joins every non-seed node through an introducer, with the
    /// configured attempt budget so a listener that is still starting up
    /// doesn't fail the boot.
    ///
    /// Two phases keep four-digit clusters from serialising ten thousand
    /// control round-trips through one seed: the first [`BOOTSTRAP_CORE`]
    /// joiners go through the seed sequentially (building a connected
    /// introducer core), then the rest fan out over driver worker threads,
    /// spreading their `Join` traffic across the core.
    fn bootstrap(&self) -> io::Result<()> {
        let n = self.shared.len();
        let seed_port = self.shared[0].port();
        let attempts = self.config.join_attempts();
        let timeout = self.config.bootstrap_timeout();
        let core = (n - 1).min(BOOTSTRAP_CORE);
        for node in &self.shared[1..=core] {
            join_via(seed_port, node, attempts, timeout)?;
        }
        if core + 1 >= n {
            return Ok(());
        }
        let introducers: Vec<u16> = self.shared[..=core].iter().map(|s| s.port()).collect();
        let rest = &self.shared[core + 1..];
        let workers = rest.len().div_ceil(NODES_PER_WORKER).min(MAX_WORKERS);
        let chunk = rest.len().div_ceil(workers);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (w, nodes) in rest.chunks(chunk).enumerate() {
                let introducers = &introducers;
                handles.push(scope.spawn(move || {
                    for (j, node) in nodes.iter().enumerate() {
                        let intro = introducers[(w * chunk + j) % introducers.len()];
                        join_via(intro, node, attempts, timeout)?;
                    }
                    Ok::<(), io::Error>(())
                }));
            }
            for handle in handles {
                handle
                    .join()
                    .map_err(|_| io::Error::other("bootstrap worker panicked"))??;
            }
            Ok(())
        })
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.shared.len()
    }

    /// Always false — [`Cluster::launch`] requires two nodes.
    pub fn is_empty(&self) -> bool {
        self.shared.is_empty()
    }

    /// The cluster's current gossip round (all nodes share the clock).
    pub fn current_round(&self) -> u64 {
        self.shared[0].current_round()
    }

    /// Listener port of node `i`.
    pub fn port(&self, i: usize) -> u16 {
        self.shared[i].port()
    }

    /// The nodes' shared state, in launch order (driver-side observation
    /// only: stats sampling, view inspection).
    pub fn nodes(&self) -> &[Arc<NodeShared>] {
        &self.shared
    }

    /// Injects `meta` as a new aggregation instance by sending
    /// `StartInstance` to node `initiator` over its control socket. The
    /// instance then spreads epidemically through the gossip exchanges.
    pub fn start_instance(&self, initiator: usize, meta: Arc<InstanceMeta>) -> io::Result<()> {
        send_start_instance(
            self.shared[initiator].port(),
            meta,
            self.config.control_timeout(),
        )
    }

    /// Polls every node's control socket for a distribution estimate until
    /// all answered or `deadline` elapses, fanning the polling out over
    /// driver worker threads at scale. Returns one entry per node.
    pub fn collect_estimates(&self, deadline: Duration) -> Vec<Option<EstimateWire>> {
        let started = Instant::now();
        let timeout = self.config.control_timeout();
        let pause = self.config.node().tick / 2;
        let workers = self
            .shared
            .len()
            .div_ceil(NODES_PER_WORKER)
            .clamp(1, MAX_WORKERS);
        let chunk = self.shared.len().div_ceil(workers);
        let mut out: Vec<Option<EstimateWire>> = Vec::with_capacity(self.shared.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shared
                .chunks(chunk)
                .map(|nodes| {
                    scope.spawn(move || {
                        let mut slots: Vec<Option<EstimateWire>> = vec![None; nodes.len()];
                        loop {
                            for (slot, node) in slots.iter_mut().zip(nodes) {
                                if slot.is_some() {
                                    continue;
                                }
                                if let Ok(Frame::Estimate(est)) =
                                    control_request(node.port(), &Frame::GetEstimate, timeout)
                                {
                                    *slot = est;
                                }
                            }
                            if slots.iter().all(Option::is_some) || started.elapsed() >= deadline {
                                return slots;
                            }
                            std::thread::sleep(pause);
                        }
                    })
                })
                .collect();
            for handle in handles {
                out.extend(handle.join().expect("estimate worker panicked"));
            }
        });
        out
    }

    /// Stops every backend and joins all threads; the listeners close when
    /// their owners exit.
    pub fn shutdown(mut self) -> ClusterReport {
        let nodes = self.shared.len();
        let mut clean = true;
        if let Some(daemon) = self.daemon.take() {
            daemon.stop.store(true, Ordering::Relaxed);
            clean &= daemon.thread.join().is_ok();
        }
        for node in self.threaded {
            clean &= node.shutdown();
        }
        if let Some(pool) = self.reactor {
            clean &= pool.shutdown();
        }
        ClusterReport { clean, nodes }
    }
}

/// Injects `meta` as a new aggregation instance through `port`'s control
/// socket. Only the meta fields travel; the carried indicator state is a
/// placeholder the receiving node ignores (it re-joins from its own value
/// as initiator).
fn send_start_instance(port: u16, meta: Arc<InstanceMeta>, timeout: Duration) -> io::Result<()> {
    let local = InstanceLocal::join(meta, &AttrValue::Single(0.0), false);
    let msg = GossipMessage::from_locals(std::iter::once(&local));
    match control_request(port, &Frame::StartInstance { msg }, timeout)? {
        Frame::Ack => Ok(()),
        _ => Err(io::Error::other("unexpected start reply")),
    }
}

/// The daemon scheduler loop: watches the shared gossip clock and injects
/// one instance per launch period through a rotating initiator. A launch
/// that fails its control round-trip (e.g. the initiator is briefly
/// saturated) is skipped, not retried — the next period launches again, so
/// the pipeline heals on its own cadence.
fn daemon_loop(
    nodes: &[Arc<NodeShared>],
    daemon: &DaemonConfig,
    timeout: Duration,
    tick: Duration,
    stop: &AtomicBool,
) {
    let mut launched = 0u64;
    let mut next_launch = nodes[0].current_round() + 1;
    while !stop.load(Ordering::Relaxed) {
        let round = nodes[0].current_round();
        if round >= next_launch {
            let start_round = round + 1;
            let meta = Arc::new(InstanceMeta {
                id: InstanceId::from_u64(DAEMON_INSTANCE_BASE + launched),
                thresholds: daemon.thresholds.clone().into(),
                verify_thresholds: Vec::new().into(),
                start_round,
                end_round: start_round + daemon.instance_rounds,
                multi: false,
            });
            let initiator = (launched as usize) % nodes.len();
            let _ = send_start_instance(nodes[initiator].port(), meta, timeout);
            launched += 1;
            next_launch = round + daemon.launch_period_rounds;
        }
        std::thread::sleep(POLL_DAEMON.max(tick / 4));
    }
}

/// Floor on the daemon scheduler's clock-polling interval.
const POLL_DAEMON: Duration = Duration::from_millis(1);

/// One join round-trip through `introducer` on `node`'s behalf, retried up
/// to the configured attempt budget.
fn join_via(
    introducer: u16,
    node: &Arc<NodeShared>,
    attempts: u32,
    timeout: Duration,
) -> io::Result<()> {
    let mut last_err = io::Error::other("join never attempted");
    for _ in 0..attempts {
        match control_request(introducer, &Frame::Join { port: node.port() }, timeout) {
            Ok(Frame::JoinAck { peers }) => {
                node.admit_peers(&peers);
                return Ok(());
            }
            Ok(_) => last_err = io::Error::other("unexpected join reply"),
            Err(e) => last_err = e,
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    Err(last_err)
}

/// One control round-trip: connect, send `frame`, read the reply.
fn control_request(port: u16, frame: &Frame, timeout: Duration) -> io::Result<Frame> {
    let addr = SocketAddr::from((Ipv4Addr::LOCALHOST, port));
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let _ = stream.set_nodelay(true);
    write_frame(&mut stream, frame)?;
    match read_frame(&mut stream)? {
        Ok(frame) => Ok(frame),
        Err(e) => Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
    }
}

/// Per-tick telemetry sampler: diffs every node's [`StatsSnapshot`] against
/// the previous sample and folds the deltas into one [`RoundSnapshot`] plus
/// the deploy gauge/counter/histogram set.
pub struct ClusterTelemetry {
    /// The backing store, exported via [`ClusterTelemetry::export`].
    pub telemetry: Telemetry,
    g_live_nodes: GaugeId,
    g_inflight: GaugeId,
    g_queue_depth: GaugeId,
    c_frames: CounterId,
    c_bytes: CounterId,
    c_malformed: CounterId,
    c_invalid: CounterId,
    c_shim_drops: CounterId,
    c_retransmissions: CounterId,
    c_backpressure: CounterId,
    c_connections: CounterId,
    h_latency: HistogramId,
    prev: Vec<StatsSnapshot>,
    latencies: Vec<u64>,
}

impl ClusterTelemetry {
    /// Registers the deploy metric set for an `n`-node cluster.
    pub fn new(n: usize) -> Self {
        let mut telemetry = Telemetry::default();
        let m = &mut telemetry.metrics;
        let g_live_nodes = m.gauge("live_nodes");
        let g_inflight = m.gauge("inflight_exchanges");
        let g_queue_depth = m.gauge("queue_depth");
        let c_frames = m.counter("deploy_frames");
        let c_bytes = m.counter("deploy_bytes");
        let c_malformed = m.counter("deploy_malformed_frames");
        let c_invalid = m.counter("deploy_frames_rejected_invalid");
        let c_shim_drops = m.counter("deploy_shim_drops");
        let c_retransmissions = m.counter("deploy_retransmissions");
        let c_backpressure = m.counter("deploy_backpressure_drops");
        let c_connections = m.counter("deploy_connections_accepted");
        let h_latency = m.histogram("exchange_latency_us");
        Self {
            telemetry,
            g_live_nodes,
            g_inflight,
            g_queue_depth,
            c_frames,
            c_bytes,
            c_malformed,
            c_invalid,
            c_shim_drops,
            c_retransmissions,
            c_backpressure,
            c_connections,
            h_latency,
            prev: vec![StatsSnapshot::default(); n],
            latencies: Vec::new(),
        }
    }

    /// Samples every node and records one snapshot for `round`. Call once
    /// per tick from the driver loop.
    pub fn sample(&mut self, cluster: &Cluster, round: u64) {
        let mut snap = RoundSnapshot::empty(round);
        snap.live_nodes = cluster.len() as u64;
        let mut latencies = Vec::new();
        for (node, prev) in cluster.nodes().iter().zip(self.prev.iter_mut()) {
            let now = node.stats.snapshot();
            let delta = now.delta(prev);
            *prev = now;
            snap.round_bytes += delta.bytes_sent;
            snap.round_msgs += delta.frames_sent;
            snap.exchanges += delta.exchanges_started;
            snap.repairs += delta.retransmissions;
            snap.aborts += delta.exchanges_aborted;
            // Cluster-wide peak concurrency is bounded by the sum of the
            // per-node peaks; the max of per-node queue peaks is exact.
            snap.inflight_exchanges += delta.inflight_peak;
            snap.queue_depth_max = snap.queue_depth_max.max(delta.queue_depth_peak);
            let m = &mut self.telemetry.metrics;
            m.add(self.c_frames, delta.frames_sent + delta.frames_received);
            m.add(self.c_bytes, delta.bytes_sent + delta.bytes_received);
            m.add(self.c_malformed, delta.malformed_frames);
            m.add(self.c_invalid, delta.frames_rejected_invalid);
            m.add(self.c_shim_drops, delta.shim_dropped);
            m.add(self.c_retransmissions, delta.retransmissions);
            m.add(self.c_backpressure, delta.backpressure_drops);
            m.add(self.c_connections, delta.connections_accepted);
            latencies.extend(node.stats.take_latencies());
            node.stats.reset_peaks();
        }
        let m = &mut self.telemetry.metrics;
        m.set(self.g_live_nodes, snap.live_nodes as f64);
        m.set(self.g_inflight, snap.inflight_exchanges as f64);
        m.set(self.g_queue_depth, snap.queue_depth_max as f64);
        for us in &latencies {
            m.record(self.h_latency, *us);
        }
        self.latencies.extend(latencies);
        self.telemetry.push_snapshot(snap);
    }

    /// Every exchange latency sample (µs) drained so far, across all
    /// sampled ticks — the raw series the bench derives its p99 from.
    pub fn latency_samples(&self) -> &[u64] {
        &self.latencies
    }

    /// Exports the standard telemetry file set under `dir`.
    pub fn export(&self, dir: &std::path::Path, manifest: &RunManifest) -> io::Result<()> {
        self.telemetry.export(dir, manifest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NodeConfig;
    use crate::shim::LossShim;
    use adam2_core::InstanceId;
    use std::io::Write as _;

    fn test_meta(cluster: &Cluster, duration: u64, lambda_points: &[f64]) -> Arc<InstanceMeta> {
        let start_round = cluster.current_round() + 2;
        Arc::new(InstanceMeta {
            id: InstanceId::from_u64(7),
            thresholds: lambda_points.to_vec().into(),
            verify_thresholds: Vec::new().into(),
            start_round,
            end_round: start_round + duration,
            multi: false,
        })
    }

    fn fast_config() -> ClusterConfig {
        ClusterConfig::try_new(NodeConfig {
            tick: Duration::from_millis(25),
            io_timeout: Duration::from_millis(15),
            retries: 2,
            queue_capacity: 4,
            view_size: 10,
            seed: 99,
        })
        .expect("valid test config")
    }

    fn wait_past(cluster: &Cluster, round: u64) {
        while cluster.current_round() <= round {
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    fn assert_converges(config: ClusterConfig) {
        let n = 8;
        let values: Vec<AttrValue> = (0..n).map(|i| AttrValue::Single(i as f64)).collect();
        let cluster = Cluster::launch(values, config).expect("launch");
        let mut sampler = ClusterTelemetry::new(n);

        let meta = test_meta(&cluster, 24, &[2.0, 4.0, 6.0]);
        cluster.start_instance(0, meta.clone()).expect("start");
        while cluster.current_round() <= meta.end_round {
            sampler.sample(&cluster, cluster.current_round());
            std::thread::sleep(Duration::from_millis(25));
        }
        let estimates = cluster.collect_estimates(Duration::from_secs(5));
        let got = estimates.iter().flatten().count();
        assert_eq!(got, n, "every node must report an estimate");
        for est in estimates.iter().flatten() {
            assert_eq!(est.instance, 7);
            assert_eq!(est.thresholds, vec![2.0, 4.0, 6.0]);
            // 8 values 0..=7, so F(4.0) should be around 5/8.
            let f = est.fractions[1];
            assert!(
                (0.0..=1.0).contains(&f),
                "normalised fraction out of range: {f}"
            );
        }
        // Push-pull averaging keeps total weight mass at 1, so size
        // estimates land near the true N for most nodes.
        let n_hats: Vec<f64> = estimates.iter().flatten().filter_map(|e| e.n_hat).collect();
        assert!(!n_hats.is_empty(), "at least one node estimates N");
        let mean = n_hats.iter().sum::<f64>() / n_hats.len() as f64;
        assert!(
            mean > 2.0 && mean < 32.0,
            "mean N-hat {mean} implausible for an 8-node cluster"
        );

        let exchanges: u64 = sampler
            .telemetry
            .snapshots()
            .iter()
            .map(|s| s.exchanges)
            .sum();
        assert!(exchanges > 0, "telemetry must see gossip traffic");

        let report = cluster.shutdown();
        assert!(report.clean, "threads must join cleanly");
        assert_eq!(report.nodes, n);
    }

    #[test]
    fn loopback_cluster_converges_to_an_estimate() {
        assert_converges(fast_config());
    }

    #[test]
    fn reactor_cluster_converges_to_an_estimate() {
        assert_converges(
            fast_config()
                .with_runtime(RuntimeKind::Reactor { threads: 2 })
                .expect("valid runtime"),
        );
    }

    #[test]
    fn garbage_frames_are_counted_not_fatal() {
        let values = vec![AttrValue::Single(1.0), AttrValue::Single(2.0)];
        let cluster = Cluster::launch(values, fast_config()).expect("launch");
        let port = cluster.port(0);

        // A syntactically valid length prefix followed by junk.
        let addr = SocketAddr::from((Ipv4Addr::LOCALHOST, port));
        let mut stream =
            TcpStream::connect_timeout(&addr, Duration::from_millis(200)).expect("connect");
        let mut garbage = vec![9u8; 64];
        garbage.splice(0..4, 60u32.to_le_bytes());
        stream.write_all(&garbage).expect("write garbage");
        drop(stream);

        // An oversized length prefix.
        let mut stream =
            TcpStream::connect_timeout(&addr, Duration::from_millis(200)).expect("connect");
        stream
            .write_all(&(crate::frame::MAX_FRAME as u32 + 1).to_le_bytes())
            .expect("write oversized");
        drop(stream);

        // Give the listener a moment to process both connections.
        let deadline = Instant::now() + Duration::from_secs(2);
        while cluster.nodes()[0].stats.snapshot().malformed_frames < 2 && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(
            cluster.nodes()[0].stats.snapshot().malformed_frames,
            2,
            "both bad frames must be counted as malformed"
        );

        // The node still answers control traffic afterwards.
        let reply = control_request(port, &Frame::GetEstimate, Duration::from_millis(200))
            .expect("control after garbage");
        assert!(matches!(reply, Frame::Estimate(None)));

        assert!(cluster.shutdown().clean);
    }

    #[test]
    fn lossy_cluster_still_converges_via_repair() {
        let n = 6;
        let values: Vec<AttrValue> = (0..n).map(|i| AttrValue::Single(i as f64)).collect();
        let config = fast_config().with_shim(LossShim::flat(7, 0.10));
        let cluster = Cluster::launch(values, config).expect("launch");

        let meta = test_meta(&cluster, 24, &[1.0, 3.0]);
        cluster.start_instance(0, meta.clone()).expect("start");
        wait_past(&cluster, meta.end_round);

        let estimates = cluster.collect_estimates(Duration::from_secs(5));
        let got = estimates.iter().flatten().count();
        assert!(
            got >= n - 1,
            "only {got}/{n} nodes produced an estimate under 10% loss"
        );
        // Loss must actually have been injected for this test to mean
        // anything.
        let drops: u64 = cluster
            .nodes()
            .iter()
            .map(|node| node.stats.snapshot().shim_dropped)
            .sum();
        assert!(drops > 0, "shim never fired at 10% loss");
        assert!(cluster.shutdown().clean);
    }

    #[test]
    fn daemon_cluster_serves_blended_estimates() {
        let n = 8;
        let values: Vec<AttrValue> = (0..n).map(|i| AttrValue::Single(i as f64)).collect();
        let daemon = DaemonConfig {
            launch_period_rounds: 8,
            instance_rounds: 16,
            thresholds: vec![2.0, 4.0, 6.0],
            half_life_rounds: 8.0,
            max_tracked: 4,
        };
        let config = fast_config().with_daemon(daemon).expect("valid daemon");
        let cluster = Cluster::launch(values, config).expect("launch");
        // By round ~48 the scheduler has launched ~6 instances and at
        // least the first two have finalised everywhere.
        wait_past(&cluster, 48);
        let estimates = cluster.collect_estimates(Duration::from_secs(5));
        let got: Vec<&EstimateWire> = estimates.iter().flatten().collect();
        assert!(
            got.len() >= n - 1,
            "only {}/{n} nodes served a blended estimate",
            got.len()
        );
        for est in &got {
            assert!(
                est.instance >= DAEMON_INSTANCE_BASE,
                "served instance {} must come from the daemon id space",
                est.instance
            );
            assert_eq!(est.thresholds.len(), est.fractions.len());
            // The blend of monotone CDFs stays monotone.
            for pair in est.fractions.windows(2) {
                assert!(pair[0] <= pair[1] + 1e-9, "fractions not monotone");
            }
        }
        // The blend moves with the pipeline: some node already serves a
        // later daemon instance than the very first launch.
        assert!(
            got.iter().any(|e| e.instance > DAEMON_INSTANCE_BASE),
            "no node absorbed a second daemon instance"
        );
        assert!(cluster.shutdown().clean);
    }

    #[test]
    fn views_bootstrap_through_the_seed() {
        let values: Vec<AttrValue> = (0..4).map(|i| AttrValue::Single(i as f64)).collect();
        let cluster = Cluster::launch(values, fast_config()).expect("launch");
        // The seed learned every joiner; every joiner knows at least the
        // seed.
        let seed_view = cluster.nodes()[0].view();
        for node in &cluster.nodes()[1..] {
            assert!(seed_view.contains(&node.port()));
            assert!(node.view().contains(&cluster.port(0)));
        }
        assert!(cluster.shutdown().clean);
    }
}
