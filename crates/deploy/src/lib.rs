//! adam2-deploy: a socket-based gossip runtime that runs Adam2 outside the
//! simulator.
//!
//! The simulator in `adam2-sim` drives [`adam2_core::Adam2Node`] values by
//! calling protocol functions on pairs of nodes it holds in one `Vec`. This
//! crate runs the same node state as a set of *process-local actors*: every
//! node owns a TCP listener on loopback and gossips over length-prefixed
//! frames carrying the exact [`adam2_core::wire::GossipMessage`] bytes the
//! simulator's exchange-repair path already understands — so sequence
//! numbers, the responder-side seq cache, and retransmissions behave
//! identically to the `sim` fault model, except that here the "network" is
//! a real socket and loss is injected by the [`shim::LossShim`] rather than
//! by the scheduler.
//!
//! Two runtimes execute the nodes, selected by [`RuntimeKind`] on the
//! validated [`ClusterConfig`] (constructed via [`ClusterConfig::try_new`];
//! misconfiguration is a [`DeployConfigError`], never a panic):
//!
//! - **threaded** — three OS threads per node (listener, gossip clock,
//!   sender over a bounded outbound queue). Simple, robust, caps out
//!   around 10² nodes.
//! - **reactor** — a small pool of event-loop threads multiplexing every
//!   node's nonblocking sockets, with round ticks and I/O deadlines driven
//!   by a timer wheel. Scales a single host to 10⁴ nodes.
//!
//! Both speak the identical frame protocol, so a mixed-backend cluster
//! ([`RuntimeKind::Mixed`]) interoperates frame-for-frame.
//!
//! Module map:
//!
//! - [`config`] — validated cluster/node configuration and runtime
//!   selection ([`DeployConfigError`], [`RuntimeKind`]).
//! - [`frame`] — the u32-length-prefixed frame protocol (requests,
//!   responses, join/bootstrap, control-plane estimate collection).
//!   Malformed input is an error value, never a panic.
//! - [`shim`] — deterministic socket-level loss/delay injection sharing the
//!   simulator's `FaultScenario` knobs.
//! - [`stats`] — per-node atomic counters sampled by the cluster driver into
//!   `adam2-telemetry` snapshots.
//! - [`node`] — backend-neutral per-node state and protocol entry points,
//!   plus the thread-per-node backend.
//! - [`reactor`] — the event-loop backend (internal; reached through
//!   [`RuntimeKind::Reactor`]).
//! - [`cluster`] — boots an N-node loopback cluster on the configured
//!   runtime, bootstraps peer views through introducer nodes, injects
//!   aggregation instances, samples telemetry, collects estimates over
//!   control sockets, and joins everything on shutdown.

pub mod cluster;
pub mod config;
pub mod frame;
pub mod node;
mod reactor;
pub mod shim;
pub mod stats;

pub use cluster::{Cluster, ClusterReport, ClusterTelemetry, DAEMON_INSTANCE_BASE};
pub use config::{ClusterConfig, DaemonConfig, DeployConfigError, NodeConfig, RuntimeKind};
pub use frame::{
    read_frame, read_frame_counted, write_frame, EstimateWire, Frame, FrameError, MAX_FRAME,
};
pub use node::NodeShared;
pub use shim::{Direction, LossShim};
pub use stats::{NodeStats, StatsSnapshot};
