//! adam2-deploy: a socket-based gossip runtime that runs Adam2 outside the
//! simulator.
//!
//! The simulator in `adam2-sim` drives [`adam2_core::Adam2Node`] values by
//! calling protocol functions on pairs of nodes it holds in one `Vec`. This
//! crate runs the same node state as a set of *process-local actors*: every
//! node owns a TCP listener on loopback, a gossip clock thread that derives
//! the round number from wall time, and a sender thread that drains a bounded
//! outbound queue. Exchanges travel as length-prefixed frames carrying the
//! exact [`adam2_core::wire::GossipMessage`] bytes the simulator's
//! exchange-repair path already understands, so sequence numbers, the
//! responder-side seq cache, and retransmissions behave identically to the
//! `sim` fault model — except that here the "network" is a real socket and
//! loss is injected by the [`shim::LossShim`] rather than by the scheduler.
//!
//! Module map:
//!
//! - [`frame`] — the u32-length-prefixed frame protocol (requests, responses,
//!   join/bootstrap, control-plane estimate collection). Malformed input is
//!   an error value, never a panic.
//! - [`shim`] — deterministic socket-level loss/delay injection sharing the
//!   simulator's `FaultScenario` knobs.
//! - [`stats`] — per-node atomic counters sampled by the cluster driver into
//!   `adam2-telemetry` snapshots.
//! - [`node`] — the per-node actor: listener, clock, and sender threads over
//!   a shared `Adam2Node`.
//! - [`cluster`] — boots an N-node loopback cluster, seeds the peer view via
//!   an introducer node, injects aggregation instances, samples telemetry,
//!   collects estimates over control sockets, and joins everything on
//!   shutdown.

pub mod cluster;
pub mod frame;
pub mod node;
pub mod shim;
pub mod stats;

pub use cluster::{Cluster, ClusterConfig, ClusterReport, ClusterTelemetry};
pub use frame::{
    read_frame, read_frame_counted, write_frame, EstimateWire, Frame, FrameError, MAX_FRAME,
};
pub use node::{NodeConfig, NodeHandle, NodeShared};
pub use shim::{Direction, LossShim};
pub use stats::{NodeStats, StatsSnapshot};
