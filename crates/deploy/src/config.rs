//! Validated deploy configuration: the only way to parameterise a cluster.
//!
//! Mirrors the sim crate's `EngineConfig::try_new`/`SimConfigError`
//! contract: misconfiguration is rejected as a typed [`DeployConfigError`]
//! at construction time, never discovered as a panic (or a hang) inside a
//! running cluster. [`ClusterConfig`] keeps its fields private, so
//! [`Cluster::launch`](crate::Cluster::launch) can only ever receive a
//! configuration that passed validation; [`Default`] produces a valid
//! configuration directly.

use std::time::Duration;

use crate::shim::LossShim;

/// Which runtime executes the cluster's nodes.
///
/// Both backends speak the identical frame protocol over the identical
/// per-node listeners, so the choice is invisible on the wire — benches,
/// tests, and CI select a backend purely by configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeKind {
    /// Thread-per-node: every node runs its own listener, clock, and
    /// sender OS threads (three threads per node). Simple and very robust,
    /// but caps clusters at a few hundred nodes.
    Threaded,
    /// Shared event loop: `threads` reactor threads multiplex all node
    /// listeners and exchange sockets through nonblocking I/O and a timer
    /// wheel. Scales to four-digit and five-digit node counts on one host.
    Reactor {
        /// Reactor threads to spread node shards over (must be nonzero;
        /// capped at the node count at launch).
        threads: usize,
    },
    /// Alternate nodes between the two backends (even slots threaded, odd
    /// slots reactor). Exists to prove frame-protocol compatibility: a
    /// mixed cluster must bootstrap and converge like a uniform one.
    Mixed {
        /// Reactor threads for the reactor half.
        reactor_threads: usize,
    },
}

impl RuntimeKind {
    fn reactor_threads(&self) -> Option<usize> {
        match self {
            RuntimeKind::Threaded => None,
            RuntimeKind::Reactor { threads } => Some(*threads),
            RuntimeKind::Mixed { reactor_threads } => Some(*reactor_threads),
        }
    }
}

/// Why a deploy configuration was rejected.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DeployConfigError {
    /// `tick` is zero: the gossip clock would spin through every round at
    /// once.
    ZeroTick,
    /// `queue_capacity` is zero: every exchange would be dropped as
    /// backpressure before it started.
    ZeroQueueCapacity,
    /// `view_size` below two: a view that cannot hold both an introducer
    /// and a gossip partner can never mix.
    ViewSizeTooSmall(usize),
    /// `io_timeout >= tick`: one slow peer would stall a node past its own
    /// round boundary, starving the gossip clock.
    IoTimeoutNotBelowTick {
        /// The offending socket timeout.
        io_timeout: Duration,
        /// The configured round length.
        tick: Duration,
    },
    /// Zero reactor threads requested for a reactor (or mixed) runtime.
    ZeroReactorThreads,
    /// Zero bootstrap join attempts: no node could ever join the cluster.
    ZeroJoinAttempts,
    /// Zero bootstrap timeout: every join round-trip would time out
    /// instantly.
    ZeroBootstrapTimeout,
    /// The initial system-size estimate must be a finite value ≥ 1.
    InvalidInitialEstimate(f64),
    /// The daemon configuration violates an invariant (reason attached).
    InvalidDaemonConfig(&'static str),
}

impl std::fmt::Display for DeployConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeployConfigError::ZeroTick => write!(f, "tick must be nonzero"),
            DeployConfigError::ZeroQueueCapacity => write!(f, "queue_capacity must be nonzero"),
            DeployConfigError::ViewSizeTooSmall(v) => {
                write!(f, "view_size {v} too small (minimum 2)")
            }
            DeployConfigError::IoTimeoutNotBelowTick { io_timeout, tick } => write!(
                f,
                "io_timeout {io_timeout:?} must be shorter than the tick {tick:?}"
            ),
            DeployConfigError::ZeroReactorThreads => {
                write!(f, "reactor runtime needs at least one thread")
            }
            DeployConfigError::ZeroJoinAttempts => {
                write!(f, "bootstrap needs at least one join attempt")
            }
            DeployConfigError::ZeroBootstrapTimeout => {
                write!(f, "bootstrap timeout must be nonzero")
            }
            DeployConfigError::InvalidInitialEstimate(v) => {
                write!(f, "initial_n_estimate {v} must be finite and >= 1")
            }
            DeployConfigError::InvalidDaemonConfig(why) => {
                write!(f, "invalid daemon config: {why}")
            }
        }
    }
}

impl std::error::Error for DeployConfigError {}

/// Continuous-tracking daemon mode: instead of waiting for the harness to
/// inject instances one at a time, the cluster launches a fresh aggregation
/// instance every `launch_period_rounds` (rotating the initiator), and
/// every node answers `GetEstimate` with the exponentially time-faded
/// blend of its completed instances ([`adam2_core::BlendedTracker`])
/// rather than the newest snapshot alone — the deploy-side analogue of
/// the `adam2-stream` pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct DaemonConfig {
    /// Rounds between staggered instance launches.
    pub launch_period_rounds: u64,
    /// Gossip rounds each daemon instance runs before finalising.
    pub instance_rounds: u64,
    /// Interpolation thresholds flooded with every daemon instance
    /// (strictly increasing, finite, at least one).
    pub thresholds: Vec<f64>,
    /// Age (in rounds) at which a completed estimate's blend weight
    /// halves.
    pub half_life_rounds: f64,
    /// Completed estimates each node retains in its blend.
    pub max_tracked: usize,
}

impl DaemonConfig {
    /// Checks every invariant the daemon scheduler and the per-node
    /// blended trackers rely on.
    ///
    /// # Errors
    ///
    /// Returns [`DeployConfigError::InvalidDaemonConfig`] with the first
    /// violated invariant.
    pub fn validate(&self) -> Result<(), DeployConfigError> {
        let fail = |why| Err(DeployConfigError::InvalidDaemonConfig(why));
        if self.launch_period_rounds == 0 {
            return fail("launch_period_rounds must be nonzero");
        }
        if self.instance_rounds == 0 {
            return fail("instance_rounds must be nonzero");
        }
        if self.thresholds.is_empty() {
            return fail("thresholds must be non-empty");
        }
        if self.thresholds.iter().any(|t| !t.is_finite()) {
            return fail("thresholds must be finite");
        }
        if self.thresholds.windows(2).any(|w| w[0] >= w[1]) {
            return fail("thresholds must be strictly increasing");
        }
        if !self.half_life_rounds.is_finite() || self.half_life_rounds <= 0.0 {
            return fail("half_life_rounds must be finite and positive");
        }
        if self.max_tracked == 0 {
            return fail("max_tracked must be nonzero");
        }
        Ok(())
    }
}

/// Timing and robustness knobs shared by every node of a cluster.
///
/// A plain parameter bag; [`ClusterConfig::try_new`] validates it before a
/// cluster can be launched with it, and [`NodeConfig::validate`] exposes
/// the same check directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeConfig {
    /// Wall-clock length of one gossip round.
    pub tick: Duration,
    /// Read/write/connect timeout for every socket operation.
    pub io_timeout: Duration,
    /// Additional delivery attempts after a failed or dropped exchange.
    pub retries: u32,
    /// Outbound budget: at most this many exchanges may be queued (threaded
    /// backend) or in flight (reactor backend) per node; rounds beyond it
    /// shed their exchange (backpressure).
    pub queue_capacity: usize,
    /// Maximum peer-view size.
    pub view_size: usize,
    /// Seed for the node's exchange-partner RNG.
    pub seed: u64,
}

impl Default for NodeConfig {
    fn default() -> Self {
        Self {
            tick: Duration::from_millis(40),
            io_timeout: Duration::from_millis(15),
            retries: 2,
            queue_capacity: 4,
            view_size: 12,
            seed: 0,
        }
    }
}

impl NodeConfig {
    /// Checks every invariant a running node relies on.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a [`DeployConfigError`].
    pub fn validate(&self) -> Result<(), DeployConfigError> {
        if self.tick.is_zero() {
            return Err(DeployConfigError::ZeroTick);
        }
        if self.queue_capacity == 0 {
            return Err(DeployConfigError::ZeroQueueCapacity);
        }
        if self.view_size < 2 {
            return Err(DeployConfigError::ViewSizeTooSmall(self.view_size));
        }
        if self.io_timeout >= self.tick {
            return Err(DeployConfigError::IoTimeoutNotBelowTick {
                io_timeout: self.io_timeout,
                tick: self.tick,
            });
        }
        Ok(())
    }
}

/// Everything needed to boot a cluster, validated at construction.
///
/// Fields are private: the only constructors are [`Default`] (valid by
/// construction) and [`ClusterConfig::try_new`], and every setter that can
/// invalidate the configuration re-validates. `Cluster::launch` therefore
/// takes validated configs only.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    node: NodeConfig,
    shim: LossShim,
    initial_n_estimate: f64,
    runtime: RuntimeKind,
    join_attempts: u32,
    bootstrap_timeout: Duration,
    daemon: Option<DaemonConfig>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            node: NodeConfig::default(),
            shim: LossShim::none(),
            initial_n_estimate: 1.0,
            runtime: RuntimeKind::Threaded,
            join_attempts: 10,
            bootstrap_timeout: Duration::from_millis(50),
            daemon: None,
        }
    }
}

impl ClusterConfig {
    /// Validates `node` and wraps it with default cluster-level settings
    /// (threaded runtime, no loss shim, 10 join attempts, 50 ms bootstrap
    /// timeout).
    ///
    /// # Errors
    ///
    /// Returns the first violated [`NodeConfig`] invariant.
    pub fn try_new(node: NodeConfig) -> Result<Self, DeployConfigError> {
        node.validate()?;
        Ok(Self {
            node,
            ..Self::default()
        })
    }

    /// Selects the runtime backend.
    ///
    /// # Errors
    ///
    /// Rejects reactor (or mixed) runtimes with zero threads.
    pub fn with_runtime(mut self, runtime: RuntimeKind) -> Result<Self, DeployConfigError> {
        if runtime.reactor_threads() == Some(0) {
            return Err(DeployConfigError::ZeroReactorThreads);
        }
        self.runtime = runtime;
        Ok(self)
    }

    /// Sets the socket-level fault injection shared by every node.
    pub fn with_shim(mut self, shim: LossShim) -> Self {
        self.shim = shim;
        self
    }

    /// Sets the initial system-size guess handed to every `Adam2Node`.
    ///
    /// # Errors
    ///
    /// Rejects non-finite values and values below one.
    pub fn with_initial_n_estimate(mut self, estimate: f64) -> Result<Self, DeployConfigError> {
        if !estimate.is_finite() || estimate < 1.0 {
            return Err(DeployConfigError::InvalidInitialEstimate(estimate));
        }
        self.initial_n_estimate = estimate;
        Ok(self)
    }

    /// Sets the bootstrap policy: how many times each joiner retries its
    /// `Join` round-trip, and the control-socket timeout used while the
    /// cluster is still starting up.
    ///
    /// # Errors
    ///
    /// Rejects a zero attempt budget and a zero timeout.
    pub fn with_bootstrap(
        mut self,
        join_attempts: u32,
        timeout: Duration,
    ) -> Result<Self, DeployConfigError> {
        if join_attempts == 0 {
            return Err(DeployConfigError::ZeroJoinAttempts);
        }
        if timeout.is_zero() {
            return Err(DeployConfigError::ZeroBootstrapTimeout);
        }
        self.join_attempts = join_attempts;
        self.bootstrap_timeout = timeout;
        Ok(self)
    }

    /// Switches the cluster into continuous-tracking daemon mode: periodic
    /// instance launches and time-faded blended `GetEstimate` answers.
    ///
    /// # Errors
    ///
    /// Returns the first violated [`DaemonConfig`] invariant.
    pub fn with_daemon(mut self, daemon: DaemonConfig) -> Result<Self, DeployConfigError> {
        daemon.validate()?;
        self.daemon = Some(daemon);
        Ok(self)
    }

    /// The daemon-mode configuration, if enabled.
    pub fn daemon(&self) -> Option<&DaemonConfig> {
        self.daemon.as_ref()
    }

    /// The validated per-node configuration.
    pub fn node(&self) -> &NodeConfig {
        &self.node
    }

    /// The configured loss shim.
    pub fn shim(&self) -> &LossShim {
        &self.shim
    }

    /// The initial system-size guess.
    pub fn initial_n_estimate(&self) -> f64 {
        self.initial_n_estimate
    }

    /// The selected runtime backend.
    pub fn runtime(&self) -> RuntimeKind {
        self.runtime
    }

    /// Join attempts per bootstrapping node.
    pub fn join_attempts(&self) -> u32 {
        self.join_attempts
    }

    /// Control-socket timeout during bootstrap (also the floor for the
    /// driver's later control round-trips).
    pub fn bootstrap_timeout(&self) -> Duration {
        self.bootstrap_timeout
    }

    /// The control-socket timeout the driver uses once the cluster runs:
    /// the larger of the node I/O timeout and the bootstrap timeout.
    pub fn control_timeout(&self) -> Duration {
        self.node.io_timeout.max(self.bootstrap_timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_configs_validate() {
        NodeConfig::default().validate().unwrap();
        ClusterConfig::try_new(NodeConfig::default()).unwrap();
    }

    #[test]
    fn node_invariants_are_each_rejected() {
        let cases: Vec<(NodeConfig, DeployConfigError)> = vec![
            (
                NodeConfig {
                    tick: Duration::ZERO,
                    ..NodeConfig::default()
                },
                DeployConfigError::ZeroTick,
            ),
            (
                NodeConfig {
                    queue_capacity: 0,
                    ..NodeConfig::default()
                },
                DeployConfigError::ZeroQueueCapacity,
            ),
            (
                NodeConfig {
                    view_size: 1,
                    ..NodeConfig::default()
                },
                DeployConfigError::ViewSizeTooSmall(1),
            ),
            (
                NodeConfig {
                    tick: Duration::from_millis(10),
                    io_timeout: Duration::from_millis(10),
                    ..NodeConfig::default()
                },
                DeployConfigError::IoTimeoutNotBelowTick {
                    io_timeout: Duration::from_millis(10),
                    tick: Duration::from_millis(10),
                },
            ),
        ];
        for (config, expected) in cases {
            assert_eq!(config.validate().unwrap_err(), expected);
            assert_eq!(ClusterConfig::try_new(config).unwrap_err(), expected);
        }
    }

    #[test]
    fn cluster_level_misuse_is_rejected() {
        let config = ClusterConfig::default();
        assert_eq!(
            config
                .clone()
                .with_runtime(RuntimeKind::Reactor { threads: 0 })
                .unwrap_err(),
            DeployConfigError::ZeroReactorThreads
        );
        assert_eq!(
            config
                .clone()
                .with_runtime(RuntimeKind::Mixed { reactor_threads: 0 })
                .unwrap_err(),
            DeployConfigError::ZeroReactorThreads
        );
        assert_eq!(
            config
                .clone()
                .with_bootstrap(0, Duration::from_millis(50))
                .unwrap_err(),
            DeployConfigError::ZeroJoinAttempts
        );
        assert_eq!(
            config
                .clone()
                .with_bootstrap(3, Duration::ZERO)
                .unwrap_err(),
            DeployConfigError::ZeroBootstrapTimeout
        );
        assert!(matches!(
            config
                .clone()
                .with_initial_n_estimate(f64::NAN)
                .unwrap_err(),
            DeployConfigError::InvalidInitialEstimate(_)
        ));
        assert!(config.clone().with_initial_n_estimate(0.0).is_err());
        let ok = config
            .with_runtime(RuntimeKind::Reactor { threads: 2 })
            .unwrap()
            .with_bootstrap(5, Duration::from_millis(80))
            .unwrap()
            .with_initial_n_estimate(64.0)
            .unwrap();
        assert_eq!(ok.runtime(), RuntimeKind::Reactor { threads: 2 });
        assert_eq!(ok.join_attempts(), 5);
        assert_eq!(ok.bootstrap_timeout(), Duration::from_millis(80));
        assert_eq!(ok.initial_n_estimate(), 64.0);
    }

    #[test]
    fn daemon_invariants_are_each_rejected() {
        let valid = DaemonConfig {
            launch_period_rounds: 8,
            instance_rounds: 20,
            thresholds: vec![1.0, 2.0, 3.0],
            half_life_rounds: 8.0,
            max_tracked: 4,
        };
        valid.validate().unwrap();
        let accepted = ClusterConfig::default().with_daemon(valid.clone()).unwrap();
        assert_eq!(accepted.daemon(), Some(&valid));
        assert_eq!(ClusterConfig::default().daemon(), None);

        let broken: Vec<(DaemonConfig, &str)> = vec![
            (
                DaemonConfig {
                    launch_period_rounds: 0,
                    ..valid.clone()
                },
                "launch_period_rounds",
            ),
            (
                DaemonConfig {
                    instance_rounds: 0,
                    ..valid.clone()
                },
                "instance_rounds",
            ),
            (
                DaemonConfig {
                    thresholds: Vec::new(),
                    ..valid.clone()
                },
                "non-empty",
            ),
            (
                DaemonConfig {
                    thresholds: vec![1.0, f64::NAN],
                    ..valid.clone()
                },
                "finite",
            ),
            (
                DaemonConfig {
                    thresholds: vec![2.0, 1.0],
                    ..valid.clone()
                },
                "strictly increasing",
            ),
            (
                DaemonConfig {
                    half_life_rounds: 0.0,
                    ..valid.clone()
                },
                "half_life_rounds",
            ),
            (
                DaemonConfig {
                    max_tracked: 0,
                    ..valid.clone()
                },
                "max_tracked",
            ),
        ];
        for (config, needle) in broken {
            let err = ClusterConfig::default().with_daemon(config).unwrap_err();
            match err {
                DeployConfigError::InvalidDaemonConfig(why) => {
                    assert!(why.contains(needle), "{why} should mention {needle}");
                }
                other => panic!("expected InvalidDaemonConfig, got {other:?}"),
            }
        }
    }

    #[test]
    fn errors_display_their_cause() {
        let text = DeployConfigError::IoTimeoutNotBelowTick {
            io_timeout: Duration::from_millis(40),
            tick: Duration::from_millis(40),
        }
        .to_string();
        assert!(text.contains("io_timeout"), "{text}");
        assert!(DeployConfigError::ZeroTick.to_string().contains("tick"));
    }
}
