//! The per-node actor: one `Adam2Node` behind a TCP listener.
//!
//! Each deployed node runs three threads over shared state:
//!
//! - **listener** — accepts loopback connections and answers one frame per
//!   connection: gossip requests go through
//!   [`adam2_core::runtime::serve_exchange`], bootstrap joins extend the
//!   peer view, and control frames (instance injection, estimate
//!   collection) service the harness. Responses to gossip requests are
//!   cached by sequence number so a retransmitted request replays the
//!   original response instead of re-applying the merge — the same dedup
//!   contract the simulator's exchange-repair path relies on.
//! - **clock** — derives the gossip round from wall time against the
//!   cluster-wide epoch instant, finalises due instances, and enqueues one
//!   exchange job per round onto the bounded outbound queue.
//! - **sender** — drains the queue, performing each exchange with
//!   per-attempt loss draws from the [`LossShim`], connect/read/write
//!   timeouts, and bounded retries; permanently failed exchanges are
//!   counted and abandoned rather than blocking the queue.
//!
//! Nothing here panics on network input: malformed frames are counted and
//! the connection dropped.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use adam2_core::runtime::{absorb_exchange_response, serve_exchange, snapshot_for_round};
use adam2_core::wire::GossipMessage;
use adam2_core::{Adam2Node, AttrValue};
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::RngExt as _;
use rand::SeedableRng;

use crate::frame::{read_frame_counted, write_frame, EstimateWire, Frame, FrameError};
use crate::shim::{Direction, LossShim};
use crate::stats::NodeStats;

/// How often blocked loops (accept polling, queue waits) re-check the
/// shutdown flag.
const POLL: Duration = Duration::from_millis(1);

/// Entries kept in the per-node response cache before the oldest sequence
/// numbers are evicted.
const SEQ_CACHE_CAP: usize = 256;

/// Timing and robustness knobs shared by every node of a cluster.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Wall-clock length of one gossip round.
    pub tick: Duration,
    /// Read/write/connect timeout for every socket operation.
    pub io_timeout: Duration,
    /// Additional delivery attempts after a failed or dropped exchange.
    pub retries: u32,
    /// Outbound queue bound; jobs beyond it are dropped (backpressure).
    pub queue_capacity: usize,
    /// Maximum peer-view size.
    pub view_size: usize,
    /// Seed for the node's exchange-partner RNG.
    pub seed: u64,
}

impl Default for NodeConfig {
    fn default() -> Self {
        Self {
            tick: Duration::from_millis(40),
            io_timeout: Duration::from_millis(15),
            retries: 2,
            queue_capacity: 4,
            view_size: 12,
            seed: 0,
        }
    }
}

/// One queued exchange attempt: gossip with a peer for a given round.
struct ExchangeJob {
    peer: u16,
    round: u64,
}

/// Bounded multi-producer queue with a condvar for the sender thread.
#[derive(Default)]
struct OutboundQueue {
    jobs: Mutex<VecDeque<ExchangeJob>>,
    ready: Condvar,
}

struct CacheEntry {
    response: Bytes,
    times_seen: u32,
}

/// Bounded seq → cached-response map (FIFO eviction).
struct SeqCache {
    entries: HashMap<u64, CacheEntry>,
    order: VecDeque<u64>,
}

impl SeqCache {
    fn new() -> Self {
        Self {
            entries: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    /// Bumps and returns the delivery count for `seq` if cached.
    fn replay(&mut self, seq: u64) -> Option<(Bytes, u32)> {
        let entry = self.entries.get_mut(&seq)?;
        entry.times_seen += 1;
        Some((entry.response.clone(), entry.times_seen))
    }

    fn insert(&mut self, seq: u64, response: Bytes) {
        if self.entries.len() >= SEQ_CACHE_CAP {
            if let Some(old) = self.order.pop_front() {
                self.entries.remove(&old);
            }
        }
        self.order.push_back(seq);
        self.entries.insert(
            seq,
            CacheEntry {
                response,
                times_seen: 0,
            },
        );
    }
}

/// Mutable node state: everything the three threads contend on.
struct NodeInner {
    node: Adam2Node,
    view: Vec<u16>,
    seq_cache: SeqCache,
    next_seq: u64,
    rng: StdRng,
}

/// State shared between a node's threads and the cluster driver.
pub struct NodeShared {
    inner: Mutex<NodeInner>,
    queue: OutboundQueue,
    /// Lock-free counters sampled by the cluster driver.
    pub stats: NodeStats,
    shutdown: AtomicBool,
    /// Cluster-wide round-zero instant; all nodes share it so their clocks
    /// agree on round numbers.
    epoch: Instant,
    config: NodeConfig,
    shim: Arc<LossShim>,
    port: u16,
}

impl NodeShared {
    /// Current gossip round according to the shared clock.
    pub fn current_round(&self) -> u64 {
        (self.epoch.elapsed().as_nanos() / self.config.tick.as_nanos().max(1)) as u64
    }

    fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Snapshot of the node's current peer view (for tests and the driver).
    pub fn view(&self) -> Vec<u16> {
        self.inner.lock().expect("node lock").view.clone()
    }

    /// Seeds the node's peer view from outside — the cluster bootstrap path
    /// feeds `JoinAck` digests here on the joiner's behalf.
    pub fn admit_peers(&self, peers: &[u16]) {
        let mut inner = self.inner.lock().expect("node lock");
        self.merge_peers(&mut inner, peers);
    }

    /// The node's current distribution estimate, if any instance completed.
    pub fn estimate_wire(&self) -> Option<EstimateWire> {
        let inner = self.inner.lock().expect("node lock");
        inner.node.estimate().map(EstimateWire::from)
    }

    fn merge_peers(&self, inner: &mut NodeInner, peers: &[u16]) {
        for &p in peers {
            if p != self.port && !inner.view.contains(&p) {
                inner.view.push(p);
            }
        }
        let cap = self.config.view_size;
        if inner.view.len() > cap {
            // Keep the freshest tail: newly learned peers displace the
            // oldest entries, a crude but serviceable view shuffle.
            let excess = inner.view.len() - cap;
            inner.view.drain(..excess);
        }
    }

    /// Sample of this node's view plus its own port, piggybacked on
    /// responses so initiators keep their views fresh.
    fn view_digest(&self, inner: &mut NodeInner) -> Vec<u16> {
        let mut digest = Vec::with_capacity(5);
        digest.push(self.port);
        let len = inner.view.len();
        for _ in 0..4.min(len) {
            let idx = inner.rng.random_range(0..len);
            let pick = inner.view[idx];
            if !digest.contains(&pick) {
                digest.push(pick);
            }
        }
        digest
    }
}

/// A running node: its listener port, shared state, and thread handles.
pub struct NodeHandle {
    /// Loopback port the node's listener answers on.
    pub port: u16,
    /// State shared with the node's threads.
    pub shared: Arc<NodeShared>,
    threads: Vec<JoinHandle<()>>,
}

impl NodeHandle {
    /// Binds a listener on an ephemeral loopback port and spawns the three
    /// node threads. The node starts with an empty view; the cluster
    /// bootstraps it through the seed node afterwards.
    pub fn spawn(
        value: AttrValue,
        initial_n_estimate: f64,
        config: NodeConfig,
        shim: Arc<LossShim>,
        epoch: Instant,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0))?;
        listener.set_nonblocking(true)?;
        let port = listener.local_addr()?.port();
        let shared = Arc::new(NodeShared {
            inner: Mutex::new(NodeInner {
                node: Adam2Node::new(value, initial_n_estimate),
                view: Vec::new(),
                seq_cache: SeqCache::new(),
                next_seq: u64::from(port) << 40,
                rng: StdRng::seed_from_u64(config.seed ^ u64::from(port)),
            }),
            queue: OutboundQueue::default(),
            stats: NodeStats::default(),
            shutdown: AtomicBool::new(false),
            epoch,
            config,
            shim,
            port,
        });
        let threads = vec![
            spawn_named("listener", {
                let shared = Arc::clone(&shared);
                move || listener_loop(&shared, listener)
            }),
            spawn_named("clock", {
                let shared = Arc::clone(&shared);
                move || clock_loop(&shared)
            }),
            spawn_named("sender", {
                let shared = Arc::clone(&shared);
                move || sender_loop(&shared)
            }),
        ];
        Ok(Self {
            port,
            shared,
            threads,
        })
    }

    /// Signals every thread to stop and joins them. Returns `true` when all
    /// threads exited cleanly (none panicked).
    pub fn shutdown(mut self) -> bool {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.queue.ready.notify_all();
        let mut clean = true;
        for handle in self.threads.drain(..) {
            clean &= handle.join().is_ok();
        }
        clean
    }
}

fn spawn_named(name: &str, f: impl FnOnce() + Send + 'static) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("adam2-{name}"))
        .spawn(f)
        .expect("spawn node thread")
}

// ---------------------------------------------------------------------------
// Listener thread
// ---------------------------------------------------------------------------

fn listener_loop(shared: &NodeShared, listener: TcpListener) {
    while !shared.is_shutdown() {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.stats.record_connection_accepted();
                handle_connection(shared, stream);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

fn handle_connection(shared: &NodeShared, mut stream: TcpStream) {
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    let _ = stream.set_read_timeout(Some(shared.config.io_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.io_timeout));
    let _ = stream.set_nodelay(true);
    let frame = match read_frame_counted(&mut stream) {
        Ok((n, Ok(frame))) => {
            shared.stats.record_frame_received(n);
            frame
        }
        Ok((_, Err(e))) => {
            // Protocol violation: count it, drop the connection, move on.
            // Implausible-value rejections (the Byzantine wire screen) are
            // counted separately from structurally malformed frames.
            match e {
                FrameError::InvalidValues(_) => shared.stats.record_invalid_frame(),
                _ => shared.stats.record_malformed_frame(),
            }
            return;
        }
        Err(_) => return, // timeout / reset mid-frame
    };
    match frame {
        Frame::Request { sender_port, msg } => serve_request(shared, stream, sender_port, msg),
        Frame::Join { port } => {
            let mut inner = shared.inner.lock().expect("node lock");
            shared.merge_peers(&mut inner, &[port]);
            let digest = shared.view_digest(&mut inner);
            drop(inner);
            send_reply(shared, &mut stream, &Frame::JoinAck { peers: digest });
        }
        Frame::StartInstance { msg } => {
            if let Some(payload) = msg.instances.first() {
                let meta = payload.to_local().meta;
                let mut inner = shared.inner.lock().expect("node lock");
                inner.node.begin_instance(meta);
            }
            send_reply(shared, &mut stream, &Frame::Ack);
        }
        Frame::GetEstimate => {
            let estimate = shared.estimate_wire();
            send_reply(shared, &mut stream, &Frame::Estimate(estimate));
        }
        // Peers never open a connection with these; ignore.
        Frame::Response { .. } | Frame::JoinAck { .. } | Frame::Estimate(_) | Frame::Ack => {}
    }
}

/// Serves one gossip request: replays the cached response on a retransmit,
/// otherwise merges and caches. The response write is subject to the shim's
/// response-loss draw *after* the merge — reproducing exactly the
/// "response lost" perturbation the repair path is built to heal.
fn serve_request(shared: &NodeShared, mut stream: TcpStream, sender_port: u16, msg: GossipMessage) {
    let round = shared.current_round();
    let seq = msg.seq;
    let mut inner = shared.inner.lock().expect("node lock");
    let (encoded, attempt) = if let Some((cached, times_seen)) = inner.seq_cache.replay(seq) {
        shared.stats.record_retransmission();
        (cached, times_seen)
    } else {
        let (response_msg, _outcome) = serve_exchange(&mut inner.node, &msg, round);
        let digest = shared.view_digest(&mut inner);
        let frame = Frame::Response {
            peers: digest,
            msg: response_msg,
        };
        let encoded = frame.encode();
        inner.seq_cache.insert(seq, encoded.clone());
        (encoded, 0)
    };
    shared.merge_peers(&mut inner, &[sender_port]);
    drop(inner);
    if shared
        .shim
        .should_drop(round, seq, attempt, Direction::Response)
    {
        shared.stats.record_shim_drop();
        return;
    }
    use std::io::Write as _;
    if stream.write_all(encoded.as_slice()).is_ok() && stream.flush().is_ok() {
        shared.stats.record_frame_sent(encoded.len());
    }
}

fn send_reply(shared: &NodeShared, stream: &mut TcpStream, frame: &Frame) {
    if let Ok(n) = write_frame(stream, frame) {
        shared.stats.record_frame_sent(n);
    }
}

// ---------------------------------------------------------------------------
// Clock thread
// ---------------------------------------------------------------------------

fn clock_loop(shared: &NodeShared) {
    let mut last_round: Option<u64> = None;
    while !shared.is_shutdown() {
        let round = shared.current_round();
        if last_round != Some(round) {
            last_round = Some(round);
            on_round_start(shared, round);
        }
        std::thread::sleep(POLL.max(shared.config.tick / 8));
    }
}

fn on_round_start(shared: &NodeShared, round: u64) {
    let peer = {
        let mut inner = shared.inner.lock().expect("node lock");
        inner.node.finalize_due_instances(round);
        // Gossip every round even without instances: an empty request
        // pulls the responder's running instances back (anti-entropy), so
        // nodes that no view currently points at still get infected, and
        // the piggybacked peer digests keep views fresh.
        if inner.view.is_empty() {
            None
        } else {
            let len = inner.view.len();
            let pick = inner.rng.random_range(0..len);
            Some(inner.view[pick])
        }
    };
    let Some(peer) = peer else { return };
    let mut jobs = shared.queue.jobs.lock().expect("queue lock");
    if jobs.len() >= shared.config.queue_capacity {
        // Backpressure: the sender can't keep up (slow or dead peers);
        // shedding this round's exchange is the graceful option.
        shared.stats.record_backpressure_drop();
        return;
    }
    jobs.push_back(ExchangeJob { peer, round });
    shared.stats.record_queue_depth(jobs.len());
    drop(jobs);
    shared.queue.ready.notify_one();
}

// ---------------------------------------------------------------------------
// Sender thread
// ---------------------------------------------------------------------------

fn sender_loop(shared: &NodeShared) {
    while !shared.is_shutdown() {
        let job = {
            let jobs = shared.queue.jobs.lock().expect("queue lock");
            let (mut jobs, _) = shared
                .queue
                .ready
                .wait_timeout_while(jobs, shared.config.tick, |q| q.is_empty())
                .expect("queue lock");
            jobs.pop_front()
        };
        if let Some(job) = job {
            run_exchange(shared, &job);
        }
    }
}

/// One push–pull exchange against `job.peer`, with shim loss draws and
/// bounded retries. Request loss is emulated *before* connecting (the frame
/// never reaches the peer, and the initiator waits out its timeout);
/// response loss happens responder-side after the merge. Either way the
/// initiator retries with the same sequence number, so the responder's
/// cache replays rather than re-merging.
fn run_exchange(shared: &NodeShared, job: &ExchangeJob) {
    let (sent, seq) = {
        let mut inner = shared.inner.lock().expect("node lock");
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let snapshot = snapshot_for_round(&inner.node, job.round, seq);
        (snapshot, seq)
    };
    shared.stats.record_exchange_started();
    shared.stats.enter_flight();
    let started = Instant::now();
    let delay_ticks = shared.shim.extra_delay_ticks(job.round);
    if delay_ticks > 0 {
        std::thread::sleep(shared.config.tick.min(Duration::from_millis(2)) * delay_ticks as u32);
    }
    let mut completed = false;
    for attempt in 0..=shared.config.retries {
        if attempt > 0 {
            shared.stats.record_retransmission();
        }
        if shared
            .shim
            .should_drop(job.round, seq, attempt, Direction::Request)
        {
            // The request "left" but never arrives: burn the timeout the
            // initiator would have spent waiting, then retry.
            shared.stats.record_shim_drop();
            std::thread::sleep(shared.config.io_timeout);
            continue;
        }
        match attempt_exchange(shared, job.peer, &sent) {
            Ok(Some(response)) => {
                let mut inner = shared.inner.lock().expect("node lock");
                absorb_exchange_response(&mut inner.node, &sent, &response.1, job.round);
                shared.merge_peers(&mut inner, &response.0);
                drop(inner);
                completed = true;
                break;
            }
            Ok(None) | Err(_) => continue, // non-response or socket failure
        }
    }
    shared.stats.leave_flight();
    if completed {
        shared.stats.record_exchange_completed();
        shared
            .stats
            .record_latency_us(started.elapsed().as_micros() as u64);
    } else {
        shared.stats.record_exchange_aborted();
    }
}

type PeersAndMessage = (Vec<u16>, GossipMessage);

fn attempt_exchange(
    shared: &NodeShared,
    peer: u16,
    sent: &GossipMessage,
) -> io::Result<Option<PeersAndMessage>> {
    let addr = SocketAddr::from((Ipv4Addr::LOCALHOST, peer));
    let mut stream = TcpStream::connect_timeout(&addr, shared.config.io_timeout)?;
    let _ = stream.set_read_timeout(Some(shared.config.io_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.io_timeout));
    let _ = stream.set_nodelay(true);
    let n = write_frame(
        &mut stream,
        &Frame::Request {
            sender_port: shared.port,
            msg: sent.clone(),
        },
    )?;
    shared.stats.record_frame_sent(n);
    match read_frame_counted(&mut stream)? {
        (n, Ok(Frame::Response { peers, msg })) => {
            shared.stats.record_frame_received(n);
            Ok(Some((peers, msg)))
        }
        (_, Ok(_)) => Ok(None),
        (_, Err(FrameError::InvalidValues(_))) => {
            shared.stats.record_invalid_frame();
            Ok(None)
        }
        (_, Err(_)) => {
            shared.stats.record_malformed_frame();
            Ok(None)
        }
    }
}
