//! The per-node actor: one `Adam2Node` behind a TCP listener.
//!
//! [`NodeShared`] is the backend-neutral heart of a deployed node: the
//! protocol state (`Adam2Node`, peer view, seq cache, RNG) behind one
//! mutex, plus the pure protocol entry points both runtimes drive:
//!
//! - [`NodeShared::respond_frame`] — answer one inbound frame: gossip
//!   requests go through [`adam2_core::runtime::serve_exchange`], bootstrap
//!   joins extend the peer view, and control frames (instance injection,
//!   estimate collection) service the harness. Responses to gossip
//!   requests are cached by sequence number so a retransmitted request
//!   replays the original response instead of re-applying the merge — the
//!   same dedup contract the simulator's exchange-repair path relies on.
//! - [`NodeShared::plan_round`] — finalise due instances and pick this
//!   round's exchange partner.
//! - [`NodeShared::begin_exchange`] / [`NodeShared::complete_exchange`] —
//!   initiator-side bookkeeping via [`adam2_core::runtime::PendingExchange`].
//!
//! The *threaded* backend in this module drives those entry points with
//! three OS threads per node (listener / clock / sender over a bounded
//! outbound queue); the *reactor* backend in [`crate::reactor`] drives the
//! same entry points from a shared event loop. Nothing here panics on
//! network input: malformed frames are counted and the connection dropped.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use adam2_core::runtime::PendingExchange;
use adam2_core::wire::GossipMessage;
use adam2_core::{Adam2Node, AttrValue, BlendedTracker, FadeConfig};
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::RngExt as _;
use rand::SeedableRng;

use crate::config::NodeConfig;
use crate::frame::{read_frame_counted, write_frame, EstimateWire, Frame, FrameError};
use crate::shim::{Direction, LossShim};
use crate::stats::NodeStats;

/// How often blocked loops (accept polling, queue waits) re-check the
/// shutdown flag.
const POLL: Duration = Duration::from_millis(1);

/// Entries kept in the per-node response cache before the oldest sequence
/// numbers are evicted.
pub(crate) const SEQ_CACHE_CAP: usize = 256;

/// One queued exchange attempt: gossip with a peer for a given round.
struct ExchangeJob {
    peer: u16,
    round: u64,
}

/// Bounded multi-producer queue with a condvar for the sender thread.
#[derive(Default)]
struct OutboundQueue {
    jobs: Mutex<VecDeque<ExchangeJob>>,
    ready: Condvar,
}

struct CacheEntry {
    response: Bytes,
    times_seen: u32,
}

/// Bounded seq → cached-response map (FIFO eviction).
struct SeqCache {
    entries: HashMap<u64, CacheEntry>,
    order: VecDeque<u64>,
}

impl SeqCache {
    fn new() -> Self {
        Self {
            entries: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    /// Bumps and returns the delivery count for `seq` if cached.
    fn replay(&mut self, seq: u64) -> Option<(Bytes, u32)> {
        let entry = self.entries.get_mut(&seq)?;
        entry.times_seen += 1;
        Some((entry.response.clone(), entry.times_seen))
    }

    fn insert(&mut self, seq: u64, response: Bytes) {
        if self.entries.len() >= SEQ_CACHE_CAP {
            if let Some(old) = self.order.pop_front() {
                self.entries.remove(&old);
            }
        }
        self.order.push_back(seq);
        self.entries.insert(
            seq,
            CacheEntry {
                response,
                times_seen: 0,
            },
        );
    }
}

/// Mutable node state: everything the threads (or reactor shards) contend
/// on.
struct NodeInner {
    node: Adam2Node,
    view: Vec<u16>,
    seq_cache: SeqCache,
    next_seq: u64,
    rng: StdRng,
    /// Daemon mode only: the time-faded blend of completed estimates this
    /// node serves from `GetEstimate` instead of the newest snapshot.
    tracker: Option<BlendedTracker>,
}

/// State shared between a node's runtime (threads or reactor shard) and the
/// cluster driver.
pub struct NodeShared {
    inner: Mutex<NodeInner>,
    queue: OutboundQueue,
    /// Lock-free counters sampled by the cluster driver.
    pub stats: NodeStats,
    shutdown: AtomicBool,
    /// Cluster-wide round-zero instant; all nodes share it so their clocks
    /// agree on round numbers.
    epoch: Instant,
    config: NodeConfig,
    shim: Arc<LossShim>,
    port: u16,
}

impl NodeShared {
    /// Binds a nonblocking listener on an ephemeral loopback port and
    /// builds the shared node state around it. The node starts with an
    /// empty view; the cluster bootstraps it through an introducer
    /// afterwards. Backends take the listener and drive it however they
    /// like (blocking accept-poll thread, or a reactor sweep).
    pub(crate) fn create(
        value: AttrValue,
        initial_n_estimate: f64,
        config: NodeConfig,
        shim: Arc<LossShim>,
        epoch: Instant,
        fade: Option<FadeConfig>,
    ) -> io::Result<(Arc<Self>, TcpListener)> {
        let listener = TcpListener::bind(SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0))?;
        listener.set_nonblocking(true)?;
        let port = listener.local_addr()?.port();
        let shared = Arc::new(Self {
            inner: Mutex::new(NodeInner {
                node: Adam2Node::new(value, initial_n_estimate),
                view: Vec::new(),
                seq_cache: SeqCache::new(),
                next_seq: u64::from(port) << 40,
                rng: StdRng::seed_from_u64(config.seed ^ u64::from(port)),
                tracker: fade.map(BlendedTracker::new),
            }),
            queue: OutboundQueue::default(),
            stats: NodeStats::default(),
            shutdown: AtomicBool::new(false),
            epoch,
            config,
            shim,
            port,
        });
        Ok((shared, listener))
    }

    /// Loopback port the node's listener answers on.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// The node's timing/robustness configuration.
    pub(crate) fn config(&self) -> &NodeConfig {
        &self.config
    }

    /// The socket-level fault shim this node draws from.
    pub(crate) fn shim(&self) -> &LossShim {
        &self.shim
    }

    /// Current gossip round according to the shared clock.
    pub fn current_round(&self) -> u64 {
        (self.epoch.elapsed().as_nanos() / self.config.tick.as_nanos().max(1)) as u64
    }

    fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Snapshot of the node's current peer view (for tests and the driver).
    pub fn view(&self) -> Vec<u16> {
        self.inner.lock().expect("node lock").view.clone()
    }

    /// Seeds the node's peer view from outside — the cluster bootstrap path
    /// feeds `JoinAck` digests here on the joiner's behalf.
    pub fn admit_peers(&self, peers: &[u16]) {
        let mut inner = self.inner.lock().expect("node lock");
        self.merge_peers(&mut inner, peers);
    }

    /// The node's current distribution estimate, if any instance completed.
    ///
    /// In daemon mode this is the time-faded blend over the node's
    /// completed instances (rendered at the newest estimate's knots so it
    /// is wire-compatible with a single snapshot); otherwise it is the
    /// newest completed instance verbatim.
    pub fn estimate_wire(&self) -> Option<EstimateWire> {
        let now = self.current_round();
        let inner = self.inner.lock().expect("node lock");
        let Some(tracker) = inner.tracker.as_ref() else {
            return inner.node.estimate().map(EstimateWire::from);
        };
        let newest = tracker.newest()?;
        let (min, max, thresholds, fractions) = tracker.snapshot_points(now)?;
        Some(EstimateWire {
            instance: newest.instance,
            completed_round: newest.completed_at,
            n_hat: inner.node.estimate().and_then(|e| e.n_hat),
            min,
            max,
            thresholds,
            fractions,
        })
    }

    fn merge_peers(&self, inner: &mut NodeInner, peers: &[u16]) {
        for &p in peers {
            if p != self.port && !inner.view.contains(&p) {
                inner.view.push(p);
            }
        }
        let cap = self.config.view_size;
        if inner.view.len() > cap {
            // Keep the freshest tail: newly learned peers displace the
            // oldest entries, a crude but serviceable view shuffle.
            let excess = inner.view.len() - cap;
            inner.view.drain(..excess);
        }
    }

    /// Sample of this node's view plus its own port, piggybacked on
    /// responses so initiators keep their views fresh.
    fn view_digest(&self, inner: &mut NodeInner) -> Vec<u16> {
        let mut digest = Vec::with_capacity(5);
        digest.push(self.port);
        let len = inner.view.len();
        for _ in 0..4.min(len) {
            let idx = inner.rng.random_range(0..len);
            let pick = inner.view[idx];
            if !digest.contains(&pick) {
                digest.push(pick);
            }
        }
        digest
    }

    // -----------------------------------------------------------------------
    // Backend-neutral protocol entry points
    // -----------------------------------------------------------------------

    /// Answers one inbound frame, returning the encoded reply to write back
    /// (or `None` when the connection should close without a reply — either
    /// the frame type never gets one, or the shim dropped the response).
    ///
    /// Gossip requests replay the cached response on a retransmit,
    /// otherwise merge and cache. The reply is subject to the shim's
    /// response-loss draw *after* the merge — reproducing exactly the
    /// "response lost" perturbation the repair path is built to heal.
    pub(crate) fn respond_frame(&self, frame: Frame) -> Option<Bytes> {
        match frame {
            Frame::Request { sender_port, msg } => {
                let round = self.current_round();
                let seq = msg.seq;
                let mut inner = self.inner.lock().expect("node lock");
                let (encoded, attempt) =
                    if let Some((cached, times_seen)) = inner.seq_cache.replay(seq) {
                        self.stats.record_retransmission();
                        (cached, times_seen)
                    } else {
                        let (response_msg, _outcome) =
                            adam2_core::runtime::serve_exchange(&mut inner.node, &msg, round);
                        let digest = self.view_digest(&mut inner);
                        let encoded = Frame::Response {
                            peers: digest,
                            msg: response_msg,
                        }
                        .encode();
                        inner.seq_cache.insert(seq, encoded.clone());
                        (encoded, 0)
                    };
                self.merge_peers(&mut inner, &[sender_port]);
                drop(inner);
                if self
                    .shim
                    .should_drop(round, seq, attempt, Direction::Response)
                {
                    self.stats.record_shim_drop();
                    return None;
                }
                Some(encoded)
            }
            Frame::Join { port } => {
                let mut inner = self.inner.lock().expect("node lock");
                self.merge_peers(&mut inner, &[port]);
                let digest = self.view_digest(&mut inner);
                Some(Frame::JoinAck { peers: digest }.encode())
            }
            Frame::StartInstance { msg } => {
                if let Some(payload) = msg.instances.first() {
                    let meta = payload.to_local().meta;
                    let mut inner = self.inner.lock().expect("node lock");
                    inner.node.begin_instance(meta);
                }
                Some(Frame::Ack.encode())
            }
            Frame::GetEstimate => Some(Frame::Estimate(self.estimate_wire()).encode()),
            // Peers never open a connection with these; ignore.
            Frame::Response { .. } | Frame::JoinAck { .. } | Frame::Estimate(_) | Frame::Ack => {
                None
            }
        }
    }

    /// Start-of-round work: finalise due instances, then pick this round's
    /// exchange partner (or `None` while the view is still empty).
    ///
    /// Gossips every round even without instances: an empty request pulls
    /// the responder's running instances back (anti-entropy), so nodes
    /// that no view currently points at still get infected, and the
    /// piggybacked peer digests keep views fresh.
    pub(crate) fn plan_round(&self, round: u64) -> Option<u16> {
        let mut inner = self.inner.lock().expect("node lock");
        inner.node.finalize_due_instances(round);
        // Daemon mode: fold any freshly finalised estimate into the blend
        // (absorb ignores instances already tracked, so re-offering the
        // newest estimate every round is idempotent).
        let NodeInner { node, tracker, .. } = &mut *inner;
        if let (Some(tracker), Some(est)) = (tracker.as_mut(), node.estimate()) {
            tracker.absorb(est.instance.as_u64(), est.completed_round, est.cdf.clone());
        }
        if inner.view.is_empty() {
            None
        } else {
            let len = inner.view.len();
            let pick = inner.rng.random_range(0..len);
            Some(inner.view[pick])
        }
    }

    /// Allocates a sequence number and snapshots this round's outbound
    /// exchange into a [`PendingExchange`] both backends drive attempts
    /// from.
    pub(crate) fn begin_exchange(&self, round: u64) -> PendingExchange {
        let mut inner = self.inner.lock().expect("node lock");
        let seq = inner.next_seq;
        inner.next_seq += 1;
        PendingExchange::begin(&inner.node, round, seq, self.config.retries)
    }

    /// Absorbs a peer's gossip response into the node and merges the
    /// piggybacked peer digest into the view.
    pub(crate) fn complete_exchange(
        &self,
        pending: &PendingExchange,
        peers: &[u16],
        response: &GossipMessage,
    ) {
        let mut inner = self.inner.lock().expect("node lock");
        pending.absorb(&mut inner.node, response);
        self.merge_peers(&mut inner, peers);
    }
}

/// A node running on the threaded backend: shared state plus the three OS
/// thread handles. Internal to the crate — runtimes are selected through
/// [`crate::ClusterConfig`], never by spawning nodes directly.
pub(crate) struct NodeHandle {
    /// State shared with the node's threads.
    pub(crate) shared: Arc<NodeShared>,
    threads: Vec<JoinHandle<()>>,
}

impl NodeHandle {
    /// Creates the node state and spawns the three threads of the
    /// thread-per-node backend.
    pub(crate) fn spawn(
        value: AttrValue,
        initial_n_estimate: f64,
        config: NodeConfig,
        shim: Arc<LossShim>,
        epoch: Instant,
        fade: Option<FadeConfig>,
    ) -> io::Result<Self> {
        let (shared, listener) =
            NodeShared::create(value, initial_n_estimate, config, shim, epoch, fade)?;
        let threads = vec![
            spawn_named("listener", {
                let shared = Arc::clone(&shared);
                move || listener_loop(&shared, listener)
            }),
            spawn_named("clock", {
                let shared = Arc::clone(&shared);
                move || clock_loop(&shared)
            }),
            spawn_named("sender", {
                let shared = Arc::clone(&shared);
                move || sender_loop(&shared)
            }),
        ];
        Ok(Self { shared, threads })
    }

    /// Signals every thread to stop and joins them. Returns `true` when all
    /// threads exited cleanly (none panicked).
    pub(crate) fn shutdown(mut self) -> bool {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.queue.ready.notify_all();
        let mut clean = true;
        for handle in self.threads.drain(..) {
            clean &= handle.join().is_ok();
        }
        clean
    }
}

fn spawn_named(name: &str, f: impl FnOnce() + Send + 'static) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("adam2-{name}"))
        .spawn(f)
        .expect("spawn node thread")
}

// ---------------------------------------------------------------------------
// Listener thread
// ---------------------------------------------------------------------------

fn listener_loop(shared: &NodeShared, listener: TcpListener) {
    while !shared.is_shutdown() {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.stats.record_connection_accepted();
                handle_connection(shared, stream);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

fn handle_connection(shared: &NodeShared, mut stream: TcpStream) {
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    let _ = stream.set_read_timeout(Some(shared.config.io_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.io_timeout));
    let _ = stream.set_nodelay(true);
    let frame = match read_frame_counted(&mut stream) {
        Ok((n, Ok(frame))) => {
            shared.stats.record_frame_received(n);
            frame
        }
        Ok((_, Err(e))) => {
            // Protocol violation: count it, drop the connection, move on.
            // Implausible-value rejections (the Byzantine wire screen) are
            // counted separately from structurally malformed frames.
            match e {
                FrameError::InvalidValues(_) => shared.stats.record_invalid_frame(),
                _ => shared.stats.record_malformed_frame(),
            }
            return;
        }
        Err(_) => return, // timeout / reset mid-frame
    };
    if let Some(reply) = shared.respond_frame(frame) {
        use std::io::Write as _;
        if stream.write_all(reply.as_slice()).is_ok() && stream.flush().is_ok() {
            shared.stats.record_frame_sent(reply.len());
        }
    }
}

// ---------------------------------------------------------------------------
// Clock thread
// ---------------------------------------------------------------------------

fn clock_loop(shared: &NodeShared) {
    let mut last_round: Option<u64> = None;
    while !shared.is_shutdown() {
        let round = shared.current_round();
        if last_round != Some(round) {
            last_round = Some(round);
            on_round_start(shared, round);
        }
        std::thread::sleep(POLL.max(shared.config.tick / 8));
    }
}

fn on_round_start(shared: &NodeShared, round: u64) {
    let Some(peer) = shared.plan_round(round) else {
        return;
    };
    let mut jobs = shared.queue.jobs.lock().expect("queue lock");
    if jobs.len() >= shared.config.queue_capacity {
        // Backpressure: the sender can't keep up (slow or dead peers);
        // shedding this round's exchange is the graceful option.
        shared.stats.record_backpressure_drop();
        return;
    }
    jobs.push_back(ExchangeJob { peer, round });
    shared.stats.record_queue_depth(jobs.len());
    drop(jobs);
    shared.queue.ready.notify_one();
}

// ---------------------------------------------------------------------------
// Sender thread
// ---------------------------------------------------------------------------

fn sender_loop(shared: &NodeShared) {
    while !shared.is_shutdown() {
        let job = {
            let jobs = shared.queue.jobs.lock().expect("queue lock");
            let (mut jobs, _) = shared
                .queue
                .ready
                .wait_timeout_while(jobs, shared.config.tick, |q| q.is_empty())
                .expect("queue lock");
            jobs.pop_front()
        };
        if let Some(job) = job {
            run_exchange(shared, &job);
        }
    }
}

/// One push–pull exchange against `job.peer`, with shim loss draws and
/// bounded retries. Request loss is emulated *before* connecting (the frame
/// never reaches the peer, and the initiator waits out its timeout);
/// response loss happens responder-side after the merge. Either way the
/// initiator retries with the same sequence number, so the responder's
/// cache replays rather than re-merging.
fn run_exchange(shared: &NodeShared, job: &ExchangeJob) {
    let mut pending = shared.begin_exchange(job.round);
    shared.stats.record_exchange_started();
    shared.stats.enter_flight();
    let started = Instant::now();
    let delay_ticks = shared.shim.extra_delay_ticks(job.round);
    if delay_ticks > 0 {
        std::thread::sleep(shared.config.tick.min(Duration::from_millis(2)) * delay_ticks as u32);
    }
    let mut completed = false;
    while let Some(attempt) = pending.next_attempt() {
        if attempt > 0 {
            shared.stats.record_retransmission();
        }
        if shared
            .shim
            .should_drop(job.round, pending.seq(), attempt, Direction::Request)
        {
            // The request "left" but never arrives: burn the timeout the
            // initiator would have spent waiting, then retry.
            shared.stats.record_shim_drop();
            std::thread::sleep(shared.config.io_timeout);
            continue;
        }
        match attempt_exchange(shared, job.peer, &pending.sent) {
            Ok(Some((peers, response))) => {
                shared.complete_exchange(&pending, &peers, &response);
                completed = true;
                break;
            }
            Ok(None) | Err(_) => continue, // non-response or socket failure
        }
    }
    shared.stats.leave_flight();
    if completed {
        shared.stats.record_exchange_completed();
        shared
            .stats
            .record_latency_us(started.elapsed().as_micros() as u64);
    } else {
        shared.stats.record_exchange_aborted();
    }
}

type PeersAndMessage = (Vec<u16>, GossipMessage);

fn attempt_exchange(
    shared: &NodeShared,
    peer: u16,
    sent: &GossipMessage,
) -> io::Result<Option<PeersAndMessage>> {
    let addr = SocketAddr::from((Ipv4Addr::LOCALHOST, peer));
    let mut stream = TcpStream::connect_timeout(&addr, shared.config.io_timeout)?;
    let _ = stream.set_read_timeout(Some(shared.config.io_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.io_timeout));
    let _ = stream.set_nodelay(true);
    let n = write_frame(
        &mut stream,
        &Frame::Request {
            sender_port: shared.port,
            msg: sent.clone(),
        },
    )?;
    shared.stats.record_frame_sent(n);
    match read_frame_counted(&mut stream)? {
        (n, Ok(Frame::Response { peers, msg })) => {
            shared.stats.record_frame_received(n);
            Ok(Some((peers, msg)))
        }
        (_, Ok(_)) => Ok(None),
        (_, Err(FrameError::InvalidValues(_))) => {
            shared.stats.record_invalid_frame();
            Ok(None)
        }
        (_, Err(_)) => {
            shared.stats.record_malformed_frame();
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_cache_evicts_fifo_at_capacity() {
        let mut cache = SeqCache::new();
        let payload = Frame::Ack.encode();
        for seq in 0..SEQ_CACHE_CAP as u64 {
            cache.insert(seq, payload.clone());
        }
        // Full but nothing evicted yet: the very first entry still replays.
        assert!(cache.replay(0).is_some());
        // One past capacity evicts exactly the oldest sequence number.
        cache.insert(SEQ_CACHE_CAP as u64, payload.clone());
        assert!(cache.replay(0).is_none());
        assert!(cache.replay(1).is_some());
        assert!(cache.replay(SEQ_CACHE_CAP as u64).is_some());
        // A second overflow takes the next-oldest, in FIFO order.
        cache.insert(SEQ_CACHE_CAP as u64 + 1, payload);
        assert!(cache.replay(1).is_none());
        assert!(cache.replay(2).is_some());
    }

    #[test]
    fn seq_cache_replay_counts_deliveries() {
        let mut cache = SeqCache::new();
        cache.insert(7, Frame::Ack.encode());
        let (_, first) = cache.replay(7).expect("cached");
        let (_, second) = cache.replay(7).expect("cached");
        assert_eq!(first, 1);
        assert_eq!(second, 2);
        assert!(cache.replay(8).is_none());
    }
}
