//! Aggregation instances: the unit of Adam2's gossip averaging.
//!
//! An *aggregation instance* (Section IV) is a sequence of gossip rounds
//! that produces one new CDF approximation at every node. The initiating
//! peer picks a set of thresholds `t_i`; every participating peer `p`
//! enters the push–pull averaging protocol with the indicator values
//! `1 if A(p) <= t_i else 0`, so the gossip average of component `i`
//! converges to the fraction `f_i = F(t_i)`. The same averaging run carries
//!
//! * a *weight* `w` (1 at the initiator, 0 elsewhere) whose average
//!   converges to `1/N`, yielding the system-size estimate,
//! * optional *verification points* for self-assessment of accuracy
//!   (Section VI),
//! * the running global minimum/maximum attribute value, merged by
//!   min/max instead of averaging ("Extreme CDF Values").
//!
//! The multi-value extension (Section IV) is supported through
//! [`AttrValue::Multi`]: indicators become per-threshold value *counts* and
//! an extra averaged component tracks the mean number of values per node;
//! the fraction is recovered at finalisation as `f_i = avg_i / avg`.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::RngExt as _;

use crate::aggregation::robust_pair_merge;
use crate::cdf::InterpCdf;
use crate::config::RobustPolicy;
use crate::error::CdfError;
use crate::estimate::DistributionEstimate;

/// Slack for plausibility bounds: honest values can exceed their exact
/// bound by a rounding error after long averaging chains.
const PLAUSIBLE_EPS: f64 = 1e-9;

/// Unique identifier of an aggregation instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstanceId(u64);

impl InstanceId {
    /// Derives an id from the start round, the initiator's slot and a
    /// protocol-level nonce (SplitMix64 finalizer, collision probability
    /// negligible).
    pub fn derive(start_round: u64, initiator_slot: u64, nonce: u64) -> Self {
        let mut z = start_round
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(initiator_slot.rotate_left(32))
            .wrapping_add(nonce.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Self(z ^ (z >> 31))
    }

    /// Raw id value (for wire encoding).
    pub fn as_u64(&self) -> u64 {
        self.0
    }

    /// Reconstructs an id from its raw value (wire decoding).
    pub fn from_u64(raw: u64) -> Self {
        Self(raw)
    }
}

impl std::fmt::Display for InstanceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "inst-{:016x}", self.0)
    }
}

/// A node's attribute value(s).
///
/// `Single` is the main model of the paper; `Multi` is the Section IV
/// extension where each node contributes a *set* of values (e.g. the sizes
/// of all its files).
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// One attribute value.
    Single(f64),
    /// A (possibly empty) set of attribute values.
    Multi(Vec<f64>),
}

impl AttrValue {
    /// The indicator contribution for threshold `t`: for `Single`, `1` if
    /// the value is `<= t`; for `Multi`, the number of values `<= t`.
    pub fn indicator(&self, t: f64) -> f64 {
        match self {
            AttrValue::Single(v) => {
                if *v <= t {
                    1.0
                } else {
                    0.0
                }
            }
            AttrValue::Multi(vs) => vs.iter().filter(|v| **v <= t).count() as f64,
        }
    }

    /// The value-count contribution (`1` for `Single`, `|A(p)|` for
    /// `Multi`).
    pub fn count(&self) -> f64 {
        match self {
            AttrValue::Single(_) => 1.0,
            AttrValue::Multi(vs) => vs.len() as f64,
        }
    }

    /// The local minimum (`+inf` for an empty `Multi`, so min-merging
    /// ignores it).
    pub fn local_min(&self) -> f64 {
        match self {
            AttrValue::Single(v) => *v,
            AttrValue::Multi(vs) => vs.iter().copied().fold(f64::INFINITY, f64::min),
        }
    }

    /// The local maximum (`-inf` for an empty `Multi`).
    pub fn local_max(&self) -> f64 {
        match self {
            AttrValue::Single(v) => *v,
            AttrValue::Multi(vs) => vs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// One representative value for neighbour-based threshold bootstrap
    /// (`None` for an empty `Multi`).
    pub fn representative(&self, rng: &mut StdRng) -> Option<f64> {
        match self {
            AttrValue::Single(v) => Some(*v),
            AttrValue::Multi(vs) => {
                if vs.is_empty() {
                    None
                } else {
                    Some(vs[rng.random_range(0..vs.len())])
                }
            }
        }
    }

    /// Whether this is a multi-value attribute.
    pub fn is_multi(&self) -> bool {
        matches!(self, AttrValue::Multi(_))
    }
}

/// Immutable, instance-wide metadata, fixed by the initiator and flooded
/// with the instance.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceMeta {
    /// Unique instance identifier.
    pub id: InstanceId,
    /// Interpolation-point thresholds `t_i`, sorted ascending.
    pub thresholds: Arc<[f64]>,
    /// Verification-point thresholds `t'_i` (empty when confidence
    /// estimation is disabled), sorted ascending.
    pub verify_thresholds: Arc<[f64]>,
    /// Round in which the instance started.
    pub start_round: u64,
    /// First round in which the instance is finalised (start + duration).
    pub end_round: u64,
    /// Whether nodes contribute multi-value counts.
    pub multi: bool,
}

impl InstanceMeta {
    /// Number of interpolation points (λ).
    pub fn lambda(&self) -> usize {
        self.thresholds.len()
    }

    /// Number of gossip rounds the instance runs.
    pub fn duration(&self) -> u64 {
        self.end_round - self.start_round
    }
}

/// Outcome of one robust pairwise instance merge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RobustMergeOutcome {
    /// The partner contribution failed the plausibility check and the
    /// merge was skipped entirely (neither side changed).
    pub rejected: bool,
    /// Components whose influence was limited (trimmed or capped).
    pub limited: u32,
}

/// A peer's local averaging state for one aggregation instance.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceLocal {
    /// Shared instance metadata.
    pub meta: Arc<InstanceMeta>,
    /// Running averages of the indicator contributions, one per threshold.
    pub fractions: Vec<f64>,
    /// Running averages at the verification thresholds.
    pub verify_fractions: Vec<f64>,
    /// Running average of the per-node value count (multi-value mode).
    pub count: f64,
    /// System-size weight: the average converges to `1/N`.
    pub weight: f64,
    /// Running global minimum attribute value (min-merged).
    pub min: f64,
    /// Running global maximum attribute value (max-merged).
    pub max: f64,
    /// Restart epoch (self-healing, Section VI): 0 for the original
    /// averaging run; incremented each time the swarm votes to restart the
    /// instance with fresh indicators. Reconciled epidemically — the
    /// highest epoch wins and lower-epoch peers re-enter from their own
    /// value.
    pub epoch: u32,
    /// Whether this peer initiated the instance (it re-contributes weight 1
    /// on every restart, keeping the global weight mass exactly 1).
    pub initiator: bool,
}

impl InstanceLocal {
    /// Initialises a peer's state when it starts or joins an instance.
    ///
    /// The initiator contributes weight 1; every other peer weight 0, so
    /// the weight mass over the whole system is exactly 1 and its average
    /// converges to `1/N`.
    pub fn join(meta: Arc<InstanceMeta>, value: &AttrValue, initiator: bool) -> Self {
        let fractions = meta
            .thresholds
            .iter()
            .map(|t| value.indicator(*t))
            .collect();
        let verify_fractions = meta
            .verify_thresholds
            .iter()
            .map(|t| value.indicator(*t))
            .collect();
        Self {
            fractions,
            verify_fractions,
            count: value.count(),
            weight: if initiator { 1.0 } else { 0.0 },
            min: value.local_min(),
            max: value.local_max(),
            epoch: 0,
            initiator,
            meta,
        }
    }

    /// Re-enters the averaging run at `epoch`, resetting every averaged
    /// component from this peer's own value — the state a fresh joiner of
    /// that epoch would have. The initiator re-contributes weight 1 so the
    /// global weight mass of the new epoch is exactly 1 again.
    pub fn adopt_epoch(&mut self, epoch: u32, value: &AttrValue) {
        self.epoch = epoch;
        self.fractions = self
            .meta
            .thresholds
            .iter()
            .map(|t| value.indicator(*t))
            .collect();
        self.verify_fractions = self
            .meta
            .verify_thresholds
            .iter()
            .map(|t| value.indicator(*t))
            .collect();
        self.count = value.count();
        self.weight = if self.initiator { 1.0 } else { 0.0 };
        self.min = value.local_min();
        self.max = value.local_max();
    }

    /// Votes to restart the instance: bumps the epoch and resets the local
    /// state ([`adopt_epoch`](InstanceLocal::adopt_epoch)); gossip spreads
    /// the new epoch epidemically.
    pub fn restart(&mut self, value: &AttrValue) {
        self.adopt_epoch(self.epoch + 1, value);
    }

    /// First round at which this instance may be finalised: each restart
    /// epoch extends the deadline by one instance duration so the new
    /// averaging run gets the same number of rounds as the original.
    pub fn due_round(&self) -> u64 {
        self.meta.end_round + u64::from(self.epoch) * self.meta.duration()
    }

    /// Performs the symmetric push–pull merge of two peers' states:
    /// averaged components are replaced by their mean on *both* sides
    /// (conserving total mass exactly); extrema are min/max-merged.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the two states belong to different
    /// instances.
    pub fn merge_symmetric(a: &mut InstanceLocal, b: &mut InstanceLocal) {
        debug_assert_eq!(a.meta.id, b.meta.id, "instance id mismatch");
        debug_assert_eq!(a.epoch, b.epoch, "epochs must be reconciled before merging");
        for (fa, fb) in a.fractions.iter_mut().zip(&mut b.fractions) {
            let mean = (*fa + *fb) / 2.0;
            *fa = mean;
            *fb = mean;
        }
        for (fa, fb) in a.verify_fractions.iter_mut().zip(&mut b.verify_fractions) {
            let mean = (*fa + *fb) / 2.0;
            *fa = mean;
            *fb = mean;
        }
        let count = (a.count + b.count) / 2.0;
        a.count = count;
        b.count = count;
        let weight = (a.weight + b.weight) / 2.0;
        a.weight = weight;
        b.weight = weight;
        let min = a.min.min(b.min);
        let max = a.max.max(b.max);
        a.min = min;
        b.min = min;
        a.max = max;
        b.max = max;
    }

    /// Whether this state is a *plausible* honest contribution: every
    /// averaged component finite and non-negative, fractions and count
    /// within the bounds honest averaging can produce (`[0, 1]` per
    /// indicator in single-value mode, unbounded in multi-value mode),
    /// claimed weight at most `weight_cap`, and extrema free of NaNs
    /// (`±inf` is the legitimate empty multi-value pattern).
    ///
    /// Honest states always pass; the bounds only exclude values that no
    /// sequence of joins and symmetric merges can reach.
    pub fn contribution_plausible(&self, weight_cap: f64) -> bool {
        let multi = self.meta.multi;
        let component_bound = if multi {
            f64::INFINITY
        } else {
            1.0 + PLAUSIBLE_EPS
        };
        let in_bounds = |v: f64| v.is_finite() && v >= -PLAUSIBLE_EPS && v <= component_bound;
        self.fractions.iter().all(|&f| in_bounds(f))
            && self.verify_fractions.iter().all(|&f| in_bounds(f))
            && in_bounds(self.count)
            && self.weight.is_finite()
            && self.weight >= -PLAUSIBLE_EPS
            && self.weight <= weight_cap + PLAUSIBLE_EPS
            && !self.min.is_nan()
            && !self.max.is_nan()
    }

    /// Robust variant of [`merge_symmetric`](InstanceLocal::merge_symmetric):
    /// both contributions are plausibility-checked (an implausible side
    /// causes the whole pairwise merge of this instance to be *rejected* —
    /// neither side changes), then fractions merge through the trimmed,
    /// influence-capped [`robust_pair_merge`] and the count/weight scalars
    /// through the same symmetric influence cap. Extrema still min/max
    /// merge (NaN-free by the plausibility check).
    ///
    /// With `trim_fraction = 0` and an infinite `influence_cap` the result
    /// is bit-identical to the vanilla merge.
    pub fn merge_symmetric_robust(
        a: &mut InstanceLocal,
        b: &mut InstanceLocal,
        policy: &RobustPolicy,
    ) -> RobustMergeOutcome {
        debug_assert_eq!(a.meta.id, b.meta.id, "instance id mismatch");
        debug_assert_eq!(a.epoch, b.epoch, "epochs must be reconciled before merging");
        if !a.contribution_plausible(policy.weight_cap)
            || !b.contribution_plausible(policy.weight_cap)
        {
            return RobustMergeOutcome {
                rejected: true,
                limited: 0,
            };
        }
        let trim = policy.trim_fraction;
        let cap = policy.influence_cap;
        let mut limited = 0u32;
        limited += robust_pair_merge(&mut a.fractions, &mut b.fractions, trim, cap).limited();
        limited += robust_pair_merge(&mut a.verify_fractions, &mut b.verify_fractions, trim, cap)
            .limited();
        limited += u32::from(Self::capped_scalar_merge(&mut a.count, &mut b.count, cap));
        limited += u32::from(Self::capped_scalar_merge(&mut a.weight, &mut b.weight, cap));
        let min = a.min.min(b.min);
        let max = a.max.max(b.max);
        a.min = min;
        b.min = min;
        a.max = max;
        b.max = max;
        RobustMergeOutcome {
            rejected: false,
            limited,
        }
    }

    /// Symmetric mean of two scalars with the movement clamped to
    /// ±`cap` (conserves `x + y` to rounding); returns whether the cap
    /// bit. Uncapped movement uses the vanilla mean formula.
    fn capped_scalar_merge(x: &mut f64, y: &mut f64, cap: f64) -> bool {
        let delta = (*y - *x) / 2.0;
        if delta.abs() > cap {
            let step = cap.copysign(delta);
            *x += step;
            *y -= step;
            true
        } else {
            let mean = (*x + *y) / 2.0;
            *x = mean;
            *y = mean;
            false
        }
    }

    /// Whether the instance should be finalised at `round` (epoch-aware:
    /// see [`due_round`](InstanceLocal::due_round)).
    pub fn is_due(&self, round: u64) -> bool {
        round >= self.due_round()
    }

    /// The current CDF fractions, normalised for multi-value mode
    /// (`f_i = avg_i / avg`).
    pub fn normalised_fractions(&self) -> Vec<f64> {
        if self.meta.multi {
            if self.count > 0.0 {
                self.fractions.iter().map(|f| f / self.count).collect()
            } else {
                vec![0.0; self.fractions.len()]
            }
        } else {
            self.fractions.clone()
        }
    }

    /// Normalised fractions at the verification thresholds.
    pub fn normalised_verify_fractions(&self) -> Vec<f64> {
        if self.meta.multi {
            if self.count > 0.0 {
                self.verify_fractions
                    .iter()
                    .map(|f| f / self.count)
                    .collect()
            } else {
                vec![0.0; self.verify_fractions.len()]
            }
        } else {
            self.verify_fractions.clone()
        }
    }

    /// Finalises the instance at `round`, producing this peer's
    /// [`DistributionEstimate`]: the interpolated CDF, the system-size
    /// estimate `N = 1/w`, and — if verification points were carried — the
    /// self-assessed accuracy `EstErr_a` / `EstErr_m` (Section VI).
    ///
    /// # Errors
    ///
    /// Returns [`CdfError`] if no valid CDF can be built (e.g. the global
    /// extrema never converged because the peer exchanged no messages).
    pub fn finalize(&self, round: u64) -> Result<DistributionEstimate, CdfError> {
        if !self.min.is_finite() || !self.max.is_finite() || self.min > self.max {
            return Err(CdfError::BadRange {
                min: self.min,
                max: self.max,
            });
        }
        let fractions = self.normalised_fractions();
        let cdf = InterpCdf::from_points(self.min, self.max, &self.meta.thresholds, &fractions)?;
        let n_hat = (self.weight > 0.0).then(|| 1.0 / self.weight);

        let (est_err_avg, est_err_max) = if self.meta.verify_thresholds.is_empty() {
            (None, None)
        } else {
            let verify = self.normalised_verify_fractions();
            let mut sum = 0.0f64;
            let mut max = 0.0f64;
            for (t, f) in self.meta.verify_thresholds.iter().zip(&verify) {
                let e = (cdf.eval(*t) - f).abs();
                sum += e;
                max = max.max(e);
            }
            (
                Some(sum / self.meta.verify_thresholds.len() as f64),
                Some(max),
            )
        };

        Ok(DistributionEstimate {
            cdf,
            n_hat,
            min: self.min,
            max: self.max,
            est_err_avg,
            est_err_max,
            instance: self.meta.id,
            completed_round: round,
            thresholds: self.meta.thresholds.to_vec(),
            fractions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn meta(thresholds: &[f64], multi: bool) -> Arc<InstanceMeta> {
        Arc::new(InstanceMeta {
            id: InstanceId::derive(0, 0, 0),
            thresholds: thresholds.to_vec().into(),
            verify_thresholds: Vec::new().into(),
            start_round: 0,
            end_round: 25,
            multi,
        })
    }

    #[test]
    fn instance_ids_are_distinct() {
        let a = InstanceId::derive(1, 2, 3);
        let b = InstanceId::derive(1, 2, 4);
        let c = InstanceId::derive(2, 2, 3);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, InstanceId::from_u64(a.as_u64()));
    }

    #[test]
    fn single_value_indicators() {
        let v = AttrValue::Single(5.0);
        assert_eq!(v.indicator(4.9), 0.0);
        assert_eq!(v.indicator(5.0), 1.0);
        assert_eq!(v.count(), 1.0);
        assert_eq!(v.local_min(), 5.0);
        assert_eq!(v.local_max(), 5.0);
    }

    #[test]
    fn multi_value_indicators() {
        let v = AttrValue::Multi(vec![1.0, 3.0, 5.0]);
        assert_eq!(v.indicator(0.5), 0.0);
        assert_eq!(v.indicator(3.0), 2.0);
        assert_eq!(v.indicator(10.0), 3.0);
        assert_eq!(v.count(), 3.0);
        assert_eq!(v.local_min(), 1.0);
        assert_eq!(v.local_max(), 5.0);
    }

    #[test]
    fn empty_multi_value_is_neutral() {
        let v = AttrValue::Multi(vec![]);
        assert_eq!(v.indicator(100.0), 0.0);
        assert_eq!(v.count(), 0.0);
        assert_eq!(v.local_min(), f64::INFINITY);
        assert_eq!(v.local_max(), f64::NEG_INFINITY);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(v.representative(&mut rng), None);
    }

    #[test]
    fn join_initialises_indicators_and_weight() {
        let m = meta(&[2.0, 6.0], false);
        let initiator = InstanceLocal::join(m.clone(), &AttrValue::Single(3.0), true);
        assert_eq!(initiator.fractions, vec![0.0, 1.0]);
        assert_eq!(initiator.weight, 1.0);
        let joiner = InstanceLocal::join(m, &AttrValue::Single(1.0), false);
        assert_eq!(joiner.fractions, vec![1.0, 1.0]);
        assert_eq!(joiner.weight, 0.0);
    }

    #[test]
    fn merge_conserves_mass_and_tracks_extrema() {
        let m = meta(&[5.0], false);
        let mut a = InstanceLocal::join(m.clone(), &AttrValue::Single(3.0), true);
        let mut b = InstanceLocal::join(m, &AttrValue::Single(8.0), false);
        let mass_before = a.fractions[0] + b.fractions[0];
        let weight_before = a.weight + b.weight;
        InstanceLocal::merge_symmetric(&mut a, &mut b);
        assert_eq!(a.fractions[0] + b.fractions[0], mass_before);
        assert_eq!(a.weight + b.weight, weight_before);
        assert_eq!(a.fractions[0], 0.5);
        assert_eq!(a.weight, 0.5);
        assert_eq!(a.min, 3.0);
        assert_eq!(a.max, 8.0);
        assert_eq!(b.min, 3.0);
        assert_eq!(b.max, 8.0);
    }

    #[test]
    fn finalize_produces_estimate_with_n() {
        let m = meta(&[5.0], false);
        let mut a = InstanceLocal::join(m.clone(), &AttrValue::Single(3.0), true);
        let mut b = InstanceLocal::join(m, &AttrValue::Single(8.0), false);
        InstanceLocal::merge_symmetric(&mut a, &mut b);
        let est = a.finalize(25).unwrap();
        // Two nodes, one below 5.0 => F(5) = 0.5; weight 0.5 => N = 2.
        assert_eq!(est.cdf.eval(5.0), 0.5);
        assert_eq!(est.n_hat, Some(2.0));
        assert_eq!(est.min, 3.0);
        assert_eq!(est.max, 8.0);
        assert!(est.est_err_avg.is_none());
    }

    #[test]
    fn finalize_rejects_unconverged_extrema() {
        let m = meta(&[5.0], true);
        let a = InstanceLocal::join(m, &AttrValue::Multi(vec![]), false);
        assert!(a.finalize(25).is_err());
    }

    #[test]
    fn multi_value_fractions_are_normalised() {
        let m = meta(&[2.0], true);
        // Node a: 2 of 3 values <= 2; node b: 0 of 1.
        let mut a = InstanceLocal::join(m.clone(), &AttrValue::Multi(vec![1.0, 2.0, 9.0]), true);
        let mut b = InstanceLocal::join(m, &AttrValue::Multi(vec![7.0]), false);
        InstanceLocal::merge_symmetric(&mut a, &mut b);
        // avg_1 = (2+0)/2 = 1; avg = (3+1)/2 = 2 => f = 0.5 = 2/4 true.
        assert_eq!(a.normalised_fractions(), vec![0.5]);
    }

    #[test]
    fn verification_points_yield_confidence() {
        let m = Arc::new(InstanceMeta {
            id: InstanceId::derive(0, 0, 1),
            thresholds: vec![5.0].into(),
            verify_thresholds: vec![3.0, 7.0].into(),
            start_round: 0,
            end_round: 25,
            multi: false,
        });
        let mut a = InstanceLocal::join(m.clone(), &AttrValue::Single(3.0), true);
        let mut b = InstanceLocal::join(m, &AttrValue::Single(8.0), false);
        InstanceLocal::merge_symmetric(&mut a, &mut b);
        let est = a.finalize(25).unwrap();
        assert!(est.est_err_avg.is_some());
        assert!(est.est_err_max.is_some());
        assert!(est.est_err_max.unwrap() >= est.est_err_avg.unwrap());
    }

    #[test]
    fn is_due_matches_end_round() {
        let m = meta(&[1.0], false);
        let a = InstanceLocal::join(m, &AttrValue::Single(1.0), false);
        assert!(!a.is_due(24));
        assert!(a.is_due(25));
        assert!(a.is_due(26));
    }

    #[test]
    fn restart_bumps_epoch_and_extends_deadline() {
        let m = meta(&[5.0], false);
        let value = AttrValue::Single(3.0);
        let mut a = InstanceLocal::join(m.clone(), &value, true);
        let mut b = InstanceLocal::join(m, &AttrValue::Single(8.0), false);
        InstanceLocal::merge_symmetric(&mut a, &mut b);
        assert_eq!(a.due_round(), 25);
        a.restart(&value);
        assert_eq!(a.epoch, 1);
        // Deadline extended by one 25-round duration.
        assert_eq!(a.due_round(), 50);
        assert!(!a.is_due(25));
        assert!(a.is_due(50));
        // State reset to a fresh initiator contribution.
        assert_eq!(a.fractions, vec![1.0]);
        assert_eq!(a.weight, 1.0);
        assert_eq!(a.min, 3.0);
        assert_eq!(a.max, 3.0);
    }

    #[test]
    fn plausibility_accepts_honest_and_rejects_poison() {
        let m = meta(&[2.0, 6.0], false);
        let honest = InstanceLocal::join(m.clone(), &AttrValue::Single(3.0), true);
        assert!(honest.contribution_plausible(1.0));
        // Empty multi-value ±inf extrema are legitimate.
        let empty = InstanceLocal::join(meta(&[2.0], true), &AttrValue::Multi(vec![]), false);
        assert!(empty.contribution_plausible(1.0));
        // Poisoned variants all fail.
        let mut poisoned = honest.clone();
        poisoned.fractions[0] = 7.5;
        assert!(!poisoned.contribution_plausible(1.0));
        let mut nan = honest.clone();
        nan.fractions[1] = f64::NAN;
        assert!(!nan.contribution_plausible(1.0));
        let mut negative = honest.clone();
        negative.fractions[0] = -0.5;
        assert!(!negative.contribution_plausible(1.0));
        let mut inflated = honest.clone();
        inflated.weight = 10.0;
        assert!(!inflated.contribution_plausible(1.0));
        let mut bad_min = honest.clone();
        bad_min.min = f64::NAN;
        assert!(!bad_min.contribution_plausible(1.0));
    }

    #[test]
    fn robust_merge_rejects_implausible_partner() {
        let m = meta(&[5.0], false);
        let mut a = InstanceLocal::join(m.clone(), &AttrValue::Single(3.0), true);
        let mut b = InstanceLocal::join(m, &AttrValue::Single(8.0), false);
        b.weight = 50.0; // inflated claim
        let (a0, b0) = (a.clone(), b.clone());
        let outcome = InstanceLocal::merge_symmetric_robust(&mut a, &mut b, &RobustPolicy::new());
        assert!(outcome.rejected);
        // Neither side moved.
        assert_eq!(a, a0);
        assert_eq!(b, b0);
    }

    #[test]
    fn robust_merge_degrades_to_vanilla() {
        let m = meta(&[2.0, 6.0], false);
        let mut a = InstanceLocal::join(m.clone(), &AttrValue::Single(3.0), true);
        let mut b = InstanceLocal::join(m.clone(), &AttrValue::Single(8.0), false);
        let mut va = a.clone();
        let mut vb = b.clone();
        let policy = RobustPolicy::new()
            .with_trim_fraction(0.0)
            .with_influence_cap(f64::INFINITY);
        let outcome = InstanceLocal::merge_symmetric_robust(&mut a, &mut b, &policy);
        InstanceLocal::merge_symmetric(&mut va, &mut vb);
        assert!(!outcome.rejected);
        assert_eq!(outcome.limited, 0);
        assert_eq!(a, va);
        assert_eq!(b, vb);
    }

    #[test]
    fn robust_merge_conserves_mass_while_limiting() {
        let m = meta(&[1.0, 2.0, 3.0, 4.0], false);
        let mut a = InstanceLocal::join(m.clone(), &AttrValue::Single(2.5), true);
        let mut b = InstanceLocal::join(m, &AttrValue::Single(0.5), false);
        let mass_before: f64 = a.fractions.iter().sum::<f64>() + b.fractions.iter().sum::<f64>();
        let weight_before = a.weight + b.weight;
        let policy = RobustPolicy::new()
            .with_trim_fraction(0.25)
            .with_influence_cap(0.1);
        let outcome = InstanceLocal::merge_symmetric_robust(&mut a, &mut b, &policy);
        assert!(!outcome.rejected);
        assert!(outcome.limited > 0);
        let mass_after: f64 = a.fractions.iter().sum::<f64>() + b.fractions.iter().sum::<f64>();
        assert!((mass_before - mass_after).abs() < 1e-12);
        assert!((weight_before - (a.weight + b.weight)).abs() < 1e-12);
    }

    #[test]
    fn adopt_epoch_resets_non_initiator_weight() {
        let m = meta(&[5.0], false);
        let value = AttrValue::Single(8.0);
        let mut b = InstanceLocal::join(m.clone(), &value, false);
        let mut a = InstanceLocal::join(m, &AttrValue::Single(3.0), true);
        InstanceLocal::merge_symmetric(&mut a, &mut b);
        assert_eq!(b.weight, 0.5);
        b.adopt_epoch(2, &value);
        assert_eq!(b.epoch, 2);
        assert_eq!(b.weight, 0.0, "only the initiator re-seeds weight");
        assert_eq!(b.fractions, vec![0.0]);
    }
}
