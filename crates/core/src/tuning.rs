//! Self-tuning of protocol parameters from confidence feedback.
//!
//! Section VI motivates confidence estimation with dynamic parameter
//! tuning: "this can be used to dynamically tune the algorithm parameters
//! — such as the number of interpolation points and the number of executed
//! instances — according to application-specific accuracy requirements".
//! This module makes that concrete (an extension beyond the paper's
//! evaluation, flagged as such in DESIGN.md): a [`SelfTuner`] watches the
//! self-assessed error of each completed instance and recommends the λ for
//! the next one.
//!
//! The controller is deliberately simple and conservative — multiplicative
//! increase when the estimate misses the target, gentle decrease when it
//! beats the target by a wide margin — because each λ step costs exactly
//! 16 bytes per message per point (Section VII-D: "with 10 extra points,
//! the size of the messages increases by about 160 bytes").

use crate::metrics::ErrorMetric;

/// Recommends interpolation-point counts from self-assessed accuracy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelfTuner {
    target_error: f64,
    metric: ErrorMetric,
    min_lambda: usize,
    max_lambda: usize,
}

impl SelfTuner {
    /// Creates a tuner aiming at `target_error` under `metric`, with λ
    /// bounded to `[min_lambda, max_lambda]`.
    ///
    /// # Panics
    ///
    /// Panics if `target_error` is not in `(0, 1)`, `min_lambda` is zero,
    /// or the λ bounds are inverted.
    pub fn new(
        target_error: f64,
        metric: ErrorMetric,
        min_lambda: usize,
        max_lambda: usize,
    ) -> Self {
        assert!(
            target_error > 0.0 && target_error < 1.0,
            "target_error must be in (0, 1)"
        );
        assert!(min_lambda > 0, "min_lambda must be positive");
        assert!(min_lambda <= max_lambda, "lambda bounds inverted");
        Self {
            target_error,
            metric,
            min_lambda,
            max_lambda,
        }
    }

    /// The accuracy target.
    pub fn target_error(&self) -> f64 {
        self.target_error
    }

    /// The metric the tuner optimises.
    pub fn metric(&self) -> ErrorMetric {
        self.metric
    }

    /// Recommends the λ for the next instance given the current λ and the
    /// last self-assessed error (`None` leaves λ unchanged — no feedback
    /// yet).
    ///
    /// * error > 2× target → λ × 2 (far off: grow fast);
    /// * error > target → λ × 1.25 (close: grow gently);
    /// * error < target / 4 → λ × 0.8 (comfortably within budget: shed
    ///   overhead);
    /// * otherwise → unchanged.
    pub fn next_lambda(&self, current: usize, self_assessed_error: Option<f64>) -> usize {
        let Some(err) = self_assessed_error else {
            return current.clamp(self.min_lambda, self.max_lambda);
        };
        let next = if err > self.target_error * 2.0 {
            current * 2
        } else if err > self.target_error {
            (current as f64 * 1.25).ceil() as usize
        } else if err < self.target_error / 4.0 {
            ((current as f64 * 0.8).floor() as usize).max(1)
        } else {
            current
        };
        next.clamp(self.min_lambda, self.max_lambda)
    }

    /// Whether the last estimate met the target.
    pub fn is_satisfied(&self, self_assessed_error: Option<f64>) -> bool {
        self_assessed_error
            .map(|e| e <= self.target_error)
            .unwrap_or(false)
    }
}

/// What the [`DriftController`] decided after one divergence observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchDecision {
    /// Rounds to wait before launching the next pipelined instance.
    pub next_period: u64,
    /// Whether the observed divergence crossed the restart threshold: the
    /// tracker should abandon its time-faded history and rebuild from the
    /// newest estimate alone (Spectra's restart-on-abrupt-change).
    pub restart: bool,
}

/// Adapts the streaming pipeline's instance launch frequency to the
/// measured inter-instance estimate divergence.
///
/// The companion of [`SelfTuner`] for the streaming subsystem
/// (`adam2-stream`): where the tuner sizes λ from self-assessed error,
/// this controller sizes the *launch period* from how much each freshly
/// completed instance disagrees with the blended history. High divergence
/// means the distribution is moving faster than the pipeline samples it —
/// launch more often; near-zero divergence means instances are redundant —
/// back off. A divergence above `restart_threshold` is treated as an
/// abrupt step change: the controller still shortens the period, and
/// additionally tells the tracker to drop its faded history ("Spectra:
/// Robust Estimation of Distribution Functions in Networks", PAPERS.md).
///
/// Stateless like [`SelfTuner`]: the restart trigger compares each window
/// against the fixed threshold, so a divergence spike on the very first
/// observation window fires it too.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftController {
    target_divergence: f64,
    restart_threshold: f64,
    min_period: u64,
    max_period: u64,
}

impl DriftController {
    /// Creates a controller aiming at `target_divergence` (mean absolute
    /// CDF difference between a new estimate and the blended history, in
    /// `(0, 1)`), with launch periods bounded to `[min_period,
    /// max_period]` rounds and the Spectra restart firing above
    /// `restart_threshold`.
    ///
    /// # Panics
    ///
    /// Panics if `target_divergence` is not in `(0, 1)`,
    /// `restart_threshold` is not finite and `≥ target_divergence`,
    /// `min_period` is zero, or the period bounds are inverted.
    pub fn new(
        target_divergence: f64,
        restart_threshold: f64,
        min_period: u64,
        max_period: u64,
    ) -> Self {
        assert!(
            target_divergence > 0.0 && target_divergence < 1.0,
            "target_divergence must be in (0, 1)"
        );
        assert!(
            restart_threshold.is_finite() && restart_threshold >= target_divergence,
            "restart_threshold must be finite and ≥ target_divergence"
        );
        assert!(min_period > 0, "min_period must be positive");
        assert!(min_period <= max_period, "period bounds inverted");
        Self {
            target_divergence,
            restart_threshold,
            min_period,
            max_period,
        }
    }

    /// The divergence target.
    pub fn target_divergence(&self) -> f64 {
        self.target_divergence
    }

    /// The Spectra restart threshold.
    pub fn restart_threshold(&self) -> f64 {
        self.restart_threshold
    }

    /// The launch-period bounds, `(min, max)` in rounds.
    pub fn period_bounds(&self) -> (u64, u64) {
        (self.min_period, self.max_period)
    }

    /// Whether `divergence` crosses the restart threshold (an abrupt step
    /// change). Fires on any window, including the first.
    pub fn is_step_change(&self, divergence: f64) -> bool {
        divergence > self.restart_threshold
    }

    /// Decides the next launch period from the current one and the last
    /// measured divergence (`None` — no completed instance to compare yet
    /// — leaves the period unchanged).
    ///
    /// * divergence > restart threshold → period halved **and**
    ///   `restart = true`;
    /// * divergence > target → period halved (the distribution moves
    ///   faster than the pipeline samples it);
    /// * divergence < target / 4 → period × 1.5 (instances are redundant:
    ///   shed message budget);
    /// * otherwise → unchanged.
    ///
    /// The returned period is always clamped to the configured bounds.
    pub fn observe(&self, current_period: u64, divergence: Option<f64>) -> LaunchDecision {
        let Some(div) = divergence else {
            return LaunchDecision {
                next_period: current_period.clamp(self.min_period, self.max_period),
                restart: false,
            };
        };
        let restart = self.is_step_change(div);
        let next = if div > self.target_divergence {
            current_period / 2
        } else if div < self.target_divergence / 4.0 {
            ((current_period as f64 * 1.5).ceil()) as u64
        } else {
            current_period
        };
        LaunchDecision {
            next_period: next.clamp(self.min_period, self.max_period),
            restart,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuner() -> SelfTuner {
        SelfTuner::new(0.01, ErrorMetric::Average, 5, 200)
    }

    #[test]
    fn grows_fast_when_far_off() {
        assert_eq!(tuner().next_lambda(20, Some(0.1)), 40);
    }

    #[test]
    fn grows_gently_when_close() {
        assert_eq!(tuner().next_lambda(20, Some(0.015)), 25);
    }

    #[test]
    fn holds_inside_the_band() {
        assert_eq!(tuner().next_lambda(20, Some(0.005)), 20);
    }

    #[test]
    fn sheds_points_when_overachieving() {
        assert_eq!(tuner().next_lambda(20, Some(0.001)), 16);
    }

    #[test]
    fn respects_bounds() {
        assert_eq!(tuner().next_lambda(150, Some(0.5)), 200);
        assert_eq!(tuner().next_lambda(6, Some(0.0001)), 5);
    }

    #[test]
    fn no_feedback_means_no_change() {
        assert_eq!(tuner().next_lambda(20, None), 20);
    }

    #[test]
    fn satisfaction() {
        let t = tuner();
        assert!(t.is_satisfied(Some(0.01)));
        assert!(!t.is_satisfied(Some(0.02)));
        assert!(!t.is_satisfied(None));
    }

    #[test]
    #[should_panic(expected = "target_error must be in (0, 1)")]
    fn rejects_bad_target() {
        SelfTuner::new(0.0, ErrorMetric::Max, 1, 10);
    }

    #[test]
    #[should_panic(expected = "lambda bounds inverted")]
    fn rejects_inverted_bounds() {
        SelfTuner::new(0.1, ErrorMetric::Max, 10, 5);
    }

    // --- DriftController ---

    fn controller() -> DriftController {
        DriftController::new(0.02, 0.10, 2, 32)
    }

    #[test]
    fn zero_divergence_backs_off_toward_max_period() {
        let c = controller();
        // Exactly zero divergence: instances are redundant — lengthen.
        assert_eq!(
            c.observe(8, Some(0.0)),
            LaunchDecision {
                next_period: 12,
                restart: false
            }
        );
        // Repeated zero divergence saturates at the max bound, never past.
        let mut period = 8;
        for _ in 0..20 {
            period = c.observe(period, Some(0.0)).next_period;
        }
        assert_eq!(period, 32);
    }

    #[test]
    fn divergence_spike_on_first_window_restarts() {
        // Stateless trigger: a step change detected on the very first
        // observation window (no history at all) must fire the restart.
        let c = controller();
        let d = c.observe(16, Some(0.5));
        assert!(d.restart, "first-window spike must trigger restart");
        assert_eq!(d.next_period, 8, "and track aggressively afterwards");
        assert!(c.is_step_change(0.5));
        // At exactly the threshold: no restart (strictly above fires).
        let d = c.observe(16, Some(0.10));
        assert!(!d.restart);
    }

    #[test]
    fn launch_period_clamps_to_bounds() {
        let c = controller();
        // Halving below min_period clamps up.
        assert_eq!(c.observe(3, Some(0.08)).next_period, 2);
        assert_eq!(c.observe(2, Some(0.5)).next_period, 2);
        // Growing past max_period clamps down.
        assert_eq!(c.observe(30, Some(0.001)).next_period, 32);
        assert_eq!(c.observe(32, Some(0.0)).next_period, 32);
        // A wildly out-of-range current period is pulled into bounds even
        // without feedback.
        assert_eq!(c.observe(1000, None).next_period, 32);
        assert_eq!(c.observe(1, None).next_period, 2);
    }

    #[test]
    fn holds_inside_divergence_band() {
        let c = controller();
        // Inside [target/4, target]: no change, no restart.
        assert_eq!(
            c.observe(8, Some(0.01)),
            LaunchDecision {
                next_period: 8,
                restart: false
            }
        );
        // No feedback yet: unchanged.
        assert_eq!(c.observe(8, None).next_period, 8);
    }

    #[test]
    fn above_target_halves_below_quarter_grows() {
        let c = controller();
        assert_eq!(c.observe(16, Some(0.03)).next_period, 8);
        assert!(!c.observe(16, Some(0.03)).restart);
        assert_eq!(c.observe(16, Some(0.004)).next_period, 24);
    }

    #[test]
    fn controller_accessors() {
        let c = controller();
        assert_eq!(c.target_divergence(), 0.02);
        assert_eq!(c.restart_threshold(), 0.10);
        assert_eq!(c.period_bounds(), (2, 32));
    }

    #[test]
    #[should_panic(expected = "target_divergence must be in (0, 1)")]
    fn controller_rejects_bad_target() {
        DriftController::new(1.0, 1.5, 1, 10);
    }

    #[test]
    #[should_panic(expected = "restart_threshold must be finite and ≥ target_divergence")]
    fn controller_rejects_restart_below_target() {
        DriftController::new(0.05, 0.01, 1, 10);
    }

    #[test]
    #[should_panic(expected = "restart_threshold must be finite and ≥ target_divergence")]
    fn controller_rejects_nan_restart() {
        DriftController::new(0.05, f64::NAN, 1, 10);
    }

    #[test]
    #[should_panic(expected = "min_period must be positive")]
    fn controller_rejects_zero_min_period() {
        DriftController::new(0.05, 0.1, 0, 10);
    }

    #[test]
    #[should_panic(expected = "period bounds inverted")]
    fn controller_rejects_inverted_periods() {
        DriftController::new(0.05, 0.1, 10, 5);
    }
}
