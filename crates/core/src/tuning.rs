//! Self-tuning of protocol parameters from confidence feedback.
//!
//! Section VI motivates confidence estimation with dynamic parameter
//! tuning: "this can be used to dynamically tune the algorithm parameters
//! — such as the number of interpolation points and the number of executed
//! instances — according to application-specific accuracy requirements".
//! This module makes that concrete (an extension beyond the paper's
//! evaluation, flagged as such in DESIGN.md): a [`SelfTuner`] watches the
//! self-assessed error of each completed instance and recommends the λ for
//! the next one.
//!
//! The controller is deliberately simple and conservative — multiplicative
//! increase when the estimate misses the target, gentle decrease when it
//! beats the target by a wide margin — because each λ step costs exactly
//! 16 bytes per message per point (Section VII-D: "with 10 extra points,
//! the size of the messages increases by about 160 bytes").

use crate::metrics::ErrorMetric;

/// Recommends interpolation-point counts from self-assessed accuracy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelfTuner {
    target_error: f64,
    metric: ErrorMetric,
    min_lambda: usize,
    max_lambda: usize,
}

impl SelfTuner {
    /// Creates a tuner aiming at `target_error` under `metric`, with λ
    /// bounded to `[min_lambda, max_lambda]`.
    ///
    /// # Panics
    ///
    /// Panics if `target_error` is not in `(0, 1)`, `min_lambda` is zero,
    /// or the λ bounds are inverted.
    pub fn new(
        target_error: f64,
        metric: ErrorMetric,
        min_lambda: usize,
        max_lambda: usize,
    ) -> Self {
        assert!(
            target_error > 0.0 && target_error < 1.0,
            "target_error must be in (0, 1)"
        );
        assert!(min_lambda > 0, "min_lambda must be positive");
        assert!(min_lambda <= max_lambda, "lambda bounds inverted");
        Self {
            target_error,
            metric,
            min_lambda,
            max_lambda,
        }
    }

    /// The accuracy target.
    pub fn target_error(&self) -> f64 {
        self.target_error
    }

    /// The metric the tuner optimises.
    pub fn metric(&self) -> ErrorMetric {
        self.metric
    }

    /// Recommends the λ for the next instance given the current λ and the
    /// last self-assessed error (`None` leaves λ unchanged — no feedback
    /// yet).
    ///
    /// * error > 2× target → λ × 2 (far off: grow fast);
    /// * error > target → λ × 1.25 (close: grow gently);
    /// * error < target / 4 → λ × 0.8 (comfortably within budget: shed
    ///   overhead);
    /// * otherwise → unchanged.
    pub fn next_lambda(&self, current: usize, self_assessed_error: Option<f64>) -> usize {
        let Some(err) = self_assessed_error else {
            return current.clamp(self.min_lambda, self.max_lambda);
        };
        let next = if err > self.target_error * 2.0 {
            current * 2
        } else if err > self.target_error {
            (current as f64 * 1.25).ceil() as usize
        } else if err < self.target_error / 4.0 {
            ((current as f64 * 0.8).floor() as usize).max(1)
        } else {
            current
        };
        next.clamp(self.min_lambda, self.max_lambda)
    }

    /// Whether the last estimate met the target.
    pub fn is_satisfied(&self, self_assessed_error: Option<f64>) -> bool {
        self_assessed_error
            .map(|e| e <= self.target_error)
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuner() -> SelfTuner {
        SelfTuner::new(0.01, ErrorMetric::Average, 5, 200)
    }

    #[test]
    fn grows_fast_when_far_off() {
        assert_eq!(tuner().next_lambda(20, Some(0.1)), 40);
    }

    #[test]
    fn grows_gently_when_close() {
        assert_eq!(tuner().next_lambda(20, Some(0.015)), 25);
    }

    #[test]
    fn holds_inside_the_band() {
        assert_eq!(tuner().next_lambda(20, Some(0.005)), 20);
    }

    #[test]
    fn sheds_points_when_overachieving() {
        assert_eq!(tuner().next_lambda(20, Some(0.001)), 16);
    }

    #[test]
    fn respects_bounds() {
        assert_eq!(tuner().next_lambda(150, Some(0.5)), 200);
        assert_eq!(tuner().next_lambda(6, Some(0.0001)), 5);
    }

    #[test]
    fn no_feedback_means_no_change() {
        assert_eq!(tuner().next_lambda(20, None), 20);
    }

    #[test]
    fn satisfaction() {
        let t = tuner();
        assert!(t.is_satisfied(Some(0.01)));
        assert!(!t.is_satisfied(Some(0.02)));
        assert!(!t.is_satisfied(None));
    }

    #[test]
    #[should_panic(expected = "target_error must be in (0, 1)")]
    fn rejects_bad_target() {
        SelfTuner::new(0.0, ErrorMetric::Max, 1, 10);
    }

    #[test]
    #[should_panic(expected = "lambda bounds inverted")]
    fn rejects_inverted_bounds() {
        SelfTuner::new(0.1, ErrorMetric::Max, 10, 5);
    }
}
