//! The result a node obtains from one completed aggregation instance.

use serde::{Deserialize, Serialize};

use crate::cdf::InterpCdf;
use crate::instance::InstanceId;

/// A node's estimate of the system-wide attribute distribution, produced
/// when an aggregation instance terminates.
///
/// Besides the interpolated CDF itself, the estimate carries everything a
/// decentralised application needs: the system-size estimate `N = 1/w`,
/// the converged attribute extrema, and — when verification points were
/// configured — the node's *self-assessed* accuracy (Section VI), which
/// enables autonomous accuracy/overhead tradeoffs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistributionEstimate {
    /// The interpolated CDF approximation `F_p`.
    pub cdf: InterpCdf,
    /// Estimated system size (`None` if this peer received no weight mass,
    /// which only happens if it never completed an exchange).
    pub n_hat: Option<f64>,
    /// Converged global minimum attribute value.
    pub min: f64,
    /// Converged global maximum attribute value.
    pub max: f64,
    /// Self-assessed average error `EstErr_a(p)` (requires verification
    /// points).
    pub est_err_avg: Option<f64>,
    /// Self-assessed maximum error `EstErr_m(p)` (requires verification
    /// points).
    pub est_err_max: Option<f64>,
    /// The instance that produced this estimate.
    #[serde(skip, default = "unknown_instance")]
    pub instance: InstanceId,
    /// The round in which the instance terminated.
    pub completed_round: u64,
    /// The interpolation thresholds `t_i` used by the instance.
    pub thresholds: Vec<f64>,
    /// The aggregated fractions `f_i = F(t_i)` (normalised in multi-value
    /// mode).
    pub fractions: Vec<f64>,
}

// Referenced only from the `#[serde(default = ...)]` attribute above, which
// the offline serde stand-in expands to nothing.
#[allow(dead_code)]
fn unknown_instance() -> InstanceId {
    InstanceId::from_u64(0)
}

impl DistributionEstimate {
    /// Convenience accessor: the estimated fraction of nodes with a value
    /// at or below `x`.
    pub fn fraction_below(&self, x: f64) -> f64 {
        self.cdf.eval(x)
    }

    /// Convenience accessor: the estimated attribute value at quantile
    /// `q ∈ [0, 1]`.
    pub fn value_at_quantile(&self, q: f64) -> f64 {
        self.cdf.quantile(q)
    }

    /// The estimated system size rounded to a node count (`None` if
    /// unavailable).
    pub fn system_size(&self) -> Option<u64> {
        self.n_hat.map(|n| n.round().max(1.0) as u64)
    }

    /// The self-assessed error under the given metric.
    pub fn self_assessed_error(&self, metric: crate::ErrorMetric) -> Option<f64> {
        match metric {
            crate::ErrorMetric::Max => self.est_err_max,
            crate::ErrorMetric::Average => self.est_err_avg,
        }
    }

    /// Combines the interpolation points of two estimates of the *same,
    /// stable* distribution into one — the paper's Section VII-D remark:
    /// "if the CDF does not change significantly over time, nodes can
    /// combine interpolation points obtained over multiple aggregation
    /// instances to further reduce the overall estimation errors."
    ///
    /// Both point sets are pooled (duplicate thresholds keep the mean of
    /// their fractions), the extrema are the outer hull, and metadata
    /// (`n_hat`, instance id, round, self-assessment) comes from the more
    /// recent estimate. Combining estimates of a *changed* distribution
    /// mixes stale and fresh measurements and makes things worse — the
    /// caller decides, e.g. from the self-assessed error.
    ///
    /// # Errors
    ///
    /// Returns [`CdfError`](crate::CdfError) if the pooled points cannot
    /// form a valid CDF.
    pub fn combined_with(&self, other: &Self) -> Result<Self, crate::CdfError> {
        let (newer, older) = if self.completed_round >= other.completed_round {
            (self, other)
        } else {
            (other, self)
        };
        let mut points: Vec<(f64, f64)> = newer
            .thresholds
            .iter()
            .copied()
            .zip(newer.fractions.iter().copied())
            .chain(
                older
                    .thresholds
                    .iter()
                    .copied()
                    .zip(older.fractions.iter().copied()),
            )
            .collect();
        points.sort_by(|a, b| a.0.total_cmp(&b.0));
        // Duplicate thresholds measured the same F(t); keep the mean.
        let mut merged: Vec<(f64, f64)> = Vec::with_capacity(points.len());
        for (t, f) in points {
            match merged.last_mut() {
                Some((lt, lf)) if *lt == t => *lf = (*lf + f) / 2.0,
                _ => merged.push((t, f)),
            }
        }
        let min = newer.min.min(older.min);
        let max = newer.max.max(older.max);
        let thresholds: Vec<f64> = merged.iter().map(|(t, _)| *t).collect();
        let fractions: Vec<f64> = merged.iter().map(|(_, f)| *f).collect();
        let cdf = InterpCdf::from_points(min, max, &thresholds, &fractions)?;
        Ok(Self {
            cdf,
            n_hat: newer.n_hat.or(older.n_hat),
            min,
            max,
            est_err_avg: newer.est_err_avg,
            est_err_max: newer.est_err_max,
            instance: newer.instance,
            completed_round: newer.completed_round,
            thresholds,
            fractions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_estimate() -> DistributionEstimate {
        DistributionEstimate {
            cdf: InterpCdf::new(vec![(0.0, 0.0), (10.0, 1.0)]).unwrap(),
            n_hat: Some(99.6),
            min: 0.0,
            max: 10.0,
            est_err_avg: Some(0.01),
            est_err_max: Some(0.05),
            instance: InstanceId::derive(0, 1, 2),
            completed_round: 25,
            thresholds: vec![5.0],
            fractions: vec![0.5],
        }
    }

    #[test]
    fn accessors() {
        let e = sample_estimate();
        assert_eq!(e.fraction_below(5.0), 0.5);
        assert_eq!(e.value_at_quantile(0.5), 5.0);
        assert_eq!(e.system_size(), Some(100));
        assert_eq!(e.self_assessed_error(crate::ErrorMetric::Max), Some(0.05));
        assert_eq!(
            e.self_assessed_error(crate::ErrorMetric::Average),
            Some(0.01)
        );
    }

    #[test]
    fn combine_pools_points_from_both_instances() {
        let a = DistributionEstimate {
            cdf: InterpCdf::from_points(0.0, 10.0, &[2.0, 5.0], &[0.2, 0.5]).unwrap(),
            n_hat: Some(100.0),
            min: 0.0,
            max: 10.0,
            est_err_avg: Some(0.02),
            est_err_max: None,
            instance: InstanceId::derive(0, 1, 1),
            completed_round: 30,
            thresholds: vec![2.0, 5.0],
            fractions: vec![0.2, 0.5],
        };
        let b = DistributionEstimate {
            cdf: InterpCdf::from_points(0.0, 12.0, &[5.0, 8.0], &[0.52, 0.8]).unwrap(),
            n_hat: Some(101.0),
            min: 0.0,
            max: 12.0,
            est_err_avg: Some(0.01),
            est_err_max: None,
            instance: InstanceId::derive(0, 1, 2),
            completed_round: 60,
            thresholds: vec![5.0, 8.0],
            fractions: vec![0.52, 0.8],
        };
        let c = a.combined_with(&b).unwrap();
        // Pooled thresholds, duplicates averaged.
        assert_eq!(c.thresholds, vec![2.0, 5.0, 8.0]);
        assert_eq!(c.fractions[0], 0.2);
        assert!((c.fractions[1] - 0.51).abs() < 1e-12);
        assert_eq!(c.fractions[2], 0.8);
        // Metadata from the newer estimate; extrema hull.
        assert_eq!(c.completed_round, 60);
        assert_eq!(c.n_hat, Some(101.0));
        assert_eq!(c.est_err_avg, Some(0.01));
        assert_eq!((c.min, c.max), (0.0, 12.0));
        // More knots than either input.
        assert!(c.cdf.knots().len() >= a.cdf.knots().len());
        // Symmetric regardless of call order.
        assert_eq!(b.combined_with(&a).unwrap().thresholds, c.thresholds);
    }

    #[test]
    fn combine_with_self_is_identity_on_points() {
        let e = sample_estimate();
        let c = e.combined_with(&e).unwrap();
        assert_eq!(c.thresholds, e.thresholds);
        assert_eq!(c.fractions, e.fractions);
    }
}
