//! Wire encoding of gossip messages.
//!
//! The simulator exchanges state in-memory, but communication *cost* is a
//! first-class result of the paper (Section VII-I: ≈800 B per message at
//! λ = 50, ≈120 kB per node for a 3-instance estimate). This module defines
//! the concrete wire format a real deployment would use, so every exchange
//! can be charged its exact encoded size; a unit test pins
//! [`GossipMessage::encoded_len`] to the actual encoder output.
//!
//! Layout (little-endian):
//!
//! ```text
//! message  := u64 seq, u16 instance_count, instance*
//! instance := u64 id, u64 start_round, u64 end_round, u8 flags,
//!             u32 epoch, u16 lambda, u16 verify_count,
//!             f64 thresholds[lambda], f64 fractions[lambda],
//!             f64 verify_thresholds[verify], f64 verify_fractions[verify],
//!             f64 weight, f64 count, f64 min, f64 max
//! ```
//!
//! `seq` is the per-exchange sequence number of the two-phase repair path
//! (retransmissions and duplicate deliveries carry the same value, letting
//! the receiver deduplicate idempotently); `epoch` is the instance's
//! self-healing restart epoch.

use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::WireError;
use crate::instance::{InstanceId, InstanceLocal, InstanceMeta};

const FLAG_MULTI: u8 = 0b0000_0001;

/// Wire size of the fixed message header (`u64 seq` + `u16 count`).
pub const HEADER_LEN: usize = 10;

/// The per-instance payload of a gossip message.
#[derive(Debug, Clone, PartialEq)]
pub struct InstancePayload {
    /// Instance identifier.
    pub id: u64,
    /// Round the instance started.
    pub start_round: u64,
    /// Round the instance terminates.
    pub end_round: u64,
    /// Whether nodes contribute multi-value counts.
    pub multi: bool,
    /// Self-healing restart epoch of the sender's state.
    pub epoch: u32,
    /// Interpolation thresholds.
    pub thresholds: Vec<f64>,
    /// Running averaged fractions.
    pub fractions: Vec<f64>,
    /// Verification thresholds.
    pub verify_thresholds: Vec<f64>,
    /// Running averaged verification fractions.
    pub verify_fractions: Vec<f64>,
    /// System-size weight.
    pub weight: f64,
    /// Averaged per-node value count.
    pub count: f64,
    /// Running global minimum.
    pub min: f64,
    /// Running global maximum.
    pub max: f64,
}

impl From<&InstanceLocal> for InstancePayload {
    fn from(local: &InstanceLocal) -> Self {
        Self {
            id: local.meta.id.as_u64(),
            start_round: local.meta.start_round,
            end_round: local.meta.end_round,
            multi: local.meta.multi,
            epoch: local.epoch,
            thresholds: local.meta.thresholds.to_vec(),
            fractions: local.fractions.clone(),
            verify_thresholds: local.meta.verify_thresholds.to_vec(),
            verify_fractions: local.verify_fractions.clone(),
            weight: local.weight,
            count: local.count,
            min: local.min,
            max: local.max,
        }
    }
}

impl InstancePayload {
    /// Size of this payload on the wire.
    pub fn encoded_len(&self) -> usize {
        payload_len(self.thresholds.len(), self.verify_thresholds.len())
    }

    /// Reconstructs a receiver-side [`InstanceLocal`] from the payload
    /// (used when a real deployment joins an instance it learned from the
    /// wire).
    pub fn to_local(&self) -> InstanceLocal {
        let meta = Arc::new(InstanceMeta {
            id: InstanceId::from_u64(self.id),
            thresholds: self.thresholds.clone().into(),
            verify_thresholds: self.verify_thresholds.clone().into(),
            start_round: self.start_round,
            end_round: self.end_round,
            multi: self.multi,
        });
        InstanceLocal {
            meta,
            fractions: self.fractions.clone(),
            verify_fractions: self.verify_fractions.clone(),
            count: self.count,
            weight: self.weight,
            min: self.min,
            max: self.max,
            epoch: self.epoch,
            initiator: false,
        }
    }

    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.id);
        buf.put_u64_le(self.start_round);
        buf.put_u64_le(self.end_round);
        buf.put_u8(if self.multi { FLAG_MULTI } else { 0 });
        buf.put_u32_le(self.epoch);
        buf.put_u16_le(self.thresholds.len() as u16);
        buf.put_u16_le(self.verify_thresholds.len() as u16);
        for v in &self.thresholds {
            buf.put_f64_le(*v);
        }
        for v in &self.fractions {
            buf.put_f64_le(*v);
        }
        for v in &self.verify_thresholds {
            buf.put_f64_le(*v);
        }
        for v in &self.verify_fractions {
            buf.put_f64_le(*v);
        }
        buf.put_f64_le(self.weight);
        buf.put_f64_le(self.count);
        buf.put_f64_le(self.min);
        buf.put_f64_le(self.max);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        if buf.remaining() < 8 * 3 + 1 + 4 + 2 + 2 {
            return Err(WireError::Truncated);
        }
        let id = buf.get_u64_le();
        let start_round = buf.get_u64_le();
        let end_round = buf.get_u64_le();
        let flags = buf.get_u8();
        if flags & !FLAG_MULTI != 0 {
            return Err(WireError::UnknownTag { tag: flags });
        }
        let epoch = buf.get_u32_le();
        let lambda = buf.get_u16_le() as usize;
        let verify = buf.get_u16_le() as usize;
        let floats = lambda * 2 + verify * 2 + 4;
        if buf.remaining() < floats * 8 {
            return Err(WireError::Truncated);
        }
        fn read_vec(buf: &mut Bytes, n: usize) -> Vec<f64> {
            (0..n).map(|_| buf.get_f64_le()).collect()
        }
        let thresholds = read_vec(buf, lambda);
        let fractions = read_vec(buf, lambda);
        let verify_thresholds = read_vec(buf, verify);
        let verify_fractions = read_vec(buf, verify);
        Ok(Self {
            id,
            start_round,
            end_round,
            multi: flags & FLAG_MULTI != 0,
            epoch,
            thresholds,
            fractions,
            verify_thresholds,
            verify_fractions,
            weight: buf.get_f64_le(),
            count: buf.get_f64_le(),
            min: buf.get_f64_le(),
            max: buf.get_f64_le(),
        })
    }
}

/// A complete gossip message: the sender's state for every instance it is
/// currently participating in, tagged with the per-exchange sequence
/// number of the two-phase repair path.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GossipMessage {
    /// Per-exchange sequence number: a retransmitted request and the
    /// (re)sent response of one exchange all carry the same value, so the
    /// receiver can deduplicate idempotently.
    pub seq: u64,
    /// Per-instance payloads.
    pub instances: Vec<InstancePayload>,
}

impl GossipMessage {
    /// Builds a message from a node's active instances (sequence number 0;
    /// set [`seq`](GossipMessage::seq) for the repair path).
    pub fn from_locals<'a, I>(locals: I) -> Self
    where
        I: IntoIterator<Item = &'a InstanceLocal>,
    {
        Self {
            seq: 0,
            instances: locals.into_iter().map(InstancePayload::from).collect(),
        }
    }

    /// Size of the message on the wire.
    pub fn encoded_len(&self) -> usize {
        HEADER_LEN
            + self
                .instances
                .iter()
                .map(InstancePayload::encoded_len)
                .sum::<usize>()
    }

    /// Encodes the message.
    ///
    /// # Panics
    ///
    /// Panics if the message carries more than 65 535 instances (a node
    /// participates in a handful at most).
    pub fn encode(&self) -> Bytes {
        assert!(
            self.instances.len() <= u16::MAX as usize,
            "too many instances"
        );
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        buf.put_u64_le(self.seq);
        buf.put_u16_le(self.instances.len() as u16);
        for inst in &self.instances {
            inst.encode(&mut buf);
        }
        buf.freeze()
    }

    /// Decodes a message.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncation or unknown flags.
    pub fn decode(mut buf: Bytes) -> Result<Self, WireError> {
        if buf.remaining() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let seq = buf.get_u64_le();
        let count = buf.get_u16_le() as usize;
        let mut instances = Vec::with_capacity(count.min(64));
        for _ in 0..count {
            instances.push(InstancePayload::decode(&mut buf)?);
        }
        Ok(Self { seq, instances })
    }
}

/// Wire size of one instance payload with `lambda` interpolation and
/// `verify` verification points.
pub fn payload_len(lambda: usize, verify: usize) -> usize {
    8 * 3 + 1 + 4 + 2 + 2 + (lambda * 2 + verify * 2 + 4) * 8
}

/// Wire size of a gossip message carrying the given instances — the value
/// charged to [`NetStats`](adam2_sim::NetStats) per direction of an
/// exchange, without actually serialising on the hot path.
pub fn message_len<'a, I>(locals: I) -> usize
where
    I: IntoIterator<Item = &'a InstanceLocal>,
{
    HEADER_LEN
        + locals
            .into_iter()
            .map(|l| payload_len(l.meta.thresholds.len(), l.meta.verify_thresholds.len()))
            .sum::<usize>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::AttrValue;

    fn sample_local(verify: usize) -> InstanceLocal {
        let meta = Arc::new(InstanceMeta {
            id: InstanceId::derive(3, 7, 1),
            thresholds: vec![1.0, 2.0, 3.0].into(),
            verify_thresholds: (0..verify)
                .map(|i| i as f64 + 0.5)
                .collect::<Vec<_>>()
                .into(),
            start_round: 3,
            end_round: 33,
            multi: false,
        });
        InstanceLocal::join(meta, &AttrValue::Single(2.5), true)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let locals = [sample_local(0), sample_local(4)];
        let msg = GossipMessage::from_locals(&locals);
        let encoded = msg.encode();
        let decoded = GossipMessage::decode(encoded).unwrap();
        assert_eq!(msg, decoded);
    }

    #[test]
    fn encoded_len_matches_actual_encoding() {
        for verify in [0, 1, 20] {
            let locals = [sample_local(verify)];
            let msg = GossipMessage::from_locals(&locals);
            assert_eq!(msg.encode().len(), msg.encoded_len());
            assert_eq!(msg.encoded_len(), message_len(&locals));
        }
    }

    #[test]
    fn paper_message_size_at_lambda_50() {
        // Section VII-I: "for λ = 50 the size of a gossip message is
        // approximately 800 bytes" — 50 (t, f) pairs = 800 B of payload
        // data; our framing adds a small header.
        let size = payload_len(50, 0) + HEADER_LEN;
        assert!(size >= 800, "payload data itself is 800 B");
        assert!(size < 900, "framing overhead must stay small, got {size}");
    }

    fn sized_payload(lambda: usize, verify: usize) -> InstancePayload {
        InstancePayload {
            id: 1,
            start_round: 0,
            end_round: 30,
            multi: false,
            epoch: 0,
            thresholds: vec![0.5; lambda],
            fractions: vec![0.25; lambda],
            verify_thresholds: vec![0.75; verify],
            verify_fractions: vec![0.5; verify],
            weight: 1.0,
            count: 1.0,
            min: 0.0,
            max: 1.0,
        }
    }

    #[test]
    fn payload_len_matches_encoding_at_size_edges() {
        // The sim charges bytes via payload_len/message_len without
        // serialising; the deploy runtime serialises for real. Both
        // accountings must agree at the λ/verify extremes the u16 length
        // fields allow: 0, 1, and u16::MAX-adjacent.
        let max = u16::MAX as usize;
        for (lambda, verify) in [
            (0, 0),
            (0, 1),
            (1, 0),
            (1, 1),
            (max - 1, 0),
            (max, 0),
            (0, max),
            (1, max - 1),
        ] {
            let msg = GossipMessage {
                seq: 9,
                instances: vec![sized_payload(lambda, verify)],
            };
            let encoded = msg.encode();
            assert_eq!(
                encoded.len(),
                HEADER_LEN + payload_len(lambda, verify),
                "λ={lambda} verify={verify}"
            );
            assert_eq!(encoded.len(), msg.encoded_len());
            let decoded = GossipMessage::decode(encoded).unwrap();
            assert_eq!(decoded.instances[0].thresholds.len(), lambda);
            assert_eq!(decoded.instances[0].verify_thresholds.len(), verify);
        }
    }

    #[test]
    fn message_len_matches_encoding_for_mixed_instances() {
        let locals = [sample_local(0), sample_local(1), sample_local(7)];
        let msg = GossipMessage::from_locals(&locals);
        assert_eq!(msg.encode().len(), message_len(&locals));
        assert_eq!(
            message_len(std::iter::empty::<&InstanceLocal>()),
            HEADER_LEN
        );
    }

    #[test]
    fn decode_rejects_truncation() {
        let locals = [sample_local(2)];
        let encoded = GossipMessage::from_locals(&locals).encode();
        for cut in [0, 1, 5, encoded.len() - 1] {
            let partial = encoded.slice(..cut);
            assert!(
                matches!(GossipMessage::decode(partial), Err(WireError::Truncated)),
                "cut at {cut} not detected"
            );
        }
    }

    #[test]
    fn decode_rejects_unknown_flags() {
        let locals = [sample_local(0)];
        let mut raw = GossipMessage::from_locals(&locals).encode().to_vec();
        raw[HEADER_LEN + 24] = 0xFF; // flags byte of the first instance
        assert!(matches!(
            GossipMessage::decode(Bytes::from(raw)),
            Err(WireError::UnknownTag { .. })
        ));
    }

    #[test]
    fn payload_to_local_roundtrip() {
        let local = sample_local(3);
        let payload = InstancePayload::from(&local);
        let back = payload.to_local();
        assert_eq!(back.meta.id, local.meta.id);
        assert_eq!(back.fractions, local.fractions);
        assert_eq!(back.weight, local.weight);
        assert_eq!(back.meta.thresholds, local.meta.thresholds);
        assert_eq!(back.min, local.min);
    }

    #[test]
    fn empty_message_roundtrip() {
        let msg = GossipMessage::default();
        assert_eq!(msg.encoded_len(), HEADER_LEN);
        let decoded = GossipMessage::decode(msg.encode()).unwrap();
        assert!(decoded.instances.is_empty());
        assert_eq!(decoded.seq, 0);
    }

    #[test]
    fn seq_and_epoch_survive_the_roundtrip() {
        let mut local = sample_local(2);
        local.epoch = 3;
        let mut msg = GossipMessage::from_locals([&local]);
        msg.seq = 0xDEAD_BEEF_0042;
        let decoded = GossipMessage::decode(msg.encode()).unwrap();
        assert_eq!(decoded.seq, 0xDEAD_BEEF_0042);
        assert_eq!(decoded.instances[0].epoch, 3);
        assert_eq!(decoded.instances[0].to_local().epoch, 3);
    }
}
