//! The HCut refinement heuristic.

use crate::cdf::InterpCdf;

/// Places λ thresholds at the `(λ+1)`-quantiles of the previous estimate:
/// `t_k = F_p⁻¹(k / (λ+1))`.
///
/// Since `Err_m(p)` is bounded by the largest vertical gap between
/// consecutive interpolation points, equal-quantile placement attempts to
/// bound the maximum error by `1/(λ+1)` — assuming the CDF does not change
/// between instances. On step CDFs many quantiles collapse onto the same
/// attribute value; the duplicates are removed here and the caller pads the
/// set back to λ distinct points.
///
/// # Examples
///
/// ```
/// use adam2_core::{hcut_thresholds, InterpCdf};
///
/// let prev = InterpCdf::new(vec![(0.0, 0.0), (100.0, 1.0)])?;
/// let ts = hcut_thresholds(&prev, 3);
/// assert_eq!(ts, vec![25.0, 50.0, 75.0]);
/// # Ok::<(), adam2_core::CdfError>(())
/// ```
pub fn hcut_thresholds(prev: &InterpCdf, lambda: usize) -> Vec<f64> {
    let mut ts: Vec<f64> = (1..=lambda)
        .map(|k| prev.quantile(k as f64 / (lambda + 1) as f64))
        .collect();
    ts.sort_by(f64::total_cmp);
    ts.dedup();
    ts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_gives_even_quantiles() {
        let prev = InterpCdf::new(vec![(0.0, 0.0), (10.0, 1.0)]).unwrap();
        let ts = hcut_thresholds(&prev, 4);
        assert_eq!(ts, vec![2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn quantiles_concentrate_where_mass_is() {
        // 90% of the mass below x=1, the rest spread to x=100.
        let prev = InterpCdf::new(vec![(0.0, 0.0), (1.0, 0.9), (100.0, 1.0)]).unwrap();
        let ts = hcut_thresholds(&prev, 9);
        let below_one = ts.iter().filter(|t| **t <= 1.0).count();
        assert!(
            below_one >= 7,
            "only {below_one} of 9 points below the mass"
        );
    }

    #[test]
    fn step_cdf_collapses_to_fewer_points() {
        // Single step at x=5 holding 80% of the mass.
        let prev = InterpCdf::new(vec![(0.0, 0.0), (5.0, 0.1), (5.0, 0.9), (10.0, 1.0)]).unwrap();
        let ts = hcut_thresholds(&prev, 8);
        // Most quantiles land exactly on the step.
        assert!(ts.len() < 8);
        assert!(ts.contains(&5.0));
    }
}
