//! The LCut refinement heuristic.

use crate::cdf::InterpCdf;

/// Places λ thresholds at equal *Euclidean arc-length* intervals along the
/// previous interpolation curve.
///
/// The x-axis is rescaled by `1 / (max - min)` so both coordinates span
/// `[0, 1]`, then the polyline is divided into `λ + 1` equal-length
/// segments; the x-coordinates of the division points become the new
/// thresholds. Compared to HCut, arc-length placement also spends points on
/// *flat* (horizontal) stretches of the CDF, which reduces the area between
/// the curves — `Err_a` — at the expense of `Err_m` on heavily stepped
/// CDFs (Section VII-C).
///
/// Points that land on a vertical jump share the same x and collapse when
/// deduplicated; the caller pads the set back to λ distinct thresholds.
pub fn lcut_thresholds(prev: &InterpCdf, lambda: usize) -> Vec<f64> {
    let total = prev.scaled_arc_length();
    let mut ts: Vec<f64> = (1..=lambda)
        .map(|k| prev.point_at_arc(total * k as f64 / (lambda + 1) as f64).0)
        .collect();
    ts.sort_by(f64::total_cmp);
    ts.dedup();
    ts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_gives_even_spacing() {
        let prev = InterpCdf::new(vec![(0.0, 0.0), (10.0, 1.0)]).unwrap();
        let ts = lcut_thresholds(&prev, 4);
        assert_eq!(ts.len(), 4);
        for (k, t) in ts.iter().enumerate() {
            let expected = 10.0 * (k + 1) as f64 / 5.0;
            assert!((t - expected).abs() < 1e-9, "t[{k}] = {t}");
        }
    }

    #[test]
    fn flat_stretches_receive_points() {
        // 10% of mass at x<=1, then flat until x=100, then the rest.
        // HCut would put almost everything below x=1; LCut must cover the
        // long flat run.
        let prev = InterpCdf::new(vec![(0.0, 0.0), (1.0, 0.9), (100.0, 1.0)]).unwrap();
        let ts = lcut_thresholds(&prev, 9);
        let beyond = ts.iter().filter(|t| **t > 1.0).count();
        assert!(beyond >= 5, "flat stretch under-covered: {ts:?}");
    }

    #[test]
    fn vertical_jumps_collapse() {
        // A pure step CDF: half the scaled arc is the vertical jump at 5.
        let prev = InterpCdf::new(vec![(0.0, 0.0), (5.0, 0.0), (5.0, 1.0), (10.0, 1.0)]).unwrap();
        let ts = lcut_thresholds(&prev, 8);
        // Several points land exactly on x=5 and dedup to one.
        assert!(ts.len() < 8);
        assert!(ts.contains(&5.0));
    }

    #[test]
    fn thresholds_stay_within_domain() {
        let prev = InterpCdf::new(vec![(2.0, 0.0), (3.0, 0.7), (9.0, 1.0)]).unwrap();
        for lambda in [1, 5, 17] {
            let ts = lcut_thresholds(&prev, lambda);
            assert!(ts.iter().all(|t| (2.0..=9.0).contains(t)));
        }
    }
}
