//! The MinMax refinement heuristic (Fig. 3 of the paper).

use crate::cdf::InterpCdf;

/// Iteratively splits the widest vertical gap of the previous interpolation
/// while removing the midpoint of the narrowest three-point cluster.
///
/// This is the paper's Fig. 3 algorithm, run on the previous estimate's
/// knots (the λ interpolation points plus the `(min, 0)` / `(max, 1)`
/// anchors, which are never removed):
///
/// 1. find consecutive points `n-1, n` in the working set `H` maximising
///    the vertical gap `|f_n - f_{n-1}|`;
/// 2. find an interior point `m` in the shrinking set `H_old` minimising
///    the cluster height `|f_{m+1} - f_{m-1}|`;
/// 3. if the gap exceeds the cluster height, move the cluster midpoint to
///    the middle of the gap (remove from both sets, insert the interpolated
///    midpoint into `H`); otherwise stop.
///
/// By repeatedly splitting the steepest fragment, MinMax homes in on the
/// *steps* of discrete real-world CDFs — the paper's RAM distribution —
/// where HCut and LCut waste points (Section VII-C).
///
/// Returns the interior thresholds of the final `H` (the anchors are
/// re-added by the aggregation instance itself). The output may contain
/// duplicates on pathological inputs; the caller deduplicates and pads.
pub fn minmax_thresholds(prev: &InterpCdf, lambda: usize) -> Vec<f64> {
    // Working sets of (t, f) points, seeded from the previous estimate.
    let mut h: Vec<(f64, f64)> = resample_knots(prev, lambda);
    let mut h_old = h.clone();

    // Each iteration removes one interior point and inserts one midpoint,
    // so |H| is invariant; the iteration cap guards pathological cycles.
    let max_iterations = lambda * 4 + 16;
    for _ in 0..max_iterations {
        if h.len() < 3 || h_old.len() < 3 {
            break;
        }
        // Step 1: widest vertical gap in H. Zero-width segments (vertical
        // jumps, e.g. an atom sitting exactly at the attribute minimum)
        // cannot be bisected in x and are skipped.
        let (mut gap_idx, mut gap) = (usize::MAX, f64::NEG_INFINITY);
        for i in 1..h.len() {
            if h[i].0 <= h[i - 1].0 {
                continue;
            }
            let g = (h[i].1 - h[i - 1].1).abs();
            if g > gap {
                gap = g;
                gap_idx = i;
            }
        }
        if gap_idx == usize::MAX {
            break;
        }
        // Step 2: narrowest three-point cluster in H_old (interior only:
        // the anchors must survive).
        let (mut cl_idx, mut cluster) = (1usize, f64::INFINITY);
        for m in 1..h_old.len() - 1 {
            let c = (h_old[m + 1].1 - h_old[m - 1].1).abs();
            if c < cluster {
                cluster = c;
                cl_idx = m;
            }
        }
        if gap <= cluster {
            break;
        }
        // Step 3: compute the gap midpoint before mutating, then move the
        // cluster midpoint there.
        let midpoint = (
            (h[gap_idx].0 + h[gap_idx - 1].0) / 2.0,
            (h[gap_idx].1 + h[gap_idx - 1].1) / 2.0,
        );
        let removed = h_old.remove(cl_idx);
        if let Some(pos) = h.iter().position(|p| *p == removed) {
            h.remove(pos);
        }
        let pos = h.partition_point(|p| p.0 < midpoint.0);
        h.insert(pos, midpoint);
    }

    // Strip the anchors; the interior points are the new thresholds.
    h.iter()
        .skip(1)
        .take(h.len().saturating_sub(2))
        .map(|(t, _)| *t)
        .collect()
}

/// Seeds the working set with `lambda` interior points plus the two
/// anchors.
///
/// When the previous estimate has exactly λ interior knots they are used
/// verbatim; otherwise (first refinement after a bootstrap with a different
/// λ, or a staircase estimate) the knots are resampled at equal quantiles.
fn resample_knots(prev: &InterpCdf, lambda: usize) -> Vec<(f64, f64)> {
    let knots = prev.knots();
    if knots.len() == lambda + 2 {
        return knots.to_vec();
    }
    let mut out = Vec::with_capacity(lambda + 2);
    out.push(knots[0]);
    for k in 1..=lambda {
        let q = k as f64 / (lambda + 1) as f64;
        let t = prev.quantile(q);
        out.push((t, prev.eval(t)));
    }
    out.push(*knots.last().expect("non-empty"));
    out.sort_by(|a, b| a.0.total_cmp(&b.0));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_point_count() {
        let prev = InterpCdf::new(vec![(0.0, 0.0), (2.0, 0.1), (4.0, 0.2), (10.0, 1.0)]).unwrap();
        let ts = minmax_thresholds(&prev, 2);
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn splits_the_large_gap() {
        // Knots: anchors plus interior points at y=0.05 and y=0.10; the
        // last segment (0.10 -> 1.0) is a huge gap that must be split.
        let prev = InterpCdf::new(vec![(0.0, 0.0), (1.0, 0.05), (2.0, 0.10), (10.0, 1.0)]).unwrap();
        let ts = minmax_thresholds(&prev, 2);
        assert_eq!(ts.len(), 2);
        // At least one point moved into the (2, 10) gap.
        assert!(
            ts.iter().any(|t| *t > 2.0 && *t < 10.0),
            "thresholds: {ts:?}"
        );
    }

    #[test]
    fn uniform_diagonal_is_a_fixed_point() {
        // Evenly spread points on a diagonal: every gap equals every
        // cluster/2, so no move should happen and thresholds are retained.
        let prev = InterpCdf::new(vec![
            (0.0, 0.0),
            (2.0, 0.2),
            (4.0, 0.4),
            (6.0, 0.6),
            (8.0, 0.8),
            (10.0, 1.0),
        ])
        .unwrap();
        let ts = minmax_thresholds(&prev, 4);
        assert_eq!(ts, vec![2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn resamples_when_knot_count_differs() {
        let prev = InterpCdf::new(vec![(0.0, 0.0), (10.0, 1.0)]).unwrap();
        let ts = minmax_thresholds(&prev, 5);
        assert_eq!(ts.len(), 5);
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn converges_toward_step_location() {
        // Previous estimate roughly sees a step near x=50 (big vertical
        // move between 40 and 60). Iterating MinMax should concentrate
        // points inside (40, 60).
        let prev = InterpCdf::new(vec![
            (0.0, 0.0),
            (20.0, 0.05),
            (40.0, 0.10),
            (60.0, 0.90),
            (80.0, 0.95),
            (100.0, 1.0),
        ])
        .unwrap();
        let ts = minmax_thresholds(&prev, 4);
        let inside = ts.iter().filter(|t| **t > 40.0 && **t < 60.0).count();
        assert!(inside >= 1, "no point moved into the step region: {ts:?}");
    }
}
