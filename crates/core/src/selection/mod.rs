//! Interpolation-point selection (Section V).
//!
//! When a peer starts a new aggregation instance it must place the λ
//! thresholds `t_i`. With no prior estimate it *bootstraps* — uniformly
//! over the attribute domain or from attribute values sampled at its
//! overlay neighbours (Section VII-B shows the latter converges much
//! faster). Once an estimate exists, a *refinement* heuristic places the
//! next instance's thresholds using the previous CDF approximation:
//!
//! * [`RefineKind::HCut`] — thresholds at the `(λ+1)`-quantiles of the
//!   previous estimate, bounding the vertical gap between consecutive
//!   points to ≈ `1/(λ+1)`.
//! * [`RefineKind::MinMax`] — iteratively splits the widest vertical gap
//!   while removing the midpoint of the narrowest three-point cluster
//!   (Fig. 3); excels at locating the steps of discrete CDFs.
//! * [`RefineKind::LCut`] — thresholds at equal *Euclidean arc-length*
//!   intervals along the previous interpolation curve (x rescaled by
//!   `max - min`), optimising the average error.
//! * [`RefineKind::Hybrid`] — an extension beyond the paper (its "future
//!   work"): alternate MinMax and LCut placements within one threshold
//!   set.
//!
//! All selectors return exactly λ *distinct*, sorted thresholds; where a
//! heuristic would produce duplicates (quantiles collapsing on a step),
//! the set is padded with uniformly spaced fill-ins, since a duplicated
//! threshold measures the same CDF value twice and carries no information.

mod hcut;
mod lcut;
mod minmax;

pub use hcut::hcut_thresholds;
pub use lcut::lcut_thresholds;
pub use minmax::minmax_thresholds;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;

use crate::estimate::DistributionEstimate;

/// How to place thresholds when no previous estimate exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BootstrapKind {
    /// Uniformly spaced over the attribute domain (requires a domain hint
    /// or neighbour values for the range).
    Uniform,
    /// A random subset of the attribute values observed at the initiator's
    /// neighbours (the paper's recommended bootstrap).
    #[default]
    Neighbours,
}

/// How to refine thresholds once a previous estimate exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RefineKind {
    /// Never refine; always use the bootstrap placement.
    Bootstrap,
    /// Equal-quantile placement (minimises `Err_m` on smooth CDFs).
    HCut,
    /// Gap-splitting placement of Fig. 3 (minimises `Err_m` on step CDFs).
    #[default]
    MinMax,
    /// Equal-arc-length placement (minimises `Err_a`).
    LCut,
    /// Extension: interleaved MinMax + LCut placement.
    Hybrid,
}

/// Inputs available to threshold selection at instance start.
#[derive(Debug, Clone, Copy)]
pub struct SelectionInput<'a> {
    /// The initiator's previous estimate, if any.
    pub prev: Option<&'a DistributionEstimate>,
    /// Attribute values sampled from the initiator's neighbours (plus its
    /// own).
    pub neighbour_values: &'a [f64],
    /// Optional a-priori attribute range (used by the Uniform bootstrap,
    /// mirroring the paper's PeerSim setup where the domain is known).
    pub domain_hint: Option<(f64, f64)>,
}

impl SelectionInput<'_> {
    /// The best available `(lo, hi)` range: the previous estimate's
    /// converged extrema, else the domain hint, else the neighbour-value
    /// span, else `(0, 1)`.
    pub fn range(&self) -> (f64, f64) {
        if let Some(prev) = self.prev {
            return (prev.min, prev.max);
        }
        if let Some(hint) = self.domain_hint {
            return hint;
        }
        let lo = self
            .neighbour_values
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let hi = self
            .neighbour_values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        if lo.is_finite() && hi.is_finite() && lo <= hi {
            (lo, hi)
        } else {
            (0.0, 1.0)
        }
    }
}

/// Selects λ distinct sorted thresholds for a new aggregation instance.
///
/// Uses `refine` when a previous estimate is available (unless it is
/// [`RefineKind::Bootstrap`]); falls back to `bootstrap` otherwise.
///
/// # Panics
///
/// Panics if `lambda` is zero.
pub fn select_thresholds(
    bootstrap: BootstrapKind,
    refine: RefineKind,
    input: SelectionInput<'_>,
    lambda: usize,
    rng: &mut StdRng,
) -> Vec<f64> {
    assert!(lambda > 0, "lambda must be positive");
    if let Some(prev) = input.prev {
        let ts = match refine {
            RefineKind::Bootstrap => bootstrap_thresholds(bootstrap, &input, lambda, rng),
            RefineKind::HCut => hcut_thresholds(&prev.cdf, lambda),
            RefineKind::MinMax => minmax_thresholds(&prev.cdf, lambda),
            RefineKind::LCut => lcut_thresholds(&prev.cdf, lambda),
            RefineKind::Hybrid => {
                let half = lambda / 2;
                let mut ts = minmax_thresholds(&prev.cdf, lambda - half);
                ts.extend(lcut_thresholds(&prev.cdf, half.max(1)));
                ts
            }
        };
        let (lo, hi) = input.range();
        normalise(ts, lambda, lo, hi)
    } else {
        let ts = bootstrap_thresholds(bootstrap, &input, lambda, rng);
        let (lo, hi) = input.range();
        normalise(ts, lambda, lo, hi)
    }
}

fn bootstrap_thresholds(
    kind: BootstrapKind,
    input: &SelectionInput<'_>,
    lambda: usize,
    rng: &mut StdRng,
) -> Vec<f64> {
    match kind {
        BootstrapKind::Uniform => {
            let (lo, hi) = input.range();
            uniform_points(lo, hi, lambda)
        }
        BootstrapKind::Neighbours => {
            let mut values: Vec<f64> = input.neighbour_values.to_vec();
            values.shuffle(rng);
            values.truncate(lambda);
            values
        }
    }
}

/// λ points uniformly spaced strictly inside `(lo, hi)`:
/// `t_k = lo + (hi - lo) * k / (λ + 1)`.
pub fn uniform_points(lo: f64, hi: f64, lambda: usize) -> Vec<f64> {
    let span = hi - lo;
    (1..=lambda)
        .map(|k| lo + span * k as f64 / (lambda + 1) as f64)
        .collect()
}

/// Sorts, deduplicates and pads a threshold set to exactly `lambda`
/// distinct values within `[lo, hi]`.
pub(crate) fn normalise(mut ts: Vec<f64>, lambda: usize, lo: f64, hi: f64) -> Vec<f64> {
    ts.retain(|t| t.is_finite());
    ts.sort_by(f64::total_cmp);
    ts.dedup();
    ts.truncate(lambda);
    if ts.len() < lambda {
        // Pad with uniform fill-ins not colliding with existing points.
        let mut denom = lambda + 1;
        while ts.len() < lambda && denom < (lambda + 1) * 1024 {
            for k in 1..denom {
                if ts.len() >= lambda {
                    break;
                }
                let candidate = lo + (hi - lo) * k as f64 / denom as f64;
                if ts.binary_search_by(|t| t.total_cmp(&candidate)).is_err() {
                    let pos = ts.partition_point(|t| *t < candidate);
                    ts.insert(pos, candidate);
                }
            }
            denom *= 2;
        }
        // Degenerate domains (lo == hi) cannot yield distinct fill-ins;
        // fall back to offset duplicates beyond the domain, which are
        // harmless (they measure F = 0 or 1).
        let mut bump = 1.0;
        while ts.len() < lambda {
            let candidate = hi + bump;
            if ts.binary_search_by(|t| t.total_cmp(&candidate)).is_err() {
                ts.push(candidate);
            }
            bump += 1.0;
        }
    }
    ts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdf::InterpCdf;
    use crate::instance::InstanceId;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x5E1E)
    }

    fn estimate_from(cdf: InterpCdf) -> DistributionEstimate {
        let (min, max) = (cdf.min(), cdf.max());
        DistributionEstimate {
            cdf,
            n_hat: Some(100.0),
            min,
            max,
            est_err_avg: None,
            est_err_max: None,
            instance: InstanceId::derive(0, 0, 0),
            completed_round: 25,
            thresholds: vec![],
            fractions: vec![],
        }
    }

    #[test]
    fn uniform_points_are_evenly_spaced() {
        let ts = uniform_points(0.0, 100.0, 4);
        assert_eq!(ts, vec![20.0, 40.0, 60.0, 80.0]);
    }

    #[test]
    fn uniform_bootstrap_uses_domain_hint() {
        let input = SelectionInput {
            prev: None,
            neighbour_values: &[],
            domain_hint: Some((10.0, 20.0)),
        };
        let ts = select_thresholds(
            BootstrapKind::Uniform,
            RefineKind::MinMax,
            input,
            9,
            &mut rng(),
        );
        assert_eq!(ts.len(), 9);
        assert!(ts.iter().all(|t| (10.0..=20.0).contains(t)));
        assert!((ts[0] - 11.0).abs() < 1e-12);
    }

    #[test]
    fn neighbour_bootstrap_draws_from_values() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let input = SelectionInput {
            prev: None,
            neighbour_values: &values,
            domain_hint: None,
        };
        let ts = select_thresholds(
            BootstrapKind::Neighbours,
            RefineKind::MinMax,
            input,
            10,
            &mut rng(),
        );
        assert_eq!(ts.len(), 10);
        assert!(ts.windows(2).all(|w| w[0] < w[1]), "sorted distinct");
        assert!(ts.iter().all(|t| values.contains(t)));
    }

    #[test]
    fn neighbour_bootstrap_pads_when_values_collapse() {
        // All neighbours report the same value (a heavy RAM step).
        let values = vec![1024.0; 30];
        let input = SelectionInput {
            prev: None,
            neighbour_values: &values,
            domain_hint: None,
        };
        let ts = select_thresholds(
            BootstrapKind::Neighbours,
            RefineKind::MinMax,
            input,
            5,
            &mut rng(),
        );
        assert_eq!(ts.len(), 5);
        let mut d = ts.clone();
        d.dedup();
        assert_eq!(d.len(), 5, "thresholds must be distinct");
    }

    #[test]
    fn refinement_is_used_once_estimate_exists() {
        let est = estimate_from(InterpCdf::new(vec![(0.0, 0.0), (100.0, 1.0)]).unwrap());
        let input = SelectionInput {
            prev: Some(&est),
            neighbour_values: &[5.0],
            domain_hint: None,
        };
        let ts = select_thresholds(
            BootstrapKind::Neighbours,
            RefineKind::HCut,
            input,
            3,
            &mut rng(),
        );
        // HCut on a straight diagonal: quartile positions.
        assert_eq!(ts.len(), 3);
        assert!((ts[0] - 25.0).abs() < 1e-9);
        assert!((ts[1] - 50.0).abs() < 1e-9);
        assert!((ts[2] - 75.0).abs() < 1e-9);
    }

    #[test]
    fn refine_bootstrap_ignores_previous_estimate() {
        let est = estimate_from(InterpCdf::new(vec![(0.0, 0.0), (100.0, 1.0)]).unwrap());
        let input = SelectionInput {
            prev: Some(&est),
            neighbour_values: &[],
            domain_hint: Some((0.0, 100.0)),
        };
        let ts = select_thresholds(
            BootstrapKind::Uniform,
            RefineKind::Bootstrap,
            input,
            4,
            &mut rng(),
        );
        assert_eq!(ts, uniform_points(0.0, 100.0, 4));
    }

    #[test]
    fn hybrid_returns_lambda_points() {
        let est = estimate_from(
            InterpCdf::new(vec![(0.0, 0.0), (50.0, 0.1), (50.0, 0.8), (100.0, 1.0)]).unwrap(),
        );
        let input = SelectionInput {
            prev: Some(&est),
            neighbour_values: &[],
            domain_hint: None,
        };
        let ts = select_thresholds(
            BootstrapKind::Uniform,
            RefineKind::Hybrid,
            input,
            11,
            &mut rng(),
        );
        assert_eq!(ts.len(), 11);
        assert!(ts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn normalise_handles_degenerate_domain() {
        let ts = normalise(vec![5.0, 5.0, 5.0], 3, 5.0, 5.0);
        assert_eq!(ts.len(), 3);
        let mut d = ts.clone();
        d.dedup();
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn range_prefers_prev_then_hint_then_values() {
        let est = estimate_from(InterpCdf::new(vec![(1.0, 0.0), (9.0, 1.0)]).unwrap());
        let with_prev = SelectionInput {
            prev: Some(&est),
            neighbour_values: &[100.0],
            domain_hint: Some((0.0, 1000.0)),
        };
        assert_eq!(with_prev.range(), (1.0, 9.0));
        let with_hint = SelectionInput {
            prev: None,
            neighbour_values: &[100.0],
            domain_hint: Some((0.0, 1000.0)),
        };
        assert_eq!(with_hint.range(), (0.0, 1000.0));
        let with_values = SelectionInput {
            prev: None,
            neighbour_values: &[3.0, 7.0],
            domain_hint: None,
        };
        assert_eq!(with_values.range(), (3.0, 7.0));
        let empty = SelectionInput {
            prev: None,
            neighbour_values: &[],
            domain_hint: None,
        };
        assert_eq!(empty.range(), (0.0, 1.0));
    }
}
