//! Monotone cubic (PCHIP) CDF interpolation.
//!
//! The paper approximates the CDF by "simple linear regression between
//! each consecutive pair of points ... but more complex approaches are
//! possible". This module provides that more complex approach: piecewise
//! cubic Hermite interpolation with Fritsch–Carlson slope limiting, which
//! is *shape preserving* — the interpolant is monotone non-decreasing
//! between monotone knots, so it is always a valid CDF (an unconstrained
//! cubic spline would overshoot at the steps and stop being monotone).
//!
//! On smooth CDFs the cubic fits the curvature between interpolation
//! points that a chord misses; on step CDFs the limiter collapses toward
//! the chord and nothing is lost. The `exp_interpolation` experiment
//! quantifies both effects. This is an extension beyond the paper,
//! flagged in DESIGN.md.

use serde::{Deserialize, Serialize};

use crate::cdf::InterpCdf;

/// A shape-preserving monotone cubic interpolation of a CDF's knots.
///
/// Built [`from_linear`](MonotoneCubicCdf::from_linear); evaluation is
/// right-continuous at vertical jumps, like [`InterpCdf`].
///
/// # Examples
///
/// ```
/// use adam2_core::{InterpCdf, MonotoneCubicCdf};
///
/// let linear = InterpCdf::new(vec![(0.0, 0.0), (1.0, 0.1), (2.0, 0.5), (3.0, 1.0)])?;
/// let cubic = MonotoneCubicCdf::from_linear(&linear);
/// // Same values at the knots...
/// assert!((cubic.eval(2.0) - 0.5).abs() < 1e-12);
/// // ...monotone in between.
/// assert!(cubic.eval(1.4) <= cubic.eval(1.6));
/// # Ok::<(), adam2_core::CdfError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonotoneCubicCdf {
    /// Knot positions (x, y), non-decreasing in both coordinates.
    knots: Vec<(f64, f64)>,
    /// Endpoint derivative at each knot (dy/dx), Fritsch–Carlson limited.
    slopes: Vec<f64>,
}

impl MonotoneCubicCdf {
    /// Builds the monotone cubic interpolant through the knots of a
    /// piecewise-linear CDF.
    pub fn from_linear(linear: &InterpCdf) -> Self {
        let knots: Vec<(f64, f64)> = linear.knots().to_vec();
        let n = knots.len();
        let mut slopes = vec![0.0; n];
        if n < 2 {
            return Self { knots, slopes };
        }

        // Secant slopes per segment; zero-width (jump) segments get an
        // infinite marker handled below.
        let secant = |i: usize| -> f64 {
            let dx = knots[i + 1].0 - knots[i].0;
            let dy = knots[i + 1].1 - knots[i].1;
            if dx > 0.0 {
                dy / dx
            } else {
                f64::INFINITY
            }
        };

        for (i, slope) in slopes.iter_mut().enumerate() {
            let left = if i > 0 { Some(secant(i - 1)) } else { None };
            let right = if i + 1 < n { Some(secant(i)) } else { None };
            *slope = match (left, right) {
                (None, Some(d)) | (Some(d), None) => {
                    if d.is_finite() {
                        d
                    } else {
                        0.0
                    }
                }
                (Some(dl), Some(dr)) => {
                    if !dl.is_finite() || !dr.is_finite() {
                        // Adjacent to a jump: flatten so the cubic cannot
                        // overshoot into the jump.
                        0.0
                    } else if dl * dr <= 0.0 {
                        // Local extremum between segments (flat CDF run).
                        0.0
                    } else {
                        // Fritsch-Carlson harmonic mean keeps monotonicity.
                        2.0 * dl * dr / (dl + dr)
                    }
                }
                (None, None) => 0.0,
            };
        }

        // Second Fritsch-Carlson constraint: limit |m| <= 3 |secant|.
        for i in 0..n - 1 {
            let d = secant(i);
            if !d.is_finite() || d == 0.0 {
                continue;
            }
            let limit = 3.0 * d.abs();
            slopes[i] = slopes[i].clamp(-limit, limit);
            slopes[i + 1] = slopes[i + 1].clamp(-limit, limit);
        }

        Self { knots, slopes }
    }

    /// The knots of the interpolant.
    pub fn knots(&self) -> &[(f64, f64)] {
        &self.knots
    }

    /// Evaluates the interpolant at `x` (clamped outside the knot range,
    /// right-continuous at jumps).
    pub fn eval(&self, x: f64) -> f64 {
        if self.knots.is_empty() {
            return 0.0;
        }
        let j = self.knots.partition_point(|(kx, _)| *kx <= x);
        if j == 0 {
            return self.knots[0].1;
        }
        if j == self.knots.len() {
            return self.knots[j - 1].1;
        }
        let (x0, y0) = self.knots[j - 1];
        let (x1, y1) = self.knots[j];
        let h = x1 - x0;
        if h <= 0.0 {
            return y1;
        }
        // Cubic Hermite basis.
        let t = (x - x0) / h;
        let t2 = t * t;
        let t3 = t2 * t;
        let h00 = 2.0 * t3 - 3.0 * t2 + 1.0;
        let h10 = t3 - 2.0 * t2 + t;
        let h01 = -2.0 * t3 + 3.0 * t2;
        let h11 = t3 - t2;
        let v = h00 * y0 + h10 * h * self.slopes[j - 1] + h01 * y1 + h11 * h * self.slopes[j];
        // Clamp defensively against floating-point wiggle.
        v.clamp(y0.min(y1), y0.max(y1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear(knots: Vec<(f64, f64)>) -> InterpCdf {
        InterpCdf::new(knots).expect("valid knots")
    }

    #[test]
    fn interpolates_knots_exactly() {
        let l = linear(vec![(0.0, 0.0), (1.0, 0.2), (4.0, 0.7), (5.0, 1.0)]);
        let c = MonotoneCubicCdf::from_linear(&l);
        for (x, y) in l.knots() {
            assert!((c.eval(*x) - y).abs() < 1e-12, "knot ({x}, {y})");
        }
    }

    #[test]
    fn is_monotone_everywhere() {
        let l = linear(vec![
            (0.0, 0.0),
            (1.0, 0.05),
            (2.0, 0.06),
            (3.0, 0.8),
            (4.0, 0.82),
            (10.0, 1.0),
        ]);
        let c = MonotoneCubicCdf::from_linear(&l);
        let mut prev = -1.0;
        for k in 0..=1000 {
            let x = k as f64 / 100.0;
            let y = c.eval(x);
            assert!(y + 1e-12 >= prev, "non-monotone at {x}: {y} < {prev}");
            assert!((0.0..=1.0).contains(&y));
            prev = y;
        }
    }

    #[test]
    fn fits_smooth_curves_better_than_chords() {
        // Sample y = (x/10)^2 at coarse knots; compare both interpolants
        // at fine positions.
        let knots: Vec<(f64, f64)> = (0..=5)
            .map(|k| (2.0 * k as f64, (2.0 * k as f64 / 10.0).powi(2)))
            .collect();
        let l = linear(knots);
        let c = MonotoneCubicCdf::from_linear(&l);
        let mut linear_err = 0.0f64;
        let mut cubic_err = 0.0f64;
        for k in 0..=100 {
            let x = k as f64 / 10.0;
            let truth = (x / 10.0).powi(2);
            linear_err += (l.eval(x) - truth).abs();
            cubic_err += (c.eval(x) - truth).abs();
        }
        assert!(
            cubic_err < linear_err * 0.5,
            "cubic ({cubic_err}) should clearly beat linear ({linear_err})"
        );
    }

    #[test]
    fn handles_jumps_without_overshoot() {
        // Staircase with a vertical jump at x=5.
        let l = linear(vec![(0.0, 0.0), (5.0, 0.1), (5.0, 0.9), (10.0, 1.0)]);
        let c = MonotoneCubicCdf::from_linear(&l);
        assert_eq!(c.eval(5.0), 0.9, "right-continuous at the jump");
        assert!(c.eval(4.999) <= 0.1 + 1e-9, "no overshoot into the jump");
        assert!(c.eval(5.001) >= 0.9 - 1e-9);
    }

    #[test]
    fn flat_runs_stay_flat() {
        let l = linear(vec![(0.0, 0.0), (2.0, 0.5), (8.0, 0.5), (10.0, 1.0)]);
        let c = MonotoneCubicCdf::from_linear(&l);
        for x in [3.0, 5.0, 7.9] {
            assert!((c.eval(x) - 0.5).abs() < 1e-9, "flat run bent at {x}");
        }
    }

    #[test]
    fn clamps_outside_the_range() {
        let l = linear(vec![(1.0, 0.0), (2.0, 1.0)]);
        let c = MonotoneCubicCdf::from_linear(&l);
        assert_eq!(c.eval(-5.0), 0.0);
        assert_eq!(c.eval(99.0), 1.0);
    }

    #[test]
    fn single_knot_is_constant() {
        let l = linear(vec![(3.0, 0.4)]);
        let c = MonotoneCubicCdf::from_linear(&l);
        assert_eq!(c.eval(0.0), 0.4);
        assert_eq!(c.eval(3.0), 0.4);
        assert_eq!(c.eval(9.0), 0.4);
    }
}
