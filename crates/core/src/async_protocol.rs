//! Adam2 over an asynchronous network (event-driven execution).
//!
//! The paper evaluates Adam2 in PeerSim's cycle-driven mode, where a
//! push–pull exchange is atomic. This module runs the *same node state*
//! ([`Adam2Node`]) over [`adam2_sim::EventEngine`]: a gossip exchange is
//! two real messages ([`wire::GossipMessage`] payloads) with latency, and
//! concurrent exchanges interleave. Non-atomic push–pull averaging no
//! longer conserves mass exactly — if node *p* averages with a snapshot of
//! *q* while *q* is concurrently averaging with someone else, a little
//! mass is duplicated or dropped — so the error at the interpolation
//! points floors at a small value instead of decaying to machine epsilon.
//! Quantifying that gap (see the `exp_async` experiment) validates how
//! much the paper's numbers owe to the cycle-model idealisation: the
//! floor sits far below the interpolation error, so the headline results
//! survive asynchrony.
//!
//! This is an extension beyond the paper, flagged in DESIGN.md.

use std::sync::Arc;

use rand::rngs::StdRng;

use adam2_sim::{
    ActiveAdversary, AsyncProtocol, BatchAsyncProtocol, BatchCtx, DriftOp, EventCtx, NodeId,
};

use crate::config::RobustPolicy;
use crate::instance::{AttrValue, InstanceMeta};
use crate::protocol::{corrupt_node, Adam2Node};
use crate::wire::{GossipMessage, InstancePayload};

/// A gossip message of the asynchronous protocol: the request carries the
/// initiator's instance states, the response the responder's *pre-merge*
/// states.
#[derive(Debug, Clone)]
pub enum Adam2Message {
    /// Push half of the exchange.
    Request(GossipMessage),
    /// Pull half of the exchange.
    Response(GossipMessage),
}

impl Adam2Message {
    fn payloads(&self) -> &[InstancePayload] {
        match self {
            Adam2Message::Request(m) | Adam2Message::Response(m) => &m.instances,
        }
    }

    /// Wire size of the message.
    pub fn encoded_len(&self) -> usize {
        match self {
            Adam2Message::Request(m) | Adam2Message::Response(m) => m.encoded_len(),
        }
    }

    /// Per-exchange sequence number: assigned by the initiator's timer,
    /// echoed by the response. Duplicate deliveries of the same message
    /// repeat it, which is how [`AsyncAdam2`] detects them.
    pub fn seq(&self) -> u64 {
        match self {
            Adam2Message::Request(m) | Adam2Message::Response(m) => m.seq,
        }
    }
}

/// Bound on the duplicate-detection window (FIFO-evicted `(sender,
/// receiver, seq)` triples). Duplicates injected by the fault framework
/// arrive within one latency draw of the original, so a small window
/// suffices; the bound keeps long runs at constant memory.
const SEEN_CAP: usize = 1024;

/// Event-driven Adam2: one gossip exchange per timer fire, with join and
/// merge driven entirely by decoded wire payloads.
pub struct AsyncAdam2 {
    source: Box<dyn FnMut(&mut StdRng) -> AttrValue + Send + Sync>,
    /// Gossip timer ticks per protocol round; instance `end_round`s are
    /// interpreted against `now / ticks_per_round`.
    ticks_per_round: u64,
    robust: Option<RobustPolicy>,
    completed: u64,
    next_seq: u64,
    seen: std::collections::HashSet<(usize, usize, u64)>,
    seen_order: std::collections::VecDeque<(usize, usize, u64)>,
    duplicates_dropped: u64,
    robust_rejects: u64,
    robust_trims: u64,
}

impl std::fmt::Debug for AsyncAdam2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AsyncAdam2")
            .field("ticks_per_round", &self.ticks_per_round)
            .field("completed", &self.completed)
            .finish()
    }
}

impl AsyncAdam2 {
    /// Creates the protocol. `ticks_per_round` must equal the engine's
    /// gossip period so that instance TTLs measured in rounds line up.
    ///
    /// # Panics
    ///
    /// Panics if `ticks_per_round` is zero.
    pub fn new(
        ticks_per_round: u64,
        source: impl FnMut(&mut StdRng) -> AttrValue + Send + Sync + 'static,
    ) -> Self {
        assert!(ticks_per_round > 0, "ticks_per_round must be positive");
        Self {
            source: Box::new(source),
            ticks_per_round,
            robust: None,
            completed: 0,
            next_seq: 0,
            seen: std::collections::HashSet::new(),
            seen_order: std::collections::VecDeque::new(),
            duplicates_dropped: 0,
            robust_rejects: 0,
            robust_trims: 0,
        }
    }

    /// Enables robust aggregation: every one-sided absorption is
    /// plausibility-checked and merged through the trimmed,
    /// influence-capped merge (see [`RobustPolicy`]).
    pub fn with_robust(mut self, policy: RobustPolicy) -> Self {
        self.robust = Some(policy);
        self
    }

    /// Convenience constructor mirroring
    /// [`Adam2Protocol::with_population`](crate::Adam2Protocol::with_population).
    pub fn with_population(
        ticks_per_round: u64,
        initial: Vec<f64>,
        mut fresh: impl FnMut(&mut StdRng) -> f64 + Send + Sync + 'static,
    ) -> Self {
        let mut queue = std::collections::VecDeque::from(initial);
        Self::new(ticks_per_round, move |rng| {
            AttrValue::Single(match queue.pop_front() {
                Some(v) => v,
                None => fresh(rng),
            })
        })
    }

    /// Number of per-node instance completions so far.
    pub fn completed_count(&self) -> u64 {
        self.completed
    }

    /// Number of received messages dropped as duplicates (same sender,
    /// receiver and sequence number as an already-processed message).
    pub fn duplicates_dropped(&self) -> u64 {
        self.duplicates_dropped
    }

    /// Snapshots rejected by the robust plausibility screen so far (0 in
    /// vanilla mode).
    pub fn robust_rejects(&self) -> u64 {
        self.robust_rejects
    }

    /// Components trimmed or influence-capped by the robust merge so far
    /// (0 in vanilla mode).
    pub fn robust_trims(&self) -> u64 {
        self.robust_trims
    }

    /// Records `(from, to, seq)` in the dedup window; returns `false` (and
    /// counts the drop) when the triple was already seen.
    fn note_seen(&mut self, from: NodeId, to: NodeId, seq: u64) -> bool {
        let key = (from.slot(), to.slot(), seq);
        if !self.seen.insert(key) {
            self.duplicates_dropped += 1;
            return false;
        }
        self.seen_order.push_back(key);
        if self.seen_order.len() > SEEN_CAP {
            if let Some(old) = self.seen_order.pop_front() {
                self.seen.remove(&old);
            }
        }
        true
    }

    /// Enrols `initiator` in a new instance with explicit metadata (the
    /// async driver selects thresholds itself or reuses
    /// [`select_thresholds`](crate::select_thresholds)).
    pub fn start_instance(
        &mut self,
        initiator: NodeId,
        meta: Arc<InstanceMeta>,
        ctx: &mut EventCtx<'_, Adam2Node, Adam2Message>,
    ) -> bool {
        match ctx.nodes.get_mut(initiator) {
            Some(node) => {
                node.begin_instance(meta);
                true
            }
            None => false,
        }
    }

    fn round_of(&self, now: u64) -> u64 {
        now / self.ticks_per_round
    }

    fn finalize_due(
        &mut self,
        id: NodeId,
        now: u64,
        ctx: &mut EventCtx<'_, Adam2Node, Adam2Message>,
    ) {
        let round = self.round_of(now);
        let Some(node) = ctx.nodes.get_mut(id) else {
            return;
        };
        self.completed += node.finalize_due_instances(round).0;
    }

    /// Merges each known instance with the received snapshot (one-sided
    /// averaging). When `allow_join` is set, unknown instances are joined
    /// first.
    ///
    /// Joins are only allowed while handling a *request*: the joiner's
    /// response then carries its pre-merge initial state, so the requester
    /// debits the same mass the joiner credited and `Σw = 1` is preserved.
    /// Joining from a response would credit mass the sender never debits
    /// and inflate the weight sum (collapsing the `N = 1/w` estimate).
    fn absorb(
        node: &mut Adam2Node,
        payloads: &[InstancePayload],
        round: u64,
        allow_join: bool,
        robust: Option<&RobustPolicy>,
    ) -> (u64, u64) {
        let mut rejects = 0u64;
        let mut trims = 0u64;
        for payload in payloads {
            if round >= payload.end_round {
                continue;
            }
            if !allow_join
                && node
                    .active_instance(crate::InstanceId::from_u64(payload.id))
                    .is_none()
            {
                continue;
            }
            let snapshot = payload.to_local();
            let (r, t) = node.absorb_snapshot_with(&snapshot, round, robust);
            rejects += u64::from(r);
            trims += u64::from(t);
        }
        (rejects, trims)
    }

    /// Applies the active adversary's corruption to `node`'s own state just
    /// before it contributes to an exchange with `partner_slot`. A no-op
    /// for honest nodes. Corruption streams are pure functions of the
    /// scenario seed, so the attack replays bit-identically on the
    /// sequential and batch drivers.
    fn corrupt_if_byzantine(
        adversary: &Option<ActiveAdversary>,
        node: &mut Adam2Node,
        fault_round: u64,
        slot: usize,
        partner_slot: usize,
        round: u64,
    ) {
        if let Some(adv) = adversary {
            if adv.is_byzantine(slot) {
                let seed = adv.corruption_seed(fault_round, slot, partner_slot);
                corrupt_node(node, adv.model, seed, round);
            }
        }
    }

    /// Joins (without merging) every active instance in `payloads` that
    /// the node does not know yet.
    fn join_unknown(node: &mut Adam2Node, payloads: &[InstancePayload], round: u64) {
        for payload in payloads {
            if round >= payload.end_round {
                continue;
            }
            let snapshot = payload.to_local();
            node.join_instance_passively(snapshot.meta.clone());
        }
    }
}

impl AsyncProtocol for AsyncAdam2 {
    type Node = Adam2Node;
    type Message = Adam2Message;

    fn make_node(&mut self, rng: &mut StdRng) -> Adam2Node {
        Adam2Node::new((self.source)(rng), 100.0)
    }

    fn drift_node(&mut self, _id: NodeId, node: &mut Adam2Node, op: DriftOp, rng: &mut StdRng) {
        match op {
            DriftOp::Shift(delta) => node.shift_value(delta),
            DriftOp::Replace => node.set_value((self.source)(rng)),
        }
    }

    fn on_timer(&mut self, id: NodeId, ctx: &mut EventCtx<'_, Adam2Node, Adam2Message>) {
        let now = ctx.now;
        self.finalize_due(id, now, ctx);
        let Some(partner) = ctx.random_neighbour(id) else {
            return;
        };
        let round = self.round_of(now);
        let adversary = ctx.adversary;
        let fault_round = ctx.round;
        let Some(node) = ctx.nodes.get_mut(id) else {
            return;
        };
        Self::corrupt_if_byzantine(
            &adversary,
            node,
            fault_round,
            id.slot(),
            partner.slot(),
            round,
        );
        let mut message =
            GossipMessage::from_locals(node.active_instances().iter().filter(|i| !i.is_due(round)));
        self.next_seq += 1;
        message.seq = self.next_seq;
        let bytes = message.encoded_len();
        ctx.send(id, partner, Adam2Message::Request(message), bytes);
    }

    fn on_message(
        &mut self,
        id: NodeId,
        from: NodeId,
        message: Adam2Message,
        ctx: &mut EventCtx<'_, Adam2Node, Adam2Message>,
    ) {
        // Duplicate suppression: the fault framework can deliver the same
        // message twice; absorbing it twice would double-count its mass.
        if !self.note_seen(from, id, message.seq()) {
            return;
        }
        let now = ctx.now;
        self.finalize_due(id, now, ctx);
        let round = self.round_of(now);
        let adversary = ctx.adversary;
        let fault_round = ctx.round;
        let robust = self.robust;
        match &message {
            Adam2Message::Request(_) => {
                // Join unknown instances first so the response carries the
                // pre-merge *initial* state (the requester will debit
                // exactly the mass we are about to credit ourselves with),
                // then reply, then absorb. A Byzantine responder corrupts
                // its own state before replying, so the poison rides the
                // pull half of the exchange.
                let Some(node) = ctx.nodes.get_mut(id) else {
                    return;
                };
                Self::join_unknown(node, message.payloads(), round);
                Self::corrupt_if_byzantine(
                    &adversary,
                    node,
                    fault_round,
                    id.slot(),
                    from.slot(),
                    round,
                );
                let mut response = GossipMessage::from_locals(
                    node.active_instances().iter().filter(|i| !i.is_due(round)),
                );
                response.seq = message.seq();
                let bytes = response.encoded_len();
                let (r, t) = Self::absorb(node, message.payloads(), round, true, robust.as_ref());
                self.robust_rejects += r;
                self.robust_trims += t;
                ctx.send(id, from, Adam2Message::Response(response), bytes);
            }
            Adam2Message::Response(_) => {
                if let Some(node) = ctx.nodes.get_mut(id) {
                    let (r, t) =
                        Self::absorb(node, message.payloads(), round, false, robust.as_ref());
                    self.robust_rejects += r;
                    self.robust_trims += t;
                }
            }
        }
    }
}

/// Per-shard report of the batch driver: whole-protocol counters that
/// batch handlers cannot update directly (they only hold `&self`).
#[derive(Debug, Default)]
pub struct AsyncBatchReport {
    /// Instance completions observed while handling the shard's events.
    pub completed: u64,
    /// Snapshots rejected by the robust plausibility screen.
    pub robust_rejects: u64,
    /// Components trimmed or influence-capped by the robust merge.
    pub robust_trims: u64,
}

/// Batch-mode Adam2 for [`EventEngine::run_until_parallel`]
/// (`adam2_sim::EventEngine`). Differences from the sequential driver:
///
/// * Exchange sequence numbers come from [`BatchCtx::event_stamp`] (the
///   globally unique, thread-count-invariant wheel stamp of the timer
///   event) instead of a shared `next_seq` counter.
/// * Duplicate deliveries are already suppressed by the engine's
///   `send_seq` bookkeeping, so no `note_seen` window is consulted —
///   [`AsyncAdam2::duplicates_dropped`] stays zero in batch runs.
///
/// Both choices keep handlers free of shared mutable state, which is what
/// makes batch runs bit-identical at any thread count. Batch trajectories
/// are *different* from sequential ones (randomness is drawn from
/// per-event streams), but equally valid samples of the same model.
impl BatchAsyncProtocol for AsyncAdam2 {
    type Report = AsyncBatchReport;

    fn par_on_timer(
        &self,
        id: NodeId,
        node: &mut Adam2Node,
        ctx: &mut BatchCtx<'_, '_, Adam2Message>,
        report: &mut AsyncBatchReport,
    ) {
        let round = self.round_of(ctx.now());
        report.completed += node.finalize_due_instances(round).0;
        let Some(partner) = ctx.random_neighbour(id) else {
            return;
        };
        Self::corrupt_if_byzantine(
            &ctx.adversary(),
            node,
            ctx.round(),
            id.slot(),
            partner.slot(),
            round,
        );
        let mut message =
            GossipMessage::from_locals(node.active_instances().iter().filter(|i| !i.is_due(round)));
        message.seq = ctx.event_stamp();
        let bytes = message.encoded_len();
        ctx.send(id, partner, Adam2Message::Request(message), bytes);
    }

    fn par_on_message(
        &self,
        id: NodeId,
        node: &mut Adam2Node,
        from: NodeId,
        message: Adam2Message,
        ctx: &mut BatchCtx<'_, '_, Adam2Message>,
        report: &mut AsyncBatchReport,
    ) {
        let round = self.round_of(ctx.now());
        report.completed += node.finalize_due_instances(round).0;
        match &message {
            Adam2Message::Request(_) => {
                // Same order as the sequential path: join first so the
                // response carries pre-merge state, corrupt (Byzantine
                // responders), reply with the echoed seq, then absorb.
                Self::join_unknown(node, message.payloads(), round);
                Self::corrupt_if_byzantine(
                    &ctx.adversary(),
                    node,
                    ctx.round(),
                    id.slot(),
                    from.slot(),
                    round,
                );
                let mut response = GossipMessage::from_locals(
                    node.active_instances().iter().filter(|i| !i.is_due(round)),
                );
                response.seq = message.seq();
                let bytes = response.encoded_len();
                let (r, t) =
                    Self::absorb(node, message.payloads(), round, true, self.robust.as_ref());
                report.robust_rejects += r;
                report.robust_trims += t;
                ctx.send(id, from, Adam2Message::Response(response), bytes);
            }
            Adam2Message::Response(_) => {
                let (r, t) =
                    Self::absorb(node, message.payloads(), round, false, self.robust.as_ref());
                report.robust_rejects += r;
                report.robust_trims += t;
            }
        }
    }

    fn absorb_report(&mut self, report: AsyncBatchReport) {
        self.completed += report.completed;
        self.robust_rejects += report.robust_rejects;
        self.robust_trims += report.robust_trims;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdf::StepCdf;
    use crate::instance::InstanceId;
    use crate::metrics::point_errors;
    use adam2_sim::{EventConfig, EventEngine, LatencyModel};

    fn run_async_instance(
        values: Vec<f64>,
        latency: LatencyModel,
        rounds: u64,
    ) -> (EventEngine<AsyncAdam2>, Arc<InstanceMeta>, StepCdf) {
        let n = values.len();
        let truth = StepCdf::from_values(values.clone());
        let period = 100;
        let proto = AsyncAdam2::with_population(period, values, |_| 1.0);
        let config = EventConfig::new(n, 77)
            .with_gossip_period(period)
            .with_latency(latency);
        let mut engine = EventEngine::new(config, proto);
        let meta = Arc::new(InstanceMeta {
            id: InstanceId::derive(0, 0, 1),
            thresholds: vec![25.0, 50.0, 75.0].into(),
            verify_thresholds: Vec::new().into(),
            start_round: 0,
            end_round: rounds,
            multi: false,
        });
        engine.with_ctx(|proto, ctx| {
            let initiator = ctx.nodes.random_id(ctx.rng).expect("nodes");
            proto.start_instance(initiator, meta.clone(), ctx)
        });
        engine.run_until(period * (rounds + 2));
        (engine, meta, truth)
    }

    #[test]
    fn async_instance_spreads_and_converges() {
        let values: Vec<f64> = (1..=100).map(f64::from).collect();
        let (engine, _meta, truth) = run_async_instance(values, LatencyModel::Fixed(10), 40);
        let mut with_estimate = 0;
        for (_, node) in engine.nodes().iter() {
            if let Some(est) = node.estimate() {
                with_estimate += 1;
                let (max_err, _) = point_errors(&truth, &est.thresholds, &est.fractions);
                // Asynchrony floors the accuracy above machine epsilon but
                // far below the interpolation error.
                assert!(max_err < 0.05, "async point error {max_err}");
            }
        }
        assert!(with_estimate >= 99, "only {with_estimate} nodes finished");
    }

    #[test]
    fn short_latency_beats_long_latency() {
        let values: Vec<f64> = (1..=100).map(f64::from).collect();
        let errs: Vec<f64> = [
            LatencyModel::Fixed(2),
            LatencyModel::Uniform { min: 40, max: 95 },
        ]
        .into_iter()
        .map(|latency| {
            let (engine, _, truth) = run_async_instance(values.clone(), latency, 40);
            let mut worst = 0.0f64;
            for (_, node) in engine.nodes().iter() {
                if let Some(est) = node.estimate() {
                    let (m, _) = point_errors(&truth, &est.thresholds, &est.fractions);
                    worst = worst.max(m);
                } else {
                    worst = 1.0;
                }
            }
            worst
        })
        .collect();
        assert!(
            errs[0] <= errs[1] * 2.0 + 1e-9,
            "short latency ({}) should not be much worse than long ({})",
            errs[0],
            errs[1]
        );
    }

    #[test]
    fn duplicated_messages_are_dropped_by_sequence_numbers() {
        use adam2_sim::FaultScenario;
        let values: Vec<f64> = (1..=100).map(f64::from).collect();
        let truth = StepCdf::from_values(values.clone());
        let period = 100;
        let proto = AsyncAdam2::with_population(period, values, |_| 1.0);
        let config = EventConfig::new(100, 77)
            .with_gossip_period(period)
            .with_latency(LatencyModel::Fixed(10));
        let mut engine = EventEngine::new(config, proto);
        engine
            .set_fault_scenario(FaultScenario::new(5).with_duplication(0, 40, 0.5))
            .expect("valid scenario");
        let meta = Arc::new(InstanceMeta {
            id: InstanceId::derive(0, 0, 1),
            thresholds: vec![25.0, 50.0, 75.0].into(),
            verify_thresholds: Vec::new().into(),
            start_round: 0,
            end_round: 40,
            multi: false,
        });
        engine.with_ctx(|proto, ctx| {
            let initiator = ctx.nodes.random_id(ctx.rng).expect("nodes");
            proto.start_instance(initiator, meta.clone(), ctx)
        });
        engine.run_until(period * 42);
        assert!(
            engine.duplicated_count() > 0,
            "fault injected no duplicates"
        );
        assert!(
            engine.protocol().duplicates_dropped() > 0,
            "dedup never fired"
        );
        // Suppressing duplicates keeps the absorbed mass sane: estimates
        // converge and the size estimate is not inflated by re-counted
        // weight.
        let mut sizes = Vec::new();
        for (_, node) in engine.nodes().iter() {
            if let Some(est) = node.estimate() {
                let (max_err, _) = point_errors(&truth, &est.thresholds, &est.fractions);
                assert!(max_err < 0.05, "point error {max_err} under duplication");
                if let Some(n) = est.n_hat {
                    sizes.push(n);
                }
            }
        }
        assert!(!sizes.is_empty());
        let mean = sizes.iter().sum::<f64>() / sizes.len() as f64;
        assert!(
            (mean - 100.0).abs() / 100.0 < 0.2,
            "N estimate drifted under duplication: {mean}"
        );
    }

    fn run_batch_instance(
        threads: usize,
        loss: f64,
        rounds: u64,
    ) -> (EventEngine<AsyncAdam2>, StepCdf) {
        let values: Vec<f64> = (1..=100).map(f64::from).collect();
        let truth = StepCdf::from_values(values.clone());
        let period = 100;
        let proto = AsyncAdam2::with_population(period, values, |_| 1.0);
        let config = EventConfig::new(100, 77)
            .with_gossip_period(period)
            .with_latency(LatencyModel::Uniform { min: 10, max: 60 })
            .with_loss_rate(loss)
            .with_threads(threads);
        let mut engine = EventEngine::new(config, proto);
        let meta = Arc::new(InstanceMeta {
            id: InstanceId::derive(0, 0, 1),
            thresholds: vec![25.0, 50.0, 75.0].into(),
            verify_thresholds: Vec::new().into(),
            start_round: 0,
            end_round: rounds,
            multi: false,
        });
        engine.with_ctx(|proto, ctx| {
            let initiator = ctx.nodes.random_id(ctx.rng).expect("nodes");
            proto.start_instance(initiator, meta.clone(), ctx)
        });
        engine.run_until_parallel(period * (rounds + 2));
        (engine, truth)
    }

    #[test]
    fn batch_driver_completes_an_instance() {
        let (engine, truth) = run_batch_instance(2, 0.0, 40);
        let mut with_estimate = 0;
        for (_, node) in engine.nodes().iter() {
            if let Some(est) = node.estimate() {
                with_estimate += 1;
                let (max_err, _) = point_errors(&truth, &est.thresholds, &est.fractions);
                assert!(max_err < 0.05, "batch point error {max_err}");
            }
        }
        assert!(with_estimate >= 99, "only {with_estimate} nodes finished");
        assert!(engine.protocol().completed_count() >= 99);
    }

    /// The acceptance-criterion bit-identity check: the full Adam2
    /// protocol under the batch driver must produce byte-for-byte equal
    /// node estimates, counters, and traffic at 1, 2, and 4 threads.
    #[test]
    fn batch_driver_is_bit_identical_across_thread_counts() {
        let fingerprint = |threads: usize| {
            let (engine, _) = run_batch_instance(threads, 0.05, 40);
            let mut bits = Vec::new();
            for (_, node) in engine.nodes().iter() {
                match node.estimate() {
                    Some(est) => {
                        bits.push(1);
                        bits.extend(est.fractions.iter().map(|f| f.to_bits()));
                        bits.push(est.n_hat.map_or(0, f64::to_bits));
                    }
                    None => bits.push(0),
                }
            }
            (
                bits,
                engine.delivered_count(),
                engine.lost_count(),
                engine.net().total_bytes(),
                engine.net().total_msgs(),
                engine.protocol().completed_count(),
            )
        };
        let base = fingerprint(1);
        assert_eq!(base, fingerprint(2), "threads=2 diverged from threads=1");
        assert_eq!(base, fingerprint(4), "threads=4 diverged from threads=1");
    }

    #[test]
    fn system_size_estimate_survives_asynchrony() {
        let values: Vec<f64> = (1..=200).map(f64::from).collect();
        let (engine, _, _) = run_async_instance(values, LatencyModel::Fixed(10), 40);
        let mut sizes = Vec::new();
        for (_, node) in engine.nodes().iter() {
            if let Some(est) = node.estimate() {
                if let Some(n) = est.n_hat {
                    sizes.push(n);
                }
            }
        }
        let mean = sizes.iter().sum::<f64>() / sizes.len() as f64;
        assert!(
            (mean - 200.0).abs() / 200.0 < 0.2,
            "async N estimate drifted: {mean}"
        );
    }
}
