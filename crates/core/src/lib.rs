//! Adam2: reliable distribution estimation in decentralised environments.
//!
//! A reproduction of Sacha, Napper, Stratan & Pierre, *"Adam2: Reliable
//! Distribution Estimation in Decentralised Environments"* (ICDCS 2010).
//!
//! Adam2 lets every node of a large peer-to-peer system estimate the
//! cumulative distribution function (CDF) of an attribute spread across
//! all nodes — CPU speed, memory size, load, file sizes — using nothing
//! but periodic gossip with random neighbours. The protocol:
//!
//! * floods a set of λ *thresholds* with each **aggregation instance** and
//!   runs mass-conserving push–pull averaging over per-threshold indicator
//!   values, so every node learns `f_i = F(t_i)` to near machine precision
//!   within a few dozen rounds ([`InstanceLocal`], [`Adam2Protocol`]);
//! * simultaneously estimates the **system size** (`N = 1/w̄`) and the
//!   global attribute **extrema**;
//! * *refines* the threshold placement across consecutive instances with
//!   the [`HCut`](RefineKind::HCut), [`MinMax`](RefineKind::MinMax) and
//!   [`LCut`](RefineKind::LCut) heuristics (Section V), reaching ≈2 %
//!   maximum and ≈0.05 % average error on heavily skewed real-world
//!   distributions at ≈120 kB per node, independent of system size;
//! * assesses **its own accuracy** via verification points (Section VI),
//!   enabling self-tuning ([`SelfTuner`]).
//!
//! # Quick start
//!
//! Estimate the distribution of a per-node metric across a simulated
//! 1 000-node system:
//!
//! ```
//! use adam2_core::{Adam2Config, Adam2Protocol, BootstrapKind};
//! use adam2_sim::{Engine, EngineConfig};
//!
//! // One attribute value per node: node i holds i+1.
//! let values: Vec<f64> = (1..=1000).map(f64::from).collect();
//! let config = Adam2Config::new()
//!     .with_lambda(20)
//!     .with_rounds_per_instance(30);
//! let protocol = Adam2Protocol::with_population(config, values, |_| 0.0);
//! let mut engine = Engine::new(EngineConfig::new(1000, 42), protocol);
//!
//! // Start one aggregation instance and run it to completion.
//! engine.with_ctx(|proto, ctx| {
//!     let initiator = ctx.nodes.random_id(ctx.rng).expect("nodes exist");
//!     proto.start_instance(initiator, ctx)
//! });
//! engine.run_rounds(31);
//!
//! // Every node now holds a distribution estimate.
//! let (_, node) = engine.nodes().iter().next().expect("nodes exist");
//! let estimate = node.estimate().expect("instance completed");
//! let median = estimate.value_at_quantile(0.5);
//! assert!((median - 500.0).abs() < 25.0);
//! let n = estimate.n_hat.expect("weight received");
//! assert!((n - 1000.0).abs() < 1.0);
//! ```

mod aggregation;
mod async_protocol;
mod cdf;
mod confidence;
mod config;
mod error;
mod estimate;
mod fade;
mod instance;
mod metrics;
mod pchip;
mod protocol;
mod rank;
pub mod runtime;
mod selection;
mod tuning;
pub mod wire;

pub use aggregation::{
    median_of_means, robust_pair_merge, trimmed_mean, CountAggregation, Extrema,
    ExtremaAggregation, MeanAggregation, RobustMergeStats,
};
pub use async_protocol::{Adam2Message, AsyncAdam2, AsyncBatchReport};
pub use cdf::{InterpCdf, StepCdf};
pub use confidence::verification_thresholds;
pub use config::{Adam2Config, RobustPolicy, Scheduling, SelfHealPolicy};
pub use error::{CdfError, ConfigError, WireError};
pub use estimate::DistributionEstimate;
pub use fade::{BlendedTracker, FadeConfig, TrackedEstimate};
pub use instance::{AttrValue, InstanceId, InstanceLocal, InstanceMeta, RobustMergeOutcome};
pub use metrics::{
    avg_distance, avg_distance_over, discrete_avg_distance, discrete_errors_over,
    discrete_max_distance, max_distance, point_errors, ErrorMetric, FractionEnvelope,
};
pub use pchip::MonotoneCubicCdf;
pub use protocol::{
    gossip_exchange, gossip_exchange_response_lost, gossip_exchange_response_lost_with,
    gossip_exchange_with, Adam2Node, Adam2Protocol, ExchangeReport,
};
pub use rank::{Outlier, OutlierDetector};
pub use selection::{
    hcut_thresholds, lcut_thresholds, minmax_thresholds, select_thresholds, uniform_points,
    BootstrapKind, RefineKind, SelectionInput,
};
pub use tuning::{DriftController, LaunchDecision, SelfTuner};
