//! Error types.

/// Errors constructing or validating a CDF.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CdfError {
    /// No knots were provided.
    Empty,
    /// A knot coordinate was NaN or infinite.
    NotFinite {
        /// Index of the offending knot.
        index: usize,
    },
    /// A knot y-coordinate was outside `[0, 1]`.
    OutOfRange {
        /// Index of the offending knot.
        index: usize,
        /// The out-of-range value.
        value: f64,
    },
    /// Knot x-coordinates were not sorted.
    UnsortedX {
        /// Index of the first out-of-order knot.
        index: usize,
    },
    /// Knot y-coordinates decreased.
    DecreasingY {
        /// Index of the first decreasing knot.
        index: usize,
    },
    /// Threshold and fraction slices had different lengths.
    LengthMismatch {
        /// Number of thresholds.
        thresholds: usize,
        /// Number of fractions.
        fractions: usize,
    },
    /// `min`/`max` were non-finite or inverted.
    BadRange {
        /// Provided minimum.
        min: f64,
        /// Provided maximum.
        max: f64,
    },
}

impl std::fmt::Display for CdfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CdfError::Empty => write!(f, "cdf requires at least one knot"),
            CdfError::NotFinite { index } => {
                write!(f, "knot {index} has a non-finite coordinate")
            }
            CdfError::OutOfRange { index, value } => {
                write!(f, "knot {index} has y = {value} outside [0, 1]")
            }
            CdfError::UnsortedX { index } => {
                write!(f, "knot {index} breaks x ordering")
            }
            CdfError::DecreasingY { index } => {
                write!(f, "knot {index} breaks y monotonicity")
            }
            CdfError::LengthMismatch {
                thresholds,
                fractions,
            } => {
                write!(f, "{thresholds} thresholds but {fractions} fractions")
            }
            CdfError::BadRange { min, max } => {
                write!(f, "invalid attribute range [{min}, {max}]")
            }
        }
    }
}

impl std::error::Error for CdfError {}

/// Errors decoding a gossip message from its wire encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the message did.
    Truncated,
    /// A length field exceeded the sanity limit.
    LengthOverflow {
        /// The offending length.
        len: u64,
    },
    /// An unknown enum tag was encountered.
    UnknownTag {
        /// The offending tag value.
        tag: u8,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::LengthOverflow { len } => {
                write!(f, "length field {len} exceeds sanity limit")
            }
            WireError::UnknownTag { tag } => write!(f, "unknown tag {tag}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Errors validating an [`Adam2Config`](crate::Adam2Config).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid configuration: {}", self.message)
    }
}

impl std::error::Error for ConfigError {}
