//! Wire-level exchange adaptor around [`Adam2Node`] for real deployments.
//!
//! The simulator performs a push–pull exchange atomically: it holds both
//! nodes and calls [`gossip_exchange`](crate::gossip_exchange), which
//! replaces every averaged component with the pair mean on both sides at
//! once. A deployed node cannot do that — the initiator and responder run
//! on different threads (or hosts) and each only ever holds its *own* lock.
//! Between the initiator snapshotting its state into a request and the
//! response coming back, other exchanges may have touched either side.
//!
//! This module factors the symmetric exchange into three single-node steps
//! that conserve global mass even when exchanges interleave:
//!
//! 1. [`snapshot_for_round`] — the initiator serialises its non-due
//!    instances into a [`GossipMessage`] request.
//! 2. [`serve_exchange`] — the responder, holding only its own lock, joins
//!    unknown instances, reconciles epochs, records its **pre-merge** state
//!    into the response, and then sets itself to the pair mean. Its net
//!    state change is `(remote − own_pre) / 2` per averaged component.
//! 3. [`absorb_exchange_response`] — the initiator applies the *delta form*
//!    of the merge against its request-time baseline: for every instance it
//!    announced, `own += (responder_pre − own_sent) / 2`. The two deltas of
//!    one exchange cancel exactly, so the global sum of every averaged
//!    component (weight mass in particular) is invariant no matter how
//!    exchanges from different initiators interleave — the same property
//!    the atomic simulator merge guarantees.
//!
//! The delta form is exact: if nothing interleaves, `own == own_sent` when
//! the response arrives and the result is bit-for-bit the pair mean (up to
//! the one extra float rounding of `x + (y − x)/2` vs `(x + y)/2`).
//!
//! Retransmissions are safe because [`serve_exchange`] is meant to be
//! called once per sequence number: the deploy runtime caches the encoded
//! response keyed by [`GossipMessage::seq`] and replays it verbatim for a
//! duplicate request, mirroring the simulator's exchange-repair dedup.

use crate::instance::{InstanceId, InstanceLocal};
use crate::protocol::Adam2Node;
use crate::wire::{GossipMessage, InstancePayload};

/// What [`serve_exchange`] / [`absorb_exchange_response`] did per instance
/// payload, for the runtime's frame counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExchangeOutcome {
    /// Instances this node joined for the first time (weight 0).
    pub joined: usize,
    /// Instances averaged (serve) or delta-applied (absorb).
    pub averaged: usize,
    /// Payloads skipped: due, stale epoch, late join, or no usable
    /// request-time baseline.
    pub skipped: usize,
}

/// Initiator-side bookkeeping for one in-flight wire exchange.
///
/// Both deploy backends (thread-per-node and the reactor event loop) drive
/// the same sequence — snapshot, send, maybe retry, absorb — but from very
/// different control flow: the threaded sender blocks through its attempts
/// in a loop, while the reactor interleaves many exchanges and revisits
/// each one on timer/readiness events. `PendingExchange` owns the pieces
/// both need between those steps: the request-time baseline (`sent`), the
/// round the snapshot was taken for, and the bounded attempt budget.
#[derive(Debug, Clone)]
pub struct PendingExchange {
    /// The request as sent — the baseline [`absorb_exchange_response`]
    /// takes deltas against.
    pub sent: GossipMessage,
    /// Gossip round the snapshot was taken for.
    pub round: u64,
    attempts_used: u32,
    max_attempts: u32,
}

impl PendingExchange {
    /// Snapshots `node` for `round` into a request tagged `seq`, with
    /// `1 + retries` total delivery attempts allowed.
    pub fn begin(node: &Adam2Node, round: u64, seq: u64, retries: u32) -> Self {
        Self {
            sent: snapshot_for_round(node, round, seq),
            round,
            attempts_used: 0,
            max_attempts: retries.saturating_add(1),
        }
    }

    /// The repair-path sequence number carried by the request.
    pub fn seq(&self) -> u64 {
        self.sent.seq
    }

    /// Consumes one delivery attempt, returning its zero-based index, or
    /// `None` once the budget is exhausted (the exchange aborts).
    pub fn next_attempt(&mut self) -> Option<u32> {
        if self.attempts_used >= self.max_attempts {
            return None;
        }
        let attempt = self.attempts_used;
        self.attempts_used += 1;
        Some(attempt)
    }

    /// Attempts consumed so far.
    pub fn attempts_used(&self) -> u32 {
        self.attempts_used
    }

    /// Folds the responder's reply into `node` against this exchange's
    /// baseline (see [`absorb_exchange_response`]).
    pub fn absorb(&self, node: &mut Adam2Node, response: &GossipMessage) -> ExchangeOutcome {
        absorb_exchange_response(node, &self.sent, response, self.round)
    }
}

/// First round at which the instance described by `payload` may finalise
/// (epoch-aware, mirroring [`InstanceLocal::due_round`]).
fn payload_due_round(payload: &InstancePayload) -> u64 {
    let duration = payload.end_round.saturating_sub(payload.start_round);
    payload.end_round + u64::from(payload.epoch) * duration
}

/// Serialises the node's running (non-due) instance state into the request
/// of one push–pull exchange, tagged with the repair-path sequence number.
pub fn snapshot_for_round(node: &Adam2Node, round: u64, seq: u64) -> GossipMessage {
    let mut msg =
        GossipMessage::from_locals(node.active_instances().iter().filter(|i| !i.is_due(round)));
    msg.seq = seq;
    msg
}

/// Responder side of one wire exchange: processes `request` against this
/// node only, returning the response to send back.
///
/// For every announced instance the responder joins if unknown (late
/// joiners excluded, as in the simulator), reconciles self-healing epochs
/// (highest wins), records its own pre-merge state into the response, and
/// then moves to the pair mean. Instances the responder runs that the
/// request did not announce are appended to the response so the initiator
/// can join them. The response echoes `request.seq` for the dedup path.
pub fn serve_exchange(
    node: &mut Adam2Node,
    request: &GossipMessage,
    round: u64,
) -> (GossipMessage, ExchangeOutcome) {
    let mut response = GossipMessage {
        seq: request.seq,
        instances: Vec::with_capacity(request.instances.len()),
    };
    let mut outcome = ExchangeOutcome::default();
    let mut announced: Vec<u64> = Vec::with_capacity(request.instances.len());
    for payload in &request.instances {
        announced.push(payload.id);
        if round >= payload_due_round(payload) {
            outcome.skipped += 1;
            continue;
        }
        let id = InstanceId::from_u64(payload.id);
        let idx = match node.find_index(id) {
            Some(idx) => idx,
            None => {
                if node.joined_round > payload.start_round {
                    outcome.skipped += 1;
                    continue;
                }
                let meta = payload.to_local().meta;
                node.instances
                    .push(InstanceLocal::join(meta, &node.value, false));
                outcome.joined += 1;
                node.instances.len() - 1
            }
        };
        if payload.epoch < node.instances[idx].epoch {
            // Stale epoch: superseded by our restart. Don't average, but do
            // respond with our state so the initiator adopts the new epoch.
            response
                .instances
                .push(InstancePayload::from(&node.instances[idx]));
            outcome.skipped += 1;
            continue;
        }
        if payload.epoch > node.instances[idx].epoch {
            node.instances[idx].adopt_epoch(payload.epoch, &node.value);
        }
        // Pre-merge snapshot goes on the wire; then move to the pair mean.
        response
            .instances
            .push(InstancePayload::from(&node.instances[idx]));
        let mut remote = payload.to_local();
        InstanceLocal::merge_symmetric(&mut node.instances[idx], &mut remote);
        outcome.averaged += 1;
    }
    // Instances only this node runs: announce them so the initiator joins.
    for inst in node.instances.iter().filter(|i| !i.is_due(round)) {
        if !announced.contains(&inst.meta.id.as_u64()) {
            response.instances.push(InstancePayload::from(inst));
        }
    }
    (response, outcome)
}

/// Initiator side of one wire exchange: folds the responder's pre-merge
/// state in `response` into this node, using `sent` (the request built by
/// [`snapshot_for_round`]) as the request-time baseline.
///
/// Announced instances receive the mass-conserving delta
/// `own += (responder_pre − own_sent) / 2`; response-only instances are
/// joined with weight 0 (the join itself is the exchange's contribution —
/// averaging happens on the next round); epoch mismatches adopt the newer
/// epoch or skip stale data, exactly as the simulator's reconciliation.
pub fn absorb_exchange_response(
    node: &mut Adam2Node,
    sent: &GossipMessage,
    response: &GossipMessage,
    round: u64,
) -> ExchangeOutcome {
    let mut outcome = ExchangeOutcome::default();
    for payload in &response.instances {
        if round >= payload_due_round(payload) {
            outcome.skipped += 1;
            continue;
        }
        let id = InstanceId::from_u64(payload.id);
        let idx = match node.find_index(id) {
            Some(idx) => idx,
            None => {
                // Response-only instance (or one we finalised meanwhile):
                // join if eligible; no delta to apply.
                if node.joined_round > payload.start_round {
                    outcome.skipped += 1;
                } else {
                    let meta = payload.to_local().meta;
                    node.instances
                        .push(InstanceLocal::join(meta, &node.value, false));
                    outcome.joined += 1;
                }
                continue;
            }
        };
        if payload.epoch > node.instances[idx].epoch {
            // The responder ran a newer epoch and did not average our data;
            // re-enter the run from our own value (no delta).
            node.instances[idx].adopt_epoch(payload.epoch, &node.value);
            outcome.skipped += 1;
            continue;
        }
        if payload.epoch < node.instances[idx].epoch {
            outcome.skipped += 1;
            continue;
        }
        let local = &mut node.instances[idx];
        let baseline = sent
            .instances
            .iter()
            .find(|p| p.id == payload.id && p.epoch == payload.epoch);
        let Some(baseline) = baseline else {
            // We did not announce this instance at this epoch (we joined it
            // or adopted the epoch after snapshotting), so there is no
            // baseline to take a delta against. The extrema merge is still
            // idempotent and safe; averaging waits for the next exchange.
            local.min = local.min.min(payload.min);
            local.max = local.max.max(payload.max);
            outcome.skipped += 1;
            continue;
        };
        if payload.fractions.len() != local.fractions.len()
            || baseline.fractions.len() != local.fractions.len()
            || payload.verify_fractions.len() != local.verify_fractions.len()
            || baseline.verify_fractions.len() != local.verify_fractions.len()
        {
            outcome.skipped += 1;
            continue;
        }
        for ((f, resp), base) in local
            .fractions
            .iter_mut()
            .zip(&payload.fractions)
            .zip(&baseline.fractions)
        {
            *f += (resp - base) / 2.0;
        }
        for ((f, resp), base) in local
            .verify_fractions
            .iter_mut()
            .zip(&payload.verify_fractions)
            .zip(&baseline.verify_fractions)
        {
            *f += (resp - base) / 2.0;
        }
        local.count += (payload.count - baseline.count) / 2.0;
        local.weight += (payload.weight - baseline.weight) / 2.0;
        local.min = local.min.min(payload.min);
        local.max = local.max.max(payload.max);
        outcome.averaged += 1;
    }
    outcome
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::gossip_exchange;
    use crate::instance::{AttrValue, InstanceMeta};

    fn meta(id: u64, start: u64, end: u64) -> Arc<InstanceMeta> {
        Arc::new(InstanceMeta {
            id: InstanceId::from_u64(id),
            thresholds: vec![10.0, 20.0, 30.0].into(),
            verify_thresholds: vec![15.0, 25.0].into(),
            start_round: start,
            end_round: end,
            multi: false,
        })
    }

    fn roundtrip(msg: &GossipMessage) -> GossipMessage {
        GossipMessage::decode(msg.encode()).expect("roundtrip")
    }

    /// One full wire exchange: request, serve, absorb (through the actual
    /// byte encoding both ways).
    fn wire_exchange(a: &mut Adam2Node, b: &mut Adam2Node, round: u64, seq: u64) {
        let sent = snapshot_for_round(a, round, seq);
        let (response, _) = serve_exchange(b, &roundtrip(&sent), round);
        absorb_exchange_response(a, &sent, &roundtrip(&response), round);
    }

    fn assert_instances_close(x: &InstanceLocal, y: &InstanceLocal, tol: f64) {
        assert_eq!(x.meta.id, y.meta.id);
        assert_eq!(x.epoch, y.epoch);
        for (fx, fy) in x.fractions.iter().zip(&y.fractions) {
            assert!((fx - fy).abs() <= tol, "fractions {fx} vs {fy}");
        }
        for (fx, fy) in x.verify_fractions.iter().zip(&y.verify_fractions) {
            assert!((fx - fy).abs() <= tol, "verify {fx} vs {fy}");
        }
        assert!(
            (x.weight - y.weight).abs() <= tol,
            "{} vs {}",
            x.weight,
            y.weight
        );
        assert!((x.count - y.count).abs() <= tol);
        assert_eq!(x.min, y.min);
        assert_eq!(x.max, y.max);
    }

    fn total_weight(nodes: &[&Adam2Node], id: InstanceId) -> f64 {
        nodes
            .iter()
            .filter_map(|n| n.active_instance(id))
            .map(|i| i.weight)
            .sum()
    }

    #[test]
    fn wire_exchange_matches_the_atomic_simulator_merge() {
        let m = meta(42, 0, 30);
        let mut a = Adam2Node::new(AttrValue::Single(12.0), 1.0);
        let mut b = Adam2Node::new(AttrValue::Single(27.0), 1.0);
        a.begin_instance(m.clone());
        // b learns the instance from the wire — it has no local state yet.
        let (mut a_sim, mut b_sim) = (a.clone(), b.clone());
        gossip_exchange(&mut a_sim, &mut b_sim, 1);
        wire_exchange(&mut a, &mut b, 1, 7);
        let id = m.id;
        assert_instances_close(
            a.active_instance(id).unwrap(),
            a_sim.active_instance(id).unwrap(),
            1e-12,
        );
        assert_instances_close(
            b.active_instance(id).unwrap(),
            b_sim.active_instance(id).unwrap(),
            1e-12,
        );
        // A second exchange in the opposite direction also agrees.
        let (mut b_sim2, mut a_sim2) = (b.clone(), a.clone());
        gossip_exchange(&mut b_sim2, &mut a_sim2, 2);
        wire_exchange(&mut b, &mut a, 2, 8);
        assert_instances_close(
            a.active_instance(id).unwrap(),
            a_sim2.active_instance(id).unwrap(),
            1e-12,
        );
    }

    #[test]
    fn interleaved_exchanges_conserve_weight_mass() {
        // a initiates toward b, but before the response is absorbed, c's
        // exchange lands on a and changes its state. The delta form must
        // still keep the global weight mass at exactly 1.
        let m = meta(7, 0, 30);
        let mut a = Adam2Node::new(AttrValue::Single(12.0), 1.0);
        let mut b = Adam2Node::new(AttrValue::Single(22.0), 1.0);
        let mut c = Adam2Node::new(AttrValue::Single(32.0), 1.0);
        a.begin_instance(m.clone());
        b.join_instance_passively(m.clone());
        c.join_instance_passively(m.clone());

        let sent = snapshot_for_round(&a, 1, 1);
        let (response, _) = serve_exchange(&mut b, &roundtrip(&sent), 1);
        // Interleaving: c completes a full exchange against a first.
        wire_exchange(&mut c, &mut a, 1, 2);
        // Now the stale response from b arrives.
        absorb_exchange_response(&mut a, &sent, &roundtrip(&response), 1);

        let mass = total_weight(&[&a, &b, &c], m.id);
        assert!((mass - 1.0).abs() < 1e-12, "weight mass drifted: {mass}");
        let f_sum: f64 = [&a, &b, &c]
            .iter()
            .map(|n| n.active_instance(m.id).unwrap().fractions[0])
            .sum();
        // The first-threshold fraction mass must equal the sum of the three
        // initial indicator contributions exactly — averaging only ever
        // redistributes it.
        let expected: f64 = [12.0_f64, 22.0, 32.0]
            .iter()
            .map(|v| AttrValue::Single(*v).indicator(10.0))
            .sum();
        assert!(
            (f_sum - expected).abs() < 1e-12,
            "fraction mass drifted: {f_sum} vs {expected}"
        );
    }

    #[test]
    fn response_only_instances_are_joined_without_delta() {
        // b runs an instance a has never heard of; a's (empty) request
        // still comes back with it and a joins at weight 0.
        let m = meta(9, 0, 30);
        let mut a = Adam2Node::new(AttrValue::Single(12.0), 1.0);
        let mut b = Adam2Node::new(AttrValue::Single(22.0), 1.0);
        b.begin_instance(m.clone());
        wire_exchange(&mut a, &mut b, 1, 3);
        let joined = a.active_instance(m.id).expect("joined from response");
        assert_eq!(joined.weight, 0.0, "join contributes no weight mass");
        assert_eq!(joined.fractions[0], AttrValue::Single(12.0).indicator(10.0));
        let mass = total_weight(&[&a, &b], m.id);
        assert!((mass - 1.0).abs() < 1e-12, "mass after join: {mass}");
    }

    #[test]
    fn late_joiners_stay_out_of_running_instances() {
        let m = meta(5, 3, 33);
        let mut a = Adam2Node::new(AttrValue::Single(12.0), 1.0);
        let mut b = Adam2Node::new(AttrValue::Single(22.0), 1.0);
        a.begin_instance(m.clone());
        b.joined_round = 10; // joined the system after the instance started
        wire_exchange(&mut a, &mut b, 11, 4);
        assert!(
            b.active_instance(m.id).is_none(),
            "late joiner must not join"
        );
        // a's weight is untouched: the responder had nothing to average.
        assert_eq!(a.active_instance(m.id).unwrap().weight, 1.0);
    }

    #[test]
    fn epoch_reconciliation_over_the_wire() {
        // b restarted the instance (epoch 1); a still runs epoch 0. An
        // exchange a → b must not average across epochs: b responds with
        // its epoch-1 state and a re-enters from its own value.
        let m = meta(11, 0, 30);
        let mut a = Adam2Node::new(AttrValue::Single(12.0), 1.0);
        let mut b = Adam2Node::new(AttrValue::Single(22.0), 1.0);
        a.begin_instance(m.clone());
        b.join_instance_passively(m.clone());
        wire_exchange(&mut a, &mut b, 1, 5); // spread some mass first
        let ib = b.find_index(m.id).unwrap();
        let own_value = b.value.clone();
        b.instances[ib].restart(&own_value);

        let sent = snapshot_for_round(&a, 2, 6);
        let (response, outcome) = serve_exchange(&mut b, &roundtrip(&sent), 2);
        assert_eq!(outcome.averaged, 0, "stale epoch must not be averaged");
        let b_weight_before = b.active_instance(m.id).unwrap().weight;
        absorb_exchange_response(&mut a, &sent, &roundtrip(&response), 2);
        let a_inst = a.active_instance(m.id).unwrap();
        assert_eq!(a_inst.epoch, 1, "initiator adopts the newer epoch");
        assert_eq!(a_inst.weight, 1.0, "initiator re-contributes weight 1");
        assert_eq!(
            b.active_instance(m.id).unwrap().weight,
            b_weight_before,
            "responder state untouched by the stale request"
        );
    }

    #[test]
    fn due_instances_are_not_announced_or_served() {
        let m = meta(13, 0, 10);
        let mut a = Adam2Node::new(AttrValue::Single(12.0), 1.0);
        a.begin_instance(m.clone());
        let sent = snapshot_for_round(&a, 10, 9);
        assert!(sent.instances.is_empty(), "due instances stay local");
        let mut b = Adam2Node::new(AttrValue::Single(22.0), 1.0);
        let stale = snapshot_for_round(&a, 9, 9);
        let (_, outcome) = serve_exchange(&mut b, &roundtrip(&stale), 10);
        assert_eq!(outcome.joined, 0, "responder refuses due instances");
        assert!(b.active_instance(m.id).is_none());
    }
}
