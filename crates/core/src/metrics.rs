//! Approximation-error metrics.
//!
//! Section III defines two metrics between the true CDF `F` and a peer's
//! estimate `F_p`:
//!
//! * **Maximum error** (Kolmogorov–Smirnov): `Err_m(p) = max_x |F(x) - F_p(x)|`,
//!   aggregated over peers as `Err_m = max_p Err_m(p)`.
//! * **Average error** (normalised area between the curves):
//!   `Err_a(p) = sum_x |F(x) - F_p(x)| / (max - min)`, aggregated as
//!   `Err_a = avg_p Err_a(p)`.
//!
//! [`max_distance`] and [`avg_distance`] compute these *exactly*: both `F`
//! (a step function) and `F_p` (piecewise linear) are piecewise linear
//! between their combined breakpoints, so the supremum is attained at a
//! breakpoint (or its left limit) and the area integral decomposes into
//! closed-form trapezoids. The paper's discrete sum over integer attribute
//! values is the Riemann sum of the same area.
//!
//! [`FractionEnvelope`] supports the aggregate `Err_m = max_p` over 100 000
//! peers in O(N·λ + |values|): within one instance all peers share the same
//! thresholds, and linear interpolation has non-negative coefficients, so
//! the pointwise min/max over peers is the interpolation of the
//! per-threshold min/max.

use crate::cdf::{InterpCdf, StepCdf};

/// The error metric an experiment or heuristic optimises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ErrorMetric {
    /// Kolmogorov–Smirnov maximum vertical distance (`Err_m`).
    #[default]
    Max,
    /// Normalised area between the curves (`Err_a`).
    Average,
}

/// The exact maximum vertical distance `sup_x |F(x) - G(x)|`.
///
/// # Examples
///
/// ```
/// use adam2_core::{max_distance, InterpCdf, StepCdf};
///
/// let truth = StepCdf::from_values(vec![1.0, 2.0, 3.0, 4.0]);
/// let est = InterpCdf::new(vec![(1.0, 0.0), (4.0, 1.0)])?;
/// let d = max_distance(&truth, &est);
/// assert!(d > 0.0 && d <= 1.0);
/// # Ok::<(), adam2_core::CdfError>(())
/// ```
pub fn max_distance(truth: &StepCdf, est: &InterpCdf) -> f64 {
    let mut worst = 0.0f64;
    let mut check = |x: f64| {
        let right = (truth.eval(x) - est.eval(x)).abs();
        let left = (truth.eval_left(x) - est.eval_left(x)).abs();
        worst = worst.max(right).max(left);
    };
    for v in truth.distinct_values() {
        check(v);
    }
    for (x, _) in est.knots() {
        check(*x);
    }
    worst
}

/// The exact normalised area between the curves over `[lo, hi]`:
/// `∫ |F - G| dx / (hi - lo)`.
///
/// If `hi <= lo` the point discrepancy `|F(lo) - G(lo)|` is returned.
pub fn avg_distance_over(truth: &StepCdf, est: &InterpCdf, lo: f64, hi: f64) -> f64 {
    if hi <= lo {
        return (truth.eval(lo) - est.eval(lo)).abs();
    }
    // Breakpoints of |F - G| within [lo, hi].
    let mut xs: Vec<f64> = truth
        .distinct_values()
        .chain(est.knots().iter().map(|(x, _)| *x))
        .filter(|x| *x > lo && *x < hi)
        .collect();
    xs.push(lo);
    xs.push(hi);
    xs.sort_by(f64::total_cmp);
    xs.dedup();

    let mut area = 0.0;
    for w in xs.windows(2) {
        let (a, b) = (w[0], w[1]);
        if b <= a {
            continue;
        }
        // On the open interval (a, b): F is the constant F(a) (no jump
        // strictly inside), G is linear from G(a) to G(b⁻).
        let c = truth.eval(a);
        let g0 = est.eval(a);
        let g1 = est.eval_left(b);
        area += segment_area(c, g0, g1, b - a);
    }
    area / (hi - lo)
}

/// The exact normalised area between the curves over the truth's full
/// attribute range `[F.min, F.max]` — the paper's `Err_a(p)`.
pub fn avg_distance(truth: &StepCdf, est: &InterpCdf) -> f64 {
    avg_distance_over(truth, est, truth.min(), truth.max())
}

/// Area of `|c - line|` where the line runs from `g0` to `g1` over a
/// segment of width `w`.
fn segment_area(c: f64, g0: f64, g1: f64, w: f64) -> f64 {
    let d0 = g0 - c;
    let d1 = g1 - c;
    if d0 * d1 >= 0.0 {
        // No crossing: trapezoid.
        (d0.abs() + d1.abs()) / 2.0 * w
    } else {
        // The line crosses c: split into two triangles.
        let t = d0.abs() / (d0.abs() + d1.abs());
        (d0.abs() * t + d1.abs() * (1.0 - t)) / 2.0 * w
    }
}

/// Exact `(max, avg)` error over the *discrete* attribute domain: the
/// integers of `[lo, hi]`.
///
/// This is the paper's definition — "given that the attribute space in our
/// system is discrete", `Err_m` maximises and `Err_a` sums over attribute
/// *values*, not over continuous x. The distinction matters at steps: a
/// threshold placed at the integer just below a step makes the ramp to the
/// step top invisible in the discrete metric (there is no attribute value
/// strictly inside the ramp), which is exactly how Adam2's MinMax gets
/// `Err_m` down to ≈2 % on step CDFs.
///
/// The average is normalised by `hi - lo` as in the paper. If the range
/// contains no integer, the point discrepancy at `lo` is returned for
/// both components.
pub fn discrete_errors_over(truth: &StepCdf, est: &InterpCdf, lo: f64, hi: f64) -> (f64, f64) {
    let start = lo.ceil() as i64;
    let end = hi.floor() as i64;
    if end < start || hi <= lo {
        let d = (truth.eval(lo) - est.eval(lo)).abs();
        return (d, d);
    }
    let values = truth.values();
    let knots = est.knots();
    let mut vi = values.partition_point(|v| *v < start as f64);
    let mut ki = 0usize;
    let mut max = 0.0f64;
    let mut sum = 0.0f64;
    for k in start..=end {
        let x = k as f64;
        while vi < values.len() && values[vi] <= x {
            vi += 1;
        }
        let f = vi as f64 / values.len() as f64;
        // Advance the knot cursor so that ki = partition_point(kx <= x).
        while ki < knots.len() && knots[ki].0 <= x {
            ki += 1;
        }
        let g = if ki == 0 {
            knots[0].1
        } else if ki == knots.len() {
            knots[ki - 1].1
        } else {
            let (x0, y0) = knots[ki - 1];
            let (x1, y1) = knots[ki];
            if x1 == x0 {
                y1
            } else {
                y0 + (y1 - y0) * (x - x0) / (x1 - x0)
            }
        };
        let d = (f - g).abs();
        max = max.max(d);
        sum += d;
    }
    (max, sum / (hi - lo))
}

/// Discrete-domain `Err_m(p)` over the truth's full attribute range.
pub fn discrete_max_distance(truth: &StepCdf, est: &InterpCdf) -> f64 {
    discrete_errors_over(truth, est, truth.min(), truth.max()).0
}

/// Discrete-domain `Err_a(p)` over the truth's full attribute range.
pub fn discrete_avg_distance(truth: &StepCdf, est: &InterpCdf) -> f64 {
    discrete_errors_over(truth, est, truth.min(), truth.max()).1
}

/// Errors of the aggregated fractions *at the interpolation points only*
/// (the paper's "error at interpolation points" series in Fig. 6).
///
/// Returns `(max_error, avg_error)` of `|f_i - F(t_i)|`.
///
/// # Panics
///
/// Panics if `thresholds` and `fractions` lengths differ or are zero.
pub fn point_errors(truth: &StepCdf, thresholds: &[f64], fractions: &[f64]) -> (f64, f64) {
    assert_eq!(thresholds.len(), fractions.len(), "length mismatch");
    assert!(!thresholds.is_empty(), "no interpolation points");
    let mut max = 0.0f64;
    let mut sum = 0.0f64;
    for (t, f) in thresholds.iter().zip(fractions) {
        let e = (truth.eval(*t) - f).abs();
        max = max.max(e);
        sum += e;
    }
    (max, sum / thresholds.len() as f64)
}

/// Accumulates per-threshold fraction extremes and means across peers, to
/// compute exact cross-peer error aggregates cheaply.
///
/// All peers of one aggregation instance share the same thresholds and
/// (converged) min/max, so each peer contributes only its fraction vector.
#[derive(Debug, Clone)]
pub struct FractionEnvelope {
    lo: Vec<f64>,
    hi: Vec<f64>,
    sum: Vec<f64>,
    peers: usize,
}

impl FractionEnvelope {
    /// Creates an envelope for `points` interpolation points.
    ///
    /// # Panics
    ///
    /// Panics if `points` is zero.
    pub fn new(points: usize) -> Self {
        assert!(points > 0, "points must be positive");
        Self {
            lo: vec![f64::INFINITY; points],
            hi: vec![f64::NEG_INFINITY; points],
            sum: vec![0.0; points],
            peers: 0,
        }
    }

    /// Adds one peer's aggregated fraction vector.
    ///
    /// # Panics
    ///
    /// Panics if the vector length differs from the envelope width.
    pub fn add_peer(&mut self, fractions: &[f64]) {
        assert_eq!(fractions.len(), self.lo.len(), "fraction length mismatch");
        for (i, f) in fractions.iter().enumerate() {
            self.lo[i] = self.lo[i].min(*f);
            self.hi[i] = self.hi[i].max(*f);
            self.sum[i] += *f;
        }
        self.peers += 1;
    }

    /// Number of peers added.
    pub fn peers(&self) -> usize {
        self.peers
    }

    /// The pointwise-lowest fractions across peers.
    pub fn lower(&self) -> &[f64] {
        &self.lo
    }

    /// The pointwise-highest fractions across peers.
    pub fn upper(&self) -> &[f64] {
        &self.hi
    }

    /// The pointwise-mean fractions across peers.
    pub fn mean(&self) -> Vec<f64> {
        self.sum
            .iter()
            .map(|s| s / self.peers.max(1) as f64)
            .collect()
    }

    /// The exact aggregate `Err_m = max_p sup_x |F - F_p|` for peers whose
    /// estimates interpolate `thresholds` over `[min, max]`.
    ///
    /// For a fixed `x`, `F_p(x)` is a convex combination of two adjacent
    /// `f_i` with non-negative coefficients, so over all peers it ranges
    /// exactly between the interpolations of the per-threshold minima and
    /// maxima; the worst peer error at `x` is therefore attained on one of
    /// those two envelope curves.
    ///
    /// # Errors
    ///
    /// Returns [`CdfError`](crate::CdfError) if the envelope values cannot
    /// form valid CDFs.
    pub fn aggregate_max_error(
        &self,
        truth: &StepCdf,
        min: f64,
        max: f64,
        thresholds: &[f64],
    ) -> Result<f64, crate::CdfError> {
        let low = InterpCdf::from_points(min, max, thresholds, &self.lo)?;
        let high = InterpCdf::from_points(min, max, thresholds, &self.hi)?;
        Ok(max_distance(truth, &low).max(max_distance(truth, &high)))
    }

    /// Like [`aggregate_max_error`](Self::aggregate_max_error) but over the
    /// discrete attribute domain (the paper's metric).
    ///
    /// # Errors
    ///
    /// Returns [`CdfError`](crate::CdfError) if the envelope values cannot
    /// form valid CDFs.
    pub fn aggregate_discrete_max_error(
        &self,
        truth: &StepCdf,
        min: f64,
        max: f64,
        thresholds: &[f64],
    ) -> Result<f64, crate::CdfError> {
        let low = InterpCdf::from_points(min, max, thresholds, &self.lo)?;
        let high = InterpCdf::from_points(min, max, thresholds, &self.hi)?;
        Ok(discrete_max_distance(truth, &low).max(discrete_max_distance(truth, &high)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_truth() -> StepCdf {
        StepCdf::from_values((1..=100).map(f64::from).collect())
    }

    #[test]
    fn identical_cdfs_have_near_zero_error() {
        let truth = uniform_truth();
        let est = InterpCdf::from_sample(truth.values());
        assert_eq!(max_distance(&truth, &est), 0.0);
        assert_eq!(avg_distance(&truth, &est), 0.0);
    }

    #[test]
    fn max_distance_of_diagonal_vs_uniform_steps() {
        // F: uniform on 1..=100 (steps of 0.01); G: straight line 1 -> 100.
        let truth = uniform_truth();
        let est = InterpCdf::new(vec![(1.0, 0.01), (100.0, 1.0)]).unwrap();
        // The diagonal matches F at each step top, so the max gap is just
        // below one step (0.01).
        let d = max_distance(&truth, &est);
        assert!(d <= 0.0101 && d > 0.005, "d = {d}");
    }

    #[test]
    fn max_distance_detects_step_miss() {
        // Truth: all mass at 10; estimate: smooth ramp 0..20.
        let truth = StepCdf::from_values(vec![10.0; 50]);
        let est = InterpCdf::new(vec![(0.0, 0.0), (20.0, 1.0)]).unwrap();
        let d = max_distance(&truth, &est);
        // Just left of 10 the truth is 0 but the ramp is ~0.5.
        assert!((d - 0.5).abs() < 1e-9, "d = {d}");
    }

    #[test]
    fn avg_distance_triangle_area() {
        // Truth: single value at 0 (F = 1 everywhere in range [0, 0]...).
        // Use a two-value truth spanning [0, 10] instead.
        let truth = StepCdf::from_values(vec![0.0, 10.0]);
        // Estimate: exact staircase -> zero error.
        let est = InterpCdf::from_sample(truth.values());
        assert_eq!(avg_distance(&truth, &est), 0.0);
        // Estimate: diagonal. F = 0.5 on (0, 10); G ramps 0 -> 1.
        // |F - G| is two triangles of height 0.5 and width 5 => area 2.5,
        // normalised by 10 => 0.25.
        let diag = InterpCdf::new(vec![(0.0, 0.5), (10.0, 1.0)]).unwrap();
        let a = avg_distance(&truth, &diag);
        // F = 0.5 on (0, 10); G ramps 0.5 -> 1, so |F - G| ramps 0 -> 0.5
        // with mean 0.25.
        assert!((a - 0.25).abs() < 1e-9, "a = {a}");
    }

    #[test]
    fn avg_distance_degenerate_range() {
        let truth = StepCdf::from_values(vec![5.0, 5.0]);
        let est = InterpCdf::new(vec![(5.0, 1.0)]).unwrap();
        assert_eq!(avg_distance(&truth, &est), 0.0);
    }

    #[test]
    fn segment_area_no_crossing() {
        // c = 0, line 1 -> 3 over width 2: trapezoid (1+3)/2*2 = 4.
        assert!((segment_area(0.0, 1.0, 3.0, 2.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn segment_area_with_crossing() {
        // c = 0, line -1 -> 1 over width 2: two triangles 0.5 + 0.5 = ...
        // areas: |d0|*t/2*w + |d1|*(1-t)/2*w with t=0.5: (0.5*0.5 + 0.5*0.5)*2?
        // = (1*0.5 + 1*0.5)/2 * 2 = 1.0.
        assert!((segment_area(0.0, -1.0, 1.0, 2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn point_errors_exact() {
        let truth = uniform_truth();
        let (max, avg) = point_errors(&truth, &[50.0, 100.0], &[0.5, 0.9]);
        assert!((max - 0.1).abs() < 1e-12);
        assert!((avg - 0.05).abs() < 1e-12);
    }

    #[test]
    fn envelope_tracks_extremes_and_mean() {
        let mut env = FractionEnvelope::new(2);
        env.add_peer(&[0.2, 0.8]);
        env.add_peer(&[0.4, 0.6]);
        assert_eq!(env.peers(), 2);
        assert_eq!(env.lower(), &[0.2, 0.6]);
        assert_eq!(env.upper(), &[0.4, 0.8]);
        let mean = env.mean();
        assert!((mean[0] - 0.3).abs() < 1e-12 && (mean[1] - 0.7).abs() < 1e-12);
    }

    #[test]
    fn envelope_aggregate_equals_worst_peer() {
        let truth = uniform_truth();
        let thresholds = [25.0, 50.0, 75.0];
        let peers = [
            [0.25, 0.50, 0.75], // exact
            [0.20, 0.50, 0.80], // worse
            [0.27, 0.49, 0.74],
        ];
        let mut env = FractionEnvelope::new(3);
        let mut worst = 0.0f64;
        for p in &peers {
            env.add_peer(p);
            let est = InterpCdf::from_points(1.0, 100.0, &thresholds, p).unwrap();
            worst = worst.max(max_distance(&truth, &est));
        }
        let agg = env
            .aggregate_max_error(&truth, 1.0, 100.0, &thresholds)
            .unwrap();
        assert!(
            (agg - worst).abs() < 1e-12,
            "envelope {agg} vs direct {worst}"
        );
    }
}
