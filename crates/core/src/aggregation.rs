//! Classic gossip aggregation primitives (Jelasity, Montresor & Babaoglu,
//! TOCS 2005) — the substrate Adam2 builds on.
//!
//! Adam2's averaging of indicator vectors is the vector generalisation of
//! these scalar protocols. They are provided as standalone
//! [`Protocol`](adam2_sim::Protocol)s both for direct use ("future
//! large-scale applications will ... pick the needed mechanisms from
//! standard libraries", the paper concludes) and as independently tested
//! references for the convergence behaviour Adam2 inherits:
//!
//! * [`MeanAggregation`] — push–pull averaging; every node converges to
//!   the global mean at an exponential rate.
//! * [`ExtremaAggregation`] — epidemic min/max; converges in O(log N)
//!   rounds.
//! * [`CountAggregation`] — system-size estimation via the weight trick
//!   (one initiator holds 1, everyone else 0; the average is `1/N`).

use rand::rngs::StdRng;

use adam2_sim::{Ctx, NodeId, Protocol};

/// Push–pull averaging of one scalar per node.
pub struct MeanAggregation {
    source: Box<dyn FnMut(&mut StdRng) -> f64 + Send>,
}

impl MeanAggregation {
    /// Creates the protocol with a per-node value source.
    pub fn new(source: impl FnMut(&mut StdRng) -> f64 + Send + 'static) -> Self {
        Self {
            source: Box::new(source),
        }
    }
}

impl std::fmt::Debug for MeanAggregation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MeanAggregation").finish_non_exhaustive()
    }
}

impl Protocol for MeanAggregation {
    type Node = f64;

    fn make_node(&mut self, rng: &mut StdRng) -> f64 {
        (self.source)(rng)
    }

    fn on_round(&mut self, id: NodeId, ctx: &mut Ctx<'_, f64>) {
        let Some(partner) = ctx.random_neighbour(id) else {
            return;
        };
        let Some((a, b)) = ctx.nodes.pair_mut(id, partner) else {
            return;
        };
        let mean = (*a + *b) / 2.0;
        *a = mean;
        *b = mean;
        ctx.net.charge_exchange(id, partner, 8, 8);
    }
}

/// Epidemic minimum/maximum dissemination.
pub struct ExtremaAggregation {
    source: Box<dyn FnMut(&mut StdRng) -> f64 + Send>,
}

impl std::fmt::Debug for ExtremaAggregation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExtremaAggregation").finish_non_exhaustive()
    }
}

/// Per-node state of [`ExtremaAggregation`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Extrema {
    /// The node's own value.
    pub value: f64,
    /// Smallest value heard of so far.
    pub min: f64,
    /// Largest value heard of so far.
    pub max: f64,
}

impl ExtremaAggregation {
    /// Creates the protocol with a per-node value source.
    pub fn new(source: impl FnMut(&mut StdRng) -> f64 + Send + 'static) -> Self {
        Self {
            source: Box::new(source),
        }
    }
}

impl Protocol for ExtremaAggregation {
    type Node = Extrema;

    fn make_node(&mut self, rng: &mut StdRng) -> Extrema {
        let value = (self.source)(rng);
        Extrema {
            value,
            min: value,
            max: value,
        }
    }

    fn on_round(&mut self, id: NodeId, ctx: &mut Ctx<'_, Extrema>) {
        let Some(partner) = ctx.random_neighbour(id) else {
            return;
        };
        let Some((a, b)) = ctx.nodes.pair_mut(id, partner) else {
            return;
        };
        let min = a.min.min(b.min);
        let max = a.max.max(b.max);
        a.min = min;
        b.min = min;
        a.max = max;
        b.max = max;
        ctx.net.charge_exchange(id, partner, 16, 16);
    }
}

/// System-size estimation: the gossip COUNT protocol.
///
/// Exactly one node (the initiator) starts with weight 1, everyone else
/// with 0; push–pull averaging conserves the total weight of 1, so every
/// node's weight converges to `1/N` and `1/weight` estimates the system
/// size.
#[derive(Debug, Default)]
pub struct CountAggregation {
    initiated: bool,
}

impl CountAggregation {
    /// Creates the protocol; call [`designate_initiator`] after engine
    /// construction.
    ///
    /// [`designate_initiator`]: CountAggregation::designate_initiator
    pub fn new() -> Self {
        Self::default()
    }

    /// Gives `initiator` the unit weight. Must be called exactly once.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn designate_initiator(&mut self, initiator: NodeId, ctx: &mut Ctx<'_, f64>) {
        assert!(!self.initiated, "initiator already designated");
        if let Some(w) = ctx.nodes.get_mut(initiator) {
            *w = 1.0;
            self.initiated = true;
        }
    }

    /// The size estimate implied by a node's weight (`None` while the
    /// node has not received any weight mass).
    pub fn estimate(weight: f64) -> Option<f64> {
        (weight > 0.0).then(|| 1.0 / weight)
    }
}

impl Protocol for CountAggregation {
    type Node = f64;

    fn make_node(&mut self, _rng: &mut StdRng) -> f64 {
        0.0
    }

    fn on_round(&mut self, id: NodeId, ctx: &mut Ctx<'_, f64>) {
        let Some(partner) = ctx.random_neighbour(id) else {
            return;
        };
        let Some((a, b)) = ctx.nodes.pair_mut(id, partner) else {
            return;
        };
        let mean = (*a + *b) / 2.0;
        *a = mean;
        *b = mean;
        ctx.net.charge_exchange(id, partner, 8, 8);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adam2_sim::{Engine, EngineConfig};
    use rand::RngExt as _;

    #[test]
    fn mean_converges_exponentially() {
        let mut next = 0.0;
        let proto = MeanAggregation::new(move |_| {
            next += 1.0;
            next
        });
        let mut engine = Engine::new(EngineConfig::new(256, 61), proto);
        let expected = 257.0 / 2.0;
        let variance_at = |engine: &Engine<MeanAggregation>| {
            engine
                .nodes()
                .iter()
                .map(|(_, v)| (v - expected).powi(2))
                .sum::<f64>()
                / engine.nodes().len() as f64
        };
        let v0 = variance_at(&engine);
        engine.run_rounds(10);
        let v10 = variance_at(&engine);
        engine.run_rounds(10);
        let v20 = variance_at(&engine);
        // Jelasity et al.: variance decays by ~1/(2*sqrt(e)) per round;
        // ten rounds must shrink it by orders of magnitude.
        assert!(v10 < v0 / 100.0, "v0={v0} v10={v10}");
        assert!(v20 < v10 / 100.0, "v10={v10} v20={v20}");
    }

    #[test]
    fn extrema_converge_in_log_rounds() {
        let proto = ExtremaAggregation::new(|rng| rng.random_range(0.0..1e6));
        let mut engine = Engine::new(EngineConfig::new(1024, 62), proto);
        let true_min = engine
            .nodes()
            .iter()
            .map(|(_, e)| e.value)
            .fold(f64::INFINITY, f64::min);
        let true_max = engine
            .nodes()
            .iter()
            .map(|(_, e)| e.value)
            .fold(f64::NEG_INFINITY, f64::max);
        engine.run_rounds(20); // ~2 log2(1024)
        for (_, e) in engine.nodes().iter() {
            assert_eq!(e.min, true_min);
            assert_eq!(e.max, true_max);
        }
    }

    #[test]
    fn count_estimates_system_size() {
        let mut engine = Engine::new(EngineConfig::new(500, 63), CountAggregation::new());
        engine.with_ctx(|proto, ctx| {
            let initiator = ctx.nodes.random_id(ctx.rng).expect("nodes");
            proto.designate_initiator(initiator, ctx);
        });
        engine.run_rounds(40);
        for (_, w) in engine.nodes().iter() {
            let n = CountAggregation::estimate(*w).expect("weight spread");
            assert!((n - 500.0).abs() < 0.5, "estimate {n}");
        }
    }

    #[test]
    fn count_weight_mass_is_invariant() {
        let mut engine = Engine::new(EngineConfig::new(100, 64), CountAggregation::new());
        engine.with_ctx(|proto, ctx| {
            let initiator = ctx.nodes.random_id(ctx.rng).expect("nodes");
            proto.designate_initiator(initiator, ctx);
        });
        for _ in 0..20 {
            engine.run_round();
            let mass: f64 = engine.nodes().iter().map(|(_, w)| *w).sum();
            assert!((mass - 1.0).abs() < 1e-12, "mass {mass}");
        }
    }

    #[test]
    fn estimate_requires_weight() {
        assert_eq!(CountAggregation::estimate(0.0), None);
        assert_eq!(CountAggregation::estimate(0.01), Some(100.0));
    }
}
