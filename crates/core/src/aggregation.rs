//! Classic gossip aggregation primitives (Jelasity, Montresor & Babaoglu,
//! TOCS 2005) — the substrate Adam2 builds on.
//!
//! Adam2's averaging of indicator vectors is the vector generalisation of
//! these scalar protocols. They are provided as standalone
//! [`Protocol`](adam2_sim::Protocol)s both for direct use ("future
//! large-scale applications will ... pick the needed mechanisms from
//! standard libraries", the paper concludes) and as independently tested
//! references for the convergence behaviour Adam2 inherits:
//!
//! * [`MeanAggregation`] — push–pull averaging; every node converges to
//!   the global mean at an exponential rate.
//! * [`ExtremaAggregation`] — epidemic min/max; converges in O(log N)
//!   rounds.
//! * [`CountAggregation`] — system-size estimation via the weight trick
//!   (one initiator holds 1, everyone else 0; the average is `1/N`).

use rand::rngs::StdRng;

use adam2_sim::{Ctx, NodeId, Protocol};

/// Push–pull averaging of one scalar per node.
pub struct MeanAggregation {
    source: Box<dyn FnMut(&mut StdRng) -> f64 + Send>,
}

impl MeanAggregation {
    /// Creates the protocol with a per-node value source.
    pub fn new(source: impl FnMut(&mut StdRng) -> f64 + Send + 'static) -> Self {
        Self {
            source: Box::new(source),
        }
    }
}

impl std::fmt::Debug for MeanAggregation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MeanAggregation").finish_non_exhaustive()
    }
}

impl Protocol for MeanAggregation {
    type Node = f64;

    fn make_node(&mut self, rng: &mut StdRng) -> f64 {
        (self.source)(rng)
    }

    fn on_round(&mut self, id: NodeId, ctx: &mut Ctx<'_, f64>) {
        let Some(partner) = ctx.random_neighbour(id) else {
            return;
        };
        let Some((a, b)) = ctx.nodes.pair_mut(id, partner) else {
            return;
        };
        let mean = (*a + *b) / 2.0;
        *a = mean;
        *b = mean;
        ctx.net.charge_exchange(id, partner, 8, 8);
    }
}

/// Epidemic minimum/maximum dissemination.
pub struct ExtremaAggregation {
    source: Box<dyn FnMut(&mut StdRng) -> f64 + Send>,
}

impl std::fmt::Debug for ExtremaAggregation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExtremaAggregation").finish_non_exhaustive()
    }
}

/// Per-node state of [`ExtremaAggregation`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Extrema {
    /// The node's own value.
    pub value: f64,
    /// Smallest value heard of so far.
    pub min: f64,
    /// Largest value heard of so far.
    pub max: f64,
}

impl ExtremaAggregation {
    /// Creates the protocol with a per-node value source.
    pub fn new(source: impl FnMut(&mut StdRng) -> f64 + Send + 'static) -> Self {
        Self {
            source: Box::new(source),
        }
    }
}

impl Protocol for ExtremaAggregation {
    type Node = Extrema;

    fn make_node(&mut self, rng: &mut StdRng) -> Extrema {
        let value = (self.source)(rng);
        Extrema {
            value,
            min: value,
            max: value,
        }
    }

    fn on_round(&mut self, id: NodeId, ctx: &mut Ctx<'_, Extrema>) {
        let Some(partner) = ctx.random_neighbour(id) else {
            return;
        };
        let Some((a, b)) = ctx.nodes.pair_mut(id, partner) else {
            return;
        };
        let min = a.min.min(b.min);
        let max = a.max.max(b.max);
        a.min = min;
        b.min = min;
        a.max = max;
        b.max = max;
        ctx.net.charge_exchange(id, partner, 16, 16);
    }
}

/// System-size estimation: the gossip COUNT protocol.
///
/// Exactly one node (the initiator) starts with weight 1, everyone else
/// with 0; push–pull averaging conserves the total weight of 1, so every
/// node's weight converges to `1/N` and `1/weight` estimates the system
/// size.
#[derive(Debug, Default)]
pub struct CountAggregation {
    initiated: bool,
}

impl CountAggregation {
    /// Creates the protocol; call [`designate_initiator`] after engine
    /// construction.
    ///
    /// [`designate_initiator`]: CountAggregation::designate_initiator
    pub fn new() -> Self {
        Self::default()
    }

    /// Gives `initiator` the unit weight. Must be called exactly once.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn designate_initiator(&mut self, initiator: NodeId, ctx: &mut Ctx<'_, f64>) {
        assert!(!self.initiated, "initiator already designated");
        if let Some(w) = ctx.nodes.get_mut(initiator) {
            *w = 1.0;
            self.initiated = true;
        }
    }

    /// The size estimate implied by a node's weight (`None` while the
    /// node has not received any weight mass).
    pub fn estimate(weight: f64) -> Option<f64> {
        (weight > 0.0).then(|| 1.0 / weight)
    }
}

impl Protocol for CountAggregation {
    type Node = f64;

    fn make_node(&mut self, _rng: &mut StdRng) -> f64 {
        0.0
    }

    fn on_round(&mut self, id: NodeId, ctx: &mut Ctx<'_, f64>) {
        let Some(partner) = ctx.random_neighbour(id) else {
            return;
        };
        let Some((a, b)) = ctx.nodes.pair_mut(id, partner) else {
            return;
        };
        let mean = (*a + *b) / 2.0;
        *a = mean;
        *b = mean;
        ctx.net.charge_exchange(id, partner, 8, 8);
    }
}

/// Per-pair outcome of a [`robust_pair_merge`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RobustMergeStats {
    /// Components excluded from the merge by the trim rule.
    pub trimmed: u32,
    /// Components whose movement was clamped by the influence cap.
    pub capped: u32,
}

impl RobustMergeStats {
    /// Total components whose influence was limited (trimmed or capped).
    pub fn limited(self) -> u32 {
        self.trimmed + self.capped
    }
}

/// Trimmed mean of `values`: drop the `⌊trim_fraction·n⌋` smallest and the
/// same number of largest values, average the rest. `trim_fraction = 0`
/// is the plain mean; an empty slice yields 0.
pub fn trimmed_mean(values: &[f64], trim_fraction: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let t = (trim_fraction.clamp(0.0, 0.5) * values.len() as f64).floor() as usize;
    if 2 * t >= values.len() {
        // Everything trimmed: fall back to the median-like middle.
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        return sorted[sorted.len() / 2];
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let kept = &sorted[t..sorted.len() - t];
    kept.iter().sum::<f64>() / kept.len() as f64
}

/// Median-of-means of `values`: split (in order) into `groups` contiguous
/// blocks, average each, return the median of the block means. Robust to
/// a minority of arbitrarily corrupted values while staying close to the
/// mean on clean data. `groups ≤ 1` or a short slice degrade to the plain
/// mean; an empty slice yields 0.
pub fn median_of_means(values: &[f64], groups: usize) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let groups = groups.max(1).min(values.len());
    if groups == 1 {
        return values.iter().sum::<f64>() / values.len() as f64;
    }
    let mut means: Vec<f64> = values
        .chunks(values.len().div_ceil(groups))
        .map(|chunk| chunk.iter().sum::<f64>() / chunk.len() as f64)
        .collect();
    means.sort_by(f64::total_cmp);
    let mid = means.len() / 2;
    if means.len() % 2 == 1 {
        means[mid]
    } else {
        (means[mid - 1] + means[mid]) / 2.0
    }
}

/// Symmetric trimmed, influence-capped pairwise merge of two component
/// vectors (the robust counterpart of the `(a+b)/2` push–pull step).
///
/// The `⌊trim_fraction·n⌋` components with the largest absolute
/// disagreement `|b−a|` are left untouched on both sides; every other
/// component moves to the pairwise mean, except that movement is clamped
/// to ±`influence_cap` (applied symmetrically, so `a+b` is conserved to
/// rounding in every case). With `trim_fraction = 0` and an infinite cap
/// the result is bit-identical to the vanilla merge.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn robust_pair_merge(
    a: &mut [f64],
    b: &mut [f64],
    trim_fraction: f64,
    influence_cap: f64,
) -> RobustMergeStats {
    assert_eq!(a.len(), b.len(), "robust merge needs equal-length vectors");
    let n = a.len();
    let t = (trim_fraction.clamp(0.0, 0.5) * n as f64).floor() as usize;
    let mut stats = RobustMergeStats::default();
    // Rank components by |disagreement| (ties broken by index so both
    // sides of an exchange compute the same trim set).
    let mut trimmed = vec![false; n];
    if t > 0 {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| {
            (b[j] - a[j])
                .abs()
                .total_cmp(&(b[i] - a[i]).abs())
                .then(i.cmp(&j))
        });
        for &i in order.iter().take(t) {
            trimmed[i] = true;
        }
        stats.trimmed = t as u32;
    }
    for i in 0..n {
        if trimmed[i] {
            continue;
        }
        let delta = (b[i] - a[i]) / 2.0;
        if delta.abs() > influence_cap {
            let step = influence_cap.copysign(delta);
            a[i] += step;
            b[i] -= step;
            stats.capped += 1;
        } else {
            // Vanilla formula so trim=0 + no cap degrades bit-identically.
            let mean = (a[i] + b[i]) / 2.0;
            a[i] = mean;
            b[i] = mean;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use adam2_sim::{Engine, EngineConfig};
    use rand::RngExt as _;

    #[test]
    fn mean_converges_exponentially() {
        let mut next = 0.0;
        let proto = MeanAggregation::new(move |_| {
            next += 1.0;
            next
        });
        let mut engine = Engine::new(EngineConfig::new(256, 61), proto);
        let expected = 257.0 / 2.0;
        let variance_at = |engine: &Engine<MeanAggregation>| {
            engine
                .nodes()
                .iter()
                .map(|(_, v)| (v - expected).powi(2))
                .sum::<f64>()
                / engine.nodes().len() as f64
        };
        let v0 = variance_at(&engine);
        engine.run_rounds(10);
        let v10 = variance_at(&engine);
        engine.run_rounds(10);
        let v20 = variance_at(&engine);
        // Jelasity et al.: variance decays by ~1/(2*sqrt(e)) per round;
        // ten rounds must shrink it by orders of magnitude.
        assert!(v10 < v0 / 100.0, "v0={v0} v10={v10}");
        assert!(v20 < v10 / 100.0, "v10={v10} v20={v20}");
    }

    #[test]
    fn extrema_converge_in_log_rounds() {
        let proto = ExtremaAggregation::new(|rng| rng.random_range(0.0..1e6));
        let mut engine = Engine::new(EngineConfig::new(1024, 62), proto);
        let true_min = engine
            .nodes()
            .iter()
            .map(|(_, e)| e.value)
            .fold(f64::INFINITY, f64::min);
        let true_max = engine
            .nodes()
            .iter()
            .map(|(_, e)| e.value)
            .fold(f64::NEG_INFINITY, f64::max);
        engine.run_rounds(20); // ~2 log2(1024)
        for (_, e) in engine.nodes().iter() {
            assert_eq!(e.min, true_min);
            assert_eq!(e.max, true_max);
        }
    }

    #[test]
    fn count_estimates_system_size() {
        let mut engine = Engine::new(EngineConfig::new(500, 63), CountAggregation::new());
        engine.with_ctx(|proto, ctx| {
            let initiator = ctx.nodes.random_id(ctx.rng).expect("nodes");
            proto.designate_initiator(initiator, ctx);
        });
        engine.run_rounds(40);
        for (_, w) in engine.nodes().iter() {
            let n = CountAggregation::estimate(*w).expect("weight spread");
            assert!((n - 500.0).abs() < 0.5, "estimate {n}");
        }
    }

    #[test]
    fn count_weight_mass_is_invariant() {
        let mut engine = Engine::new(EngineConfig::new(100, 64), CountAggregation::new());
        engine.with_ctx(|proto, ctx| {
            let initiator = ctx.nodes.random_id(ctx.rng).expect("nodes");
            proto.designate_initiator(initiator, ctx);
        });
        for _ in 0..20 {
            engine.run_round();
            let mass: f64 = engine.nodes().iter().map(|(_, w)| *w).sum();
            assert!((mass - 1.0).abs() < 1e-12, "mass {mass}");
        }
    }

    #[test]
    fn estimate_requires_weight() {
        assert_eq!(CountAggregation::estimate(0.0), None);
        assert_eq!(CountAggregation::estimate(0.01), Some(100.0));
    }

    #[test]
    fn trimmed_mean_drops_tails() {
        let values = [1.0, 2.0, 3.0, 4.0, 1000.0];
        assert_eq!(trimmed_mean(&values, 0.0), 202.0);
        // 20% of 5 = 1 from each tail: mean of {2, 3, 4}.
        assert_eq!(trimmed_mean(&values, 0.2), 3.0);
        assert_eq!(trimmed_mean(&[], 0.2), 0.0);
        // Degenerate over-trim falls back to the middle element.
        assert_eq!(trimmed_mean(&[5.0, 7.0], 0.5), 7.0);
    }

    #[test]
    fn median_of_means_resists_outliers() {
        let clean = [2.0; 12];
        assert_eq!(median_of_means(&clean, 4), 2.0);
        let mut poisoned = clean;
        poisoned[0] = 1e12;
        // One poisoned block cannot move the median of four block means.
        assert_eq!(median_of_means(&poisoned, 4), 2.0);
        // groups=1 degrades to the mean.
        let v = [1.0, 2.0, 3.0];
        assert_eq!(median_of_means(&v, 1), 2.0);
        assert_eq!(median_of_means(&[], 4), 0.0);
    }

    #[test]
    fn robust_pair_merge_degrades_to_vanilla() {
        let mut a = [0.1, 0.5, 0.9, 0.3];
        let mut b = [0.2, 0.4, 0.1, 0.7];
        let (mut va, mut vb) = (a, b);
        let stats = robust_pair_merge(&mut a, &mut b, 0.0, f64::INFINITY);
        assert_eq!(stats, RobustMergeStats::default());
        for i in 0..va.len() {
            let mean = (va[i] + vb[i]) / 2.0;
            va[i] = mean;
            vb[i] = mean;
        }
        assert_eq!(a.to_vec(), va.to_vec());
        assert_eq!(b.to_vec(), vb.to_vec());
    }

    #[test]
    fn robust_pair_merge_trims_largest_disagreement() {
        let mut a = [0.0, 0.0, 0.0, 0.0];
        let mut b = [0.1, 100.0, 0.2, 0.3];
        let stats = robust_pair_merge(&mut a, &mut b, 0.25, f64::INFINITY);
        assert_eq!(stats.trimmed, 1);
        // The poisoned component is untouched on both sides.
        assert_eq!(a[1], 0.0);
        assert_eq!(b[1], 100.0);
        // The rest met in the middle.
        assert_eq!(a[0], 0.05);
        assert_eq!(b[0], 0.05);
    }

    #[test]
    fn robust_pair_merge_caps_influence_and_conserves_mass() {
        let mut a = [0.0, 0.0];
        let mut b = [10.0, 0.2];
        let sum_before: f64 = a.iter().chain(b.iter()).sum();
        let stats = robust_pair_merge(&mut a, &mut b, 0.0, 0.5);
        assert_eq!(stats.capped, 1);
        assert_eq!(a[0], 0.5);
        assert_eq!(b[0], 9.5);
        assert_eq!(a[1], 0.1);
        assert_eq!(b[1], 0.1);
        let sum_after: f64 = a.iter().chain(b.iter()).sum();
        assert!((sum_before - sum_after).abs() < 1e-12);
    }
}
