//! Rank, slice and outlier queries on top of a distribution estimate.
//!
//! The paper positions Adam2 against dedicated rank/slicing protocols
//! (Montresor et al.; Jelasity & Kermarrec; Fernández et al.) and the
//! gossip outlier detection of Eyal et al.: a full *distribution* estimate
//! strictly subsumes them — "node ranks by definition are always assigned
//! between 1 and N, regardless of the actual attribute distribution",
//! whereas the CDF also reveals skew, imbalance and outliers. This module
//! derives those classic queries from a [`DistributionEstimate`], so a
//! deployment gets ranking, ordered slicing and outlier detection "for
//! free" once Adam2 runs.

use serde::{Deserialize, Serialize};

use crate::estimate::DistributionEstimate;

impl DistributionEstimate {
    /// The node's estimated *rank* (1 = smallest value) among the `N`
    /// nodes of the system, from `F(value) · N`.
    ///
    /// Returns `None` if the estimate carries no system-size value.
    ///
    /// # Examples
    ///
    /// ```
    /// # use adam2_core::{DistributionEstimate, InterpCdf, InstanceId};
    /// # let estimate = DistributionEstimate {
    /// #     cdf: InterpCdf::new(vec![(0.0, 0.0), (100.0, 1.0)]).unwrap(),
    /// #     n_hat: Some(1000.0), min: 0.0, max: 100.0,
    /// #     est_err_avg: None, est_err_max: None,
    /// #     instance: InstanceId::from_u64(0), completed_round: 0,
    /// #     thresholds: vec![], fractions: vec![],
    /// # };
    /// // A node holding the median value ranks around N/2.
    /// assert_eq!(estimate.rank_of(50.0), Some(500));
    /// ```
    pub fn rank_of(&self, value: f64) -> Option<u64> {
        let n = self.n_hat?;
        let rank = (self.cdf.eval(value) * n).round();
        Some((rank.max(1.0)) as u64)
    }

    /// The ordered *slice* (0-based, of `slices` equal-population slices)
    /// that a node holding `value` belongs to — decentralised ordered
    /// slicing à la Jelasity & Kermarrec.
    ///
    /// # Panics
    ///
    /// Panics if `slices` is zero.
    pub fn slice_of(&self, value: f64, slices: usize) -> usize {
        assert!(slices > 0, "slices must be positive");
        let f = self.cdf.eval(value);
        ((f * slices as f64) as usize).min(slices - 1)
    }

    /// Classifies `value` against quantile fences (e.g. `0.01` / `0.99`
    /// for percentile outliers).
    ///
    /// # Panics
    ///
    /// Panics if the quantiles are not ordered within `[0, 1]`.
    pub fn classify(&self, value: f64, lower_quantile: f64, upper_quantile: f64) -> Outlier {
        assert!(
            (0.0..=1.0).contains(&lower_quantile)
                && (0.0..=1.0).contains(&upper_quantile)
                && lower_quantile <= upper_quantile,
            "quantile fences must be ordered within [0, 1]"
        );
        let f = self.cdf.eval(value);
        let f_left = self.cdf.eval_left(value);
        // Use the left limit for the low fence so an atom exactly at the
        // fence quantile is not flagged.
        if f < lower_quantile {
            Outlier::Low
        } else if f_left > upper_quantile {
            Outlier::High
        } else {
            Outlier::Normal
        }
    }
}

/// Outlier classification of a value against the estimated distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Outlier {
    /// Below the lower quantile fence.
    Low,
    /// Within the fences.
    Normal,
    /// Above the upper quantile fence.
    High,
}

/// A reusable outlier detector with fixed quantile fences.
///
/// # Examples
///
/// ```
/// use adam2_core::OutlierDetector;
///
/// let detector = OutlierDetector::new(0.05, 0.95);
/// assert_eq!(detector.lower_quantile(), 0.05);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OutlierDetector {
    lower: f64,
    upper: f64,
}

impl OutlierDetector {
    /// Creates a detector flagging values outside the
    /// `[lower_quantile, upper_quantile]` band.
    ///
    /// # Panics
    ///
    /// Panics if the quantiles are not ordered within `[0, 1]`.
    pub fn new(lower_quantile: f64, upper_quantile: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&lower_quantile)
                && (0.0..=1.0).contains(&upper_quantile)
                && lower_quantile <= upper_quantile,
            "quantile fences must be ordered within [0, 1]"
        );
        Self {
            lower: lower_quantile,
            upper: upper_quantile,
        }
    }

    /// The lower fence.
    pub fn lower_quantile(&self) -> f64 {
        self.lower
    }

    /// The upper fence.
    pub fn upper_quantile(&self) -> f64 {
        self.upper
    }

    /// Classifies `value` against `estimate`.
    pub fn classify(&self, estimate: &DistributionEstimate, value: f64) -> Outlier {
        estimate.classify(value, self.lower, self.upper)
    }

    /// The attribute band considered normal under `estimate`.
    pub fn normal_band(&self, estimate: &DistributionEstimate) -> (f64, f64) {
        (
            estimate.cdf.quantile(self.lower),
            estimate.cdf.quantile(self.upper),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdf::InterpCdf;
    use crate::instance::InstanceId;

    fn estimate(n: Option<f64>) -> DistributionEstimate {
        DistributionEstimate {
            cdf: InterpCdf::new(vec![(0.0, 0.0), (100.0, 1.0)]).unwrap(),
            n_hat: n,
            min: 0.0,
            max: 100.0,
            est_err_avg: None,
            est_err_max: None,
            instance: InstanceId::from_u64(1),
            completed_round: 30,
            thresholds: vec![],
            fractions: vec![],
        }
    }

    #[test]
    fn rank_scales_with_n() {
        let est = estimate(Some(1000.0));
        assert_eq!(est.rank_of(0.0), Some(1), "minimum never ranks below 1");
        assert_eq!(est.rank_of(50.0), Some(500));
        assert_eq!(est.rank_of(100.0), Some(1000));
        assert_eq!(estimate(None).rank_of(50.0), None);
    }

    #[test]
    fn slices_partition_the_population() {
        let est = estimate(Some(100.0));
        assert_eq!(est.slice_of(5.0, 4), 0);
        assert_eq!(est.slice_of(30.0, 4), 1);
        assert_eq!(est.slice_of(60.0, 4), 2);
        assert_eq!(est.slice_of(99.0, 4), 3);
        // The top value stays in the last slice.
        assert_eq!(est.slice_of(100.0, 4), 3);
        assert_eq!(est.slice_of(50.0, 1), 0);
    }

    #[test]
    fn classification_fences() {
        let est = estimate(Some(100.0));
        assert_eq!(est.classify(0.5, 0.05, 0.95), Outlier::Low);
        assert_eq!(est.classify(50.0, 0.05, 0.95), Outlier::Normal);
        assert_eq!(est.classify(99.9, 0.05, 0.95), Outlier::High);
        // Fence values themselves are normal.
        assert_eq!(est.classify(5.0, 0.05, 0.95), Outlier::Normal);
        assert_eq!(est.classify(95.0, 0.05, 0.95), Outlier::Normal);
    }

    #[test]
    fn atoms_at_the_fence_are_not_flagged() {
        // Step CDF: 90% of mass at 10, the rest at 20.
        let est = DistributionEstimate {
            cdf: InterpCdf::new(vec![(10.0, 0.0), (10.0, 0.9), (20.0, 0.9), (20.0, 1.0)]).unwrap(),
            ..estimate(Some(100.0))
        };
        // A node holding the dominant value must not be a "high" outlier
        // even though F(10) = 0.9 >= upper fence 0.85: its left limit is 0.
        assert_eq!(est.classify(10.0, 0.05, 0.85), Outlier::Normal);
        assert_eq!(est.classify(20.0, 0.05, 0.85), Outlier::High);
    }

    #[test]
    fn detector_reports_band() {
        let est = estimate(Some(100.0));
        let d = OutlierDetector::new(0.1, 0.9);
        let (lo, hi) = d.normal_band(&est);
        assert!((lo - 10.0).abs() < 1e-9);
        assert!((hi - 90.0).abs() < 1e-9);
        assert_eq!(d.classify(&est, 95.0), Outlier::High);
    }

    #[test]
    #[should_panic(expected = "quantile fences must be ordered")]
    fn detector_rejects_inverted_fences() {
        OutlierDetector::new(0.9, 0.1);
    }

    #[test]
    #[should_panic(expected = "slices must be positive")]
    fn zero_slices_rejected() {
        estimate(Some(10.0)).slice_of(1.0, 0);
    }
}
