//! Cumulative distribution functions: exact step CDFs and piecewise-linear
//! interpolations.
//!
//! The paper's ground truth `F(x)` is the *step* CDF of the attribute
//! values of all live nodes ([`StepCdf`]). A node's estimate `F_p(x)` is a
//! *piecewise-linear interpolation* through the aggregated points of `H`
//! ([`InterpCdf`]) — "we use simple linear regression between each
//! consecutive pair of points".
//!
//! [`InterpCdf`] permits duplicate x-coordinates in consecutive knots,
//! which represent vertical jumps; this makes the type exact for empirical
//! (staircase) CDFs too, as needed by the random-sampling and EquiDepth
//! baselines. Evaluation is right-continuous, matching the paper's
//! `F(x) = |{p : A(p) <= x}| / N` definition.

use serde::{Deserialize, Serialize};

use crate::error::CdfError;

/// The exact (ground truth) step CDF of a multiset of values.
///
/// # Examples
///
/// ```
/// use adam2_core::StepCdf;
///
/// let f = StepCdf::from_values(vec![1.0, 2.0, 2.0, 4.0]);
/// assert_eq!(f.eval(0.5), 0.0);
/// assert_eq!(f.eval(1.0), 0.25);
/// assert_eq!(f.eval(2.0), 0.75);
/// assert_eq!(f.eval(10.0), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepCdf {
    /// All values, sorted ascending (duplicates retained).
    values: Vec<f64>,
}

impl StepCdf {
    /// Builds the step CDF of `values` (need not be sorted).
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains non-finite entries.
    pub fn from_values(mut values: Vec<f64>) -> Self {
        assert!(!values.is_empty(), "values must not be empty");
        assert!(
            values.iter().all(|v| v.is_finite()),
            "values must be finite"
        );
        values.sort_by(f64::total_cmp);
        Self { values }
    }

    /// Number of underlying values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the CDF has no values (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Smallest value.
    pub fn min(&self) -> f64 {
        self.values[0]
    }

    /// Largest value.
    pub fn max(&self) -> f64 {
        *self.values.last().expect("non-empty")
    }

    /// `F(x)`: the fraction of values at or below `x`.
    pub fn eval(&self, x: f64) -> f64 {
        let below = self.values.partition_point(|v| *v <= x);
        below as f64 / self.values.len() as f64
    }

    /// The left limit `F(x⁻)`: the fraction of values strictly below `x`.
    pub fn eval_left(&self, x: f64) -> f64 {
        let below = self.values.partition_point(|v| *v < x);
        below as f64 / self.values.len() as f64
    }

    /// Iterates over the distinct jump points in ascending order.
    pub fn distinct_values(&self) -> impl Iterator<Item = f64> + '_ {
        DistinctIter {
            values: &self.values,
            pos: 0,
        }
    }

    /// The sorted underlying values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

struct DistinctIter<'a> {
    values: &'a [f64],
    pos: usize,
}

impl Iterator for DistinctIter<'_> {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        if self.pos >= self.values.len() {
            return None;
        }
        let v = self.values[self.pos];
        self.pos = self.values[self.pos..].partition_point(|w| *w <= v) + self.pos;
        Some(v)
    }
}

/// A piecewise-linear CDF approximation through a set of knots.
///
/// Invariants (validated at construction):
///
/// * knot x-coordinates are non-decreasing (equal x's in *consecutive*
///   knots encode a vertical jump),
/// * knot y-coordinates are non-decreasing and within `[0, 1]`,
/// * all coordinates are finite, and there is at least one knot.
///
/// Evaluation clamps outside the knot range: `0`-side values take the first
/// knot's y, `1`-side values the last knot's y.
///
/// # Examples
///
/// ```
/// use adam2_core::InterpCdf;
///
/// let g = InterpCdf::new(vec![(0.0, 0.0), (10.0, 1.0)])?;
/// assert_eq!(g.eval(5.0), 0.5);
/// assert_eq!(g.eval(-1.0), 0.0);
/// assert_eq!(g.quantile(0.25), 2.5);
/// # Ok::<(), adam2_core::CdfError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterpCdf {
    knots: Vec<(f64, f64)>,
}

impl InterpCdf {
    /// Creates an interpolated CDF from knots.
    ///
    /// # Errors
    ///
    /// Returns [`CdfError`] if the knot list is empty, not sorted by x,
    /// has decreasing y, y outside `[0, 1]`, or non-finite coordinates.
    pub fn new(knots: Vec<(f64, f64)>) -> Result<Self, CdfError> {
        if knots.is_empty() {
            return Err(CdfError::Empty);
        }
        for (i, (x, y)) in knots.iter().enumerate() {
            if !x.is_finite() || !y.is_finite() {
                return Err(CdfError::NotFinite { index: i });
            }
            if !(0.0..=1.0).contains(y) {
                return Err(CdfError::OutOfRange {
                    index: i,
                    value: *y,
                });
            }
            if i > 0 {
                let (px, py) = knots[i - 1];
                if *x < px {
                    return Err(CdfError::UnsortedX { index: i });
                }
                if *y < py {
                    return Err(CdfError::DecreasingY { index: i });
                }
            }
        }
        Ok(Self { knots })
    }

    /// Builds an estimate CDF from aggregated interpolation points.
    ///
    /// Combines the anchor points `(min, 0)` and `(max, 1)` — the paper's
    /// specially-merged global extrema — with the `(t_i, f_i)` pairs of
    /// `H`. Thresholds are sorted, and fractions are clipped to `[0, 1]`
    /// and made monotone by a running maximum (gossip averaging noise can
    /// produce microscopic inversions).
    ///
    /// # Errors
    ///
    /// Returns [`CdfError`] if `thresholds` and `fractions` have different
    /// lengths, or any input is non-finite, or `min > max`.
    pub fn from_points(
        min: f64,
        max: f64,
        thresholds: &[f64],
        fractions: &[f64],
    ) -> Result<Self, CdfError> {
        if thresholds.len() != fractions.len() {
            return Err(CdfError::LengthMismatch {
                thresholds: thresholds.len(),
                fractions: fractions.len(),
            });
        }
        if !min.is_finite() || !max.is_finite() || min > max {
            return Err(CdfError::BadRange { min, max });
        }
        // Keep thresholds at exactly min/max: together with the anchors
        // they encode the CDF's atoms at the extremes (e.g. a heavy step
        // sitting at the attribute minimum) as vertical jumps.
        let mut pairs: Vec<(f64, f64)> = thresholds
            .iter()
            .copied()
            .zip(fractions.iter().copied())
            .filter(|(t, _)| *t >= min && *t <= max)
            .collect();
        if pairs.iter().any(|(t, f)| !t.is_finite() || !f.is_finite()) {
            return Err(CdfError::NotFinite { index: 0 });
        }
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut knots = Vec::with_capacity(pairs.len() + 2);
        knots.push((min, 0.0));
        let mut running = 0.0f64;
        for (t, f) in pairs {
            running = running.max(f.clamp(0.0, 1.0));
            knots.push((t, running));
        }
        knots.push((max, 1.0));
        Self::new(knots)
    }

    /// Builds the exact empirical (staircase) CDF of a sample.
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty or contains non-finite values.
    pub fn from_sample(sample: &[f64]) -> Self {
        assert!(!sample.is_empty(), "sample must not be empty");
        let step = StepCdf::from_values(sample.to_vec());
        let n = step.len() as f64;
        let mut knots = Vec::new();
        let mut below = 0usize;
        for v in step.distinct_values() {
            let count = step.values().partition_point(|w| *w <= v) - below;
            knots.push((v, below as f64 / n));
            knots.push((v, (below + count) as f64 / n));
            below += count;
        }
        Self::new(knots).expect("staircase knots are valid")
    }

    /// The knots of this CDF.
    pub fn knots(&self) -> &[(f64, f64)] {
        &self.knots
    }

    /// Smallest knot x (the estimated attribute minimum).
    pub fn min(&self) -> f64 {
        self.knots[0].0
    }

    /// Largest knot x (the estimated attribute maximum).
    pub fn max(&self) -> f64 {
        self.knots.last().expect("non-empty").0
    }

    /// Evaluates the CDF at `x` (right-continuous at jumps).
    pub fn eval(&self, x: f64) -> f64 {
        let j = self.knots.partition_point(|(kx, _)| *kx <= x);
        if j == 0 {
            return self.knots[0].1;
        }
        if j == self.knots.len() {
            return self.knots[j - 1].1;
        }
        let (x0, y0) = self.knots[j - 1];
        let (x1, y1) = self.knots[j];
        debug_assert!(x1 > x); // partition_point guarantees kx > x at j
        if x1 == x0 {
            return y1;
        }
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }

    /// The left limit at `x` (differs from [`eval`](Self::eval) only at
    /// jumps).
    pub fn eval_left(&self, x: f64) -> f64 {
        let j = self.knots.partition_point(|(kx, _)| *kx < x);
        if j == 0 {
            return self.knots[0].1;
        }
        if j == self.knots.len() {
            return self.knots[j - 1].1;
        }
        let (x0, y0) = self.knots[j - 1];
        let (x1, y1) = self.knots[j];
        if x1 == x0 {
            return y1.min(y0);
        }
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }

    /// The generalised inverse: the smallest `x` with `F(x) >= q`.
    ///
    /// `q` is clamped to `[first_y, last_y]` so the result is always within
    /// the knot range.
    pub fn quantile(&self, q: f64) -> f64 {
        let q = q.clamp(self.knots[0].1, self.knots.last().expect("non-empty").1);
        let j = self.knots.partition_point(|(_, ky)| *ky < q);
        if j == 0 {
            return self.knots[0].0;
        }
        if j == self.knots.len() {
            return self.knots[j - 1].0;
        }
        let (x0, y0) = self.knots[j - 1];
        let (x1, y1) = self.knots[j];
        if y1 == y0 {
            return x0;
        }
        x0 + (x1 - x0) * (q - y0) / (y1 - y0)
    }

    /// Total Euclidean arc length of the knot polyline with the x-axis
    /// rescaled by `1 / (max - min)` (so both axes span `[0, 1]`), as used
    /// by the LCut heuristic.
    pub fn scaled_arc_length(&self) -> f64 {
        self.scaled_arc_cumulative().last().copied().unwrap_or(0.0)
    }

    /// Cumulative scaled arc length at each knot, starting at `0.0`.
    pub fn scaled_arc_cumulative(&self) -> Vec<f64> {
        let span = self.max() - self.min();
        let scale = if span > 0.0 { 1.0 / span } else { 1.0 };
        let mut acc = Vec::with_capacity(self.knots.len());
        let mut total = 0.0;
        acc.push(0.0);
        for w in self.knots.windows(2) {
            let dx = (w[1].0 - w[0].0) * scale;
            let dy = w[1].1 - w[0].1;
            total += (dx * dx + dy * dy).sqrt();
            acc.push(total);
        }
        acc
    }

    /// The point `(x, y)` at scaled arc position `s` along the polyline
    /// (clamped to the total length).
    pub fn point_at_arc(&self, s: f64) -> (f64, f64) {
        let cumulative = self.scaled_arc_cumulative();
        let total = *cumulative.last().expect("non-empty");
        let s = s.clamp(0.0, total);
        let j = cumulative.partition_point(|c| *c < s);
        if j == 0 {
            return self.knots[0];
        }
        if j == cumulative.len() {
            return *self.knots.last().expect("non-empty");
        }
        let seg = cumulative[j] - cumulative[j - 1];
        let t = if seg > 0.0 {
            (s - cumulative[j - 1]) / seg
        } else {
            0.0
        };
        let (x0, y0) = self.knots[j - 1];
        let (x1, y1) = self.knots[j];
        (x0 + (x1 - x0) * t, y0 + (y1 - y0) * t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_cdf_eval_and_left_limits() {
        let f = StepCdf::from_values(vec![5.0, 1.0, 3.0, 3.0]);
        assert_eq!(f.min(), 1.0);
        assert_eq!(f.max(), 5.0);
        assert_eq!(f.eval(0.0), 0.0);
        assert_eq!(f.eval(1.0), 0.25);
        assert_eq!(f.eval_left(1.0), 0.0);
        assert_eq!(f.eval(3.0), 0.75);
        assert_eq!(f.eval_left(3.0), 0.25);
        assert_eq!(f.eval(4.9), 0.75);
        assert_eq!(f.eval(5.0), 1.0);
    }

    #[test]
    fn step_cdf_distinct_values() {
        let f = StepCdf::from_values(vec![2.0, 1.0, 2.0, 7.0, 7.0, 7.0]);
        let d: Vec<f64> = f.distinct_values().collect();
        assert_eq!(d, vec![1.0, 2.0, 7.0]);
    }

    #[test]
    fn interp_cdf_linear_evaluation() {
        let g = InterpCdf::new(vec![(0.0, 0.0), (4.0, 0.4), (10.0, 1.0)]).unwrap();
        assert_eq!(g.eval(-5.0), 0.0);
        assert_eq!(g.eval(2.0), 0.2);
        assert_eq!(g.eval(4.0), 0.4);
        assert!((g.eval(7.0) - 0.7).abs() < 1e-12);
        assert_eq!(g.eval(99.0), 1.0);
    }

    #[test]
    fn interp_cdf_jump_semantics() {
        // Staircase: jump of 0.5 at x=1 and at x=2.
        let g = InterpCdf::new(vec![(1.0, 0.0), (1.0, 0.5), (2.0, 0.5), (2.0, 1.0)]).unwrap();
        assert_eq!(g.eval(0.5), 0.0);
        assert_eq!(g.eval(1.0), 0.5);
        assert_eq!(g.eval_left(1.0), 0.0);
        assert_eq!(g.eval(1.5), 0.5);
        assert_eq!(g.eval(2.0), 1.0);
        assert_eq!(g.eval_left(2.0), 0.5);
    }

    #[test]
    fn from_sample_matches_step_cdf_everywhere() {
        let values = vec![1.0, 2.0, 2.0, 5.0, 9.0];
        let f = StepCdf::from_values(values.clone());
        let g = InterpCdf::from_sample(&values);
        for x in [-1.0, 1.0, 1.5, 2.0, 3.0, 5.0, 8.9, 9.0, 20.0] {
            assert_eq!(f.eval(x), g.eval(x), "mismatch at {x}");
            assert_eq!(f.eval_left(x), g.eval_left(x), "left mismatch at {x}");
        }
    }

    #[test]
    fn from_points_adds_anchors_and_monotonises() {
        let g = InterpCdf::from_points(
            0.0,
            10.0,
            &[4.0, 2.0, 6.0],
            // 2.0 -> 0.3 (reordered), 4.0 -> 0.29 (slightly inverted), 6.0 -> 0.8
            &[0.29, 0.3, 0.8],
        )
        .unwrap();
        assert_eq!(g.min(), 0.0);
        assert_eq!(g.max(), 10.0);
        assert_eq!(g.eval(0.0), 0.0);
        assert_eq!(g.eval(10.0), 1.0);
        // Monotone repair keeps 0.3 at x=4.
        assert_eq!(g.eval(4.0), 0.3);
        let ys: Vec<f64> = g.knots().iter().map(|(_, y)| *y).collect();
        assert!(ys.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn from_points_drops_thresholds_outside_range() {
        let g = InterpCdf::from_points(5.0, 10.0, &[1.0, 7.0, 20.0], &[0.0, 0.5, 1.0]).unwrap();
        assert_eq!(g.knots().len(), 3); // (5,0), (7,0.5), (10,1)
    }

    #[test]
    fn quantile_inverts_eval_on_strictly_increasing_cdf() {
        let g = InterpCdf::new(vec![(0.0, 0.0), (4.0, 0.4), (10.0, 1.0)]).unwrap();
        for q in [0.0, 0.1, 0.4, 0.7, 1.0] {
            let x = g.quantile(q);
            assert!((g.eval(x) - q).abs() < 1e-12, "roundtrip failed at {q}");
        }
    }

    #[test]
    fn quantile_on_flat_segments_returns_left_edge() {
        let g = InterpCdf::new(vec![(0.0, 0.0), (2.0, 0.5), (8.0, 0.5), (10.0, 1.0)]).unwrap();
        assert_eq!(g.quantile(0.5), 2.0);
    }

    #[test]
    fn validation_rejects_bad_knots() {
        assert!(matches!(InterpCdf::new(vec![]), Err(CdfError::Empty)));
        assert!(matches!(
            InterpCdf::new(vec![(0.0, 0.0), (-1.0, 0.5)]),
            Err(CdfError::UnsortedX { index: 1 })
        ));
        assert!(matches!(
            InterpCdf::new(vec![(0.0, 0.5), (1.0, 0.2)]),
            Err(CdfError::DecreasingY { index: 1 })
        ));
        assert!(matches!(
            InterpCdf::new(vec![(0.0, 1.5)]),
            Err(CdfError::OutOfRange { .. })
        ));
        assert!(matches!(
            InterpCdf::new(vec![(f64::NAN, 0.0)]),
            Err(CdfError::NotFinite { .. })
        ));
    }

    #[test]
    fn arc_length_of_diagonal_is_sqrt_2() {
        let g = InterpCdf::new(vec![(0.0, 0.0), (100.0, 1.0)]).unwrap();
        assert!((g.scaled_arc_length() - 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn point_at_arc_walks_the_polyline() {
        let g = InterpCdf::new(vec![(0.0, 0.0), (10.0, 0.0), (10.0, 1.0)]).unwrap();
        // Scaled: horizontal leg length 1, vertical leg length 1.
        let (x, y) = g.point_at_arc(0.5);
        assert!((x - 5.0).abs() < 1e-9 && y.abs() < 1e-12);
        let (x, y) = g.point_at_arc(1.5);
        assert!((x - 10.0).abs() < 1e-9 && (y - 0.5).abs() < 1e-9);
        // Clamping.
        assert_eq!(g.point_at_arc(99.0), (10.0, 1.0));
        assert_eq!(g.point_at_arc(-1.0), (0.0, 0.0));
    }

    #[test]
    fn single_knot_cdf_is_constant() {
        let g = InterpCdf::new(vec![(3.0, 0.5)]).unwrap();
        assert_eq!(g.eval(0.0), 0.5);
        assert_eq!(g.eval(3.0), 0.5);
        assert_eq!(g.eval(9.0), 0.5);
        assert_eq!(g.quantile(0.5), 3.0);
    }
}
