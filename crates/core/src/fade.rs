//! Time-faded blending of completed distribution estimates.
//!
//! The streaming subsystem (`adam2-stream`, deploy daemon mode) runs
//! overlapping Adam2 instances on a staggered schedule; each one completes
//! with a snapshot of the attribute distribution as of its own lifetime.
//! Under drift, no single snapshot is right for long — but the *newest* is
//! closest, and older ones still carry signal where the distribution
//! hasn't moved. A [`BlendedTracker`] keeps the last few completed
//! estimates and serves their exponentially time-faded mixture
//! ("Distributed mining of time-faded heavy hitters", PAPERS.md): an
//! estimate completed `age` rounds ago contributes with weight
//! `0.5^(age / half_life)`, so the newest instance always dominates and
//! stale snapshots fade smoothly instead of being dropped at a cliff.
//!
//! The tracker is deliberately protocol-agnostic — it only needs each
//! completed estimate's [`InterpCdf`] — so the sim-side pipeline and the
//! deploy-side daemon share this one implementation.

use std::collections::VecDeque;

use crate::cdf::InterpCdf;

/// Parameters of the exponential fade.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FadeConfig {
    /// Age (in rounds) at which an estimate's weight halves. Smaller
    /// half-lives chase drift harder; larger ones smooth jitter better.
    pub half_life: f64,
    /// Maximum completed estimates retained; absorbing beyond this evicts
    /// the oldest.
    pub max_tracked: usize,
}

impl FadeConfig {
    /// Creates a fade configuration.
    ///
    /// # Panics
    ///
    /// Panics if `half_life` is not finite and positive, or `max_tracked`
    /// is zero.
    pub fn new(half_life: f64, max_tracked: usize) -> Self {
        assert!(
            half_life.is_finite() && half_life > 0.0,
            "half_life must be finite and positive"
        );
        assert!(max_tracked > 0, "max_tracked must be positive");
        Self {
            half_life,
            max_tracked,
        }
    }
}

/// One completed estimate retained by the tracker.
#[derive(Debug, Clone)]
pub struct TrackedEstimate {
    /// Instance that produced the estimate (`InstanceId::as_u64`).
    pub instance: u64,
    /// Round (tracker clock) at which it completed.
    pub completed_at: u64,
    /// The interpolated CDF it produced.
    pub cdf: InterpCdf,
}

/// An exponentially time-faded mixture over the last few completed
/// estimates (see the module docs).
#[derive(Debug, Clone)]
pub struct BlendedTracker {
    config: FadeConfig,
    /// Oldest-first; `absorb` pushes to the back.
    entries: VecDeque<TrackedEstimate>,
}

impl BlendedTracker {
    /// Creates an empty tracker.
    pub fn new(config: FadeConfig) -> Self {
        Self {
            config,
            entries: VecDeque::with_capacity(config.max_tracked),
        }
    }

    /// The fade parameters.
    pub fn config(&self) -> &FadeConfig {
        &self.config
    }

    /// Number of estimates currently tracked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the tracker holds no estimates yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The most recently absorbed estimate.
    pub fn newest(&self) -> Option<&TrackedEstimate> {
        self.entries.back()
    }

    /// The tracked estimates, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TrackedEstimate> {
        self.entries.iter()
    }

    /// Absorbs a freshly completed estimate, evicting the oldest beyond
    /// the retention cap. An instance already tracked is ignored (every
    /// node of a cluster completes the same instance; the first copy
    /// wins), returning `false`.
    pub fn absorb(&mut self, instance: u64, completed_at: u64, cdf: InterpCdf) -> bool {
        if self.entries.iter().any(|e| e.instance == instance) {
            return false;
        }
        if self.entries.len() == self.config.max_tracked {
            self.entries.pop_front();
        }
        self.entries.push_back(TrackedEstimate {
            instance,
            completed_at,
            cdf,
        });
        true
    }

    /// Drops all history (the Spectra restart: after an abrupt step
    /// change, faded pre-step estimates only poison the blend).
    pub fn reset(&mut self) {
        self.entries.clear();
    }

    /// The fade weight of an estimate completed at `completed_at`, as of
    /// `now` (ages saturate at zero for clock skew).
    pub fn weight_at(&self, completed_at: u64, now: u64) -> f64 {
        let age = now.saturating_sub(completed_at) as f64;
        0.5f64.powf(age / self.config.half_life)
    }

    /// Evaluates the blended CDF at `x` as of `now`: the fade-weighted
    /// mixture of every tracked estimate. `None` while empty.
    pub fn eval(&self, x: f64, now: u64) -> Option<f64> {
        if self.entries.is_empty() {
            return None;
        }
        let mut num = 0.0;
        let mut den = 0.0;
        for e in &self.entries {
            let w = self.weight_at(e.completed_at, now);
            num += w * e.cdf.eval(x);
            den += w;
        }
        (den > 0.0).then(|| num / den)
    }

    /// Mean absolute difference between the current blend and `candidate`,
    /// sampled at the candidate's own knots — the inter-instance
    /// divergence signal the [`crate::DriftController`] consumes. Measure
    /// *before* absorbing the candidate. `None` while the tracker is
    /// empty (nothing to diverge from).
    pub fn divergence(&self, candidate: &InterpCdf, now: u64) -> Option<f64> {
        if self.entries.is_empty() {
            return None;
        }
        let knots = candidate.knots();
        if knots.is_empty() {
            return None;
        }
        let mut sum = 0.0;
        for &(x, f) in knots {
            let blended = self.eval(x, now)?;
            sum += (blended - f).abs();
        }
        Some(sum / knots.len() as f64)
    }

    /// Renders the blend as explicit CDF points as of `now`, sampled at
    /// the newest estimate's knots (wire-compatible with a single
    /// instance's estimate, so deploy's `GetEstimate` can serve it
    /// unchanged). Returns `(min, max, thresholds, fractions)`; `None`
    /// while empty.
    pub fn snapshot_points(&self, now: u64) -> Option<(f64, f64, Vec<f64>, Vec<f64>)> {
        let newest = self.entries.back()?;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for e in &self.entries {
            min = min.min(e.cdf.min());
            max = max.max(e.cdf.max());
        }
        let mut thresholds = Vec::with_capacity(newest.cdf.knots().len());
        let mut fractions = Vec::with_capacity(newest.cdf.knots().len());
        for &(x, _) in newest.cdf.knots() {
            thresholds.push(x);
            fractions.push(self.eval(x, now)?);
        }
        Some((min, max, thresholds, fractions))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cdf(min: f64, max: f64) -> InterpCdf {
        // A linear CDF between min and max with three interior knots.
        let span = max - min;
        InterpCdf::from_points(
            min,
            max,
            &[min + 0.25 * span, min + 0.5 * span, min + 0.75 * span],
            &[0.25, 0.5, 0.75],
        )
        .expect("valid cdf")
    }

    fn tracker() -> BlendedTracker {
        BlendedTracker::new(FadeConfig::new(10.0, 4))
    }

    #[test]
    fn empty_tracker_serves_nothing() {
        let t = tracker();
        assert!(t.is_empty());
        assert_eq!(t.eval(5.0, 0), None);
        assert_eq!(t.divergence(&cdf(0.0, 1.0), 0), None);
        assert!(t.snapshot_points(0).is_none());
    }

    #[test]
    fn single_estimate_is_served_verbatim() {
        let mut t = tracker();
        let c = cdf(0.0, 100.0);
        assert!(t.absorb(1, 10, c.clone()));
        for x in [0.0, 25.0, 60.0, 100.0] {
            assert!((t.eval(x, 50).unwrap() - c.eval(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn duplicate_instances_are_ignored() {
        let mut t = tracker();
        assert!(t.absorb(1, 10, cdf(0.0, 100.0)));
        assert!(!t.absorb(1, 12, cdf(50.0, 150.0)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn newest_dominates_and_fade_is_monotone() {
        let mut t = tracker();
        t.absorb(1, 0, cdf(0.0, 100.0));
        t.absorb(2, 20, cdf(50.0, 150.0));
        // At completion time of #2, #1 has age 20 = 2 half-lives (weight
        // 0.25 vs 1.0): the blend at x=50 leans strongly toward #2's 0.
        let blended = t.eval(50.0, 20).unwrap();
        let old = cdf(0.0, 100.0).eval(50.0); // 0.5
        let new = cdf(50.0, 150.0).eval(50.0); // 0.0
        assert!((blended - (0.25 * old + 1.0 * new) / 1.25).abs() < 1e-12);
        // As time passes both weights shrink by the same factor: the
        // *relative* mix is stable under equal aging.
        let later = t.eval(50.0, 40).unwrap();
        assert!((later - blended).abs() < 1e-12);
    }

    #[test]
    fn eviction_keeps_the_newest() {
        let mut t = tracker();
        for i in 0..6u64 {
            t.absorb(i, i * 5, cdf(i as f64, 100.0 + i as f64));
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.newest().unwrap().instance, 5);
        let tracked: Vec<u64> = t.entries().map(|e| e.instance).collect();
        assert_eq!(tracked, vec![2, 3, 4, 5]);
    }

    #[test]
    fn reset_drops_history() {
        let mut t = tracker();
        t.absorb(1, 0, cdf(0.0, 100.0));
        t.absorb(2, 5, cdf(0.0, 100.0));
        t.reset();
        assert!(t.is_empty());
        assert_eq!(t.eval(50.0, 10), None);
    }

    #[test]
    fn divergence_measures_disagreement() {
        let mut t = tracker();
        t.absorb(1, 0, cdf(0.0, 100.0));
        // Identical candidate: zero divergence.
        let same = t.divergence(&cdf(0.0, 100.0), 0).unwrap();
        assert!(same.abs() < 1e-12);
        // A shifted candidate diverges.
        let moved = t.divergence(&cdf(50.0, 150.0), 0).unwrap();
        assert!(
            moved > 0.1,
            "shifted distribution must diverge, got {moved}"
        );
    }

    #[test]
    fn snapshot_points_follow_the_newest_knots() {
        let mut t = tracker();
        t.absorb(1, 0, cdf(0.0, 100.0));
        t.absorb(2, 30, cdf(50.0, 150.0));
        let (min, max, thresholds, fractions) = t.snapshot_points(30).unwrap();
        assert_eq!(min, 0.0);
        assert_eq!(max, 150.0);
        // Knots come from the newest estimate (includes its endpoints).
        let newest_knots: Vec<f64> = cdf(50.0, 150.0).knots().iter().map(|k| k.0).collect();
        assert_eq!(thresholds, newest_knots);
        assert_eq!(thresholds.len(), fractions.len());
        // Fractions are the blend, hence monotone non-decreasing.
        for pair in fractions.windows(2) {
            assert!(pair[0] <= pair[1] + 1e-12);
        }
    }

    #[test]
    fn weight_halves_per_half_life() {
        let t = tracker();
        assert!((t.weight_at(0, 0) - 1.0).abs() < 1e-12);
        assert!((t.weight_at(0, 10) - 0.5).abs() < 1e-12);
        assert!((t.weight_at(0, 20) - 0.25).abs() < 1e-12);
        // Clock skew (completed_at in the future) saturates at weight 1.
        assert!((t.weight_at(10, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "half_life must be finite and positive")]
    fn rejects_bad_half_life() {
        FadeConfig::new(0.0, 4);
    }

    #[test]
    #[should_panic(expected = "max_tracked must be positive")]
    fn rejects_zero_capacity() {
        FadeConfig::new(10.0, 0);
    }
}
