//! The Adam2 gossip protocol (Section IV), as an [`adam2_sim::Protocol`].
//!
//! Per round, every node:
//!
//! 1. finalises any aggregation instance whose TTL expired, producing a new
//!    [`DistributionEstimate`];
//! 2. (probabilistic scheduling only) starts a new instance with
//!    probability `1 / (N̂ · R)`;
//! 3. initiates one symmetric push–pull exchange with a random neighbour,
//!    carrying its state for every running instance. A peer that sees an
//!    instance id for the first time *joins*: it initialises its indicator
//!    contributions and weight 0, then the exchange averages both sides —
//!    conserving the total mass exactly (see DESIGN.md on why the
//!    mass-conserving reading of the paper's join rule is the right one).
//!
//! Nodes that joined the *system* after an instance started ignore that
//! instance (Section VII-G), so late arrivals do not distort a running
//! average; they bootstrap their estimate and system-size guess from a
//! neighbour instead.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::RngExt as _;

use adam2_sim::{
    AdversaryModel, Ctx, DriftOp, ExchangeFate, ExchangeTraffic, NodeId, ParLocal, PlannedAttack,
    PlannedExchange, Protocol,
};

use crate::confidence::verification_thresholds;
use crate::config::{Adam2Config, RobustPolicy, Scheduling, SelfHealPolicy};
use crate::estimate::DistributionEstimate;
use crate::instance::{AttrValue, InstanceId, InstanceLocal, InstanceMeta};
use crate::selection::{select_thresholds, SelectionInput};
use crate::wire;

/// Per-node state of the Adam2 protocol.
#[derive(Debug, Clone)]
pub struct Adam2Node {
    pub(crate) value: AttrValue,
    pub(crate) instances: Vec<InstanceLocal>,
    pub(crate) estimate: Option<DistributionEstimate>,
    pub(crate) n_estimate: f64,
    pub(crate) joined_round: u64,
}

impl Adam2Node {
    /// Creates a node with the given attribute value(s).
    pub fn new(value: AttrValue, initial_n_estimate: f64) -> Self {
        Self {
            value,
            instances: Vec::new(),
            estimate: None,
            n_estimate: initial_n_estimate,
            joined_round: 0,
        }
    }

    /// The node's attribute value(s).
    pub fn value(&self) -> &AttrValue {
        &self.value
    }

    /// Replaces the node's attribute value (dynamic attributes,
    /// Section VII-F: the new value takes effect the next time the node
    /// creates or joins an instance).
    pub fn set_value(&mut self, value: AttrValue) {
        self.value = value;
    }

    /// Shifts the node's attribute value(s) by `delta` (drift injection;
    /// running instances keep the indicator contributions they enrolled
    /// with, so their estimates go stale — by design).
    pub fn shift_value(&mut self, delta: f64) {
        match &mut self.value {
            AttrValue::Single(v) => *v += delta,
            AttrValue::Multi(vs) => {
                for v in vs {
                    *v += delta;
                }
            }
        }
    }

    /// The node's latest completed distribution estimate.
    pub fn estimate(&self) -> Option<&DistributionEstimate> {
        self.estimate.as_ref()
    }

    /// The node's current system-size estimate `N̂`.
    pub fn n_estimate(&self) -> f64 {
        self.n_estimate
    }

    /// The round in which this node joined the system (0 for the initial
    /// population).
    pub fn joined_round(&self) -> u64 {
        self.joined_round
    }

    /// The aggregation instances this node currently participates in.
    pub fn active_instances(&self) -> &[InstanceLocal] {
        &self.instances
    }

    /// This node's state for a specific running instance.
    pub fn active_instance(&self, id: InstanceId) -> Option<&InstanceLocal> {
        self.instances.iter().find(|i| i.meta.id == id)
    }

    /// Enrols this node in an aggregation instance as its *initiator*
    /// (weight 1). The usual entry point is
    /// [`Adam2Protocol::start_instance`], which also selects the
    /// thresholds; this method is for custom drivers that construct
    /// [`InstanceMeta`] themselves (and for tests).
    ///
    /// Does nothing if the node already participates in the instance.
    pub fn begin_instance(&mut self, meta: Arc<InstanceMeta>) {
        if self.find_index(meta.id).is_none() {
            self.instances
                .push(InstanceLocal::join(meta, &self.value, true));
        }
    }

    /// Finalises every instance whose TTL expired at `round`, adopting the
    /// newest resulting estimate and system-size value. Returns
    /// `(successful, failed)` finalisation counts.
    pub fn finalize_due_instances(&mut self, round: u64) -> (u64, u64) {
        let (completed, failed, _) = self.finalize_or_heal(round, None);
        (completed, failed)
    }

    /// Epoch-aware finalisation with optional self-healing: a due instance
    /// whose tentative estimate self-assesses `EstErr_a` above the policy
    /// threshold *restarts* (epoch bump, state reset from this node's own
    /// value) instead of finalising, as long as its epoch is still below
    /// `max_restarts`; the bumped epoch then spreads epidemically through
    /// the regular exchanges. Returns `(completed, failed, restarted)`.
    pub fn finalize_or_heal(
        &mut self,
        round: u64,
        heal: Option<SelfHealPolicy>,
    ) -> (u64, u64, u64) {
        let mut completed = 0;
        let mut failed = 0;
        let mut restarted = 0;
        let mut i = 0;
        while i < self.instances.len() {
            if !self.instances[i].is_due(round) {
                i += 1;
                continue;
            }
            let result = self.instances[i].finalize(round);
            if let Some(policy) = heal {
                let vote_restart = self.instances[i].epoch < policy.max_restarts
                    && result
                        .as_ref()
                        .ok()
                        .and_then(|est| est.est_err_avg)
                        .is_some_and(|err| err > policy.err_threshold);
                if vote_restart {
                    self.instances[i].restart(&self.value);
                    restarted += 1;
                    i += 1;
                    continue;
                }
            }
            self.instances.swap_remove(i);
            match result {
                Ok(est) => {
                    let newer = self
                        .estimate
                        .as_ref()
                        .is_none_or(|old| est.completed_round >= old.completed_round);
                    if newer {
                        if let Some(n) = est.n_hat {
                            self.n_estimate = n;
                        }
                        self.estimate = Some(est);
                    }
                    completed += 1;
                }
                Err(_) => failed += 1,
            }
        }
        (completed, failed, restarted)
    }

    /// Joins an instance as a non-initiator (indicator contributions,
    /// weight 0) without merging anything, respecting the
    /// joined-after-start exclusion rule. Used by the asynchronous
    /// protocol, where joining and averaging are separate steps.
    pub fn join_instance_passively(&mut self, meta: Arc<InstanceMeta>) {
        if self.joined_round > meta.start_round {
            return;
        }
        if self.find_index(meta.id).is_none() {
            self.instances
                .push(InstanceLocal::join(meta, &self.value, false));
        }
    }

    /// Absorbs a *snapshot* of another peer's instance state, as received
    /// over an asynchronous network: joins the instance if unknown (and
    /// the node was in the system when it started), then performs a
    /// one-sided average with the snapshot.
    ///
    /// Unlike the atomic [`gossip_exchange`], one-sided absorption does
    /// not conserve mass exactly when exchanges interleave; see
    /// [`AsyncAdam2`](crate::AsyncAdam2).
    pub fn absorb_snapshot(&mut self, snapshot: &InstanceLocal, round: u64) {
        self.absorb_snapshot_with(snapshot, round, None);
    }

    /// [`absorb_snapshot`](Adam2Node::absorb_snapshot) with an optional
    /// robust policy: the snapshot is plausibility-checked and merged
    /// through the trimmed, influence-capped merge. Returns
    /// `(rejected, limited)` robust-mode counts (both 0 in vanilla mode).
    pub fn absorb_snapshot_with(
        &mut self,
        snapshot: &InstanceLocal,
        round: u64,
        robust: Option<&RobustPolicy>,
    ) -> (u32, u32) {
        if snapshot.is_due(round) {
            return (0, 0);
        }
        // Robust mode drops implausible snapshots before joining: a
        // poisoned announcement must not enrol us in its instance.
        if let Some(policy) = robust {
            if !snapshot.contribution_plausible(policy.weight_cap) {
                return (1, 0);
            }
        }
        let idx = match self.find_index(snapshot.meta.id) {
            Some(idx) => idx,
            None => {
                if self.joined_round > snapshot.meta.start_round {
                    return (0, 0);
                }
                self.instances.push(InstanceLocal::join(
                    snapshot.meta.clone(),
                    &self.value,
                    false,
                ));
                self.instances.len() - 1
            }
        };
        // Epoch reconciliation (self-healing): a stale-epoch snapshot is
        // superseded by our restart and must be ignored; a newer epoch makes
        // us re-enter the averaging run from our own value first.
        if snapshot.epoch < self.instances[idx].epoch {
            return (0, 0);
        }
        if snapshot.epoch > self.instances[idx].epoch {
            self.instances[idx].adopt_epoch(snapshot.epoch, &self.value);
        }
        let mut other = snapshot.clone();
        match robust {
            Some(policy) => {
                let outcome = InstanceLocal::merge_symmetric_robust(
                    &mut self.instances[idx],
                    &mut other,
                    policy,
                );
                (u32::from(outcome.rejected), outcome.limited)
            }
            None => {
                InstanceLocal::merge_symmetric(&mut self.instances[idx], &mut other);
                (0, 0)
            }
        }
    }

    pub(crate) fn find_index(&self, id: InstanceId) -> Option<usize> {
        self.instances.iter().position(|i| i.meta.id == id)
    }
}

/// Byte sizes and robust-mode accounting of one symmetric exchange.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExchangeReport {
    /// Wire size of the request.
    pub request_bytes: usize,
    /// Wire size of the response.
    pub response_bytes: usize,
    /// Instance merges rejected by the plausibility check (robust mode).
    pub robust_rejects: u32,
    /// Components whose influence was trimmed or capped (robust mode).
    pub robust_trims: u32,
}

/// Performs one symmetric push–pull exchange between two nodes at `round`,
/// covering all running instances: instance discovery (join), and
/// mass-conserving averaging.
///
/// Returns `(request_bytes, response_bytes)` as they would appear on the
/// wire ([`wire::message_len`]).
pub fn gossip_exchange(a: &mut Adam2Node, b: &mut Adam2Node, round: u64) -> (usize, usize) {
    let report = gossip_exchange_with(a, b, round, None);
    (report.request_bytes, report.response_bytes)
}

/// [`gossip_exchange`] with an optional robust aggregation policy: every
/// per-instance merge is plausibility-checked (implausible contributions
/// are rejected on both sides — the outlier-rejection hook) and performed
/// through the trimmed, influence-capped merge. With `None` the exchange
/// is the vanilla mass-conserving one.
pub fn gossip_exchange_with(
    a: &mut Adam2Node,
    b: &mut Adam2Node,
    round: u64,
    robust: Option<&RobustPolicy>,
) -> ExchangeReport {
    let mut report = ExchangeReport {
        request_bytes: wire::message_len(a.instances.iter().filter(|i| !i.is_due(round))),
        ..ExchangeReport::default()
    };

    // The receiver joins every instance it can: it learned the thresholds
    // from the request and enters with its indicator values and weight 0.
    // Robust mode refuses to even join an instance whose announced state
    // is implausible — a poisoned announcement buys no enrolment.
    let a_metas: Vec<Arc<InstanceMeta>> = a
        .instances
        .iter()
        .filter(|i| !i.is_due(round))
        .map(|i| i.meta.clone())
        .collect();
    for meta in &a_metas {
        if let (Some(policy), Some(ia)) = (robust, a.find_index(meta.id)) {
            if !a.instances[ia].contribution_plausible(policy.weight_cap) {
                continue;
            }
        }
        if b.joined_round <= meta.start_round && b.find_index(meta.id).is_none() {
            b.instances
                .push(InstanceLocal::join(meta.clone(), &b.value, false));
        }
    }

    // The response carries b's (possibly freshly initialised) state.
    report.response_bytes = wire::message_len(b.instances.iter().filter(|i| !i.is_due(round)));
    let b_metas: Vec<Arc<InstanceMeta>> = b
        .instances
        .iter()
        .filter(|i| !i.is_due(round))
        .map(|i| i.meta.clone())
        .collect();
    for meta in &b_metas {
        if let (Some(policy), Some(ib)) = (robust, b.find_index(meta.id)) {
            if !b.instances[ib].contribution_plausible(policy.weight_cap) {
                continue;
            }
        }
        if a.joined_round <= meta.start_round && a.find_index(meta.id).is_none() {
            a.instances
                .push(InstanceLocal::join(meta.clone(), &a.value, false));
        }
    }

    // Symmetric averaging of every instance both sides now share.
    for meta in &b_metas {
        let (Some(ia), Some(ib)) = (a.find_index(meta.id), b.find_index(meta.id)) else {
            continue;
        };
        let (rejects, trims) = reconcile_and_merge(a, ia, b, ib, robust);
        report.robust_rejects += rejects;
        report.robust_trims += trims;
    }
    // Instances only a announced (b could not join them): already merged
    // above if shared; a-only ones stay untouched, which is correct — b
    // refused to participate.
    for meta in &a_metas {
        if b_metas.iter().any(|m| m.id == meta.id) {
            continue;
        }
        let (Some(ia), Some(ib)) = (a.find_index(meta.id), b.find_index(meta.id)) else {
            continue;
        };
        let (rejects, trims) = reconcile_and_merge(a, ia, b, ib, robust);
        report.robust_rejects += rejects;
        report.robust_trims += trims;
    }

    report
}

/// Reconciles the restart epochs of two peers' states for the same
/// instance (highest epoch wins; the lower side re-enters from its own
/// value), then performs the mass-conserving symmetric merge — robust
/// (plausibility-checked, trimmed, capped) when a policy is given.
/// Returns `(rejected, limited)` robust counts.
fn reconcile_and_merge(
    a: &mut Adam2Node,
    ia: usize,
    b: &mut Adam2Node,
    ib: usize,
    robust: Option<&RobustPolicy>,
) -> (u32, u32) {
    use std::cmp::Ordering;
    match a.instances[ia].epoch.cmp(&b.instances[ib].epoch) {
        Ordering::Less => {
            let epoch = b.instances[ib].epoch;
            a.instances[ia].adopt_epoch(epoch, &a.value);
        }
        Ordering::Greater => {
            let epoch = a.instances[ia].epoch;
            b.instances[ib].adopt_epoch(epoch, &b.value);
        }
        Ordering::Equal => {}
    }
    match robust {
        Some(policy) => {
            let outcome = InstanceLocal::merge_symmetric_robust(
                &mut a.instances[ia],
                &mut b.instances[ib],
                policy,
            );
            (u32::from(outcome.rejected), outcome.limited)
        }
        None => {
            InstanceLocal::merge_symmetric(&mut a.instances[ia], &mut b.instances[ib]);
            (0, 0)
        }
    }
}

/// The response length `b` would send after joining every instance in
/// `a`'s request, *without* mutating either node — the wire size of the
/// response of an exchange whose staged state is later rolled back
/// ([`ExchangeFate::Aborted`]).
fn response_len_after_join(a: &Adam2Node, b: &Adam2Node, round: u64) -> usize {
    let own = b.instances.iter().filter(|i| !i.is_due(round));
    let joined = a.instances.iter().filter(|i| {
        !i.is_due(round)
            && b.joined_round <= i.meta.start_round
            && b.find_index(i.meta.id).is_none()
    });
    wire::message_len(own.chain(joined))
}

/// The asymmetric half-exchange that results when the *response* of a
/// push–pull exchange is lost: `b` processes `a`'s request (joining and
/// averaging against a snapshot of `a`), but `a` never hears back and
/// keeps its state.
///
/// This variant does **not** conserve mass — exactly the perturbation a
/// lossy network inflicts on averaging — and exists to study Adam2 under
/// message loss (an extension beyond the paper, see the `exp_loss`
/// experiment).
///
/// Returns `(request_bytes, response_bytes)`; the response was sent (and
/// must be charged) even though it never arrived.
pub fn gossip_exchange_response_lost(
    a: &Adam2Node,
    b: &mut Adam2Node,
    round: u64,
) -> (usize, usize) {
    let report = gossip_exchange_response_lost_with(a, b, round, None);
    (report.request_bytes, report.response_bytes)
}

/// [`gossip_exchange_response_lost`] with an optional robust policy (the
/// one-sided absorption goes through the plausibility check and the
/// trimmed, capped merge).
pub fn gossip_exchange_response_lost_with(
    a: &Adam2Node,
    b: &mut Adam2Node,
    round: u64,
    robust: Option<&RobustPolicy>,
) -> ExchangeReport {
    let mut report = ExchangeReport {
        request_bytes: wire::message_len(a.instances.iter().filter(|i| !i.is_due(round))),
        ..ExchangeReport::default()
    };
    let snapshots: Vec<InstanceLocal> = a
        .instances
        .iter()
        .filter(|i| !i.is_due(round))
        .cloned()
        .collect();
    for snap in &snapshots {
        if let Some(policy) = robust {
            if !snap.contribution_plausible(policy.weight_cap) {
                continue;
            }
        }
        b.join_instance_passively(snap.meta.clone());
    }
    report.response_bytes = wire::message_len(b.instances.iter().filter(|i| !i.is_due(round)));
    for snap in &snapshots {
        let (rejects, trims) = b.absorb_snapshot_with(snap, round, robust);
        report.robust_rejects += rejects;
        report.robust_trims += trims;
    }
    report
}

/// Applies a Byzantine corruption to `node`'s running-instance state just
/// before its contribution enters an exchange (the [`PlannedAttack`]
/// directive resolved by the fault injector). The corruption stream is
/// seeded per directive, so replays are bit-identical on every execution
/// path.
pub(crate) fn corrupt_node(node: &mut Adam2Node, model: AdversaryModel, seed: u64, round: u64) {
    let mut rng = adam2_sim::seeded_rng(seed);
    for inst in node.instances.iter_mut().filter(|i| !i.is_due(round)) {
        match model {
            AdversaryModel::ValuePoisoning { magnitude }
            | AdversaryModel::TargetedPartner { magnitude }
            | AdversaryModel::Equivocation { magnitude } => {
                for f in inst.fractions.iter_mut() {
                    *f = magnitude * rng.random::<f64>();
                }
                for f in inst.verify_fractions.iter_mut() {
                    *f = magnitude * rng.random::<f64>();
                }
            }
            AdversaryModel::WeightInflation { factor } => {
                inst.weight = factor;
            }
        }
    }
}

/// Applies a planned attack's corruption to the endpoints whose
/// contribution will enter the merge. Returns how many endpoints were
/// corrupted (for accounting).
fn apply_attack(
    attack: &PlannedAttack,
    a: &mut Adam2Node,
    b: Option<&mut Adam2Node>,
    round: u64,
) -> u32 {
    let mut corrupted = 0;
    if let Some(seed) = attack.initiator_seed {
        corrupt_node(a, attack.model, seed, round);
        corrupted += 1;
    }
    if let (Some(seed), Some(b)) = (attack.partner_seed, b) {
        corrupt_node(b, attack.model, seed, round);
        corrupted += 1;
    }
    corrupted
}

/// Crash-recover estimate bootstrap (closing the ROADMAP gap): a node that
/// (re)joined the system after round 0 and still has no completed estimate
/// adopts its gossip partner's estimate and system-size guess the first
/// time a *completed* exchange pairs them. The paper's late-joiner rule
/// keeps such nodes out of running instances, so without this they would
/// stay estimate-less until the *next* instance completes; copying the
/// partner's finished snapshot is exactly the `on_join` bootstrap, retried
/// once estimates exist.
///
/// Bootstrapping is *staleness-aware*: when several completed snapshots
/// circulate (long-running systems start a new instance every `R` rounds,
/// so a recovering node can meet partners holding estimates of different
/// ages), a recovered node keeps upgrading to the freshest snapshot it
/// encounters — highest `completed_round`, which orders instances by
/// `end_round` plus any self-healing epoch extensions — rather than
/// sticking with whatever it happened to adopt first. A staler partner
/// snapshot never downgrades an already-adopted estimate.
///
/// Runs on both engine paths (the sequential `on_round` delegates to
/// `par_apply`). Returns the bootstrap bitmask for
/// [`ExchangeTraffic::bootstraps`] (bit 0 = `a`, bit 1 = `b`) so telemetry
/// can count recoveries healed this way; only the first adoption (no prior
/// estimate) counts as a bootstrap, freshness upgrades are silent.
fn bootstrap_estimates(a: &mut Adam2Node, b: &mut Adam2Node) -> u32 {
    fn fresher(candidate: &DistributionEstimate, current: Option<&DistributionEstimate>) -> bool {
        current.is_none_or(|cur| candidate.completed_round > cur.completed_round)
    }
    let mut mask = 0u32;
    if a.joined_round > 0 {
        if let Some(offer) = b.estimate.as_ref() {
            if fresher(offer, a.estimate.as_ref()) {
                if a.estimate.is_none() {
                    mask |= 1;
                }
                a.estimate = Some(offer.clone());
                a.n_estimate = b.n_estimate;
            }
        }
    }
    if b.joined_round > 0 {
        if let Some(offer) = a.estimate.as_ref() {
            if fresher(offer, b.estimate.as_ref()) {
                if b.estimate.is_none() {
                    mask |= 1 << 1;
                }
                b.estimate = Some(offer.clone());
                b.n_estimate = a.n_estimate;
            }
        }
    }
    mask
}

/// The Adam2 protocol driver (one per simulation).
pub struct Adam2Protocol {
    config: Adam2Config,
    source: Box<dyn FnMut(&mut StdRng) -> AttrValue + Send + Sync>,
    nonce: u64,
    started: Vec<Arc<InstanceMeta>>,
    completed: u64,
    finalize_failures: u64,
    healed: u64,
}

impl std::fmt::Debug for Adam2Protocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Adam2Protocol")
            .field("config", &self.config)
            .field("started", &self.started.len())
            .field("completed", &self.completed)
            .finish()
    }
}

impl Adam2Protocol {
    /// Creates a protocol whose nodes draw their attribute values from
    /// `source` (called once per created node, including churn
    /// replacements).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; call
    /// [`Adam2Config::validate`] first to handle errors gracefully.
    pub fn new(
        config: Adam2Config,
        source: impl FnMut(&mut StdRng) -> AttrValue + Send + Sync + 'static,
    ) -> Self {
        config.validate().expect("invalid Adam2 configuration");
        Self {
            config,
            source: Box::new(source),
            nonce: 0,
            started: Vec::new(),
            completed: 0,
            finalize_failures: 0,
            healed: 0,
        }
    }

    /// Convenience constructor: node `i` of the initial population gets
    /// `initial[i]` as a single-valued attribute; churn replacements draw
    /// from `fresh`.
    pub fn with_population(
        config: Adam2Config,
        initial: Vec<f64>,
        mut fresh: impl FnMut(&mut StdRng) -> f64 + Send + Sync + 'static,
    ) -> Self {
        let mut queue = std::collections::VecDeque::from(initial);
        Self::new(config, move |rng| {
            AttrValue::Single(match queue.pop_front() {
                Some(v) => v,
                None => fresh(rng),
            })
        })
    }

    /// The protocol configuration.
    pub fn config(&self) -> &Adam2Config {
        &self.config
    }

    /// Mutable configuration access (e.g. to switch the refinement
    /// heuristic between instances in an experiment).
    pub fn config_mut(&mut self) -> &mut Adam2Config {
        &mut self.config
    }

    /// Metadata of every instance started so far, in start order.
    pub fn started_instances(&self) -> &[Arc<InstanceMeta>] {
        &self.started
    }

    /// Number of per-node instance completions.
    pub fn completed_count(&self) -> u64 {
        self.completed
    }

    /// Number of per-node finalisations that failed to produce a valid
    /// estimate (e.g. a peer that never exchanged a message).
    pub fn finalize_failure_count(&self) -> u64 {
        self.finalize_failures
    }

    /// Number of per-node self-healing restart votes (0 unless
    /// [`Adam2Config::with_self_heal`] is configured).
    pub fn healed_count(&self) -> u64 {
        self.healed
    }

    /// Starts a new aggregation instance at `initiator`, selecting
    /// interpolation points per the configured bootstrap/refinement and
    /// verification points per the configured metric.
    ///
    /// Returns the instance metadata, or `None` if the initiator is not
    /// live.
    pub fn start_instance(
        &mut self,
        initiator: NodeId,
        ctx: &mut Ctx<'_, Adam2Node>,
    ) -> Option<Arc<InstanceMeta>> {
        let (value, prev) = {
            let node = ctx.nodes.get(initiator)?;
            (node.value.clone(), node.estimate.clone())
        };

        // Gather neighbour attribute values for the bootstrap.
        let sample = self.config.effective_neighbour_sample();
        let neighbour_ids = ctx.neighbour_sample(initiator, sample);
        let mut neighbour_values = Vec::with_capacity(neighbour_ids.len() + 1);
        for nid in neighbour_ids {
            if let Some(nb) = ctx.nodes.get(nid) {
                if let Some(v) = nb.value.clone().representative(ctx.rng) {
                    neighbour_values.push(v);
                }
            }
        }
        if let Some(v) = value.representative(ctx.rng) {
            neighbour_values.push(v);
        }

        let input = SelectionInput {
            prev: prev.as_ref(),
            neighbour_values: &neighbour_values,
            domain_hint: self.config.domain_hint,
        };
        let (lo, hi) = input.range();
        let thresholds = select_thresholds(
            self.config.bootstrap,
            self.config.refine,
            input,
            self.config.lambda,
            ctx.rng,
        );
        let verify = verification_thresholds(
            self.config.verify_metric,
            prev.as_ref().map(|e| &e.cdf),
            self.config.verify_points,
            lo,
            hi,
        );

        self.nonce += 1;
        let meta = Arc::new(InstanceMeta {
            id: InstanceId::derive(ctx.round, initiator.slot() as u64, self.nonce),
            thresholds: thresholds.into(),
            verify_thresholds: verify.into(),
            start_round: ctx.round,
            end_round: ctx.round + self.config.rounds_per_instance,
            multi: value.is_multi(),
        });
        let node = ctx.nodes.get_mut(initiator)?;
        node.instances
            .push(InstanceLocal::join(meta.clone(), &value, true));
        self.started.push(meta.clone());
        ctx.telemetry
            .record_instance_started(ctx.round, initiator.slot() as u32, meta.id.as_u64());
        Some(meta)
    }

    fn finalize_due(&mut self, id: NodeId, ctx: &mut Ctx<'_, Adam2Node>) {
        let round = ctx.round;
        let Some(node) = ctx.nodes.get_mut(id) else {
            return;
        };
        let (completed, failed, restarted) = node.finalize_or_heal(round, self.config.self_heal);
        self.completed += completed;
        self.finalize_failures += failed;
        self.healed += restarted;
        ctx.telemetry
            .record_heal_bump(round, id.slot() as u32, restarted);
    }
}

impl Protocol for Adam2Protocol {
    type Node = Adam2Node;

    fn make_node(&mut self, rng: &mut StdRng) -> Adam2Node {
        Adam2Node::new((self.source)(rng), self.config.initial_n_estimate)
    }

    fn drift_node(&mut self, _id: NodeId, node: &mut Adam2Node, op: DriftOp, rng: &mut StdRng) {
        match op {
            DriftOp::Shift(delta) => node.shift_value(delta),
            DriftOp::Replace => node.set_value((self.source)(rng)),
        }
    }

    fn on_round(&mut self, id: NodeId, ctx: &mut Ctx<'_, Adam2Node>) {
        self.finalize_due(id, ctx);

        if let Scheduling::Probabilistic {
            mean_rounds_between,
        } = self.config.scheduling
        {
            let n_est = match ctx.nodes.get(id) {
                Some(node) => node.n_estimate.max(1.0),
                None => return,
            };
            let p = 1.0 / (n_est * mean_rounds_between);
            if ctx.rng.random::<f64>() < p {
                self.start_instance(id, ctx);
            }
        }

        let Some(partner) = ctx.random_neighbour(id) else {
            return;
        };
        let round = ctx.round;
        let outcome = ctx.sample_exchange();
        // The exchange state transitions and per-message byte sizes are one
        // code path for both engine paths: build the plan the parallel
        // engine would have produced and apply it, then charge the traffic
        // (multiplied by the transmission counts) and record telemetry.
        let attack = ctx
            .adversary
            .as_ref()
            .and_then(|adv| adv.plan(round, id.slot(), partner.slot()));
        let plan = PlannedExchange {
            initiator: id,
            partner,
            fate: outcome.fate,
            request_msgs: outcome.request_msgs,
            response_msgs: outcome.response_msgs,
            attack,
        };
        let Some((a, b)) = ctx.nodes.pair_mut(id, partner) else {
            return;
        };
        let traffic = self.par_apply(&plan, round, a, b);
        ctx.charge_planned(&plan, traffic);
    }

    fn parallel_capable(&self) -> bool {
        true
    }

    /// Plan-phase half of [`on_round`](Protocol::on_round): finalise due
    /// instances and draw the probabilistic start decision, both from the
    /// node's own RNG stream. The start itself needs `&mut self` (nonce,
    /// instance registry) and neighbour sampling, so it is deferred to
    /// [`par_absorb`](Protocol::par_absorb) via `wants_sequential`.
    fn par_local(
        &self,
        _id: NodeId,
        node: &mut Adam2Node,
        round: u64,
        rng: &mut StdRng,
    ) -> ParLocal {
        let (completed, failed, restarted) = node.finalize_or_heal(round, self.config.self_heal);
        let mut wants_sequential = false;
        if let Scheduling::Probabilistic {
            mean_rounds_between,
        } = self.config.scheduling
        {
            let p = 1.0 / (node.n_estimate.max(1.0) * mean_rounds_between);
            wants_sequential = rng.random::<f64>() < p;
        }
        ParLocal {
            completions: completed,
            failures: failed,
            restarts: restarted,
            wants_sequential,
            initiates: true,
        }
    }

    fn par_absorb(&mut self, id: NodeId, report: &ParLocal, ctx: &mut Ctx<'_, Adam2Node>) {
        self.completed += report.completions;
        self.finalize_failures += report.failures;
        self.healed += report.restarts;
        ctx.telemetry
            .record_heal_bump(ctx.round, id.slot() as u32, report.restarts);
        if report.wants_sequential {
            self.start_instance(id, ctx);
        }
    }

    /// Apply-phase half of [`on_round`](Protocol::on_round): the planned
    /// push–pull exchange itself, identical state transitions to the
    /// sequential path for each [`ExchangeFate`].
    fn par_apply(
        &self,
        plan: &PlannedExchange,
        round: u64,
        a: &mut Adam2Node,
        b: &mut Adam2Node,
    ) -> ExchangeTraffic {
        let robust = self.config.robust.as_ref();
        match plan.fate {
            ExchangeFate::Complete => {
                if let Some(attack) = plan.attack.as_ref() {
                    apply_attack(attack, a, Some(b), round);
                }
                let report = gossip_exchange_with(a, b, round, robust);
                let bootstraps = bootstrap_estimates(a, b);
                ExchangeTraffic {
                    request: Some(report.request_bytes),
                    response: Some(report.response_bytes),
                    bootstraps,
                    robust_rejects: report.robust_rejects,
                    robust_trims: report.robust_trims,
                }
            }
            ExchangeFate::RequestLost => {
                // The sender still paid for the request.
                let req = wire::message_len(a.instances.iter().filter(|i| !i.is_due(round)));
                ExchangeTraffic {
                    request: Some(req),
                    response: None,
                    bootstraps: 0,
                    robust_rejects: 0,
                    robust_trims: 0,
                }
            }
            ExchangeFate::ResponseLost => {
                // Only the initiator's contribution reaches the partner;
                // a Byzantine partner's lie was in the lost response.
                if let Some(attack) = plan.attack.as_ref() {
                    if attack.initiator_seed.is_some() {
                        apply_attack(attack, a, None, round);
                    }
                }
                let report = gossip_exchange_response_lost_with(a, b, round, robust);
                ExchangeTraffic {
                    request: Some(report.request_bytes),
                    response: Some(report.response_bytes),
                    bootstraps: 0,
                    robust_rejects: report.robust_rejects,
                    robust_trims: report.robust_trims,
                }
            }
            ExchangeFate::Aborted => {
                // Rolled-back two-phase exchange: no state change; the
                // engine multiplies the charges by the transmission counts
                // recorded in the plan.
                let req = wire::message_len(a.instances.iter().filter(|i| !i.is_due(round)));
                let resp = response_len_after_join(a, b, round);
                ExchangeTraffic {
                    request: Some(req),
                    response: Some(resp),
                    bootstraps: 0,
                    robust_rejects: 0,
                    robust_trims: 0,
                }
            }
        }
    }

    fn on_join(&mut self, id: NodeId, ctx: &mut Ctx<'_, Adam2Node>) {
        let round = ctx.round;
        // "Nodes joining the system are bootstrapped by their initial
        // neighbours": inherit a current estimate and size guess. Retry a
        // few neighbours in case the first one is itself a fresh joiner
        // without an estimate yet.
        let mut bootstrap = None;
        for _ in 0..8 {
            let Some(nb) = ctx.random_neighbour(id) else {
                break;
            };
            if let Some(node) = ctx.nodes.get(nb) {
                if node.estimate.is_some() {
                    bootstrap = Some((node.estimate.clone(), node.n_estimate));
                    break;
                }
                bootstrap.get_or_insert((None, node.n_estimate));
            }
        }
        if let Some(node) = ctx.nodes.get_mut(id) {
            node.joined_round = round;
            if let Some((est, n)) = bootstrap {
                node.estimate = est;
                node.n_estimate = n;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdf::{InterpCdf, StepCdf};
    use crate::metrics::point_errors;
    use crate::selection::BootstrapKind;
    use adam2_sim::{
        AdversaryModel, ChurnModel, Engine, EngineConfig, ExchangeRepair, FaultScenario,
    };

    fn engine_with_values(
        values: Vec<f64>,
        config: Adam2Config,
        seed: u64,
    ) -> Engine<Adam2Protocol> {
        let n = values.len();
        let proto = Adam2Protocol::with_population(config, values, |rng| {
            rng.random_range(1.0..=100.0f64).round()
        });
        Engine::new(EngineConfig::new(n, seed), proto)
    }

    fn start_manual(engine: &mut Engine<Adam2Protocol>) -> Arc<InstanceMeta> {
        engine
            .with_ctx(|proto, ctx| {
                let initiator = ctx.nodes.random_id(ctx.rng).expect("non-empty");
                proto.start_instance(initiator, ctx)
            })
            .expect("instance started")
    }

    #[test]
    fn single_instance_converges_to_true_fractions() {
        let values: Vec<f64> = (1..=200).map(f64::from).collect();
        let truth = StepCdf::from_values(values.clone());
        let config = Adam2Config::new()
            .with_lambda(10)
            .with_rounds_per_instance(40)
            .with_bootstrap(BootstrapKind::Uniform)
            .with_domain_hint(1.0, 200.0);
        let mut engine = engine_with_values(values, config, 11);
        let meta = start_manual(&mut engine);
        engine.run_rounds(41);

        let mut checked = 0;
        for (_, node) in engine.nodes().iter() {
            let est = node.estimate().expect("estimate after instance end");
            let (max_err, _) = point_errors(&truth, &est.thresholds, &est.fractions);
            assert!(max_err < 1e-6, "point error {max_err} too high");
            let n = est.n_hat.expect("weight mass received");
            assert!((n - 200.0).abs() < 0.5, "N estimate {n}");
            assert_eq!(est.instance, meta.id);
            checked += 1;
        }
        assert_eq!(checked, 200);
    }

    #[test]
    fn parallel_round_matches_sequential_convergence() {
        // Statistical-equivalence gate for the phase-split parallel path:
        // same population, same seed, one manually started instance. The
        // two paths interleave exchanges differently, so node states are
        // not bit-equal — but both must converge to the true fractions,
        // and on a lossless network they carry the same message count
        // (one push–pull exchange per live node per round).
        let values: Vec<f64> = (1..=200).map(f64::from).collect();
        let truth = StepCdf::from_values(values.clone());
        let config = Adam2Config::new()
            .with_lambda(10)
            .with_rounds_per_instance(40)
            .with_bootstrap(BootstrapKind::Uniform)
            .with_domain_hint(1.0, 200.0);

        let mut seq = engine_with_values(values.clone(), config, 11);
        start_manual(&mut seq);
        seq.run_rounds(41);

        let n = values.len();
        let proto = Adam2Protocol::with_population(config, values, |rng| {
            rng.random_range(1.0..=100.0f64).round()
        });
        let mut par = Engine::new(EngineConfig::new(n, 11).with_threads(4), proto);
        start_manual(&mut par);
        par.run_rounds_parallel(41);

        assert_eq!(par.net().total_msgs(), seq.net().total_msgs());
        for engine in [&seq, &par] {
            for (_, node) in engine.nodes().iter() {
                let est = node.estimate().expect("estimate after instance end");
                let (max_err, _) = point_errors(&truth, &est.thresholds, &est.fractions);
                assert!(max_err < 1e-6, "point error {max_err} too high");
                let n_hat = est.n_hat.expect("weight mass received");
                assert!((n_hat - 200.0).abs() < 0.5, "N estimate {n_hat}");
            }
        }
    }

    #[test]
    fn parallel_rounds_are_deterministic_for_adam2() {
        // Same config + seed + thread count twice, and across thread
        // counts: bit-identical estimates and traffic totals.
        let snapshot = |threads: usize| {
            let values: Vec<f64> = (1..=150).map(f64::from).collect();
            let config = Adam2Config::new()
                .with_lambda(8)
                .with_rounds_per_instance(25)
                .with_scheduling(Scheduling::Probabilistic {
                    mean_rounds_between: 10.0,
                })
                .with_initial_n_estimate(150.0);
            let n = values.len();
            let proto = Adam2Protocol::with_population(config, values, |rng| {
                rng.random_range(1.0..=100.0f64).round()
            });
            let engine_config = EngineConfig::new(n, 23)
                .with_churn(ChurnModel::uniform(0.01))
                .with_threads(threads);
            let mut engine = Engine::new(engine_config, proto);
            engine.run_rounds_parallel(60);
            let states: Vec<(usize, u64, Vec<u64>)> = engine
                .nodes()
                .iter()
                .map(|(id, node)| {
                    let fracs = node
                        .estimate()
                        .map(|e| e.fractions.iter().map(|f| f.to_bits()).collect())
                        .unwrap_or_default();
                    (id.slot(), node.n_estimate().to_bits(), fracs)
                })
                .collect();
            (
                states,
                engine.net().total_bytes(),
                engine.net().total_msgs(),
                engine.protocol().started_instances().len(),
                engine.protocol().completed_count(),
            )
        };
        let reference = snapshot(2);
        assert_eq!(snapshot(2), reference, "same thread count must repeat");
        assert_eq!(snapshot(1), reference, "thread count must not matter");
        assert_eq!(snapshot(4), reference, "thread count must not matter");
    }

    #[test]
    fn mass_is_conserved_mid_instance() {
        let values: Vec<f64> = (1..=100).map(f64::from).collect();
        let config = Adam2Config::new()
            .with_lambda(4)
            .with_rounds_per_instance(50)
            .with_bootstrap(BootstrapKind::Uniform)
            .with_domain_hint(1.0, 100.0);
        let mut engine = engine_with_values(values.clone(), config, 13);
        let meta = start_manual(&mut engine);
        for _ in 0..20 {
            engine.run_round();
            // Sum of weights over participants must stay exactly 1; sum of
            // fraction components must equal the indicator mass of the
            // participants.
            let mut weight = 0.0;
            let mut frac0 = 0.0;
            let mut indicator0 = 0.0;
            let t0 = meta.thresholds[0];
            for (_, node) in engine.nodes().iter() {
                if let Some(inst) = node.active_instance(meta.id) {
                    weight += inst.weight;
                    frac0 += inst.fractions[0];
                    indicator0 += node.value().indicator(t0);
                }
            }
            assert!((weight - 1.0).abs() < 1e-9, "weight mass {weight}");
            assert!((frac0 - indicator0).abs() < 1e-6, "fraction mass leaked");
        }
    }

    #[test]
    fn probabilistic_scheduling_starts_instances() {
        let values: Vec<f64> = (1..=100).map(f64::from).collect();
        let config = Adam2Config::new()
            .with_lambda(5)
            .with_rounds_per_instance(10)
            .with_scheduling(Scheduling::Probabilistic {
                mean_rounds_between: 5.0,
            })
            .with_initial_n_estimate(100.0);
        let mut engine = engine_with_values(values, config, 17);
        engine.run_rounds(100);
        let started = engine.protocol().started_instances().len();
        // Expect about one instance per 5 rounds => ~20; allow wide slack.
        assert!((8..=40).contains(&started), "started {started}");
        // Estimates eventually exist.
        let with_estimate = engine
            .nodes()
            .iter()
            .filter(|(_, n)| n.estimate().is_some())
            .count();
        assert!(
            with_estimate > 90,
            "only {with_estimate} nodes have estimates"
        );
    }

    #[test]
    fn refinement_reduces_point_count_error_over_instances() {
        // Step distribution: two heavy steps.
        let mut values = vec![512.0; 400];
        values.extend(vec![2048.0; 600]);
        let truth = StepCdf::from_values(values.clone());
        let config = Adam2Config::new()
            .with_lambda(24)
            .with_rounds_per_instance(30);
        let mut engine = engine_with_values(values, config, 19);

        let mut errors = Vec::new();
        for _ in 0..4 {
            start_manual(&mut engine);
            engine.run_rounds(31);
            let (_, node) = engine.nodes().iter().next().expect("nodes");
            let est = node.estimate().expect("estimate");
            errors.push(crate::metrics::discrete_max_distance(&truth, &est.cdf));
        }
        assert!(
            errors.last().unwrap() <= errors.first().unwrap(),
            "refinement made things worse: {errors:?}"
        );
        assert!(
            *errors.last().unwrap() < 0.05,
            "final error too high: {errors:?}"
        );
    }

    #[test]
    fn late_joiners_ignore_running_instances_and_bootstrap() {
        let values: Vec<f64> = (1..=100).map(f64::from).collect();
        let config = Adam2Config::new()
            .with_lambda(5)
            .with_rounds_per_instance(40)
            .with_bootstrap(BootstrapKind::Uniform)
            .with_domain_hint(1.0, 100.0);
        let mut engine = engine_with_values(values, config, 23);
        // Complete one instance so estimates exist for bootstrap.
        start_manual(&mut engine);
        engine.run_rounds(41);
        // Start a second instance, then switch churn on mid-instance.
        let meta = start_manual(&mut engine);
        engine.run_rounds(5);
        engine.set_churn(ChurnModel::uniform(0.02));
        engine.run_rounds(10);
        for (_, node) in engine.nodes().iter() {
            if node.joined_round() > meta.start_round {
                assert!(
                    node.active_instance(meta.id).is_none(),
                    "late joiner participated in an older instance"
                );
                assert!(node.estimate().is_some(), "joiner not bootstrapped");
            }
        }
    }

    #[test]
    fn multi_value_instance_estimates_value_distribution() {
        // 3 nodes with value sets; global multiset {1,2,3,4,10,10}.
        let sets = [vec![1.0, 2.0], vec![3.0, 4.0], vec![10.0, 10.0]];
        let mut queue: std::collections::VecDeque<Vec<f64>> = sets.iter().cloned().collect();
        let config = Adam2Config::new()
            .with_lambda(3)
            .with_rounds_per_instance(30)
            .with_bootstrap(BootstrapKind::Uniform)
            .with_domain_hint(1.0, 10.0);
        let proto = Adam2Protocol::new(config, move |_rng| {
            AttrValue::Multi(queue.pop_front().unwrap_or_default())
        });
        let mut engine = Engine::new(EngineConfig::new(3, 29), proto);
        start_manual(&mut engine);
        engine.run_rounds(31);
        for (_, node) in engine.nodes().iter() {
            let est = node.estimate().expect("estimate");
            // The aggregated fractions at the thresholds are exact: with
            // domain hint (1, 10) and lambda = 3, thresholds sit at
            // 3.25 / 5.5 / 7.75 with true multiset fractions 3/6, 4/6, 4/6.
            let truth = StepCdf::from_values(vec![1.0, 2.0, 3.0, 4.0, 10.0, 10.0]);
            let (max_err, _) = point_errors(&truth, &est.thresholds, &est.fractions);
            assert!(max_err < 1e-9, "point error {max_err}");
            assert_eq!(est.min, 1.0);
            assert_eq!(est.max, 10.0);
        }
    }

    #[test]
    fn exchange_charges_wire_sized_messages() {
        let values: Vec<f64> = (1..=10).map(f64::from).collect();
        let config = Adam2Config::new()
            .with_lambda(50)
            .with_rounds_per_instance(25)
            .with_bootstrap(BootstrapKind::Uniform)
            .with_domain_hint(1.0, 10.0);
        let mut engine = engine_with_values(values, config, 31);
        start_manual(&mut engine);
        engine.run_round();
        // At least the initiator's exchange carried a full payload
        // (~860 B for lambda = 50).
        let expected = wire::payload_len(50, 0) + wire::HEADER_LEN;
        assert!(engine.net().total_bytes() >= expected as u64);
    }

    #[test]
    fn idle_nodes_exchange_empty_messages() {
        let values: Vec<f64> = (1..=10).map(f64::from).collect();
        let config = Adam2Config::new();
        let mut engine = engine_with_values(values, config, 37);
        engine.run_round();
        // 10 exchanges of 2 x 10-byte empty messages (8-byte sequence
        // number + 2-byte instance count).
        assert_eq!(engine.net().total_bytes(), 200);
    }

    #[test]
    fn message_loss_degrades_gracefully() {
        let values: Vec<f64> = (1..=300).map(f64::from).collect();
        let truth = StepCdf::from_values(values.clone());
        let config = Adam2Config::new()
            .with_lambda(10)
            .with_rounds_per_instance(40)
            .with_bootstrap(BootstrapKind::Uniform)
            .with_domain_hint(1.0, 300.0);
        let proto = Adam2Protocol::with_population(config, values, |_| 1.0);
        let engine_config = adam2_sim::EngineConfig::new(300, 43).with_loss_rate(0.2);
        let mut engine = Engine::new(engine_config, proto);
        start_manual(&mut engine);
        engine.run_rounds(41);
        let mut worst = 0.0f64;
        let mut with_estimate = 0;
        for (_, node) in engine.nodes().iter() {
            if let Some(est) = node.estimate() {
                with_estimate += 1;
                let (m, _) = point_errors(&truth, &est.thresholds, &est.fractions);
                worst = worst.max(m);
            }
        }
        assert_eq!(with_estimate, 300, "loss must not block the epidemic");
        // 20% loss perturbs the averaging but accuracy stays usable.
        assert!(worst < 0.1, "error under 20% loss: {worst}");
        assert!(worst > 1e-12, "loss should leave a visible perturbation");
    }

    #[test]
    fn lost_requests_charge_one_message() {
        let values: Vec<f64> = (1..=10).map(f64::from).collect();
        let config = Adam2Config::new();
        let proto = Adam2Protocol::with_population(config, values, |_| 1.0);
        let engine_config = adam2_sim::EngineConfig::new(10, 44).with_loss_rate(1.0);
        let mut engine = Engine::new(engine_config, proto);
        engine.run_round();
        // Every exchange degenerates to one lost 10-byte request.
        assert_eq!(engine.net().total_msgs(), 10);
        assert_eq!(engine.net().total_bytes(), 100);
    }

    #[test]
    fn repair_keeps_weight_mass_exact_under_loss() {
        // With the two-phase repair enabled, every exchange either commits
        // on both sides or aborts with no state change — the asymmetric
        // ResponseLost mass leak cannot occur, so the weight mass stays
        // exactly 1 even on a heavily lossy network.
        let values: Vec<f64> = (1..=100).map(f64::from).collect();
        let config = Adam2Config::new()
            .with_lambda(4)
            .with_rounds_per_instance(50)
            .with_bootstrap(BootstrapKind::Uniform)
            .with_domain_hint(1.0, 100.0);
        let proto = Adam2Protocol::with_population(config, values, |_| 1.0);
        let engine_config = EngineConfig::new(100, 47)
            .with_loss_rate(0.3)
            .with_repair(ExchangeRepair::enabled());
        let mut engine = Engine::new(engine_config, proto);
        let meta = start_manual(&mut engine);
        for _ in 0..20 {
            engine.run_round();
            let weight: f64 = engine
                .nodes()
                .iter()
                .filter_map(|(_, n)| n.active_instance(meta.id))
                .map(|i| i.weight)
                .sum();
            assert!((weight - 1.0).abs() < 1e-9, "weight mass {weight}");
        }
    }

    #[test]
    fn repair_retransmissions_are_charged() {
        // Total loss + repair: each exchange sends 1 + max_retries = 3
        // requests (all lost) and no response.
        let values: Vec<f64> = (1..=10).map(f64::from).collect();
        let proto = Adam2Protocol::with_population(Adam2Config::new(), values, |_| 1.0);
        let engine_config = EngineConfig::new(10, 48)
            .with_loss_rate(1.0)
            .with_repair(ExchangeRepair::enabled());
        let mut engine = Engine::new(engine_config, proto);
        engine.run_round();
        assert_eq!(engine.net().total_msgs(), 30);
        assert_eq!(engine.net().total_bytes(), 300);
    }

    #[test]
    fn aborted_response_length_matches_a_committed_exchange() {
        // The rolled-back response must be charged at the same wire size
        // the committed response would have had (the partner sent it; only
        // the commit was lost), including instances the partner would have
        // joined on request receipt.
        let meta = Arc::new(InstanceMeta {
            id: InstanceId::derive(0, 0, 1),
            thresholds: vec![5.0, 9.0].into(),
            verify_thresholds: vec![7.0].into(),
            start_round: 0,
            end_round: 25,
            multi: false,
        });
        let mut a = Adam2Node::new(AttrValue::Single(3.0), 100.0);
        a.begin_instance(meta.clone());
        let b = Adam2Node::new(AttrValue::Single(8.0), 100.0);
        let predicted = response_len_after_join(&a, &b, 1);
        let (mut a2, mut b2) = (a.clone(), b.clone());
        let (_, actual) = gossip_exchange(&mut a2, &mut b2, 1);
        assert_eq!(predicted, actual);
        // And the prediction left both nodes untouched.
        assert!(b.active_instance(meta.id).is_none());
    }

    #[test]
    fn epoch_reconciliation_spreads_restarts_and_conserves_mass() {
        let meta = Arc::new(InstanceMeta {
            id: InstanceId::derive(0, 0, 2),
            thresholds: vec![5.0].into(),
            verify_thresholds: Vec::new().into(),
            start_round: 0,
            end_round: 25,
            multi: false,
        });
        let mut a = Adam2Node::new(AttrValue::Single(3.0), 100.0);
        a.begin_instance(meta.clone());
        let mut b = Adam2Node::new(AttrValue::Single(8.0), 100.0);
        b.join_instance_passively(meta.clone());
        gossip_exchange(&mut a, &mut b, 1);

        // The initiator votes to restart; the next exchange must pull the
        // partner into the new epoch and re-establish the mass invariants.
        let value = a.value.clone();
        a.instances[0].restart(&value);
        gossip_exchange(&mut a, &mut b, 2);
        let ia = a.active_instance(meta.id).unwrap();
        let ib = b.active_instance(meta.id).unwrap();
        assert_eq!(ia.epoch, 1);
        assert_eq!(ib.epoch, 1);
        // Fresh epoch: weight mass 1 (initiator re-seeded), fraction mass
        // equals the indicator mass of the two participants (only a <= 5).
        assert!((ia.weight + ib.weight - 1.0).abs() < 1e-12);
        assert!((ia.fractions[0] + ib.fractions[0] - 1.0).abs() < 1e-12);

        // A stale-epoch snapshot of the pre-restart state is ignored.
        let mut stale = ib.clone();
        stale.epoch = 0;
        stale.weight = 0.7;
        let before = b.active_instance(meta.id).unwrap().clone();
        b.absorb_snapshot(&stale, 3);
        assert_eq!(*b.active_instance(meta.id).unwrap(), before);
    }

    #[test]
    fn self_healing_restarts_inaccurate_instances() {
        // A step distribution interpolated by a smooth CDF leaves a large
        // verification error, so a tiny threshold makes every node vote to
        // restart exactly once (max_restarts = 1); the healed instance then
        // runs a full second epoch and finalises at the extended deadline.
        let mut values = vec![512.0; 40];
        values.extend(vec![2048.0; 60]);
        let config = Adam2Config::new()
            .with_lambda(8)
            .with_rounds_per_instance(25)
            .with_verify_points(6)
            .with_bootstrap(BootstrapKind::Uniform)
            .with_domain_hint(512.0, 2048.0)
            .with_self_heal(1e-15, 1);
        let mut engine = engine_with_values(values, config, 53);
        let meta = start_manual(&mut engine);
        engine.run_rounds(26);
        // Round 25: nobody finalised — nodes either voted to restart
        // themselves or were pulled into the new epoch by an exchange with
        // an already-restarted peer before their own finalisation ran.
        let healed = engine.protocol().healed_count();
        assert!((1..=100).contains(&healed), "restart votes: {healed}");
        assert_eq!(engine.protocol().completed_count(), 0);
        for (_, node) in engine.nodes().iter() {
            let inst = node.active_instance(meta.id).expect("still running");
            assert_eq!(inst.epoch, 1);
        }
        // Epoch 1 runs rounds 25..50 and finalises at round 50 — the
        // restart budget is exhausted, so the estimate is adopted even
        // though the verification error is still above the threshold.
        engine.run_rounds(25);
        assert_eq!(engine.protocol().healed_count(), healed);
        assert_eq!(engine.protocol().completed_count(), 100);
        for (_, node) in engine.nodes().iter() {
            let est = node.estimate().expect("estimate after healed instance");
            assert_eq!(est.completed_round, 50);
            let n = est.n_hat.expect("weight mass received");
            assert!((n - 100.0).abs() < 0.5, "N estimate {n} after restart");
        }
    }

    #[test]
    fn self_healing_runs_on_the_parallel_path() {
        let snapshot = |threads: usize| {
            let mut values = vec![512.0; 40];
            values.extend(vec![2048.0; 60]);
            let config = Adam2Config::new()
                .with_lambda(8)
                .with_rounds_per_instance(25)
                .with_verify_points(6)
                .with_bootstrap(BootstrapKind::Uniform)
                .with_domain_hint(512.0, 2048.0)
                .with_self_heal(1e-15, 1);
            let proto = Adam2Protocol::with_population(config, values, |_| 1.0);
            let mut engine = Engine::new(EngineConfig::new(100, 53).with_threads(threads), proto);
            start_manual(&mut engine);
            engine.run_rounds_parallel(51);
            (
                engine.protocol().healed_count(),
                engine.protocol().completed_count(),
                engine.net().total_bytes(),
            )
        };
        let reference = snapshot(2);
        assert_eq!(reference.0, 100, "every node restarts once");
        assert_eq!(reference.1, 100, "every node finalises the healed epoch");
        assert_eq!(snapshot(4), reference, "thread count must not matter");
    }

    #[test]
    fn recovered_node_bootstraps_estimate_from_partner() {
        // Crash-recover gap: a node that rejoined after every estimate had
        // already completed used to stay estimate-less until the *next*
        // instance finished. It must now adopt the first completed snapshot
        // a gossip partner offers, and telemetry must count the bootstrap.
        let values: Vec<f64> = (1..=50).map(f64::from).collect();
        let config = Adam2Config::new()
            .with_lambda(5)
            .with_rounds_per_instance(15)
            .with_bootstrap(BootstrapKind::Uniform)
            .with_domain_hint(1.0, 50.0);
        let mut engine = engine_with_values(values, config, 61);
        start_manual(&mut engine);
        engine.run_rounds(16);
        let victim = engine.nodes().iter().next().map(|(id, _)| id).unwrap();
        {
            let node = engine.nodes_mut().get_mut(victim).unwrap();
            assert!(node.estimate.is_some(), "instance completed");
            // Model a crash-recover: state lost, rejoined mid-run.
            node.estimate = None;
            node.n_estimate = 1.0;
            node.joined_round = 16;
        }
        engine.attach_telemetry(adam2_sim::SimTelemetry::new());
        engine.run_round();
        let node = engine.nodes().get(victim).unwrap();
        let est = node.estimate.as_ref().expect("bootstrapped from partner");
        assert_eq!(est.completed_round, 15);
        assert!(node.n_estimate > 1.0, "system-size guess adopted too");
        let t = engine.detach_telemetry().unwrap();
        let (_, bootstraps) = t
            .telemetry()
            .metrics
            .counters()
            .find(|(name, _)| *name == "estimate_bootstraps")
            .unwrap();
        assert!(bootstraps >= 1, "bootstrap counted: {bootstraps}");
    }

    #[test]
    fn round_zero_members_do_not_bootstrap() {
        // Original members (joined_round == 0) wait for their own instance
        // to finalise; only rejoined/recovered nodes take the shortcut.
        let mut a = Adam2Node::new(AttrValue::Single(1.0), 1.0);
        let mut b = Adam2Node::new(AttrValue::Single(2.0), 1.0);
        assert_eq!(bootstrap_estimates(&mut a, &mut b), 0);
        assert!(a.estimate.is_none() && b.estimate.is_none());
        a.joined_round = 3; // recovered, but the partner has nothing to give
        assert_eq!(bootstrap_estimates(&mut a, &mut b), 0);
        assert!(a.estimate.is_none());
    }

    fn completed_estimate(completed_round: u64, n_hat: f64) -> DistributionEstimate {
        let thresholds = vec![2.0, 3.0];
        let fractions = vec![0.25, 0.75];
        DistributionEstimate {
            cdf: InterpCdf::from_points(1.0, 4.0, &thresholds, &fractions).unwrap(),
            n_hat: Some(n_hat),
            min: 1.0,
            max: 4.0,
            est_err_avg: None,
            est_err_max: None,
            instance: InstanceId::from_u64(7),
            completed_round,
            thresholds,
            fractions,
        }
    }

    #[test]
    fn recovered_node_upgrades_to_fresher_estimate() {
        // Staleness-aware bootstrap: a recovered node holding an estimate
        // from an old instance upgrades when a partner offers a snapshot
        // from a later-completed instance — but the upgrade is not counted
        // as a bootstrap (the node was not estimate-less).
        let mut a = Adam2Node::new(AttrValue::Single(1.0), 1.0);
        let mut b = Adam2Node::new(AttrValue::Single(2.0), 1.0);
        a.joined_round = 5;
        a.estimate = Some(completed_estimate(15, 80.0));
        a.n_estimate = 80.0;
        b.estimate = Some(completed_estimate(45, 120.0));
        b.n_estimate = 120.0;
        assert_eq!(bootstrap_estimates(&mut a, &mut b), 0);
        assert_eq!(a.estimate.as_ref().unwrap().completed_round, 45);
        assert_eq!(a.n_estimate, 120.0);
    }

    #[test]
    fn staler_snapshot_never_downgrades_an_estimate() {
        // The reverse pairing: an already-fresh recovered node keeps its
        // estimate when the partner's snapshot is older or the same age.
        let mut a = Adam2Node::new(AttrValue::Single(1.0), 1.0);
        let mut b = Adam2Node::new(AttrValue::Single(2.0), 1.0);
        a.joined_round = 5;
        a.estimate = Some(completed_estimate(45, 120.0));
        a.n_estimate = 120.0;
        b.estimate = Some(completed_estimate(15, 80.0));
        b.n_estimate = 80.0;
        assert_eq!(bootstrap_estimates(&mut a, &mut b), 0);
        assert_eq!(a.estimate.as_ref().unwrap().completed_round, 45);
        assert_eq!(a.n_estimate, 120.0);
        // Equal freshness: also a no-op.
        b.joined_round = 5;
        b.estimate = Some(completed_estimate(45, 90.0));
        b.n_estimate = 90.0;
        assert_eq!(bootstrap_estimates(&mut a, &mut b), 0);
        assert_eq!(b.n_estimate, 90.0);
    }

    #[test]
    fn telemetry_attach_is_bit_identical_for_adam2() {
        // Full-protocol determinism check: self-healing + loss repair with
        // telemetry attached must produce bit-identical estimates and
        // traffic to a bare run, sequentially and at 1 and 4 threads.
        let run = |threads: usize, with_telemetry: bool| {
            let mut values = vec![512.0; 40];
            values.extend(vec![2048.0; 60]);
            let config = Adam2Config::new()
                .with_lambda(8)
                .with_rounds_per_instance(25)
                .with_verify_points(6)
                .with_bootstrap(BootstrapKind::Uniform)
                .with_domain_hint(512.0, 2048.0)
                .with_self_heal(1e-15, 1);
            let proto = Adam2Protocol::with_population(config, values, |_| 1.0);
            let engine_config = EngineConfig::new(100, 53)
                .with_loss_rate(0.05)
                .with_threads(threads.max(1));
            let mut engine = Engine::new(engine_config, proto);
            if with_telemetry {
                engine.attach_telemetry(adam2_sim::SimTelemetry::new());
            }
            start_manual(&mut engine);
            if threads == 0 {
                engine.run_rounds(51);
            } else {
                engine.run_rounds_parallel(51);
            }
            let estimates: Vec<(usize, u64, u64)> = engine
                .nodes()
                .iter()
                .map(|(id, node)| {
                    let est = node.estimate.as_ref();
                    (
                        id.slot(),
                        est.map_or(0, |e| e.completed_round),
                        est.and_then(|e| e.n_hat).map_or(0, f64::to_bits),
                    )
                })
                .collect();
            (
                estimates,
                engine.net().total_bytes(),
                engine.net().total_msgs(),
                engine.protocol().healed_count(),
            )
        };
        for threads in [0, 1, 4] {
            assert_eq!(
                run(threads, true),
                run(threads, false),
                "threads={threads} (0 = sequential path)"
            );
        }
    }

    #[test]
    fn estimate_keeps_latest_instance() {
        let values: Vec<f64> = (1..=50).map(f64::from).collect();
        let config = Adam2Config::new()
            .with_lambda(5)
            .with_rounds_per_instance(20)
            .with_bootstrap(BootstrapKind::Uniform)
            .with_domain_hint(1.0, 50.0);
        let mut engine = engine_with_values(values, config, 41);
        let first = start_manual(&mut engine);
        engine.run_rounds(21);
        let second = start_manual(&mut engine);
        engine.run_rounds(21);
        for (_, node) in engine.nodes().iter() {
            let est = node.estimate().expect("estimate");
            assert_ne!(est.instance, first.id);
            assert_eq!(est.instance, second.id);
        }
    }

    // Byzantine integration on the cycle engine: 10% value poisoners
    // collapse vanilla aggregation, the influence-cap robust policy holds
    // honest error at its fault-free level, and the faulted robust run
    // replays bit-identically across thread counts.
    #[test]
    fn robust_mode_survives_value_poisoning_bit_identically() {
        const N: usize = 400;
        const ROUNDS: u64 = 30;
        let scenario = || {
            FaultScenario::new(9).with_adversary(
                0,
                ROUNDS + 2,
                0.10,
                AdversaryModel::ValuePoisoning { magnitude: 5.0 },
            )
        };
        let adversary = scenario().adversary_at(0).expect("adversary active");
        let values: Vec<f64> = (1..=N).map(|v| v as f64).collect();
        let truth = StepCdf::from_values(values.clone());
        // Byzantine nodes lie from round 0, so their true values are
        // unrecoverable by design: the best any defense can target is the
        // honest-subpopulation distribution.
        let honest_truth = StepCdf::from_values(
            values
                .iter()
                .enumerate()
                .filter(|(slot, _)| !adversary.is_byzantine(*slot))
                .map(|(_, v)| *v)
                .collect(),
        );
        let base = Adam2Config::new()
            .with_lambda(10)
            .with_rounds_per_instance(ROUNDS)
            .with_bootstrap(BootstrapKind::Uniform)
            .with_domain_hint(1.0, N as f64);
        let robust = base.with_robust(
            RobustPolicy::new()
                .with_trim_fraction(0.0)
                .with_influence_cap(0.25),
        );

        // Mean max-point error over honest nodes, plus an FNV-1a
        // fingerprint over every node's estimate bits (Byzantine nodes
        // included — determinism must cover the whole population).
        let run =
            |config: Adam2Config, faulted: bool, threads: usize, truth: &StepCdf| -> (f64, u64) {
                let proto = Adam2Protocol::with_population(config, values.clone(), |rng| {
                    rng.random_range(1.0..=100.0f64).round()
                });
                let mut engine = Engine::new(EngineConfig::new(N, 17).with_threads(threads), proto);
                if faulted {
                    engine.set_fault_scenario(scenario()).unwrap();
                }
                let initiator = engine
                    .nodes()
                    .iter()
                    .map(|(id, _)| id)
                    .filter(|id| !adversary.is_byzantine(id.slot()))
                    .min_by_key(|id| id.slot())
                    .expect("honest node");
                engine
                    .with_ctx(|proto, ctx| proto.start_instance(initiator, ctx))
                    .expect("instance started");
                engine.run_rounds_parallel(ROUNDS + 2);

                let mix = |h: u64, v: u64| (h ^ v).wrapping_mul(0x0100_0000_01b3);
                let mut hash = 0xcbf2_9ce4_8422_2325u64;
                let mut err_sum = 0.0;
                let mut honest = 0usize;
                for (id, node) in engine.nodes().iter() {
                    let byzantine = faulted && adversary.is_byzantine(id.slot());
                    let Some(est) = node.estimate() else {
                        assert!(byzantine, "honest node {} lost its estimate", id.slot());
                        hash = mix(hash, 0);
                        continue;
                    };
                    for f in &est.fractions {
                        hash = mix(hash, f.to_bits());
                    }
                    hash = mix(hash, est.n_hat.map_or(0, f64::to_bits));
                    if byzantine {
                        continue;
                    }
                    let (max_err, _) = point_errors(truth, &est.thresholds, &est.fractions);
                    err_sum += max_err;
                    honest += 1;
                }
                (err_sum / honest as f64, hash)
            };

        let (clean_vanilla, _) = run(base, false, 2, &truth);
        let (clean_robust, _) = run(robust, false, 2, &truth);
        let (poisoned_vanilla, _) = run(base, true, 2, &honest_truth);
        let (poisoned_robust, fp_two) = run(robust, true, 2, &honest_truth);
        let (replay_err, fp_one) = run(robust, true, 1, &honest_truth);

        // The neutral policy (trim 0, cap only) costs nothing fault-free.
        assert!(
            clean_robust <= clean_vanilla * 2.0 + 1e-12,
            "robust fault-free {clean_robust} vs vanilla {clean_vanilla}"
        );
        // Poisoning collapses the vanilla run by orders of magnitude. The
        // robust run holds near the honest-subpopulation truth; the small
        // residual is the documented trapped-weight bias (a Byzantine join
        // captures half a partner's weight before its first lie, and
        // symmetric rejection then strands it), which scales with f — well
        // under 1e-2 here versus the ~0.5 vanilla collapse.
        assert!(
            poisoned_vanilla >= 0.05,
            "vanilla under poisoning barely moved: {poisoned_vanilla}"
        );
        assert!(
            poisoned_vanilla >= poisoned_robust * 10.0,
            "vanilla {poisoned_vanilla} vs robust {poisoned_robust} under poisoning"
        );
        assert!(
            poisoned_robust <= 0.01,
            "robust under poisoning {poisoned_robust} vs clean {clean_robust}"
        );
        // The faulted robust run is bit-identical across thread counts.
        assert_eq!(fp_one, fp_two, "thread-count replay diverged");
        assert_eq!(replay_err.to_bits(), poisoned_robust.to_bits());
    }
}
