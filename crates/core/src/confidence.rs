//! Dynamic confidence estimation (Section VI).
//!
//! Adam2 estimates CDF values at the aggregated points essentially exactly
//! (the averaging error decays exponentially to machine precision), so a
//! node can assess its *interpolation* error by carrying extra
//! *verification points* `V = {(t'_i, f'_i)}` through the same averaging
//! run and comparing `F_p(t'_i)` — the interpolation built from `H` only —
//! against the exactly-aggregated `f'_i`.
//!
//! The placement of the `t'_i` depends on the metric being estimated:
//! uniformly over the attribute range for `EstErr_a`, or by iteratively
//! bisecting the vertically-farthest pair of interpolation points for
//! `EstErr_m` (hunting for the x where interpolation and truth most
//! differ). The comparison itself happens in
//! [`InstanceLocal::finalize`](crate::InstanceLocal::finalize).

use crate::cdf::InterpCdf;
use crate::metrics::ErrorMetric;
use crate::selection::uniform_points;

/// Selects `count` verification thresholds for a new aggregation instance.
///
/// * [`ErrorMetric::Average`] — uniformly spaced over `(lo, hi)`.
/// * [`ErrorMetric::Max`] — bisection of the widest vertical gaps of the
///   initiator's current interpolation (falls back to uniform when no
///   previous estimate exists).
///
/// Returns a sorted list; duplicates may remain if the domain is
/// degenerate.
pub fn verification_thresholds(
    metric: ErrorMetric,
    prev: Option<&InterpCdf>,
    count: usize,
    lo: f64,
    hi: f64,
) -> Vec<f64> {
    if count == 0 {
        return Vec::new();
    }
    match (metric, prev) {
        (ErrorMetric::Average, _) | (ErrorMetric::Max, None) => midpoint_points(lo, hi, count),
        (ErrorMetric::Max, Some(cdf)) => bisect_widest_gaps(cdf, count),
    }
}

/// `count` points at the midpoints of a uniform partition of `[lo, hi]`:
/// `t'_k = lo + (hi - lo)(2k - 1) / (2·count)`.
///
/// Compared to the plain uniform grid this is the midpoint quadrature rule
/// for the average-error integral, and — more importantly for real-world
/// attributes — it avoids aligning the verification grid with the regular
/// value grid of discrete attributes (RAM sizes are multiples of 128 MB;
/// a `span/(count+1)` grid anchored at the minimum lands *exactly on* the
/// heavy steps and wildly over-weights them).
fn midpoint_points(lo: f64, hi: f64, count: usize) -> Vec<f64> {
    let span = hi - lo;
    (1..=count)
        .map(|k| lo + span * (2 * k - 1) as f64 / (2 * count) as f64)
        .collect()
}

/// Repeatedly bisects the widest vertical gap of the knot polyline,
/// recording each midpoint as a verification threshold.
fn bisect_widest_gaps(cdf: &InterpCdf, count: usize) -> Vec<f64> {
    let mut working: Vec<(f64, f64)> = cdf.knots().to_vec();
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        if working.len() < 2 {
            break;
        }
        let (mut idx, mut gap) = (1usize, f64::NEG_INFINITY);
        for i in 1..working.len() {
            let g = (working[i].1 - working[i - 1].1).abs();
            // Zero-width (vertical jump) segments cannot be bisected in x.
            if working[i].0 > working[i - 1].0 && g > gap {
                gap = g;
                idx = i;
            }
        }
        if !gap.is_finite() {
            break;
        }
        let mid = (
            (working[idx].0 + working[idx - 1].0) / 2.0,
            (working[idx].1 + working[idx - 1].1) / 2.0,
        );
        out.push(mid.0);
        working.insert(idx, mid);
    }
    // Top up with uniform points if bisection ran out of splittable gaps.
    if out.len() < count {
        out.extend(uniform_points(cdf.min(), cdf.max(), count - out.len()));
    }
    out.sort_by(f64::total_cmp);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_count_gives_no_points() {
        assert!(verification_thresholds(ErrorMetric::Average, None, 0, 0.0, 1.0).is_empty());
    }

    #[test]
    fn average_metric_uses_partition_midpoints() {
        let ts = verification_thresholds(ErrorMetric::Average, None, 4, 0.0, 10.0);
        assert_eq!(ts, vec![1.25, 3.75, 6.25, 8.75]);
    }

    #[test]
    fn max_metric_without_prev_falls_back_to_midpoints() {
        let ts = verification_thresholds(ErrorMetric::Max, None, 4, 0.0, 10.0);
        assert_eq!(ts, vec![1.25, 3.75, 6.25, 8.75]);
    }

    #[test]
    fn midpoints_avoid_regular_value_grids() {
        // RAM-like domain: values are multiples of 128. No verification
        // point should land exactly on a multiple of 128.
        let ts = verification_thresholds(ErrorMetric::Average, None, 20, 128.0, 8192.0);
        assert_eq!(ts.len(), 20);
        assert!(ts.iter().all(|t| (t / 128.0).fract() != 0.0), "{ts:?}");
    }

    #[test]
    fn max_metric_bisects_widest_gap_first() {
        // Gap y: 0 -> 0.1 on [0,2], then 0.1 -> 1.0 on [2,10].
        let cdf = InterpCdf::new(vec![(0.0, 0.0), (2.0, 0.1), (10.0, 1.0)]).unwrap();
        let ts = verification_thresholds(ErrorMetric::Max, Some(&cdf), 1, 0.0, 10.0);
        assert_eq!(ts, vec![6.0], "first bisection must split the big gap");
    }

    #[test]
    fn max_metric_concentrates_in_steep_regions() {
        let cdf = InterpCdf::new(vec![(0.0, 0.0), (8.0, 0.1), (10.0, 1.0)]).unwrap();
        let ts = verification_thresholds(ErrorMetric::Max, Some(&cdf), 7, 0.0, 10.0);
        assert_eq!(ts.len(), 7);
        let steep = ts.iter().filter(|t| **t >= 8.0).count();
        assert!(
            steep >= 4,
            "verification points not in the steep region: {ts:?}"
        );
    }

    #[test]
    fn vertical_jumps_are_skipped() {
        // A staircase with true jumps: bisection must only split the
        // horizontal runs.
        let cdf = InterpCdf::new(vec![(0.0, 0.0), (5.0, 0.0), (5.0, 0.9), (10.0, 1.0)]).unwrap();
        let ts = verification_thresholds(ErrorMetric::Max, Some(&cdf), 3, 0.0, 10.0);
        assert_eq!(ts.len(), 3);
        assert!(ts.iter().all(|t| t.is_finite()));
    }
}
