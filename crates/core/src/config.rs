//! Protocol configuration.

use crate::error::ConfigError;
use crate::metrics::ErrorMetric;
use crate::selection::{BootstrapKind, RefineKind};

/// When nodes start new aggregation instances.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Scheduling {
    /// Instances are only started explicitly (via
    /// [`Adam2Protocol::start_instance`](crate::Adam2Protocol::start_instance)).
    /// Used by the experiment harness for reproducible instance sequences.
    #[default]
    Manual,
    /// Every node starts an instance each round with probability
    /// `P_s = 1 / (N̂_p · R)` where `N̂_p` is its current system-size
    /// estimate — the paper's decentralised scheduling, yielding one new
    /// instance per `R` rounds on average across the whole system.
    Probabilistic {
        /// Mean number of rounds between instance starts (the paper's
        /// system constant `R`).
        mean_rounds_between: f64,
    },
}

/// Self-healing policy (robustness extension of Section VI's confidence
/// machinery): when a due instance's self-assessed verification error
/// `EstErr_a` exceeds `err_threshold`, the node votes to restart the
/// instance instead of finalising it — the restart epoch spreads
/// epidemically and the swarm re-enters averaging with fresh indicators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelfHealPolicy {
    /// Restart when `EstErr_a` exceeds this (must be finite and positive).
    pub err_threshold: f64,
    /// Maximum restarts per instance (the epoch ceiling); the instance
    /// finalises with whatever it has once exhausted.
    pub max_restarts: u32,
}

/// Robust aggregation policy (Byzantine defense, after "Adversarially-
/// Robust Gossip Algorithms for Approximate Quantile and Mean
/// Computations", Haeupler et al.): plausibility-checked contributions,
/// bounded per-partner influence, and trimmed-mean merging.
///
/// Three layers compose, each preserving mass conservation between honest
/// pairs:
///
/// 1. **Outlier rejection** — a partner contribution with non-finite
///    components, negative mass, or a claimed weight above `weight_cap`
///    is dropped entirely (neither side merges that instance).
/// 2. **Influence caps** — each fraction/weight component moves at most
///    `influence_cap` per exchange; the partner's pull beyond the cap is
///    clamped symmetrically on both sides.
/// 3. **Trimmed-mean merge** — the `trim_fraction` of components with the
///    largest disagreement are left unmerged, so a poisoned vector cannot
///    drag more than `1 - trim_fraction` of the estimate.
///
/// At `trim_fraction = 0` with an infinite `influence_cap`, the merge is
/// bit-identical to the vanilla symmetric merge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustPolicy {
    /// Fraction of components (by largest |disagreement|) excluded from
    /// each pairwise merge, in `[0, 0.5)`.
    pub trim_fraction: f64,
    /// Maximum plausible aggregation weight a partner may claim (honest
    /// nodes never exceed 1.0); contributions above it are rejected.
    pub weight_cap: f64,
    /// Maximum movement of any fraction/weight component in one exchange
    /// (`f64::INFINITY` disables the cap).
    pub influence_cap: f64,
}

impl Default for RobustPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl RobustPolicy {
    /// A conservative default: 10% trim, honest weight cap, no influence
    /// cap.
    pub fn new() -> Self {
        Self {
            trim_fraction: 0.1,
            weight_cap: 1.0,
            influence_cap: f64::INFINITY,
        }
    }

    /// Sets the trim fraction.
    pub fn with_trim_fraction(mut self, trim_fraction: f64) -> Self {
        self.trim_fraction = trim_fraction;
        self
    }

    /// Sets the weight plausibility cap.
    pub fn with_weight_cap(mut self, weight_cap: f64) -> Self {
        self.weight_cap = weight_cap;
        self
    }

    /// Sets the per-exchange influence cap.
    pub fn with_influence_cap(mut self, influence_cap: f64) -> Self {
        self.influence_cap = influence_cap;
        self
    }
}

/// Configuration of the Adam2 protocol.
///
/// Defaults follow the paper's evaluation: λ = 50 interpolation points,
/// 30-round instances (the paper finds 25 rounds sufficient for averaging
/// convergence and a few extra for the epidemic spread), neighbour-based
/// bootstrap and MinMax refinement.
///
/// # Examples
///
/// ```
/// use adam2_core::{Adam2Config, RefineKind};
///
/// let config = Adam2Config::new()
///     .with_lambda(50)
///     .with_refine(RefineKind::LCut)
///     .with_verify_points(20);
/// config.validate()?;
/// # Ok::<(), adam2_core::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Adam2Config {
    /// Number of interpolation points λ.
    pub lambda: usize,
    /// Number of verification points (0 disables confidence estimation).
    pub verify_points: usize,
    /// Metric targeted by verification-point placement.
    pub verify_metric: ErrorMetric,
    /// Gossip rounds per aggregation instance (the instance TTL).
    pub rounds_per_instance: u64,
    /// Threshold placement for the first instance.
    pub bootstrap: BootstrapKind,
    /// Threshold refinement once an estimate exists.
    pub refine: RefineKind,
    /// Instance scheduling policy.
    pub scheduling: Scheduling,
    /// A node's system-size guess before its first completed instance
    /// (the paper bootstraps joiners from their initial neighbours).
    pub initial_n_estimate: f64,
    /// Optional a-priori attribute range for the Uniform bootstrap.
    pub domain_hint: Option<(f64, f64)>,
    /// How many neighbours to sample for the neighbour-based bootstrap
    /// (0 = λ).
    pub neighbour_sample: usize,
    /// Self-healing instance restarts (`None` disables them). Requires
    /// `verify_points > 0` — the restart vote is driven by the
    /// verification-point error estimate.
    pub self_heal: Option<SelfHealPolicy>,
    /// Robust (Byzantine-tolerant) aggregation mode (`None` = vanilla
    /// symmetric merges).
    pub robust: Option<RobustPolicy>,
}

impl Default for Adam2Config {
    fn default() -> Self {
        Self::new()
    }
}

impl Adam2Config {
    /// The paper's default configuration.
    pub fn new() -> Self {
        Self {
            lambda: 50,
            verify_points: 0,
            verify_metric: ErrorMetric::Average,
            rounds_per_instance: 30,
            bootstrap: BootstrapKind::Neighbours,
            refine: RefineKind::MinMax,
            scheduling: Scheduling::Manual,
            initial_n_estimate: 100.0,
            domain_hint: None,
            neighbour_sample: 0,
            self_heal: None,
            robust: None,
        }
    }

    /// Sets the number of interpolation points λ.
    pub fn with_lambda(mut self, lambda: usize) -> Self {
        self.lambda = lambda;
        self
    }

    /// Sets the number of verification points.
    pub fn with_verify_points(mut self, verify_points: usize) -> Self {
        self.verify_points = verify_points;
        self
    }

    /// Sets the metric targeted by verification-point placement.
    pub fn with_verify_metric(mut self, metric: ErrorMetric) -> Self {
        self.verify_metric = metric;
        self
    }

    /// Sets the instance duration in rounds.
    pub fn with_rounds_per_instance(mut self, rounds: u64) -> Self {
        self.rounds_per_instance = rounds;
        self
    }

    /// Sets the bootstrap placement.
    pub fn with_bootstrap(mut self, bootstrap: BootstrapKind) -> Self {
        self.bootstrap = bootstrap;
        self
    }

    /// Sets the refinement heuristic.
    pub fn with_refine(mut self, refine: RefineKind) -> Self {
        self.refine = refine;
        self
    }

    /// Sets the scheduling policy.
    pub fn with_scheduling(mut self, scheduling: Scheduling) -> Self {
        self.scheduling = scheduling;
        self
    }

    /// Sets the initial system-size guess.
    pub fn with_initial_n_estimate(mut self, n: f64) -> Self {
        self.initial_n_estimate = n;
        self
    }

    /// Sets the a-priori attribute range used by the Uniform bootstrap.
    pub fn with_domain_hint(mut self, lo: f64, hi: f64) -> Self {
        self.domain_hint = Some((lo, hi));
        self
    }

    /// Sets the neighbour-sample size for the neighbour bootstrap.
    pub fn with_neighbour_sample(mut self, count: usize) -> Self {
        self.neighbour_sample = count;
        self
    }

    /// Enables self-healing: instances whose verification error exceeds
    /// `err_threshold` restart (up to `max_restarts` times).
    pub fn with_self_heal(mut self, err_threshold: f64, max_restarts: u32) -> Self {
        self.self_heal = Some(SelfHealPolicy {
            err_threshold,
            max_restarts,
        });
        self
    }

    /// Enables the robust aggregation mode: plausibility-checked
    /// contributions, influence-capped deltas, trimmed-mean merges.
    pub fn with_robust(mut self, policy: RobustPolicy) -> Self {
        self.robust = Some(policy);
        self
    }

    /// The effective neighbour-sample size (λ when unset).
    pub fn effective_neighbour_sample(&self) -> usize {
        if self.neighbour_sample == 0 {
            self.lambda
        } else {
            self.neighbour_sample
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if λ is zero, the instance duration is
    /// zero, the initial size estimate is not positive, a probabilistic
    /// `R` is not positive, or the domain hint is inverted/non-finite.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.lambda == 0 {
            return Err(ConfigError::new("lambda must be positive"));
        }
        if self.rounds_per_instance == 0 {
            return Err(ConfigError::new("rounds_per_instance must be positive"));
        }
        if self.initial_n_estimate <= 0.0 || self.initial_n_estimate.is_nan() {
            return Err(ConfigError::new("initial_n_estimate must be positive"));
        }
        if let Scheduling::Probabilistic {
            mean_rounds_between,
        } = self.scheduling
        {
            if mean_rounds_between <= 0.0 || mean_rounds_between.is_nan() {
                return Err(ConfigError::new("mean_rounds_between must be positive"));
            }
        }
        if let Some((lo, hi)) = self.domain_hint {
            if !lo.is_finite() || !hi.is_finite() || lo > hi {
                return Err(ConfigError::new("domain_hint must be a finite range"));
            }
        }
        if let Some(heal) = self.self_heal {
            if !heal.err_threshold.is_finite() || heal.err_threshold <= 0.0 {
                return Err(ConfigError::new(
                    "self_heal err_threshold must be finite and positive",
                ));
            }
            if self.verify_points == 0 {
                return Err(ConfigError::new(
                    "self_heal requires verify_points > 0 (restarts are driven \
                     by the verification error estimate)",
                ));
            }
        }
        if let Some(robust) = self.robust {
            if !robust.trim_fraction.is_finite() || !(0.0..0.5).contains(&robust.trim_fraction) {
                return Err(ConfigError::new(
                    "robust trim_fraction must be finite and in [0, 0.5)",
                ));
            }
            if !robust.weight_cap.is_finite() || robust.weight_cap <= 0.0 {
                return Err(ConfigError::new(
                    "robust weight_cap must be finite and positive",
                ));
            }
            if robust.influence_cap.is_nan() || robust.influence_cap <= 0.0 {
                return Err(ConfigError::new(
                    "robust influence_cap must be positive (INFINITY disables it)",
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = Adam2Config::new();
        assert_eq!(c.lambda, 50);
        assert_eq!(c.rounds_per_instance, 30);
        assert_eq!(c.bootstrap, BootstrapKind::Neighbours);
        assert_eq!(c.refine, RefineKind::MinMax);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_chains() {
        let c = Adam2Config::new()
            .with_lambda(10)
            .with_verify_points(5)
            .with_verify_metric(ErrorMetric::Max)
            .with_rounds_per_instance(40)
            .with_bootstrap(BootstrapKind::Uniform)
            .with_refine(RefineKind::LCut)
            .with_scheduling(Scheduling::Probabilistic {
                mean_rounds_between: 50.0,
            })
            .with_initial_n_estimate(1000.0)
            .with_domain_hint(0.0, 100.0)
            .with_neighbour_sample(25);
        assert!(c.validate().is_ok());
        assert_eq!(c.lambda, 10);
        assert_eq!(c.effective_neighbour_sample(), 25);
    }

    #[test]
    fn neighbour_sample_defaults_to_lambda() {
        let c = Adam2Config::new().with_lambda(17);
        assert_eq!(c.effective_neighbour_sample(), 17);
    }

    #[test]
    fn validation_rejects_bad_values() {
        assert!(Adam2Config::new().with_lambda(0).validate().is_err());
        assert!(Adam2Config::new()
            .with_rounds_per_instance(0)
            .validate()
            .is_err());
        assert!(Adam2Config::new()
            .with_initial_n_estimate(0.0)
            .validate()
            .is_err());
        assert!(Adam2Config::new()
            .with_scheduling(Scheduling::Probabilistic {
                mean_rounds_between: 0.0
            })
            .validate()
            .is_err());
        assert!(Adam2Config::new()
            .with_domain_hint(5.0, 1.0)
            .validate()
            .is_err());
    }

    #[test]
    fn self_heal_validation() {
        let ok = Adam2Config::new()
            .with_verify_points(10)
            .with_self_heal(1e-3, 2);
        assert!(ok.validate().is_ok());
        assert_eq!(
            ok.self_heal,
            Some(SelfHealPolicy {
                err_threshold: 1e-3,
                max_restarts: 2
            })
        );
        // Needs verification points to measure the error it keys off.
        assert!(Adam2Config::new()
            .with_self_heal(1e-3, 2)
            .validate()
            .is_err());
        // Threshold must be a positive finite number.
        assert!(Adam2Config::new()
            .with_verify_points(10)
            .with_self_heal(0.0, 2)
            .validate()
            .is_err());
        assert!(Adam2Config::new()
            .with_verify_points(10)
            .with_self_heal(f64::NAN, 2)
            .validate()
            .is_err());
    }

    #[test]
    fn robust_validation() {
        let ok = Adam2Config::new().with_robust(RobustPolicy::new());
        assert!(ok.validate().is_ok());
        assert_eq!(ok.robust, Some(RobustPolicy::new()));
        // Trim fraction 0 and an infinite influence cap are legal (they
        // degrade the merge to vanilla).
        assert!(Adam2Config::new()
            .with_robust(
                RobustPolicy::new()
                    .with_trim_fraction(0.0)
                    .with_influence_cap(f64::INFINITY)
            )
            .validate()
            .is_ok());
        let bad = [
            RobustPolicy::new().with_trim_fraction(0.5),
            RobustPolicy::new().with_trim_fraction(-0.1),
            RobustPolicy::new().with_trim_fraction(f64::NAN),
            RobustPolicy::new().with_weight_cap(0.0),
            RobustPolicy::new().with_weight_cap(f64::INFINITY),
            RobustPolicy::new().with_influence_cap(0.0),
            RobustPolicy::new().with_influence_cap(f64::NAN),
        ];
        for policy in bad {
            assert!(
                Adam2Config::new().with_robust(policy).validate().is_err(),
                "{policy:?} should be rejected"
            );
        }
    }
}
