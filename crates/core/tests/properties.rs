//! Property-based tests of the core data structures and protocol
//! invariants.

use proptest::prelude::*;

use adam2_core::{
    avg_distance, gossip_exchange, gossip_exchange_with, max_distance, select_thresholds,
    uniform_points, wire::GossipMessage, wire::InstancePayload, Adam2Node, AttrValue,
    BootstrapKind, InstanceId, InstanceLocal, InstanceMeta, InterpCdf, RefineKind, RobustPolicy,
    SelectionInput, StepCdf,
};
use std::sync::Arc;

fn finite_values(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..1e6, 1..max_len)
}

fn sorted_thresholds() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..1e6, 1..40).prop_map(|mut v| {
        v.sort_by(f64::total_cmp);
        v.dedup();
        v
    })
}

fn meta_for(thresholds: Vec<f64>, multi: bool) -> Arc<InstanceMeta> {
    Arc::new(InstanceMeta {
        id: InstanceId::derive(0, 0, 9),
        thresholds: thresholds.into(),
        verify_thresholds: Vec::new().into(),
        start_round: 0,
        end_round: 100,
        multi,
    })
}

proptest! {
    // ---- StepCdf ---------------------------------------------------------

    #[test]
    fn step_cdf_is_monotone_and_bounded(values in finite_values(200), probes in finite_values(50)) {
        let cdf = StepCdf::from_values(values);
        let mut sorted_probes = probes;
        sorted_probes.sort_by(f64::total_cmp);
        let mut prev = 0.0;
        for x in sorted_probes {
            let y = cdf.eval(x);
            prop_assert!((0.0..=1.0).contains(&y));
            prop_assert!(y + 1e-15 >= prev, "monotonicity violated");
            prop_assert!(cdf.eval_left(x) <= y + 1e-15);
            prev = y;
        }
        prop_assert_eq!(cdf.eval(cdf.max()), 1.0);
        prop_assert_eq!(cdf.eval_left(cdf.min()), 0.0);
    }

    #[test]
    fn empirical_interp_matches_step_cdf(values in finite_values(100), probes in finite_values(30)) {
        let step = StepCdf::from_values(values.clone());
        let interp = InterpCdf::from_sample(&values);
        for x in probes {
            prop_assert!((step.eval(x) - interp.eval(x)).abs() < 1e-12);
        }
    }

    // ---- InterpCdf -------------------------------------------------------

    #[test]
    fn from_points_always_builds_valid_cdf(
        thresholds in sorted_thresholds(),
        raw_fractions in prop::collection::vec(-0.5f64..1.5, 40),
        lo in 0.0f64..1000.0,
        span in 0.0f64..1e6,
    ) {
        let fractions = &raw_fractions[..thresholds.len().min(raw_fractions.len())];
        let thresholds = &thresholds[..fractions.len()];
        let cdf = InterpCdf::from_points(lo, lo + span, thresholds, fractions).unwrap();
        // Valid: monotone y in [0,1], sorted x.
        let ys: Vec<f64> = cdf.knots().iter().map(|(_, y)| *y).collect();
        prop_assert!(ys.windows(2).all(|w| w[0] <= w[1]));
        prop_assert!(ys.iter().all(|y| (0.0..=1.0).contains(y)));
        prop_assert_eq!(cdf.eval(lo + span), 1.0);
    }

    #[test]
    fn quantile_is_pseudo_inverse(
        values in finite_values(50),
        qs in prop::collection::vec(0.0f64..=1.0, 20),
    ) {
        let cdf = InterpCdf::from_sample(&values);
        for q in qs {
            let x = cdf.quantile(q);
            // Generalised inverse: F(x) >= q and F(x') < q for x' < x.
            prop_assert!(cdf.eval(x) + 1e-12 >= q);
        }
    }

    #[test]
    fn arc_walk_is_monotone(values in finite_values(50)) {
        let cdf = InterpCdf::from_sample(&values);
        let total = cdf.scaled_arc_length();
        let mut prev_x = f64::NEG_INFINITY;
        for k in 0..=20 {
            let (x, y) = cdf.point_at_arc(total * k as f64 / 20.0);
            prop_assert!(x + 1e-9 >= prev_x);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&y));
            prev_x = x;
        }
    }

    // ---- Metrics ---------------------------------------------------------

    #[test]
    fn distances_are_bounded_and_zero_on_self(values in finite_values(100)) {
        let truth = StepCdf::from_values(values.clone());
        let exact = InterpCdf::from_sample(&values);
        prop_assert!(max_distance(&truth, &exact) < 1e-12);
        prop_assert!(avg_distance(&truth, &exact) < 1e-12);
        let crude = InterpCdf::new(vec![(truth.min(), 0.0), (truth.max(), 1.0)]).unwrap();
        let m = max_distance(&truth, &crude);
        let a = avg_distance(&truth, &crude);
        prop_assert!((0.0..=1.0).contains(&m));
        prop_assert!((0.0..=1.0 + 1e-12).contains(&a));
        prop_assert!(a <= m + 1e-12, "average exceeds maximum");
    }

    // ---- Instance merging ------------------------------------------------

    #[test]
    fn merge_conserves_mass_and_commutes(
        va in 0.0f64..1000.0,
        vb in 0.0f64..1000.0,
        thresholds in sorted_thresholds(),
    ) {
        let meta = meta_for(thresholds, false);
        let mut a = InstanceLocal::join(meta.clone(), &AttrValue::Single(va), true);
        let mut b = InstanceLocal::join(meta.clone(), &AttrValue::Single(vb), false);
        let mass: Vec<f64> = a.fractions.iter().zip(&b.fractions).map(|(x, y)| x + y).collect();
        let weight = a.weight + b.weight;
        InstanceLocal::merge_symmetric(&mut a, &mut b);
        for ((fa, fb), m) in a.fractions.iter().zip(&b.fractions).zip(&mass) {
            prop_assert!((fa + fb - m).abs() < 1e-12);
            prop_assert!((fa - fb).abs() < 1e-15, "merge must equalise");
        }
        prop_assert!((a.weight + b.weight - weight).abs() < 1e-15);
        prop_assert_eq!(a.min, va.min(vb));
        prop_assert_eq!(a.max, va.max(vb));
    }

    #[test]
    fn robust_merge_conserves_mass_for_any_policy(
        va in 0.0f64..1000.0,
        vb in 0.0f64..1000.0,
        thresholds in sorted_thresholds(),
        trim in 0.0f64..0.5,
        cap in 0.01f64..10.0,
    ) {
        // Trimming leaves components unmerged and the influence cap clamps
        // both sides symmetrically, so whatever the policy, the pairwise
        // sums survive to 1e-12.
        let policy = RobustPolicy::new()
            .with_trim_fraction(trim)
            .with_influence_cap(cap);
        let meta = meta_for(thresholds, false);
        let mut a = InstanceLocal::join(meta.clone(), &AttrValue::Single(va), true);
        let mut b = InstanceLocal::join(meta.clone(), &AttrValue::Single(vb), false);
        let mass: Vec<f64> = a.fractions.iter().zip(&b.fractions).map(|(x, y)| x + y).collect();
        let weight = a.weight + b.weight;
        let outcome = InstanceLocal::merge_symmetric_robust(&mut a, &mut b, &policy);
        prop_assert!(!outcome.rejected, "honest contributions must pass the screen");
        for ((fa, fb), m) in a.fractions.iter().zip(&b.fractions).zip(&mass) {
            prop_assert!((fa + fb - m).abs() < 1e-12, "fraction mass drifted");
        }
        prop_assert!((a.weight + b.weight - weight).abs() < 1e-12, "weight mass drifted");
    }

    #[test]
    fn robust_merge_at_trim_zero_degrades_to_vanilla(
        va in 0.0f64..1000.0,
        vb in 0.0f64..1000.0,
        thresholds in sorted_thresholds(),
    ) {
        // trim 0 + infinite influence cap must be *bit-identical* to the
        // vanilla merge, so enabling robust mode with a neutral policy can
        // never change a trajectory.
        let policy = RobustPolicy::new()
            .with_trim_fraction(0.0)
            .with_influence_cap(f64::INFINITY);
        let meta = meta_for(thresholds, false);
        let mut a1 = InstanceLocal::join(meta.clone(), &AttrValue::Single(va), true);
        let mut b1 = InstanceLocal::join(meta.clone(), &AttrValue::Single(vb), false);
        let mut a2 = a1.clone();
        let mut b2 = b1.clone();
        InstanceLocal::merge_symmetric(&mut a1, &mut b1);
        let outcome = InstanceLocal::merge_symmetric_robust(&mut a2, &mut b2, &policy);
        prop_assert!(!outcome.rejected);
        prop_assert_eq!(outcome.limited, 0, "neutral policy trimmed something");
        for (x, y) in a1.fractions.iter().zip(a2.fractions.iter())
            .chain(b1.fractions.iter().zip(b2.fractions.iter())) {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "fractions diverged");
        }
        prop_assert_eq!(a1.weight.to_bits(), a2.weight.to_bits());
        prop_assert_eq!(b1.weight.to_bits(), b2.weight.to_bits());
        prop_assert_eq!(a1.count.to_bits(), a2.count.to_bits());
    }

    #[test]
    fn robust_exchange_conserves_weight_mass(
        values in prop::collection::vec(0.0f64..1000.0, 2..8),
        thresholds in sorted_thresholds(),
        trim in 0.0f64..0.5,
    ) {
        // The full exchange path (join + robust merge) preserves Σw = 1
        // along a spreading chain for any trim fraction.
        let policy = RobustPolicy::new().with_trim_fraction(trim);
        let meta = meta_for(thresholds, false);
        let mut nodes: Vec<Adam2Node> =
            values.iter().map(|v| Adam2Node::new(AttrValue::Single(*v), 10.0)).collect();
        nodes[0].begin_instance(meta.clone());
        for i in 1..nodes.len() {
            let (left, right) = nodes.split_at_mut(i);
            let report = gossip_exchange_with(&mut left[i - 1], &mut right[0], 1, Some(&policy));
            prop_assert_eq!(report.robust_rejects, 0, "honest chain must not reject");
        }
        let weight: f64 = nodes
            .iter()
            .filter_map(|n| n.active_instance(meta.id).map(|i| i.weight))
            .sum();
        prop_assert!((weight - 1.0).abs() < 1e-9, "weight mass {}", weight);
        prop_assert!(nodes.iter().all(|n| n.active_instance(meta.id).is_some()));
    }

    #[test]
    fn multi_value_mass_conserved(
        sa in prop::collection::vec(0.0f64..100.0, 0..10),
        sb in prop::collection::vec(0.0f64..100.0, 0..10),
        thresholds in sorted_thresholds(),
    ) {
        let meta = meta_for(thresholds, true);
        let mut a = InstanceLocal::join(meta.clone(), &AttrValue::Multi(sa.clone()), true);
        let mut b = InstanceLocal::join(meta, &AttrValue::Multi(sb.clone()), false);
        let count = a.count + b.count;
        InstanceLocal::merge_symmetric(&mut a, &mut b);
        prop_assert!((a.count + b.count - count).abs() < 1e-12);
        prop_assert!((a.count - (sa.len() + sb.len()) as f64 / 2.0).abs() < 1e-12);
    }

    // ---- Exchange (join + merge) ------------------------------------------

    #[test]
    fn exchange_conserves_weight_mass(
        values in prop::collection::vec(0.0f64..1000.0, 2..8),
        thresholds in sorted_thresholds(),
    ) {
        // A chain of pairwise exchanges spreading one instance.
        let meta = meta_for(thresholds, false);
        let mut nodes: Vec<Adam2Node> =
            values.iter().map(|v| Adam2Node::new(AttrValue::Single(*v), 10.0)).collect();
        nodes[0].begin_instance(meta.clone());
        for i in 1..nodes.len() {
            let (left, right) = nodes.split_at_mut(i);
            gossip_exchange(&mut left[i - 1], &mut right[0], 1);
        }
        let weight: f64 = nodes
            .iter()
            .filter_map(|n| n.active_instance(meta.id).map(|i| i.weight))
            .sum();
        prop_assert!((weight - 1.0).abs() < 1e-9, "weight mass {weight}");
        // Everybody joined along the chain.
        prop_assert!(nodes.iter().all(|n| n.active_instance(meta.id).is_some()));
    }

    // ---- Selection --------------------------------------------------------

    #[test]
    fn selection_yields_lambda_distinct_sorted(
        values in prop::collection::vec(1.0f64..1e6, 1..60),
        lambda in 1usize..60,
        refine_idx in 0usize..4,
        seed in 0u64..1000,
    ) {
        let refine = [RefineKind::HCut, RefineKind::MinMax, RefineKind::LCut, RefineKind::Hybrid][refine_idx];
        let prev_cdf = InterpCdf::from_sample(&values);
        let est = adam2_core::DistributionEstimate {
            min: prev_cdf.min(),
            max: prev_cdf.max(),
            cdf: prev_cdf,
            n_hat: Some(values.len() as f64),
            est_err_avg: None,
            est_err_max: None,
            instance: InstanceId::derive(0, 0, 0),
            completed_round: 1,
            thresholds: vec![],
            fractions: vec![],
        };
        let mut rng = adam2_sim::seeded_rng(seed);
        let input = SelectionInput { prev: Some(&est), neighbour_values: &values, domain_hint: None };
        let ts = select_thresholds(BootstrapKind::Neighbours, refine, input, lambda, &mut rng);
        prop_assert_eq!(ts.len(), lambda);
        prop_assert!(ts.windows(2).all(|w| w[0] < w[1]), "not sorted-distinct: {:?}", ts);
    }

    #[test]
    fn uniform_points_stay_strictly_inside(lo in 0.0f64..100.0, span in 0.001f64..1e5, lambda in 1usize..100) {
        let ts = uniform_points(lo, lo + span, lambda);
        prop_assert_eq!(ts.len(), lambda);
        prop_assert!(ts.iter().all(|t| *t > lo && *t < lo + span));
    }

    // ---- Wire codec --------------------------------------------------------

    #[test]
    fn wire_roundtrips_arbitrary_payloads(
        thresholds in sorted_thresholds(),
        verify in prop::collection::vec(0.0f64..1e6, 0..20),
        weight in 0.0f64..1.0,
        value in 0.0f64..1e6,
        multi in any::<bool>(),
    ) {
        let meta = Arc::new(InstanceMeta {
            id: InstanceId::derive(7, 3, 1),
            thresholds: thresholds.into(),
            verify_thresholds: verify.into(),
            start_round: 5,
            end_round: 35,
            multi,
        });
        let mut local = InstanceLocal::join(meta, &AttrValue::Single(value), false);
        local.weight = weight;
        let locals = [local];
        let msg = GossipMessage::from_locals(&locals);
        let bytes = msg.encode();
        prop_assert_eq!(bytes.len(), msg.encoded_len());
        let decoded = GossipMessage::decode(bytes).unwrap();
        prop_assert_eq!(&decoded, &msg);
        // And payload -> local roundtrip preserves the averaging state.
        let back = decoded.instances[0].to_local();
        prop_assert_eq!(&back.fractions, &locals[0].fractions);
        prop_assert_eq!(back.weight, locals[0].weight);
        let payload = InstancePayload::from(&locals[0]);
        prop_assert_eq!(payload.encoded_len() + adam2_core::wire::HEADER_LEN, msg.encoded_len());
    }
}

proptest! {
    // ---- Monotone cubic interpolation ---------------------------------

    #[test]
    fn pchip_is_monotone_and_matches_knots(values in finite_values(60)) {
        let linear = InterpCdf::from_sample(&values);
        let cubic = adam2_core::MonotoneCubicCdf::from_linear(&linear);
        // Knots are interpolated exactly (right-continuous at jumps).
        for (x, _) in linear.knots() {
            prop_assert!((cubic.eval(*x) - linear.eval(*x)).abs() < 1e-9);
        }
        // Monotone and bounded on a dense probe grid.
        let (lo, hi) = (linear.min(), linear.max());
        let mut prev = -1.0f64;
        for k in 0..=200 {
            let x = lo + (hi - lo) * k as f64 / 200.0;
            let y = cubic.eval(x);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&y), "out of range at {x}: {y}");
            prop_assert!(y + 1e-9 >= prev, "non-monotone at {x}");
            prev = y;
        }
    }

    // ---- Estimate combination -----------------------------------------

    #[test]
    fn combining_estimates_always_yields_a_valid_cdf(
        ta in sorted_thresholds(),
        tb in sorted_thresholds(),
        fa in prop::collection::vec(0.0f64..=1.0, 40),
        fb in prop::collection::vec(0.0f64..=1.0, 40),
    ) {
        let build = |ts: &[f64], fs: &[f64], round: u64| {
            let n = ts.len().min(fs.len());
            let mut fs: Vec<f64> = fs[..n].to_vec();
            fs.sort_by(f64::total_cmp);
            let ts = &ts[..n];
            let cdf = InterpCdf::from_points(0.0, 2e6, ts, &fs).unwrap();
            adam2_core::DistributionEstimate {
                cdf,
                n_hat: Some(100.0),
                min: 0.0,
                max: 2e6,
                est_err_avg: None,
                est_err_max: None,
                instance: InstanceId::derive(0, 0, round),
                completed_round: round,
                thresholds: ts.to_vec(),
                fractions: fs,
            }
        };
        let a = build(&ta, &fa, 30);
        let b = build(&tb, &fb, 60);
        let c = a.combined_with(&b).unwrap();
        // Pooled point count (minus exact-duplicate thresholds).
        prop_assert!(c.thresholds.len() <= a.thresholds.len() + b.thresholds.len());
        prop_assert!(c.thresholds.len() >= a.thresholds.len().max(b.thresholds.len()));
        // Distinct sorted thresholds and a monotone CDF come out.
        prop_assert!(c.thresholds.windows(2).all(|w| w[0] < w[1]));
        let ys: Vec<f64> = c.cdf.knots().iter().map(|(_, y)| *y).collect();
        prop_assert!(ys.windows(2).all(|w| w[0] <= w[1]));
        // Commutative on the threshold set.
        prop_assert_eq!(b.combined_with(&a).unwrap().thresholds, c.thresholds);
    }

    // ---- Rank / slice / outlier ----------------------------------------

    #[test]
    fn ranks_and_slices_are_consistent(
        values in finite_values(80),
        probes in finite_values(20),
        slices in 1usize..12,
    ) {
        let cdf = InterpCdf::from_sample(&values);
        let est = adam2_core::DistributionEstimate {
            min: cdf.min(),
            max: cdf.max(),
            cdf,
            n_hat: Some(values.len() as f64),
            est_err_avg: None,
            est_err_max: None,
            instance: InstanceId::derive(0, 0, 1),
            completed_round: 1,
            thresholds: vec![],
            fractions: vec![],
        };
        let mut sorted_probes = probes;
        sorted_probes.sort_by(f64::total_cmp);
        let mut prev_rank = 0u64;
        let mut prev_slice = 0usize;
        for x in sorted_probes {
            let rank = est.rank_of(x).unwrap();
            prop_assert!((1..=values.len() as u64).contains(&rank));
            prop_assert!(rank >= prev_rank, "rank must be monotone in the value");
            let slice = est.slice_of(x, slices);
            prop_assert!(slice < slices);
            prop_assert!(slice >= prev_slice, "slice must be monotone in the value");
            prev_rank = rank;
            prev_slice = slice;
        }
    }
}

fn fuzz_message(thresholds: Vec<f64>) -> bytes::Bytes {
    let meta = meta_for(thresholds, false);
    let local = InstanceLocal::join(meta, &AttrValue::Single(1.0), true);
    GossipMessage::from_locals([&local]).encode()
}

proptest! {
    // ---- Wire hardening (fuzz) -----------------------------------------
    //
    // The deploy runtime feeds frames straight off a socket into
    // `GossipMessage::decode`; a malformed frame must come back as a
    // `WireError` — never a panic, never an unbounded allocation.

    #[test]
    fn decode_never_panics_on_garbage(raw in prop::collection::vec(any::<u8>(), 0..2048)) {
        let _ = GossipMessage::decode(bytes::Bytes::from(raw));
    }

    #[test]
    fn decode_rejects_every_truncation(
        thresholds in sorted_thresholds(),
        cut_frac in 0.0f64..1.0,
    ) {
        let encoded = fuzz_message(thresholds);
        let cut = ((encoded.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(
            GossipMessage::decode(encoded.slice(..cut)).is_err(),
            "prefix of {cut} bytes decoded"
        );
    }

    #[test]
    fn decode_survives_single_byte_corruption(
        thresholds in sorted_thresholds(),
        pos_frac in 0.0f64..1.0,
        xor in 1u8..=255,
    ) {
        let mut raw = fuzz_message(thresholds).to_vec();
        let pos = ((raw.len() - 1) as f64 * pos_frac) as usize;
        raw[pos] ^= xor;
        // May decode to different values or fail — must not panic.
        let _ = GossipMessage::decode(bytes::Bytes::from(raw));
    }

    #[test]
    fn decode_rejects_inflated_instance_counts(
        thresholds in sorted_thresholds(),
        count in 2u16..=u16::MAX,
    ) {
        // The header claims `count` instances but only one follows: the
        // decoder must hit Truncated instead of trusting the count (which
        // would also be an allocation amplification vector).
        let mut raw = fuzz_message(thresholds).to_vec();
        raw[8..10].copy_from_slice(&count.to_le_bytes());
        prop_assert!(GossipMessage::decode(bytes::Bytes::from(raw)).is_err());
    }
}
