//! Micro-benchmarks of the protocol's hot primitives: state merging, CDF
//! evaluation, error metrics, threshold selection and the wire codec.

use std::hint::black_box;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use adam2_core::{
    discrete_errors_over, hcut_thresholds, lcut_thresholds, max_distance, minmax_thresholds,
    wire::GossipMessage, AttrValue, InstanceId, InstanceLocal, InstanceMeta, InterpCdf, StepCdf,
};
use adam2_sim::seeded_rng;
use adam2_traces::{Attribute, Population};

fn sample_meta(lambda: usize, verify: usize) -> Arc<InstanceMeta> {
    Arc::new(InstanceMeta {
        id: InstanceId::derive(0, 0, 1),
        thresholds: (1..=lambda)
            .map(|i| i as f64 * 10.0)
            .collect::<Vec<_>>()
            .into(),
        verify_thresholds: (1..=verify)
            .map(|i| i as f64 * 7.0)
            .collect::<Vec<_>>()
            .into(),
        start_round: 0,
        end_round: 25,
        multi: false,
    })
}

fn sample_cdf(knots: usize) -> InterpCdf {
    let points: Vec<(f64, f64)> = (0..knots)
        .map(|i| {
            let x = i as f64 / (knots - 1) as f64;
            (x * 1000.0, x.powf(0.3).min(1.0))
        })
        .collect();
    InterpCdf::new(points).expect("valid knots")
}

fn bench_merge(c: &mut Criterion) {
    let meta = sample_meta(50, 20);
    let mut a = InstanceLocal::join(meta.clone(), &AttrValue::Single(250.0), true);
    let mut b = InstanceLocal::join(meta, &AttrValue::Single(600.0), false);
    c.bench_function("merge_symmetric_lambda50_v20", |bencher| {
        bencher.iter(|| {
            InstanceLocal::merge_symmetric(black_box(&mut a), black_box(&mut b));
        })
    });
}

fn bench_cdf_eval(c: &mut Criterion) {
    let cdf = sample_cdf(52);
    c.bench_function("interp_cdf_eval", |bencher| {
        let mut x = 0.0;
        bencher.iter(|| {
            x = (x + 13.7) % 1000.0;
            black_box(cdf.eval(black_box(x)))
        })
    });
    c.bench_function("interp_cdf_quantile", |bencher| {
        let mut q = 0.0;
        bencher.iter(|| {
            q = (q + 0.037) % 1.0;
            black_box(cdf.quantile(black_box(q)))
        })
    });
}

fn bench_metrics(c: &mut Criterion) {
    let mut rng = seeded_rng(7);
    let pop = Population::generate(Attribute::Ram, 10_000, &mut rng);
    let truth = StepCdf::from_values(pop.values().to_vec());
    let est = sample_cdf(52);
    c.bench_function("max_distance_10k_values", |bencher| {
        bencher.iter(|| black_box(max_distance(black_box(&truth), black_box(&est))))
    });
    c.bench_function("discrete_errors_ram_domain", |bencher| {
        bencher.iter(|| {
            black_box(discrete_errors_over(
                black_box(&truth),
                black_box(&est),
                truth.min(),
                truth.max(),
            ))
        })
    });
}

fn bench_selection(c: &mut Criterion) {
    let cdf = sample_cdf(52);
    c.bench_function("hcut_lambda50", |bencher| {
        bencher.iter(|| black_box(hcut_thresholds(black_box(&cdf), 50)))
    });
    c.bench_function("minmax_lambda50", |bencher| {
        bencher.iter(|| black_box(minmax_thresholds(black_box(&cdf), 50)))
    });
    c.bench_function("lcut_lambda50", |bencher| {
        bencher.iter(|| black_box(lcut_thresholds(black_box(&cdf), 50)))
    });
}

fn bench_wire(c: &mut Criterion) {
    let meta = sample_meta(50, 20);
    let local = InstanceLocal::join(meta, &AttrValue::Single(250.0), true);
    let locals = [local];
    let msg = GossipMessage::from_locals(&locals);
    let encoded = msg.encode();
    c.bench_function("wire_encode_lambda50_v20", |bencher| {
        bencher.iter(|| black_box(GossipMessage::from_locals(black_box(&locals)).encode()))
    });
    c.bench_function("wire_decode_lambda50_v20", |bencher| {
        bencher.iter(|| black_box(GossipMessage::decode(black_box(encoded.clone())).unwrap()))
    });
}

criterion_group!(
    primitives,
    bench_merge,
    bench_cdf_eval,
    bench_metrics,
    bench_selection,
    bench_wire
);
criterion_main!(primitives);
