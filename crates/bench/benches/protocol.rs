//! Macro-benchmarks: full simulation rounds of the Adam2 protocol at
//! various system sizes, with and without an active aggregation instance,
//! and against the EquiDepth baseline.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use adam2_baselines::{EquiDepthConfig, EquiDepthProtocol};
use adam2_bench::{
    adam2_engine, adam2_engine_threaded, equidepth_engine, setup, start_instance, start_phase,
};
use adam2_core::{
    uniform_points, Adam2Config, Adam2Protocol, AsyncAdam2, InstanceId, InstanceMeta,
};
use adam2_sim::{ChurnModel, Engine, EventConfig, EventEngine, LatencyModel};
use adam2_traces::Attribute;

fn adam2_round_engine(nodes: usize, with_instance: bool) -> Engine<Adam2Protocol> {
    let s = setup(Attribute::Ram, nodes, 42);
    // A duration long enough that the benchmark never finalises it.
    let config = Adam2Config::new()
        .with_lambda(50)
        .with_rounds_per_instance(1_000_000);
    let mut engine = adam2_engine(&s, config, 42, ChurnModel::None);
    if with_instance {
        start_instance(&mut engine);
        // Let the instance spread so rounds carry full payloads.
        engine.run_rounds(10);
    }
    engine
}

fn adam2_round_engine_par(
    nodes: usize,
    with_instance: bool,
    threads: usize,
) -> Engine<Adam2Protocol> {
    let s = setup(Attribute::Ram, nodes, 42);
    let config = Adam2Config::new()
        .with_lambda(50)
        .with_rounds_per_instance(1_000_000);
    let mut engine = adam2_engine_threaded(&s, config, 42, ChurnModel::None, threads);
    if with_instance {
        start_instance(&mut engine);
        engine.run_rounds_parallel(10);
    }
    engine
}

fn equidepth_round_engine(nodes: usize) -> Engine<EquiDepthProtocol> {
    let s = setup(Attribute::Ram, nodes, 42);
    let mut engine = equidepth_engine(
        &s,
        EquiDepthConfig::new(50, 1_000_000),
        42,
        ChurnModel::None,
    );
    start_phase(&mut engine);
    engine.run_rounds(10);
    engine
}

fn bench_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("round");
    for nodes in [1_000usize, 10_000] {
        group.throughput(Throughput::Elements(nodes as u64));
        group.bench_with_input(BenchmarkId::new("adam2_idle", nodes), &nodes, |b, &n| {
            let mut engine = adam2_round_engine(n, false);
            b.iter(|| engine.run_round());
        });
        group.bench_with_input(
            BenchmarkId::new("adam2_instance_lambda50", nodes),
            &nodes,
            |b, &n| {
                let mut engine = adam2_round_engine(n, true);
                b.iter(|| engine.run_round());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("equidepth_bins50", nodes),
            &nodes,
            |b, &n| {
                let mut engine = equidepth_round_engine(n);
                b.iter(|| engine.run_round());
            },
        );
        // Phase-split parallel path: inline (1 thread, measures the
        // phase-split overhead) and auto-detected thread count.
        group.bench_with_input(
            BenchmarkId::new("adam2_instance_par_t1", nodes),
            &nodes,
            |b, &n| {
                let mut engine = adam2_round_engine_par(n, true, 1);
                b.iter(|| engine.run_round_parallel());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("adam2_instance_par_auto", nodes),
            &nodes,
            |b, &n| {
                let mut engine = adam2_round_engine_par(n, true, 0);
                b.iter(|| engine.run_round_parallel());
            },
        );
    }
    group.finish();
}

fn bench_event_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_round");
    for nodes in [1_000usize, 10_000] {
        group.throughput(Throughput::Elements(nodes as u64));
        group.bench_with_input(
            BenchmarkId::new("async_adam2_lambda50", nodes),
            &nodes,
            |b, &n| {
                let s = setup(Attribute::Ram, n, 42);
                let period = 1000u64;
                let pop = s.population.clone();
                let proto =
                    AsyncAdam2::with_population(period, pop.values().to_vec(), move |rng| {
                        pop.draw_fresh(rng)
                    });
                let config = EventConfig::new(n, 42)
                    .with_gossip_period(period)
                    .with_latency(LatencyModel::Uniform { min: 10, max: 150 });
                let mut engine = EventEngine::new(config, proto);
                let meta = Arc::new(InstanceMeta {
                    id: InstanceId::derive(0, 0, 1),
                    thresholds: uniform_points(s.truth.min(), s.truth.max(), 50).into(),
                    verify_thresholds: Vec::new().into(),
                    start_round: 0,
                    end_round: 1_000_000,
                    multi: false,
                });
                engine.with_ctx(|proto, ctx| {
                    let initiator = ctx.nodes.random_id(ctx.rng).expect("nodes");
                    proto.start_instance(initiator, meta.clone(), ctx)
                });
                engine.run_until(period * 10);
                let mut until = engine.now();
                b.iter(|| {
                    // One gossip period of event processing per iteration.
                    until += period;
                    engine.run_until(until);
                });
            },
        );
    }
    group.finish();
}

fn bench_churn_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("round_churn");
    let nodes = 10_000usize;
    group.throughput(Throughput::Elements(nodes as u64));
    for (label, churn) in [
        ("none", ChurnModel::None),
        ("uniform_0.001", ChurnModel::uniform(0.001)),
        ("uniform_0.01", ChurnModel::uniform(0.01)),
    ] {
        group.bench_function(BenchmarkId::new("adam2", label), |b| {
            let s = setup(Attribute::Ram, nodes, 42);
            let config = Adam2Config::new()
                .with_lambda(50)
                .with_rounds_per_instance(1_000_000);
            let mut engine = adam2_engine(&s, config, 42, churn);
            start_instance(&mut engine);
            engine.run_rounds(10);
            b.iter(|| engine.run_round());
        });
    }
    group.finish();
}

criterion_group! {
    name = protocol;
    config = Criterion::default().sample_size(10);
    targets = bench_rounds, bench_event_engine, bench_churn_overhead
}
criterion_main!(protocol);
