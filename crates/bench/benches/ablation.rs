//! Ablation benchmarks for the design choices called out in DESIGN.md:
//!
//! * refinement heuristic (HCut / MinMax / LCut / Hybrid) — cost of the
//!   threshold-selection step on smooth vs stepped previous estimates;
//! * bootstrap strategy (Uniform vs Neighbours) — cost of instance start;
//! * overlay implementation (oracle vs Cyclon-style shuffle) — per-round
//!   overhead of realistic peer sampling.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use adam2_bench::{adam2_engine, setup};
use adam2_core::{
    select_thresholds, Adam2Config, BootstrapKind, InterpCdf, RefineKind, SelectionInput,
};
use adam2_sim::{seeded_rng, ChurnModel, Engine, EngineConfig, OverlayConfig};
use adam2_traces::Attribute;

fn smooth_estimate() -> adam2_core::DistributionEstimate {
    let knots: Vec<(f64, f64)> = (0..52)
        .map(|i| {
            let t = i as f64 / 51.0;
            (t * 10_000.0, t)
        })
        .collect();
    estimate_of(InterpCdf::new(knots).unwrap())
}

fn stepped_estimate() -> adam2_core::DistributionEstimate {
    // Three heavy steps like the RAM distribution.
    let knots = vec![
        (64.0, 0.0),
        (512.0, 0.02),
        (512.0, 0.30),
        (1024.0, 0.32),
        (1024.0, 0.70),
        (2048.0, 0.72),
        (2048.0, 0.95),
        (8192.0, 1.0),
    ];
    estimate_of(InterpCdf::new(knots).unwrap())
}

fn estimate_of(cdf: InterpCdf) -> adam2_core::DistributionEstimate {
    let (min, max) = (cdf.min(), cdf.max());
    adam2_core::DistributionEstimate {
        cdf,
        n_hat: Some(10_000.0),
        min,
        max,
        est_err_avg: None,
        est_err_max: None,
        instance: adam2_core::InstanceId::derive(0, 0, 0),
        completed_round: 30,
        thresholds: vec![],
        fractions: vec![],
    }
}

fn bench_refinement(c: &mut Criterion) {
    let mut group = c.benchmark_group("refinement_select");
    for (shape, est) in [
        ("smooth", smooth_estimate()),
        ("stepped", stepped_estimate()),
    ] {
        for refine in [
            RefineKind::HCut,
            RefineKind::MinMax,
            RefineKind::LCut,
            RefineKind::Hybrid,
        ] {
            group.bench_function(BenchmarkId::new(format!("{refine:?}"), shape), |b| {
                let mut rng = seeded_rng(1);
                let input = SelectionInput {
                    prev: Some(&est),
                    neighbour_values: &[],
                    domain_hint: None,
                };
                b.iter(|| {
                    black_box(select_thresholds(
                        BootstrapKind::Neighbours,
                        refine,
                        input,
                        50,
                        &mut rng,
                    ))
                })
            });
        }
    }
    group.finish();
}

fn bench_bootstrap(c: &mut Criterion) {
    let mut group = c.benchmark_group("bootstrap_start_instance");
    for (label, bootstrap) in [
        ("uniform", BootstrapKind::Uniform),
        ("neighbours", BootstrapKind::Neighbours),
    ] {
        group.bench_function(label, |b| {
            let s = setup(Attribute::Ram, 5_000, 42);
            let mut config = Adam2Config::new()
                .with_lambda(50)
                .with_rounds_per_instance(1_000_000)
                .with_bootstrap(bootstrap);
            if bootstrap == BootstrapKind::Uniform {
                config = config.with_domain_hint(s.truth.min(), s.truth.max());
            }
            let mut engine = adam2_engine(&s, config, 42, ChurnModel::None);
            b.iter(|| {
                engine.with_ctx(|proto, ctx| {
                    let initiator = ctx.nodes.random_id(ctx.rng).expect("nodes");
                    black_box(proto.start_instance(initiator, ctx))
                })
            });
        });
    }
    group.finish();
}

fn bench_overlay(c: &mut Criterion) {
    let mut group = c.benchmark_group("overlay_round");
    group.sample_size(10);
    for (label, overlay) in [
        ("oracle", OverlayConfig::oracle()),
        ("shuffle_deg20", OverlayConfig::shuffle(20)),
    ] {
        group.bench_function(label, |b| {
            let s = setup(Attribute::Ram, 5_000, 42);
            let config = Adam2Config::new()
                .with_lambda(50)
                .with_rounds_per_instance(1_000_000);
            let pop = s.population.clone();
            let proto = adam2_core::Adam2Protocol::with_population(
                config,
                pop.values().to_vec(),
                move |rng| pop.draw_fresh(rng),
            );
            let engine_config = EngineConfig::new(5_000, 42).with_overlay(overlay);
            let mut engine = Engine::new(engine_config, proto);
            engine.with_ctx(|proto, ctx| {
                let initiator = ctx.nodes.random_id(ctx.rng).expect("nodes");
                proto.start_instance(initiator, ctx)
            });
            engine.run_rounds(5);
            b.iter(|| engine.run_round());
        });
    }
    group.finish();
}

criterion_group! {
    name = ablation;
    config = Criterion::default().sample_size(20);
    targets = bench_refinement, bench_bootstrap, bench_overlay
}
criterion_main!(ablation);
