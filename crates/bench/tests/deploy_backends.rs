//! Cross-backend integration tests for the deploy runtimes.
//!
//! The thread-per-node and reactor backends execute the same protocol
//! state over the same frame wire format, so a clean run on either must
//! land on the simulator's answer, a cluster mixing both backends must
//! interoperate frame-for-frame, and garbage on a reactor socket must be
//! a counted error — never a hang or a panic.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use adam2_bench::{
    adam2_engine, complete_instance, evaluate_estimates, evaluate_peer_estimates, setup,
    start_instance, ErrorReport, PeerEstimate,
};
use adam2_core::{Adam2Config, AttrValue, InstanceMeta, StepCdf};
use adam2_deploy::{
    read_frame, write_frame, Cluster, ClusterConfig, EstimateWire, Frame, LossShim, NodeConfig,
    RuntimeKind,
};
use adam2_sim::ChurnModel;
use adam2_traces::Attribute;

const NODES: usize = 64;
const SEED: u64 = 23;
const LAMBDA: usize = 50;
/// Generous round budget: push–pull converges geometrically, so by round
/// 40 at 64 nodes every node's estimate has collapsed onto the global
/// aggregate and Err_a is purely the λ-threshold discretisation floor —
/// the same floor the simulator reports.
const ROUNDS: u64 = 40;
const WARMUP_ROUNDS: u64 = 3;

fn node_config() -> NodeConfig {
    NodeConfig {
        tick: Duration::from_millis(30),
        io_timeout: Duration::from_millis(15),
        retries: 2,
        queue_capacity: 4,
        view_size: 12,
        seed: SEED,
    }
}

fn peer_estimate(e: &EstimateWire) -> PeerEstimate {
    PeerEstimate {
        instance: e.instance,
        thresholds: e.thresholds.clone(),
        fractions: e.fractions.clone(),
        min: e.min,
        max: e.max,
    }
}

/// The simulator's ground truth on the shared population: the instance
/// (for its thresholds) plus the converged error report.
fn simulator_truth() -> (Arc<InstanceMeta>, Vec<AttrValue>, StepCdf, ErrorReport) {
    let s = setup(Attribute::Ram, NODES, SEED);
    let config = Adam2Config::new()
        .with_lambda(LAMBDA)
        .with_rounds_per_instance(ROUNDS);
    let mut engine = adam2_engine(&s, config, SEED, ChurnModel::None);
    let meta = start_instance(&mut engine);
    complete_instance(&mut engine, ROUNDS);
    let report = evaluate_estimates(&engine, &s.truth, 0, SEED);
    let values = s
        .population
        .values()
        .iter()
        .map(|v| AttrValue::Single(*v))
        .collect();
    let truth = StepCdf::from_values(s.population.values().to_vec());
    (meta, values, truth, report)
}

/// Runs one deploy cluster over the simulator's instance and scores it
/// through the same evaluation pipeline.
fn run_backend(
    runtime: RuntimeKind,
    meta: &InstanceMeta,
    values: Vec<AttrValue>,
    truth: &StepCdf,
) -> ErrorReport {
    let config = ClusterConfig::try_new(node_config())
        .unwrap()
        .with_runtime(runtime)
        .unwrap()
        .with_shim(LossShim::none());
    let cluster = Cluster::launch(values, config).expect("cluster launch");
    let start_round = cluster.current_round() + WARMUP_ROUNDS;
    let deploy_meta = Arc::new(InstanceMeta {
        id: meta.id,
        thresholds: meta.thresholds.clone(),
        verify_thresholds: meta.verify_thresholds.clone(),
        start_round,
        end_round: start_round + ROUNDS,
        multi: meta.multi,
    });
    cluster
        .start_instance(0, Arc::clone(&deploy_meta))
        .expect("start instance");
    while cluster.current_round() <= deploy_meta.end_round + 1 {
        std::thread::sleep(Duration::from_millis(10));
    }
    let estimates = cluster.collect_estimates(Duration::from_secs(10));
    let peers: Vec<Option<PeerEstimate>> = estimates
        .iter()
        .map(|e| e.as_ref().map(peer_estimate))
        .collect();
    let report = evaluate_peer_estimates(&peers, truth, 0, SEED);
    let shutdown = cluster.shutdown();
    assert!(shutdown.clean, "cluster did not shut down cleanly");
    report
}

#[test]
fn backends_agree_with_the_simulator_on_a_clean_run() {
    let (meta, values, truth, sim) = simulator_truth();

    let threaded = run_backend(RuntimeKind::Threaded, &meta, values.clone(), &truth);
    let reactor = run_backend(RuntimeKind::Reactor { threads: 2 }, &meta, values, &truth);

    assert_eq!(threaded.peers_without_estimate, 0);
    assert_eq!(reactor.peers_without_estimate, 0);

    // Both backends must sit on the simulator's discretisation floor. The
    // small absolute slack absorbs the handful of exchanges a node can
    // miss to wall-clock scheduling right at the deadline — convergence
    // contracts by ~2x per round, so 40 rounds leave no gossip error.
    let tol = 1e-3;
    assert!(
        (threaded.avg_cdf - sim.avg_cdf).abs() <= tol,
        "threaded Err_a {:.6e} vs simulator {:.6e}",
        threaded.avg_cdf,
        sim.avg_cdf
    );
    assert!(
        (reactor.avg_cdf - sim.avg_cdf).abs() <= tol,
        "reactor Err_a {:.6e} vs simulator {:.6e}",
        reactor.avg_cdf,
        sim.avg_cdf
    );
    assert!(
        (reactor.avg_cdf - threaded.avg_cdf).abs() <= tol,
        "backends disagree: reactor {:.6e} vs threaded {:.6e}",
        reactor.avg_cdf,
        threaded.avg_cdf
    );
}

#[test]
fn mixed_backend_cluster_bootstraps_and_converges() {
    let (meta, values, truth, sim) = simulator_truth();
    let report = run_backend(
        RuntimeKind::Mixed { reactor_threads: 2 },
        &meta,
        values,
        &truth,
    );
    assert_eq!(
        report.peers_without_estimate, 0,
        "a mixed cluster must deliver the instance to every node"
    );
    assert!(
        (report.avg_cdf - sim.avg_cdf).abs() <= 1e-3,
        "mixed Err_a {:.6e} vs simulator {:.6e}",
        report.avg_cdf,
        sim.avg_cdf
    );
}

/// Frame-decode fuzz through the reactor's nonblocking read path: every
/// category of malformed input must end as a counter bump and a closed
/// connection, with the node still serving control frames afterwards.
#[test]
fn reactor_read_path_rejects_garbage_and_stays_responsive() {
    let config = ClusterConfig::try_new(NodeConfig {
        tick: Duration::from_millis(25),
        io_timeout: Duration::from_millis(15),
        retries: 2,
        queue_capacity: 4,
        view_size: 8,
        seed: 7,
    })
    .unwrap()
    .with_runtime(RuntimeKind::Reactor { threads: 1 })
    .unwrap();
    let cluster = Cluster::launch(
        (0..4).map(|i| AttrValue::Single(i as f64)).collect(),
        config,
    )
    .expect("cluster launch");
    let target = &cluster.nodes()[0];
    let addr = format!("127.0.0.1:{}", target.port());
    let before = target.stats.snapshot();

    // Each payload is one connection's worth of hostile bytes. The
    // reactor must never block on them: it reads nonblockingly, decodes,
    // counts, and drops the connection.
    let oversized = {
        let mut b = (adam2_deploy::MAX_FRAME as u32 + 1).to_le_bytes().to_vec();
        b.extend_from_slice(&[0u8; 16]);
        b
    };
    let unknown_kind = {
        let mut b = 1u32.to_le_bytes().to_vec();
        b.push(0xEE);
        b
    };
    let truncated_body = {
        // A complete frame whose body is internally truncated: kind says
        // Request (1) but the sender-port/message payload is one byte.
        let mut b = 2u32.to_le_bytes().to_vec();
        b.extend_from_slice(&[1u8, 0u8]);
        b
    };
    // 0xA5A5A5A5 as a length prefix is far past MAX_FRAME.
    let garbage = vec![0xA5u8; 64];
    let payloads: Vec<Vec<u8>> = vec![oversized, unknown_kind, truncated_body, garbage];
    let hostile = payloads.len();
    for payload in payloads {
        let mut conn = TcpStream::connect(&addr).expect("connect");
        conn.write_all(&payload).expect("write fuzz payload");
        // Closing immediately is fine: the kernel delivers the buffered
        // bytes to the accepted socket before EOF.
        drop(conn);
    }

    // A valid frame delivered byte-by-byte exercises the partial-read
    // accumulation path: header split from body, body split in two.
    {
        let mut conn = TcpStream::connect(&addr).expect("connect");
        let frame = Frame::GetEstimate.encode();
        for chunk in frame.as_ref().chunks(3) {
            conn.write_all(chunk).expect("write chunk");
            conn.flush().unwrap();
            std::thread::sleep(Duration::from_millis(2));
        }
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        match read_frame(&mut conn)
            .expect("read response")
            .expect("decode")
        {
            Frame::Estimate(_) => {}
            other => panic!("expected Estimate, got {other:?}"),
        }
    }

    // The counters must reflect every hostile connection, and the node
    // must still answer control traffic on a fresh socket.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let snap = target.stats.snapshot();
        let counted = (snap.malformed_frames + snap.frames_rejected_invalid)
            .saturating_sub(before.malformed_frames + before.frames_rejected_invalid);
        if counted >= hostile as u64 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "only {counted} of {hostile} hostile connections were counted"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    let mut conn = TcpStream::connect(&addr).expect("connect after fuzz");
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write_frame(&mut conn, &Frame::GetEstimate).expect("write control frame");
    match read_frame(&mut conn)
        .expect("read response")
        .expect("decode")
    {
        Frame::Estimate(_) => {}
        other => panic!("expected Estimate, got {other:?}"),
    }

    assert!(cluster.shutdown().clean);
}
