//! Result reporting: aligned tables, CSV output, ASCII charts.

use std::io::Write as _;

/// Formats an error value the way the paper's log-scale figures read:
/// scientific for small values, fixed for percent-scale ones.
pub fn fmt_err(v: f64) -> String {
    if !v.is_finite() {
        "n/a".to_string()
    } else if v == 0.0 {
        "0".to_string()
    } else if v < 1e-3 {
        format!("{v:.2e}")
    } else {
        format!("{v:.4}")
    }
}

/// A simple aligned table that can also be written as CSV.
///
/// # Examples
///
/// ```
/// let mut t = adam2_bench::Table::new(vec!["k", "err"]);
/// t.row(vec!["10".into(), "0.5".into()]);
/// let rendered = t.render();
/// assert!(rendered.contains("err"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(cell);
                out.extend(std::iter::repeat_n(' ', w - cell.len()));
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        line(&self.headers, &widths, &mut out);
        let rule: String = widths
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let dash = "-".repeat(*w);
                if i > 0 {
                    format!("  {dash}")
                } else {
                    dash
                }
            })
            .collect();
        out.push_str(&rule);
        out.push('\n');
        for row in &self.rows {
            line(row, &widths, &mut out);
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Writes the table as CSV (RFC 4180-style quoting for cells that need
    /// it).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from writing the file.
    pub fn write_csv(&self, path: &str) -> std::io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut write_row = |cells: &[String]| -> std::io::Result<()> {
            let line: Vec<String> = cells.iter().map(|c| escape(c)).collect();
            writeln!(file, "{}", line.join(","))
        };
        write_row(&self.headers)?;
        for row in &self.rows {
            write_row(row)?;
        }
        Ok(())
    }

    /// Writes CSV if a path was requested, reporting success on stdout.
    pub fn maybe_write_csv(&self, path: Option<&str>) {
        if let Some(path) = path {
            match self.write_csv(path) {
                Ok(()) => println!("(csv written to {path})"),
                Err(e) => eprintln!("csv write failed: {e}"),
            }
        }
    }
}

/// A quick-look ASCII line chart with optional log axes, for eyeballing
/// the shape of a series against the paper's figures without leaving the
/// terminal.
#[derive(Debug, Clone)]
pub struct AsciiChart {
    width: usize,
    height: usize,
    log_x: bool,
    log_y: bool,
    series: Vec<Series>,
}

/// One plotted series: symbol, legend label, and `(x, y)` points.
type Series = (char, String, Vec<(f64, f64)>);

impl AsciiChart {
    /// Creates an empty chart of the given character dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is smaller than 8.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width >= 8 && height >= 8, "chart too small");
        Self {
            width,
            height,
            log_x: false,
            log_y: false,
            series: Vec::new(),
        }
    }

    /// Uses a logarithmic x-axis.
    pub fn log_x(mut self) -> Self {
        self.log_x = true;
        self
    }

    /// Uses a logarithmic y-axis (the paper's error plots are log-y).
    pub fn log_y(mut self) -> Self {
        self.log_y = true;
        self
    }

    /// Adds a series plotted with `symbol`.
    pub fn series(
        mut self,
        symbol: char,
        label: impl Into<String>,
        points: Vec<(f64, f64)>,
    ) -> Self {
        self.series.push((symbol, label.into(), points));
        self
    }

    fn transform(&self, v: f64, log: bool) -> Option<f64> {
        if !v.is_finite() {
            return None;
        }
        if log {
            if v <= 0.0 {
                return None;
            }
            Some(v.log10())
        } else {
            Some(v)
        }
    }

    /// Renders the chart (empty string if no plottable points).
    pub fn render(&self) -> String {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (_, _, pts) in &self.series {
            for (x, y) in pts {
                if let (Some(tx), Some(ty)) = (
                    self.transform(*x, self.log_x),
                    self.transform(*y, self.log_y),
                ) {
                    xs.push(tx);
                    ys.push(ty);
                }
            }
        }
        if xs.is_empty() {
            return String::new();
        }
        let (x_lo, x_hi) = min_max(&xs);
        let (y_lo, y_hi) = min_max(&ys);
        let x_span = if x_hi > x_lo { x_hi - x_lo } else { 1.0 };
        let y_span = if y_hi > y_lo { y_hi - y_lo } else { 1.0 };

        let mut grid = vec![vec![' '; self.width]; self.height];
        for (symbol, _, pts) in &self.series {
            for (x, y) in pts {
                let (Some(tx), Some(ty)) = (
                    self.transform(*x, self.log_x),
                    self.transform(*y, self.log_y),
                ) else {
                    continue;
                };
                let col = (((tx - x_lo) / x_span) * (self.width - 1) as f64).round() as usize;
                let row = (((ty - y_lo) / y_span) * (self.height - 1) as f64).round() as usize;
                let row = self.height - 1 - row;
                grid[row.min(self.height - 1)][col.min(self.width - 1)] = *symbol;
            }
        }

        let fmt_axis = |t: f64, log: bool| -> String {
            let v = if log { 10f64.powf(t) } else { t };
            if v != 0.0 && (v.abs() < 1e-2 || v.abs() >= 1e4) {
                format!("{v:.1e}")
            } else {
                format!("{v:.2}")
            }
        };
        let mut out = String::new();
        for (i, row) in grid.iter().enumerate() {
            let label = if i == 0 {
                fmt_axis(y_hi, self.log_y)
            } else if i == self.height - 1 {
                fmt_axis(y_lo, self.log_y)
            } else {
                String::new()
            };
            out.push_str(&format!("{label:>9} |"));
            out.extend(row.iter());
            out.push('\n');
        }
        out.push_str(&format!("{:>9} +{}\n", "", "-".repeat(self.width)));
        out.push_str(&format!(
            "{:>10} {}    ...    {}\n",
            "",
            fmt_axis(x_lo, self.log_x),
            fmt_axis(x_hi, self.log_x)
        ));
        let legend: Vec<String> = self
            .series
            .iter()
            .map(|(sym, label, _)| format!("{sym} = {label}"))
            .collect();
        out.push_str(&format!("{:>10} {}\n", "", legend.join("   ")));
        out
    }

    /// Prints the chart to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

fn min_max(values: &[f64]) -> (f64, f64) {
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_err_ranges() {
        assert_eq!(fmt_err(0.0), "0");
        assert_eq!(fmt_err(0.05), "0.0500");
        assert_eq!(fmt_err(5e-7), "5.00e-7");
        assert_eq!(fmt_err(f64::NAN), "n/a");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["instance", "err_m"]);
        t.row(vec!["1".into(), "0.5".into()]);
        t.row(vec!["10".into(), "0.05".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("instance"));
        assert!(lines[1].starts_with("--------"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn csv_roundtrip_with_quoting() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["with,comma".into(), "with\"quote".into()]);
        let path = std::env::temp_dir().join("adam2_table_test.csv");
        t.write_csv(path.to_str().unwrap()).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("\"with,comma\""));
        assert!(content.contains("\"with\"\"quote\""));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn chart_renders_series() {
        let chart = AsciiChart::new(40, 10)
            .log_y()
            .series('*', "errm", vec![(1.0, 1.0), (2.0, 0.1), (3.0, 0.01)])
            .series('o', "erra", vec![(1.0, 0.5), (2.0, 0.05), (3.0, 0.005)]);
        let s = chart.render();
        assert!(s.contains('*'));
        assert!(s.contains('o'));
        assert!(s.contains("errm"));
    }

    #[test]
    fn chart_skips_nonpositive_on_log_axis() {
        let chart = AsciiChart::new(20, 8)
            .log_y()
            .series('x', "s", vec![(1.0, 0.0)]);
        assert_eq!(chart.render(), "");
    }
}
