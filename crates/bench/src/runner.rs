//! Shared experiment drivers: engine construction, instance sequencing,
//! and the paper's cross-peer error aggregation.

use std::collections::HashMap;
use std::sync::Arc;

use rand::RngExt as _;

use adam2_baselines::{EquiDepthConfig, EquiDepthProtocol, PhaseMeta};
use adam2_core::{
    discrete_errors_over, Adam2Config, Adam2Protocol, AttrValue, InstanceMeta, InterpCdf, StepCdf,
};
use adam2_sim::{
    derive_seed, seeded_rng, ChurnModel, Engine, EngineConfig, MassAuditor, NodeId, RunManifest,
    SimTelemetry,
};
use adam2_traces::{Attribute, Population};

/// A generated population with its exact CDF.
#[derive(Debug, Clone)]
pub struct ExperimentSetup {
    /// The per-node attribute values.
    pub population: Population,
    /// The exact CDF of the initial population.
    pub truth: StepCdf,
}

/// Generates the population for `attr` with `nodes` nodes.
pub fn setup(attr: Attribute, nodes: usize, seed: u64) -> ExperimentSetup {
    let mut rng = seeded_rng(derive_seed(seed, 0xA7_7B));
    let population = Population::generate(attr, nodes, &mut rng);
    let truth = StepCdf::from_values(population.values().to_vec());
    ExperimentSetup { population, truth }
}

/// Builds an Adam2 engine over the population (nodes in population order;
/// churn replacements drawn fresh from the same attribute distribution).
pub fn adam2_engine(
    setup: &ExperimentSetup,
    config: Adam2Config,
    seed: u64,
    churn: ChurnModel,
) -> Engine<Adam2Protocol> {
    let pop = setup.population.clone();
    let proto = Adam2Protocol::with_population(config, pop.values().to_vec(), move |rng| {
        pop.draw_fresh(rng)
    });
    let engine_config =
        EngineConfig::new(setup.population.len(), derive_seed(seed, 0xE7_61)).with_churn(churn);
    Engine::new(engine_config, proto)
}

/// Builds an Adam2 engine configured for the phase-split parallel round
/// path with `threads` worker threads (`0` = auto-detect). Identical to
/// [`adam2_engine`] except for the thread count, so sequential/parallel
/// comparisons start from the same population and seed.
pub fn adam2_engine_threaded(
    setup: &ExperimentSetup,
    config: Adam2Config,
    seed: u64,
    churn: ChurnModel,
    threads: usize,
) -> Engine<Adam2Protocol> {
    let pop = setup.population.clone();
    let proto = Adam2Protocol::with_population(config, pop.values().to_vec(), move |rng| {
        pop.draw_fresh(rng)
    });
    let engine_config = EngineConfig::new(setup.population.len(), derive_seed(seed, 0xE7_61))
        .with_churn(churn)
        .with_threads(threads);
    Engine::new(engine_config, proto)
}

/// Builds an Adam2 engine with full control over the engine configuration:
/// `configure` receives the base config (population size + derived seed)
/// and can layer loss rates, exchange repair, fault scenarios via
/// [`Engine::set_fault_scenario`] afterwards, thread counts, or churn on
/// top. The population and seed derivation match [`adam2_engine`], so
/// faulted and fault-free runs are directly comparable.
pub fn adam2_engine_with(
    setup: &ExperimentSetup,
    config: Adam2Config,
    seed: u64,
    configure: impl FnOnce(EngineConfig) -> EngineConfig,
) -> Engine<Adam2Protocol> {
    let pop = setup.population.clone();
    let proto = Adam2Protocol::with_population(config, pop.values().to_vec(), move |rng| {
        pop.draw_fresh(rng)
    });
    let engine_config = configure(EngineConfig::new(
        setup.population.len(),
        derive_seed(seed, 0xE7_61),
    ));
    Engine::new(engine_config, proto)
}

/// Builds an EquiDepth engine over the same population.
pub fn equidepth_engine(
    setup: &ExperimentSetup,
    config: EquiDepthConfig,
    seed: u64,
    churn: ChurnModel,
) -> Engine<EquiDepthProtocol> {
    let pop = setup.population.clone();
    let proto = EquiDepthProtocol::with_population(config, pop.values().to_vec(), move |rng| {
        pop.draw_fresh(rng)
    });
    let engine_config =
        EngineConfig::new(setup.population.len(), derive_seed(seed, 0xE7_61)).with_churn(churn);
    Engine::new(engine_config, proto)
}

/// Starts one Adam2 aggregation instance from a random initiator.
pub fn start_instance(engine: &mut Engine<Adam2Protocol>) -> Arc<InstanceMeta> {
    engine
        .with_ctx(|proto, ctx| {
            let initiator = ctx.nodes.random_id(ctx.rng).expect("population non-empty");
            proto.start_instance(initiator, ctx)
        })
        .expect("instance start")
}

/// Starts one EquiDepth phase from a random initiator.
pub fn start_phase(engine: &mut Engine<EquiDepthProtocol>) -> Arc<PhaseMeta> {
    engine
        .with_ctx(|proto, ctx| {
            let initiator = ctx.nodes.random_id(ctx.rng).expect("population non-empty");
            proto.start_phase(initiator, ctx)
        })
        .expect("phase start")
}

/// Runs an instance/phase to completion: its duration plus the
/// finalisation round.
pub fn complete_instance<P: adam2_sim::Protocol>(engine: &mut Engine<P>, duration: u64) {
    engine.run_rounds(duration + 1);
}

/// Like [`complete_instance`], but on the parallel round path.
pub fn complete_instance_parallel<P>(engine: &mut Engine<P>, duration: u64)
where
    P: adam2_sim::Protocol + Sync,
    P::Node: Send + Sync,
{
    engine.run_rounds_parallel(duration + 1);
}

/// The exact CDF of the *current* (possibly churned) population.
pub fn current_truth(engine: &Engine<Adam2Protocol>) -> StepCdf {
    let values: Vec<f64> = engine
        .nodes()
        .iter()
        .map(|(_, node)| match node.value() {
            AttrValue::Single(v) => *v,
            AttrValue::Multi(_) => {
                unreachable!("current_truth is for single-valued populations")
            }
        })
        .collect();
    StepCdf::from_values(values)
}

/// The exact CDF of the current EquiDepth population.
pub fn equidepth_truth(engine: &Engine<EquiDepthProtocol>) -> StepCdf {
    let values: Vec<f64> = engine.nodes().iter().map(|(_, n)| n.value()).collect();
    StepCdf::from_values(values)
}

/// Cross-peer error aggregates for one evaluation point, mirroring the
/// paper's metrics:
///
/// * `max_points` / `avg_points` — error of the aggregated fractions at
///   the interpolation points only (`max_p max_i` and `avg_p avg_i` of
///   `|f_i - F(t_i)|`);
/// * `max_cdf` / `avg_cdf` — error over the entire CDF domain
///   (`Err_m = max_p`, `Err_a = avg_p` of the discrete-domain distances).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorReport {
    /// `Err_m` restricted to the interpolation points.
    pub max_points: f64,
    /// `Err_a` restricted to the interpolation points.
    pub avg_points: f64,
    /// `Err_m` over the entire CDF domain.
    pub max_cdf: f64,
    /// `Err_a` over the entire CDF domain.
    pub avg_cdf: f64,
    /// Peers that contributed an estimate.
    pub peers_with_estimate: usize,
    /// Peers without any estimate (each counted as error 1.0).
    pub peers_without_estimate: usize,
}

/// One peer's completed estimate in engine-independent form: the
/// interpolation points plus the converged extrema, from which the full
/// CDF rebuilds exactly (a [`crate::runner`] evaluation does not care
/// whether the peer ran inside the simulator or behind a socket in the
/// deploy runtime).
#[derive(Debug, Clone, PartialEq)]
pub struct PeerEstimate {
    /// Instance the estimate came from (estimates are grouped by it).
    pub instance: u64,
    /// Interpolation thresholds `t_i`.
    pub thresholds: Vec<f64>,
    /// Normalised fractions `f_i`.
    pub fractions: Vec<f64>,
    /// Converged global minimum.
    pub min: f64,
    /// Converged global maximum.
    pub max: f64,
}

/// Evaluates every node's *latest completed estimate* against `truth`.
///
/// `Err_m` over the whole domain is exact across all peers (estimates are
/// grouped by instance so the envelope trick applies within each group);
/// `Err_a` over the whole domain averages a deterministic sample of
/// `sample_peers` peers (the paper reports cross-peer deviation below
/// `1e-5`). Peers without an estimate contribute the maximum error 1.0, as
/// in the paper's churn evaluation.
pub fn evaluate_estimates(
    engine: &Engine<Adam2Protocol>,
    truth: &StepCdf,
    sample_peers: usize,
    seed: u64,
) -> ErrorReport {
    let peers: Vec<Option<PeerEstimate>> = engine
        .nodes()
        .iter()
        .map(|(_, node)| {
            node.estimate().map(|est| PeerEstimate {
                instance: est.instance.as_u64(),
                thresholds: est.thresholds.clone(),
                fractions: est.fractions.clone(),
                min: est.min,
                max: est.max,
            })
        })
        .collect();
    evaluate_peer_estimates(&peers, truth, sample_peers, seed)
}

/// Engine-independent core of [`evaluate_estimates`]: scores a list of
/// per-peer estimates (one slot per peer; `None` = no estimate, error 1.0)
/// against `truth`. The deploy harness feeds estimates collected over
/// control sockets through the same metric pipeline the simulator uses.
pub fn evaluate_peer_estimates(
    estimates: &[Option<PeerEstimate>],
    truth: &StepCdf,
    sample_peers: usize,
    seed: u64,
) -> ErrorReport {
    #[derive(Default)]
    struct Group {
        thresholds: Vec<f64>,
        min: f64,
        max: f64,
        lo: Vec<f64>,
        hi: Vec<f64>,
    }
    let mut groups: HashMap<u64, Group> = HashMap::new();
    let mut max_points = 0.0f64;
    let mut sum_points = 0.0f64;
    let mut with = 0usize;
    let mut without = 0usize;
    let mut cdfs: Vec<InterpCdf> = Vec::new();

    for est in estimates {
        let Some(est) = est else {
            without += 1;
            continue;
        };
        // The stored fractions are the normalised values the estimate's
        // CDF was interpolated from, so the rebuild is exact.
        let Ok(cdf) = InterpCdf::from_points(est.min, est.max, &est.thresholds, &est.fractions)
        else {
            without += 1;
            continue;
        };
        with += 1;
        cdfs.push(cdf);
        // Point errors, exact over all peers.
        let mut peer_sum = 0.0f64;
        for (t, f) in est.thresholds.iter().zip(&est.fractions) {
            let e = (truth.eval(*t) - f).abs();
            max_points = max_points.max(e);
            peer_sum += e;
        }
        if !est.thresholds.is_empty() {
            sum_points += peer_sum / est.thresholds.len() as f64;
        }
        // Envelope per instance for the exact whole-domain Err_m.
        let group = groups.entry(est.instance).or_insert_with(|| Group {
            thresholds: est.thresholds.clone(),
            min: est.min,
            max: est.max,
            lo: vec![f64::INFINITY; est.fractions.len()],
            hi: vec![f64::NEG_INFINITY; est.fractions.len()],
        });
        group.min = group.min.min(est.min);
        group.max = group.max.max(est.max);
        for (i, f) in est.fractions.iter().enumerate() {
            group.lo[i] = group.lo[i].min(*f);
            group.hi[i] = group.hi[i].max(*f);
        }
    }

    let mut max_cdf = if without > 0 { 1.0 } else { 0.0f64 };
    for group in groups.values() {
        for fractions in [&group.lo, &group.hi] {
            if let Ok(cdf) =
                InterpCdf::from_points(group.min, group.max, &group.thresholds, fractions)
            {
                let (m, _) = discrete_errors_over(truth, &cdf, truth.min(), truth.max());
                max_cdf = max_cdf.max(m);
            }
        }
    }

    // Err_a over the whole domain: deterministic peer sample.
    let mut rng = seeded_rng(derive_seed(seed, 0x5A_3F));
    let mut sum_cdf = without as f64; // absent estimates count as 1.0
    let samples = sample_peers.min(cdfs.len());
    for _ in 0..samples {
        let cdf = &cdfs[rng.random_range(0..cdfs.len())];
        let (_, a) = discrete_errors_over(truth, cdf, truth.min(), truth.max());
        sum_cdf += a;
    }
    let avg_cdf = if samples + without > 0 {
        // Weight the sampled mean by the estimated population share.
        let sampled_mean = if samples > 0 {
            (sum_cdf - without as f64) / samples as f64
        } else {
            0.0
        };
        (sampled_mean * with as f64 + without as f64) / (with + without).max(1) as f64
    } else {
        0.0
    };
    let max_points = if without > 0 { 1.0 } else { max_points };
    let avg_points = (sum_points + without as f64) / (with + without).max(1) as f64;

    ErrorReport {
        max_points,
        avg_points,
        max_cdf,
        avg_cdf,
        peers_with_estimate: with,
        peers_without_estimate: without,
    }
}

/// Evaluates every EquiDepth node's latest estimate against `truth`.
///
/// EquiDepth estimates differ structurally per peer (no shared
/// thresholds), so both whole-domain aggregates use the deterministic
/// peer sample for the average and a sample-based maximum (the paper's
/// EquiDepth numbers are far from Adam2's, so sampling precision is not
/// the bottleneck).
pub fn evaluate_equidepth_estimates(
    engine: &Engine<EquiDepthProtocol>,
    truth: &StepCdf,
    sample_peers: usize,
    seed: u64,
) -> ErrorReport {
    let mut with = 0usize;
    let mut without = 0usize;
    let mut cdfs: Vec<&InterpCdf> = Vec::new();
    for (_, node) in engine.nodes().iter() {
        match node.estimate() {
            Some(est) => {
                with += 1;
                cdfs.push(est);
            }
            None => without += 1,
        }
    }
    let mut rng = seeded_rng(derive_seed(seed, 0x5A_40));
    let mut max_cdf = if without > 0 { 1.0 } else { 0.0f64 };
    let mut sum_cdf = 0.0f64;
    let samples = sample_peers
        .min(cdfs.len())
        .max(if cdfs.is_empty() { 0 } else { 1 });
    for _ in 0..samples {
        let cdf = cdfs[rng.random_range(0..cdfs.len())];
        let (m, a) = discrete_errors_over(truth, cdf, truth.min(), truth.max());
        max_cdf = max_cdf.max(m);
        sum_cdf += a;
    }
    let sampled_mean = if samples > 0 {
        sum_cdf / samples as f64
    } else {
        0.0
    };
    let avg_cdf = (sampled_mean * with as f64 + without as f64) / (with + without).max(1) as f64;
    ErrorReport {
        max_points: max_cdf,
        avg_points: avg_cdf,
        max_cdf,
        avg_cdf,
        peers_with_estimate: with,
        peers_without_estimate: without,
    }
}

/// Conservation defect of one running instance, aggregated over its
/// current participants.
///
/// Both quantities are invariant under joins and symmetric merges, so any
/// departure from 0 measures mass injected or destroyed by the network
/// (asymmetric half-exchanges, crashed participants):
///
/// * `weight` — `Σ w_p − 1` (the system-size mass; exactly 0 on a
///   fault-free run);
/// * `fraction` — `max_i |Σ_p f_i(p) − Σ_p indicator_p(t_i)|` (the
///   averaging mass at the worst interpolation point).
///
/// Restart epochs re-seed both masses, so defects are meaningful within
/// one epoch (the bench fault scenarios run with self-healing off).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MassDefect {
    /// `Σ w_p − 1` over participants.
    pub weight: f64,
    /// Worst-threshold averaging-mass defect over participants.
    pub fraction: f64,
}

/// Measures the conservation defect of `meta`'s instance right now.
pub fn mass_defect(engine: &Engine<Adam2Protocol>, meta: &InstanceMeta) -> MassDefect {
    let lambda = meta.thresholds.len();
    let mut weight = 0.0f64;
    let mut fractions = vec![0.0f64; lambda];
    let mut indicators = vec![0.0f64; lambda];
    let mut participants = 0usize;
    for (_, node) in engine.nodes().iter() {
        let Some(inst) = node.active_instance(meta.id) else {
            continue;
        };
        participants += 1;
        weight += inst.weight;
        for (acc, f) in fractions.iter_mut().zip(&inst.fractions) {
            *acc += f;
        }
        for (acc, t) in indicators.iter_mut().zip(meta.thresholds.iter()) {
            *acc += node.value().indicator(*t);
        }
    }
    let fraction = fractions
        .iter()
        .zip(&indicators)
        .map(|(f, x)| (f - x).abs())
        .fold(0.0f64, f64::max);
    MassDefect {
        weight: if participants > 0 { weight - 1.0 } else { 0.0 },
        fraction,
    }
}

/// Keys used by [`run_instance_audited`] in its [`MassAuditor`].
pub const AUDIT_WEIGHT: u64 = 0;
/// See [`AUDIT_WEIGHT`].
pub const AUDIT_FRACTION: u64 = 1;

/// Runs `rounds` gossip rounds, feeding the per-round [`MassDefect`] of
/// `meta`'s instance into a [`MassAuditor`] (component [`AUDIT_WEIGHT`]
/// tracks the weight defect, [`AUDIT_FRACTION`] the averaging-mass
/// defect). `auditor.max_drift()` over a run bounds the worst conservation
/// violation any round exhibited.
pub fn run_instance_audited(
    engine: &mut Engine<Adam2Protocol>,
    meta: &InstanceMeta,
    rounds: u64,
) -> MassAuditor {
    let mut auditor = MassAuditor::new();
    // Baseline both components at exactly 0 so recorded drifts are the
    // defects themselves.
    auditor.observe(AUDIT_WEIGHT, 0.0);
    auditor.observe(AUDIT_FRACTION, 0.0);
    for _ in 0..rounds {
        engine.run_round();
        let defect = mass_defect(engine, meta);
        auditor.observe(AUDIT_WEIGHT, defect.weight);
        auditor.observe(AUDIT_FRACTION, defect.fraction);
        let completed = engine.round() - 1;
        if let Some(t) = engine.telemetry_mut() {
            t.annotate_round(
                completed,
                f64::NAN,
                f64::NAN,
                defect.weight,
                defect.fraction,
            );
        }
    }
    auditor
}

/// Per-round error sample of a *running* instance (Figs. 6 and 12).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundSample {
    /// Rounds since the instance started (1-based: after the first gossip
    /// round).
    pub round: u64,
    /// `Err_m` at the interpolation points, across all participants
    /// (non-participants count as 1.0).
    pub max_points: f64,
    /// `Err_a` at the interpolation points.
    pub avg_points: f64,
    /// `Err_m` over the entire CDF domain (sampled peers).
    pub max_cdf: f64,
    /// `Err_a` over the entire CDF domain (sampled peers).
    pub avg_cdf: f64,
    /// Fraction of nodes participating in the instance.
    pub participation: f64,
}

/// Runs `rounds` gossip rounds of a single Adam2 instance, sampling the
/// error metrics after every round.
///
/// Nodes that have not yet joined the instance (or that joined the system
/// after it started) contribute the maximum error 1.0, reproducing the
/// initial plateau of Fig. 6(a). Whole-domain errors use a deterministic
/// sample of `sample_peers` participants per round.
pub fn run_instance_tracked(
    engine: &mut Engine<Adam2Protocol>,
    meta: &InstanceMeta,
    truth_of: impl Fn(&Engine<Adam2Protocol>) -> StepCdf,
    rounds: u64,
    sample_peers: usize,
    seed: u64,
) -> Vec<RoundSample> {
    let mut series = Vec::with_capacity(rounds as usize);
    let mut rng = seeded_rng(derive_seed(seed, 0x90_11));
    for r in 1..=rounds {
        engine.run_round();
        let truth = truth_of(engine);

        let mut max_points = 0.0f64;
        let mut sum_points = 0.0f64;
        let mut participants = Vec::new();
        let mut absent = 0usize;
        let mut eligible = 0usize;
        for (id, node) in engine.nodes().iter() {
            // Nodes that joined the system after the instance started are
            // excluded from the evaluation (the paper excludes them since
            // "their CDF approximations are undefined").
            if node.joined_round() > meta.start_round {
                continue;
            }
            eligible += 1;
            let Some(inst) = node.active_instance(meta.id) else {
                absent += 1;
                continue;
            };
            participants.push(id);
            let fractions = inst.normalised_fractions();
            let mut peer_sum = 0.0f64;
            for (t, f) in meta.thresholds.iter().zip(&fractions) {
                let e = (truth.eval(*t) - f).abs();
                max_points = max_points.max(e);
                peer_sum += e;
            }
            sum_points += peer_sum / meta.thresholds.len().max(1) as f64;
        }
        if absent > 0 {
            max_points = 1.0;
        }
        let avg_points = (sum_points + absent as f64) / (participants.len() + absent).max(1) as f64;

        // Whole-domain errors over a per-round peer sample.
        let mut max_cdf = if absent > 0 { 1.0 } else { 0.0f64 };
        let mut sum_cdf = 0.0f64;
        let samples = sample_peers.min(participants.len());
        for _ in 0..samples {
            let id: NodeId = participants[rng.random_range(0..participants.len())];
            let node = engine.nodes().get(id).expect("participant live");
            let inst = node.active_instance(meta.id).expect("participant active");
            let fractions = inst.normalised_fractions();
            if inst.min.is_finite() && inst.max.is_finite() && inst.min <= inst.max {
                if let Ok(cdf) =
                    InterpCdf::from_points(inst.min, inst.max, &meta.thresholds, &fractions)
                {
                    let (m, a) = discrete_errors_over(&truth, &cdf, truth.min(), truth.max());
                    max_cdf = max_cdf.max(m);
                    sum_cdf += a;
                    continue;
                }
            }
            sum_cdf += 1.0;
        }
        let sampled_mean = if samples > 0 {
            sum_cdf / samples as f64
        } else {
            1.0
        };
        let avg_cdf = (sampled_mean * participants.len() as f64 + absent as f64)
            / (participants.len() + absent).max(1) as f64;

        let completed = engine.round() - 1;
        if let Some(t) = engine.telemetry_mut() {
            t.annotate_round(completed, max_cdf, avg_cdf, f64::NAN, f64::NAN);
        }
        series.push(RoundSample {
            round: r,
            max_points,
            avg_points,
            max_cdf,
            avg_cdf,
            participation: if eligible > 0 {
                participants.len() as f64 / eligible as f64
            } else {
                0.0
            },
        });
    }
    series
}

/// Attaches a fresh telemetry store to `engine` when `dir` is set (the
/// `--telemetry <dir>` flag). Recording is purely observational, so
/// attaching never changes experiment results.
pub fn maybe_attach_telemetry<P: adam2_sim::Protocol>(
    engine: &mut Engine<P>,
    dir: Option<&String>,
) {
    if dir.is_some() {
        engine.attach_telemetry(SimTelemetry::new());
    }
}

/// Detaches `engine`'s telemetry (if any) and exports it under
/// `dir/<label>/` — `manifest.json`, `rounds.jsonl`, `rounds.csv`, and
/// `events.jsonl` — with a [`RunManifest`] describing the run. A no-op
/// when no telemetry is attached. Returns the manifest that was written.
pub fn export_telemetry<P: adam2_sim::Protocol>(
    engine: &mut Engine<P>,
    dir: &str,
    label: &str,
    experiment: &str,
    config_desc: &str,
    seed: u64,
) -> Option<RunManifest> {
    let telemetry = engine.detach_telemetry()?;
    let manifest = RunManifest::new(experiment, config_desc, seed, engine.threads());
    let out = std::path::Path::new(dir).join(label);
    telemetry
        .export(&out, &manifest)
        .unwrap_or_else(|e| panic!("telemetry export to {} failed: {e}", out.display()));
    Some(manifest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adam2_core::BootstrapKind;

    fn small_setup() -> ExperimentSetup {
        setup(Attribute::Ram, 400, 1)
    }

    #[test]
    fn setup_is_deterministic() {
        let a = setup(Attribute::Cpu, 100, 5);
        let b = setup(Attribute::Cpu, 100, 5);
        assert_eq!(a.population.values(), b.population.values());
        assert_eq!(a.truth.min(), b.truth.min());
    }

    #[test]
    fn full_instance_cycle_produces_low_error() {
        let s = small_setup();
        let config = Adam2Config::new()
            .with_lambda(20)
            .with_rounds_per_instance(35)
            .with_bootstrap(BootstrapKind::Neighbours);
        let mut engine = adam2_engine(&s, config, 2, ChurnModel::None);
        start_instance(&mut engine);
        complete_instance(&mut engine, 35);
        let report = evaluate_estimates(&engine, &s.truth, 16, 2);
        assert_eq!(report.peers_without_estimate, 0);
        assert_eq!(report.peers_with_estimate, 400);
        assert!(report.max_points < 1e-6, "points err {}", report.max_points);
        assert!(report.max_cdf < 0.6, "cdf err {}", report.max_cdf);
        assert!(report.avg_cdf <= report.max_cdf);
    }

    #[test]
    fn tracked_run_shows_convergence() {
        let s = small_setup();
        let config = Adam2Config::new()
            .with_lambda(10)
            .with_rounds_per_instance(40);
        let mut engine = adam2_engine(&s, config, 3, ChurnModel::None);
        let meta = start_instance(&mut engine);
        let series = run_instance_tracked(&mut engine, &meta, current_truth, 40, 8, 3);
        assert_eq!(series.len(), 40);
        // Early rounds: not everyone joined -> max error 1.
        assert_eq!(series[0].max_points, 1.0);
        // Late rounds: everyone joined and the averaging converged.
        let last = series.last().unwrap();
        assert_eq!(last.participation, 1.0);
        assert!(last.max_points < 1e-9, "late error {}", last.max_points);
        assert!(last.max_points <= series[5].max_points);
    }

    #[test]
    fn equidepth_cycle_produces_estimates() {
        let s = small_setup();
        let mut engine = equidepth_engine(&s, EquiDepthConfig::new(20, 30), 4, ChurnModel::None);
        start_phase(&mut engine);
        complete_instance(&mut engine, 30);
        let report = evaluate_equidepth_estimates(&engine, &s.truth, 16, 4);
        assert_eq!(report.peers_without_estimate, 0);
        assert!(report.max_cdf < 0.7);
        assert!(report.avg_cdf > 0.0);
    }

    #[test]
    fn repaired_protocol_survives_burst_loss_and_partition() {
        // The PR's acceptance scenario: 20 % burst loss over rounds 5..15
        // plus a 10-round overlay bisection over rounds 10..20, one
        // 35-round instance. With the two-phase repair the mass auditor
        // stays flat and the final Err_a lands within 2x of the fault-free
        // run; without it the burst visibly destroys averaging mass.
        use adam2_sim::{ExchangeRepair, FaultScenario, PartitionKind};

        let s = small_setup();
        let config = Adam2Config::new()
            .with_lambda(20)
            .with_rounds_per_instance(35)
            .with_bootstrap(BootstrapKind::Neighbours);
        let scenario = || {
            FaultScenario::new(7)
                .with_burst_loss(5, 15, 0.2)
                .with_partition(10, 20, PartitionKind::Bisect)
        };

        let mut fault_free = adam2_engine(&s, config, 2, ChurnModel::None);
        let meta = start_instance(&mut fault_free);
        let clean_audit = run_instance_audited(&mut fault_free, &meta, 36);
        let clean = evaluate_estimates(&fault_free, &s.truth, 16, 2);
        assert!(clean_audit.max_drift() < 1e-9, "clean run must conserve");

        let mut repaired =
            adam2_engine_with(&s, config, 2, |c| c.with_repair(ExchangeRepair::enabled()));
        repaired.set_fault_scenario(scenario()).expect("valid");
        let meta = start_instance(&mut repaired);
        let repaired_audit = run_instance_audited(&mut repaired, &meta, 36);
        let repaired_report = evaluate_estimates(&repaired, &s.truth, 16, 2);

        let mut unrepaired = adam2_engine(&s, config, 2, ChurnModel::None);
        unrepaired.set_fault_scenario(scenario()).expect("valid");
        let meta = start_instance(&mut unrepaired);
        let unrepaired_audit = run_instance_audited(&mut unrepaired, &meta, 36);

        assert!(
            repaired_audit.max_drift() < 1e-9,
            "repair must conserve mass: {}",
            repaired_audit.max_drift()
        );
        assert!(
            unrepaired_audit.max_drift() > 1e-4,
            "unrepaired burst should measurably leak: {}",
            unrepaired_audit.max_drift()
        );
        assert!(
            repaired_report.avg_cdf <= clean.avg_cdf * 2.0 + 1e-9,
            "repaired Err_a {} vs fault-free {}",
            repaired_report.avg_cdf,
            clean.avg_cdf
        );
        assert_eq!(repaired_report.peers_without_estimate, 0);
    }

    #[test]
    fn missing_estimates_count_as_max_error() {
        let s = small_setup();
        let config = Adam2Config::new()
            .with_lambda(5)
            .with_rounds_per_instance(30);
        let engine = adam2_engine(&s, config, 5, ChurnModel::None);
        // No instance run at all.
        let report = evaluate_estimates(&engine, &s.truth, 8, 5);
        assert_eq!(report.peers_with_estimate, 0);
        assert_eq!(report.max_cdf, 1.0);
        assert_eq!(report.avg_cdf, 1.0);
    }
}
