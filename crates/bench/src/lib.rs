//! Experiment harness regenerating every figure of the Adam2 paper.
//!
//! Each figure of Section VII has a binary in `src/bin/` (see DESIGN.md's
//! experiment index and EXPERIMENTS.md for paper-vs-measured results):
//!
//! | binary | paper figure |
//! |---|---|
//! | `fig04_distributions` | Fig. 4 — true attribute CDFs |
//! | `fig05_bootstrap` | Fig. 5 — uniform vs neighbour bootstrap |
//! | `fig06_single_instance` | Fig. 6 — per-round error, Adam2 vs EquiDepth |
//! | `fig07_heuristics` | Fig. 7 — HCut vs MinMax vs LCut |
//! | `fig08_equidepth` | Fig. 8 — EquiDepth across phases |
//! | `fig09_sampling` | Fig. 9 — random sampling vs sample count |
//! | `fig10_points` | Fig. 10 — accuracy vs number of points |
//! | `fig11_scalability` | Fig. 11 — accuracy vs system size |
//! | `fig12_churn_instance` | Fig. 12 — single instance under churn |
//! | `fig13_churn_rate` | Fig. 13 — accuracy vs churn rate |
//! | `fig14_confidence` | Fig. 14 — confidence-estimation error |
//! | `cost_table` | Section VII-I — communication cost |
//!
//! All binaries accept `--nodes N --seed S --full --csv PATH` (see
//! [`Args`]); defaults are sized to finish in seconds, `--full` runs the
//! paper's 100 000-node scale.

pub mod args;
pub mod report;
pub mod runner;

pub use args::Args;
pub use report::{fmt_err, AsciiChart, Table};
pub use runner::{
    adam2_engine, adam2_engine_threaded, adam2_engine_with, complete_instance,
    complete_instance_parallel, current_truth, equidepth_engine, equidepth_truth,
    evaluate_equidepth_estimates, evaluate_estimates, evaluate_peer_estimates, export_telemetry,
    mass_defect, maybe_attach_telemetry, run_instance_audited, run_instance_tracked, setup,
    start_instance, start_phase, ErrorReport, ExperimentSetup, MassDefect, PeerEstimate,
    RoundSample, AUDIT_FRACTION, AUDIT_WEIGHT,
};
