//! Runs every figure/table experiment in sequence, writing each output to
//! a results directory — the one-command regeneration of the paper's
//! entire evaluation section.
//!
//! ```text
//! run_all [--out DIR] [--full] [... shared flags forwarded to each experiment]
//! ```

use std::io::Write as _;
use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "fig04_distributions",
    "fig05_bootstrap",
    "fig06_single_instance",
    "fig07_heuristics",
    "fig08_equidepth",
    "fig09_sampling",
    "fig10_points",
    "fig11_scalability",
    "fig12_churn_instance",
    "fig13_churn_rate",
    "fig14_confidence",
    "cost_table",
    "exp_async",
    "exp_loss",
    "exp_dynamic",
    "exp_ablations",
];

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir = "results".to_string();
    if let Some(pos) = args.iter().position(|a| a == "--out") {
        if pos + 1 >= args.len() {
            eprintln!("run_all: --out requires a value");
            std::process::exit(2);
        }
        out_dir = args.remove(pos + 1);
        args.remove(pos);
    }
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("run_all: cannot create {out_dir}: {e}");
        std::process::exit(1);
    }

    let self_path = std::env::current_exe().expect("own path");
    let bin_dir = self_path.parent().expect("bin directory");

    let mut failures = 0;
    for experiment in EXPERIMENTS {
        let started = std::time::Instant::now();
        print!("{experiment:<24} ");
        std::io::stdout().flush().ok();
        let output = Command::new(bin_dir.join(experiment)).args(&args).output();
        match output {
            Ok(output) if output.status.success() => {
                let path = format!("{out_dir}/{experiment}.txt");
                if let Err(e) = std::fs::write(&path, &output.stdout) {
                    eprintln!("cannot write {path}: {e}");
                    failures += 1;
                    continue;
                }
                println!("ok ({:.1}s) -> {path}", started.elapsed().as_secs_f64());
            }
            Ok(output) => {
                println!("FAILED (exit {:?})", output.status.code());
                std::io::stderr().write_all(&output.stderr).ok();
                failures += 1;
            }
            Err(e) => {
                println!("FAILED to launch: {e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} experiment(s) failed");
        std::process::exit(1);
    }
    println!(
        "\nall {} experiments written to {out_dir}/",
        EXPERIMENTS.len()
    );
}
