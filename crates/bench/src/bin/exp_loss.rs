//! Extension experiment: Adam2 under message loss.
//!
//! The paper varies churn but assumes a lossless network. Here the
//! cycle-driven engine drops each message independently with probability
//! `p`: a lost request aborts an exchange harmlessly; a lost *response*
//! leaves an asymmetric half-exchange that violates mass conservation
//! (see [`gossip_exchange_response_lost`]). One instance per loss rate,
//! then four refinement instances, reporting both the averaging error at
//! the interpolation points and the end-to-end CDF error.
//!
//! [`gossip_exchange_response_lost`]: adam2_core::gossip_exchange_response_lost

use adam2_bench::{evaluate_estimates, fmt_err, start_instance, Args, Table};
use adam2_core::{Adam2Config, Adam2Protocol};
use adam2_sim::{Engine, EngineConfig};
use adam2_traces::Attribute;

fn main() {
    let mut args = Args::parse("exp_loss");
    if args.attrs.len() > 1 {
        args.attrs = vec![Attribute::Ram];
    }
    args.print_header("exp_loss", "extension (message loss; not a paper figure)");
    let attr = args.attrs[0];
    let setup = adam2_bench::setup(attr, args.nodes, args.seed);
    let instances: usize = args
        .extra_parsed("instances")
        .unwrap_or_else(|e| panic!("{e}"))
        .unwrap_or(4);
    let loss_rates = [0.0, 0.01, 0.05, 0.10, 0.20, 0.40];

    let mut table = Table::new(vec![
        "loss rate",
        "max@points",
        "avg@points",
        "Err_m CDF",
        "Err_a CDF",
    ]);
    for loss in loss_rates {
        let config = Adam2Config::new()
            .with_lambda(args.lambda)
            .with_rounds_per_instance(args.rounds);
        let pop = setup.population.clone();
        let proto = Adam2Protocol::with_population(config, pop.values().to_vec(), move |rng| {
            pop.draw_fresh(rng)
        });
        let engine_config = EngineConfig::new(args.nodes, args.seed).with_loss_rate(loss);
        let mut engine = Engine::new(engine_config, proto);
        for _ in 0..instances {
            start_instance(&mut engine);
            engine.run_rounds(args.rounds + 1);
        }
        let report = evaluate_estimates(&engine, &setup.truth, args.sample_peers, args.seed);
        table.row(vec![
            format!("{loss:.2}"),
            fmt_err(report.max_points),
            fmt_err(report.avg_points),
            fmt_err(report.max_cdf),
            fmt_err(report.avg_cdf),
        ]);
    }
    table.print();
    println!();
    println!(
        "expected shape: the point error rises from ~1e-15 (lossless) with the loss rate \
         (asymmetric half-exchanges leak averaging mass), but even heavy loss leaves the \
         end-to-end CDF error near its interpolation floor — loss mostly slows the epidemic."
    );
    table.maybe_write_csv(args.csv.as_deref());
}
