//! Validates telemetry export directories against the documented schema.
//!
//! Usage: `telemetry_check DIR...` where each `DIR` either contains a
//! single export (`manifest.json`, `rounds.jsonl`, `rounds.csv`,
//! `events.jsonl`) or is a parent whose subdirectories are exports (the
//! layout `--telemetry DIR` produces for multi-scenario binaries).
//!
//! `telemetry_check --bench FILE...` instead validates benchmark result
//! files (currently `BENCH_byzantine.json`): the embedded manifest must
//! match the manifest schema and every result record must carry exactly
//! the documented fields, with both engines present.
//!
//! Every record must carry exactly the documented fields — unknown and
//! missing fields both fail — with the documented types, and every event
//! `kind` must be one of the known wire names (see DESIGN.md's telemetry
//! section). CI runs this against a faulted smoke run so schema drift in
//! either the exporter or the docs breaks the build.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Expected type of one schema field.
#[derive(Debug, Clone, Copy, PartialEq)]
enum FieldType {
    /// Non-negative integer.
    Uint,
    /// JSON number or `null` (unmeasured round annotations).
    NumberOrNull,
    /// JSON string.
    Str,
    /// JSON string or `null` (e.g. `git_rev` outside a checkout).
    StrOrNull,
    /// JSON boolean.
    Bool,
}

/// `rounds.jsonl` / `rounds.csv` schema: the 22 per-round fields.
const ROUND_FIELDS: &[(&str, FieldType)] = &[
    ("round", FieldType::Uint),
    ("live_nodes", FieldType::Uint),
    ("err_max", FieldType::NumberOrNull),
    ("err_avg", FieldType::NumberOrNull),
    ("mass_weight_defect", FieldType::NumberOrNull),
    ("mass_fraction_defect", FieldType::NumberOrNull),
    ("round_bytes", FieldType::Uint),
    ("round_msgs", FieldType::Uint),
    ("exchanges", FieldType::Uint),
    ("repairs", FieldType::Uint),
    ("aborts", FieldType::Uint),
    ("faults", FieldType::Uint),
    ("crashes", FieldType::Uint),
    ("recoveries", FieldType::Uint),
    ("joins", FieldType::Uint),
    ("leaves", FieldType::Uint),
    ("heal_bumps", FieldType::Uint),
    ("bootstraps", FieldType::Uint),
    ("robust_rejects", FieldType::Uint),
    ("robust_trims", FieldType::Uint),
    ("inflight_exchanges", FieldType::Uint),
    ("queue_depth_max", FieldType::Uint),
];

/// `events.jsonl` schema.
const EVENT_FIELDS: &[(&str, FieldType)] = &[
    ("round", FieldType::Uint),
    ("slot", FieldType::Uint),
    ("instance", FieldType::Uint),
    ("kind", FieldType::Str),
    ("detail", FieldType::Uint),
];

/// Known event wire names.
const EVENT_KINDS: &[&str] = &[
    "exchange_started",
    "exchange_repaired",
    "exchange_aborted",
    "fault_loss",
    "fault_partition",
    "fault_crash",
    "fault_recovery",
    "self_heal_bump",
    "churn_join",
    "churn_leave",
    "instance_started",
];

/// `BENCH_byzantine.json` per-result schema (`--bench` mode).
const BYZANTINE_RESULT_FIELDS: &[(&str, FieldType)] = &[
    ("engine", FieldType::Str),
    ("model", FieldType::Str),
    ("fraction", FieldType::NumberOrNull),
    ("robust", FieldType::Bool),
    ("err_a", FieldType::NumberOrNull),
    ("err_m", FieldType::NumberOrNull),
    ("n_hat_rel_err", FieldType::NumberOrNull),
    ("honest_without_estimate", FieldType::Uint),
    ("byzantine", FieldType::Uint),
    ("robust_rejects", FieldType::Uint),
    ("robust_trims", FieldType::Uint),
    ("fingerprint", FieldType::Uint),
];

/// `BENCH_deploy.json` per-result schema (`--bench` mode): one record per
/// (backend, scenario) cell of the comparison matrix.
const DEPLOY_RESULT_FIELDS: &[(&str, FieldType)] = &[
    ("scenario", FieldType::Str),
    ("backend", FieldType::Str),
    ("nodes", FieldType::Uint),
    ("tick_ms", FieldType::Uint),
    ("err_a", FieldType::NumberOrNull),
    ("err_m", FieldType::NumberOrNull),
    ("peers_without_estimate", FieldType::Uint),
    ("mean_n_hat", FieldType::NumberOrNull),
    ("exchanges", FieldType::Uint),
    ("exchanges_completed", FieldType::Uint),
    ("repairs", FieldType::Uint),
    ("aborts", FieldType::Uint),
    ("shim_drops", FieldType::Uint),
    ("malformed_frames", FieldType::Uint),
    ("backpressure_drops", FieldType::Uint),
    ("throughput_eps", FieldType::NumberOrNull),
    ("p99_latency_us", FieldType::Uint),
    ("duration_s", FieldType::NumberOrNull),
    ("clean_shutdown", FieldType::Bool),
];

/// `BENCH_explore.json` per-campaign schema (`--bench` mode): one record
/// per explored protocol configuration.
const EXPLORE_RESULT_FIELDS: &[(&str, FieldType)] = &[
    ("config", FieldType::Str),
    ("iterations", FieldType::Uint),
    ("oracle_runs", FieldType::Uint),
    ("features", FieldType::Uint),
    ("violations", FieldType::Uint),
    ("verdict", FieldType::Str),
    ("first_hit_axes", FieldType::Uint),
    ("minimal_axes", FieldType::Uint),
    ("minimal_desc", FieldType::Str),
    ("detail", FieldType::NumberOrNull),
    ("fingerprint", FieldType::Uint),
    ("shrink_runs", FieldType::Uint),
];

/// `BENCH_streaming.json` per-result schema (`--bench` mode): one record
/// per (drift scenario, tracker mode) cell of the streaming matrix.
const STREAMING_RESULT_FIELDS: &[(&str, FieldType)] = &[
    ("scenario", FieldType::Str),
    ("mode", FieldType::Str),
    ("time_avg_err", FieldType::NumberOrNull),
    ("time_avg_err_max", FieldType::NumberOrNull),
    ("final_err", FieldType::NumberOrNull),
    ("launched", FieldType::Uint),
    ("completed", FieldType::Uint),
    ("restarts", FieldType::Uint),
    ("mean_divergence", FieldType::NumberOrNull),
    ("final_period", FieldType::Uint),
    ("messages", FieldType::Uint),
    ("bytes", FieldType::Uint),
    ("fingerprint", FieldType::Uint),
];

/// `BENCH_deploy.json` scale-sweep record schema.
const DEPLOY_SCALE_FIELDS: &[(&str, FieldType)] = &[
    ("backend", FieldType::Str),
    ("nodes", FieldType::Uint),
    ("tick_ms", FieldType::Uint),
    ("err_a", FieldType::NumberOrNull),
    ("sim_err_a", FieldType::NumberOrNull),
    ("peers_without_estimate", FieldType::Uint),
    ("mean_n_hat", FieldType::NumberOrNull),
    ("exchanges_completed", FieldType::Uint),
    ("throughput_eps", FieldType::NumberOrNull),
    ("p99_latency_us", FieldType::Uint),
    ("duration_s", FieldType::NumberOrNull),
    ("clean_shutdown", FieldType::Bool),
];

/// `manifest.json` schema.
const MANIFEST_FIELDS: &[(&str, FieldType)] = &[
    ("schema_version", FieldType::Uint),
    ("experiment", FieldType::Str),
    ("config_hash", FieldType::Uint),
    ("seed", FieldType::Uint),
    ("threads", FieldType::Uint),
    ("detected_cores", FieldType::Uint),
    ("git_rev", FieldType::StrOrNull),
];

/// A scalar from a flat (non-nested) JSON object.
#[derive(Debug, Clone, PartialEq)]
enum Scalar {
    Uint(u64),
    Number(f64),
    Str(String),
    Bool(bool),
    Null,
}

/// Parses a flat JSON object of scalar values. Exported telemetry never
/// nests objects or arrays, so this covers the full schema.
fn parse_flat_object(text: &str) -> Result<BTreeMap<String, Scalar>, String> {
    let mut out = BTreeMap::new();
    let mut chars = text.chars().peekable();
    let skip_ws = |chars: &mut std::iter::Peekable<std::str::Chars>| {
        while chars.peek().is_some_and(|c| c.is_whitespace()) {
            chars.next();
        }
    };
    let parse_string =
        |chars: &mut std::iter::Peekable<std::str::Chars>| -> Result<String, String> {
            if chars.next() != Some('"') {
                return Err("expected '\"'".into());
            }
            let mut s = String::new();
            for c in chars.by_ref() {
                if c == '"' {
                    return Ok(s);
                }
                if c == '\\' {
                    return Err("escape sequences are not part of the schema".into());
                }
                s.push(c);
            }
            Err("unterminated string".into())
        };
    skip_ws(&mut chars);
    if chars.next() != Some('{') {
        return Err("expected '{'".into());
    }
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        chars.next();
        return Ok(out);
    }
    loop {
        skip_ws(&mut chars);
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next() != Some(':') {
            return Err(format!("expected ':' after key '{key}'"));
        }
        skip_ws(&mut chars);
        let value = if chars.peek() == Some(&'"') {
            Scalar::Str(parse_string(&mut chars)?)
        } else {
            let mut raw = String::new();
            while chars
                .peek()
                .is_some_and(|&c| c != ',' && c != '}' && !c.is_whitespace())
            {
                raw.push(chars.next().expect("peeked"));
            }
            if raw == "null" {
                Scalar::Null
            } else if raw == "true" || raw == "false" {
                Scalar::Bool(raw == "true")
            } else if let Ok(u) = raw.parse::<u64>() {
                Scalar::Uint(u)
            } else if let Ok(f) = raw.parse::<f64>() {
                Scalar::Number(f)
            } else {
                return Err(format!("key '{key}': unparsable value '{raw}'"));
            }
        };
        if out.insert(key.clone(), value).is_some() {
            return Err(format!("duplicate key '{key}'"));
        }
        skip_ws(&mut chars);
        match chars.next() {
            Some(',') => continue,
            Some('}') => break,
            other => return Err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
    skip_ws(&mut chars);
    if chars.next().is_some() {
        return Err("trailing content after object".into());
    }
    Ok(out)
}

/// Checks one parsed object against a schema: exact key set, field types.
fn check_fields(
    obj: &BTreeMap<String, Scalar>,
    schema: &[(&str, FieldType)],
) -> Result<(), String> {
    for key in obj.keys() {
        if !schema.iter().any(|(name, _)| name == key) {
            return Err(format!("unknown field '{key}'"));
        }
    }
    for (name, ty) in schema {
        let value = obj
            .get(*name)
            .ok_or_else(|| format!("missing field '{name}'"))?;
        let ok = match ty {
            FieldType::Uint => matches!(value, Scalar::Uint(_)),
            FieldType::NumberOrNull => {
                matches!(value, Scalar::Uint(_) | Scalar::Number(_) | Scalar::Null)
            }
            FieldType::Str => matches!(value, Scalar::Str(_)),
            FieldType::StrOrNull => matches!(value, Scalar::Str(_) | Scalar::Null),
            FieldType::Bool => matches!(value, Scalar::Bool(_)),
        };
        if !ok {
            return Err(format!("field '{name}': expected {ty:?}, got {value:?}"));
        }
    }
    Ok(())
}

fn check_event(obj: &BTreeMap<String, Scalar>) -> Result<(), String> {
    check_fields(obj, EVENT_FIELDS)?;
    match obj.get("kind") {
        Some(Scalar::Str(kind)) if EVENT_KINDS.contains(&kind.as_str()) => Ok(()),
        Some(Scalar::Str(kind)) => Err(format!("unknown event kind '{kind}'")),
        _ => unreachable!("check_fields enforces kind is a string"),
    }
}

fn check_manifest(obj: &BTreeMap<String, Scalar>) -> Result<(), String> {
    check_fields(obj, MANIFEST_FIELDS)?;
    match obj.get("schema_version") {
        Some(Scalar::Uint(1)) => Ok(()),
        other => Err(format!("unsupported schema_version {other:?}")),
    }
}

/// The documented CSV header, derived from the same field list the JSONL
/// check uses so the two cannot drift apart.
fn expected_csv_header() -> String {
    ROUND_FIELDS
        .iter()
        .map(|(name, _)| *name)
        .collect::<Vec<_>>()
        .join(",")
}

struct ExportSummary {
    rounds: usize,
    events: usize,
}

/// Validates one export directory; returns counts on success.
fn validate_export(dir: &Path) -> Result<ExportSummary, String> {
    let read = |name: &str| -> Result<String, String> {
        std::fs::read_to_string(dir.join(name))
            .map_err(|e| format!("{}: {e}", dir.join(name).display()))
    };

    let manifest =
        parse_flat_object(&read("manifest.json")?).map_err(|e| format!("manifest.json: {e}"))?;
    check_manifest(&manifest).map_err(|e| format!("manifest.json: {e}"))?;

    let rounds_text = read("rounds.jsonl")?;
    let mut rounds = 0usize;
    for (i, line) in rounds_text.lines().enumerate() {
        let obj =
            parse_flat_object(line).map_err(|e| format!("rounds.jsonl line {}: {e}", i + 1))?;
        check_fields(&obj, ROUND_FIELDS)
            .map_err(|e| format!("rounds.jsonl line {}: {e}", i + 1))?;
        rounds += 1;
    }

    let csv_text = read("rounds.csv")?;
    let mut csv_lines = csv_text.lines();
    let header = csv_lines.next().unwrap_or_default();
    if header != expected_csv_header() {
        return Err(format!(
            "rounds.csv: header mismatch\n  expected: {}\n  found:    {header}",
            expected_csv_header()
        ));
    }
    let csv_rows = csv_lines.count();
    if csv_rows != rounds {
        return Err(format!(
            "rounds.csv has {csv_rows} rows but rounds.jsonl has {rounds} records"
        ));
    }

    let events_text = read("events.jsonl")?;
    let mut events = 0usize;
    for (i, line) in events_text.lines().enumerate() {
        let obj =
            parse_flat_object(line).map_err(|e| format!("events.jsonl line {}: {e}", i + 1))?;
        check_event(&obj).map_err(|e| format!("events.jsonl line {}: {e}", i + 1))?;
        events += 1;
    }

    Ok(ExportSummary { rounds, events })
}

/// Validates one benchmark result file (`--bench` mode). The generators
/// emit a fixed layout — the embedded manifest inline on its own line and
/// one flat result object per line inside the `results` array — so a
/// line-based scan covers the full schema without a nested JSON parser.
fn validate_bench(path: &Path) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;

    let benchmark = text
        .lines()
        .find_map(|l| l.trim().strip_prefix("\"benchmark\": "))
        .ok_or("missing \"benchmark\" field")?
        .trim_end_matches(',');
    // Per-benchmark layout: the result schema, the field whose values must
    // cover `coverage_values` across the results array, and an optional
    // second array with its own schema.
    type Schema = &'static [(&'static str, FieldType)];
    let (schema, coverage_field, coverage_values, extra_array): (
        Schema,
        &str,
        &[&str],
        Option<(&str, Schema)>,
    ) = match benchmark {
        "\"byzantine_resilience\"" => {
            (BYZANTINE_RESULT_FIELDS, "engine", &["cycle", "event"], None)
        }
        "\"scenario_explorer\"" => (
            EXPLORE_RESULT_FIELDS,
            "config",
            &["vanilla", "hardened"],
            None,
        ),
        "\"deploy_runtime\"" => (
            DEPLOY_RESULT_FIELDS,
            "backend",
            &["threaded", "reactor"],
            Some(("scale", DEPLOY_SCALE_FIELDS)),
        ),
        "\"streaming_tracker\"" => (
            STREAMING_RESULT_FIELDS,
            "mode",
            &[
                "restart_naive",
                "pipelined_fixed_fade",
                "pipelined_adaptive_fade",
                "pipelined_adaptive_restart",
            ],
            None,
        ),
        other => {
            return Err(format!(
                "unknown benchmark {other} (expected a --bench schema)"
            ))
        }
    };

    let manifest_line = text
        .lines()
        .find_map(|l| l.trim().strip_prefix("\"manifest\": "))
        .ok_or("missing \"manifest\" field")?
        .trim_end_matches(',');
    let manifest = parse_flat_object(manifest_line).map_err(|e| format!("manifest: {e}"))?;
    check_manifest(&manifest).map_err(|e| format!("manifest: {e}"))?;

    // `None` outside an array, otherwise the active array's name and the
    // schema its records must match.
    let mut in_array: Option<(&str, &[(&str, FieldType)])> = None;
    let mut results = 0usize;
    let mut covered: Vec<String> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        match in_array {
            None => {
                if trimmed == "\"results\": [" {
                    in_array = Some(("results", schema));
                } else if let Some((name, extra_schema)) = extra_array {
                    if trimmed == format!("\"{name}\": [") {
                        in_array = Some((name, extra_schema));
                    }
                }
            }
            Some((array, record_schema)) => {
                if trimmed == "]" || trimmed == "]," {
                    in_array = None;
                    continue;
                }
                let obj = parse_flat_object(trimmed.trim_end_matches(','))
                    .map_err(|e| format!("{array} line {}: {e}", i + 1))?;
                check_fields(&obj, record_schema)
                    .map_err(|e| format!("{array} line {}: {e}", i + 1))?;
                if array == "results" {
                    if let Some(Scalar::Str(value)) = obj.get(coverage_field) {
                        if !covered.contains(value) {
                            covered.push(value.clone());
                        }
                    }
                    results += 1;
                }
            }
        }
    }
    if in_array.is_some() {
        return Err("unterminated record array".into());
    }
    if results == 0 {
        return Err("no result records".into());
    }
    for required in coverage_values {
        if !covered.iter().any(|v| v == required) {
            return Err(format!("no results for {coverage_field} '{required}'"));
        }
    }
    Ok(results)
}

/// Expands an argument directory into export directories: itself when it
/// holds `rounds.jsonl` directly, otherwise its matching subdirectories.
fn collect_exports(dir: &Path) -> Result<Vec<PathBuf>, String> {
    if dir.join("rounds.jsonl").is_file() {
        return Ok(vec![dir.to_path_buf()]);
    }
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut exports: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.join("rounds.jsonl").is_file())
        .collect();
    exports.sort();
    if exports.is_empty() {
        return Err(format!(
            "{}: no telemetry exports found (no rounds.jsonl here or in subdirectories)",
            dir.display()
        ));
    }
    Ok(exports)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let bench_mode = {
        let before = args.len();
        args.retain(|a| a != "--bench");
        args.len() != before
    };
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: telemetry_check DIR...");
        eprintln!("       telemetry_check --bench FILE...");
        eprintln!("validates telemetry exports (manifest.json, rounds.jsonl/.csv, events.jsonl)");
        eprintln!("or, with --bench, benchmark result files (BENCH_byzantine.json)");
        return if args.is_empty() {
            ExitCode::from(2)
        } else {
            ExitCode::SUCCESS
        };
    }
    let mut failed = false;
    if bench_mode {
        for arg in &args {
            match validate_bench(Path::new(arg)) {
                Ok(n) => println!("ok: {arg} ({n} results)"),
                Err(e) => {
                    eprintln!("FAIL: {arg}: {e}");
                    failed = true;
                }
            }
        }
        return if failed {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }
    for arg in &args {
        let exports = match collect_exports(Path::new(arg)) {
            Ok(found) => found,
            Err(e) => {
                eprintln!("telemetry_check: {e}");
                failed = true;
                continue;
            }
        };
        for export in exports {
            match validate_export(&export) {
                Ok(s) => println!(
                    "ok: {} ({} rounds, {} events)",
                    export.display(),
                    s.rounds,
                    s.events
                ),
                Err(e) => {
                    eprintln!("FAIL: {}: {e}", export.display());
                    failed = true;
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_objects() {
        let obj = parse_flat_object(r#"{"a":1,"b":2.5,"c":"x","d":null}"#).unwrap();
        assert_eq!(obj["a"], Scalar::Uint(1));
        assert_eq!(obj["b"], Scalar::Number(2.5));
        assert_eq!(obj["c"], Scalar::Str("x".into()));
        assert_eq!(obj["d"], Scalar::Null);
        // Pretty-printed (manifest.json style) parses too.
        let pretty = parse_flat_object("{\n  \"seed\": 42,\n  \"experiment\": \"t\"\n}").unwrap();
        assert_eq!(pretty["seed"], Scalar::Uint(42));
        assert!(parse_flat_object(r#"{"a":1"#).is_err());
        assert!(parse_flat_object(r#"{"a":1,"a":2}"#).is_err());
        assert!(parse_flat_object(r#"{"a":1} extra"#).is_err());
    }

    fn valid_round_line() -> String {
        let fields: Vec<String> = ROUND_FIELDS
            .iter()
            .map(|(name, ty)| match ty {
                FieldType::NumberOrNull => format!("\"{name}\":null"),
                _ => format!("\"{name}\":0"),
            })
            .collect();
        format!("{{{}}}", fields.join(","))
    }

    #[test]
    fn round_schema_catches_unknown_and_missing_fields() {
        let good = parse_flat_object(&valid_round_line()).unwrap();
        check_fields(&good, ROUND_FIELDS).unwrap();

        let unknown = valid_round_line().replace("\"bootstraps\":0", "\"bootstrapz\":0");
        let err = check_fields(&parse_flat_object(&unknown).unwrap(), ROUND_FIELDS).unwrap_err();
        assert!(err.contains("unknown field 'bootstrapz'"), "{err}");

        let missing = valid_round_line().replace(",\"bootstraps\":0", "");
        let err = check_fields(&parse_flat_object(&missing).unwrap(), ROUND_FIELDS).unwrap_err();
        assert!(err.contains("missing field 'bootstraps'"), "{err}");

        let wrong_type = valid_round_line().replace("\"round\":0", "\"round\":null");
        let err = check_fields(&parse_flat_object(&wrong_type).unwrap(), ROUND_FIELDS).unwrap_err();
        assert!(err.contains("field 'round'"), "{err}");
    }

    #[test]
    fn event_schema_requires_known_kind() {
        let good = parse_flat_object(
            r#"{"round":3,"slot":7,"instance":9,"kind":"exchange_repaired","detail":1}"#,
        )
        .unwrap();
        check_event(&good).unwrap();
        let bad =
            parse_flat_object(r#"{"round":3,"slot":7,"instance":9,"kind":"made_up","detail":1}"#)
                .unwrap();
        assert!(check_event(&bad)
            .unwrap_err()
            .contains("unknown event kind"));
    }

    #[test]
    fn manifest_schema_pins_version() {
        let good = parse_flat_object(
            r#"{"schema_version":1,"experiment":"t","config_hash":5,"seed":1,"threads":2,"detected_cores":4,"git_rev":null}"#,
        )
        .unwrap();
        check_manifest(&good).unwrap();
        let v2 = parse_flat_object(
            r#"{"schema_version":2,"experiment":"t","config_hash":5,"seed":1,"threads":2,"detected_cores":4,"git_rev":"abc"}"#,
        )
        .unwrap();
        assert!(check_manifest(&v2).unwrap_err().contains("schema_version"));
    }

    fn byzantine_result_line(engine: &str) -> String {
        format!(
            "    {{\"engine\": \"{engine}\", \"model\": \"value_poisoning\", \"fraction\": 0.1, \
             \"robust\": true, \"err_a\": 3.3e-3, \"err_m\": 9.4e-2, \"n_hat_rel_err\": null, \
             \"honest_without_estimate\": 0, \"byzantine\": 992, \"robust_rejects\": 54458, \
             \"robust_trims\": 188582, \"fingerprint\": 123}},"
        )
    }

    fn byzantine_bench_json() -> String {
        format!(
            "{{\n  \"benchmark\": \"byzantine_resilience\",\n  \"manifest\": \
             {{\"schema_version\": 1, \"experiment\": \"t\", \"config_hash\": 5, \"seed\": 1, \
             \"threads\": 2, \"detected_cores\": 4, \"git_rev\": null}},\n  \"results\": [\n\
             {}\n{}\n  ]\n}}\n",
            byzantine_result_line("cycle"),
            byzantine_result_line("event").trim_end_matches(',')
        )
    }

    #[test]
    fn bench_mode_accepts_the_byzantine_schema() {
        let dir = std::env::temp_dir().join("telemetry_check_bench_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_byzantine.json");
        std::fs::write(&path, byzantine_bench_json()).unwrap();
        assert_eq!(validate_bench(&path), Ok(2));

        // A renamed result field fails.
        std::fs::write(&path, byzantine_bench_json().replace("err_a", "err_avg")).unwrap();
        assert!(validate_bench(&path).unwrap_err().contains("unknown field"));

        // Dropping one engine's results fails.
        std::fs::write(
            &path,
            byzantine_bench_json().replace("\"event\"", "\"cycle\""),
        )
        .unwrap();
        assert!(validate_bench(&path)
            .unwrap_err()
            .contains("no results for engine 'event'"));

        // A non-boolean robust flag fails.
        std::fs::write(
            &path,
            byzantine_bench_json().replace("\"robust\": true", "\"robust\": 1"),
        )
        .unwrap();
        assert!(validate_bench(&path).unwrap_err().contains("'robust'"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn explore_result_line(config: &str) -> String {
        format!(
            "    {{\"config\": \"{config}\", \"iterations\": 26, \"oracle_runs\": 28, \
             \"features\": 81, \"violations\": 1, \"verdict\": \"err_regression\", \
             \"first_hit_axes\": 3, \"minimal_axes\": 1, \
             \"minimal_desc\": \"burst 5..15 rate 0.30\", \"detail\": 1.042176e1, \
             \"fingerprint\": 2106126027962506785, \"shrink_runs\": 7}},"
        )
    }

    fn explore_bench_json() -> String {
        format!(
            "{{\n  \"benchmark\": \"scenario_explorer\",\n  \"manifest\": \
             {{\"schema_version\": 1, \"experiment\": \"t\", \"config_hash\": 5, \"seed\": 1, \
             \"threads\": 1, \"detected_cores\": 4, \"git_rev\": null}},\n  \"results\": [\n\
             {}\n{}\n  ]\n}}\n",
            explore_result_line("vanilla"),
            explore_result_line("hardened").trim_end_matches(',')
        )
    }

    #[test]
    fn bench_mode_accepts_the_explorer_schema() {
        let dir = std::env::temp_dir().join("telemetry_check_explore_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_explore.json");
        std::fs::write(&path, explore_bench_json()).unwrap();
        assert_eq!(validate_bench(&path), Ok(2));

        // A renamed result field fails.
        std::fs::write(
            &path,
            explore_bench_json().replace("minimal_axes", "min_axes"),
        )
        .unwrap();
        assert!(validate_bench(&path).unwrap_err().contains("unknown field"));

        // Dropping one config's results fails.
        std::fs::write(
            &path,
            explore_bench_json().replace("\"hardened\"", "\"vanilla\""),
        )
        .unwrap();
        assert!(validate_bench(&path)
            .unwrap_err()
            .contains("no results for config 'hardened'"));

        // A non-integer fingerprint fails.
        std::fs::write(
            &path,
            explore_bench_json().replace("\"shrink_runs\": 7", "\"shrink_runs\": -7"),
        )
        .unwrap();
        assert!(validate_bench(&path).unwrap_err().contains("'shrink_runs'"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn deploy_result_line(backend: &str, scenario: &str) -> String {
        format!(
            "    {{\"scenario\": \"{scenario}\", \"backend\": \"{backend}\", \"nodes\": 64, \
             \"tick_ms\": 40, \"err_a\": 7.5e-3, \"err_m\": 6.2e-2, \
             \"peers_without_estimate\": 0, \"mean_n_hat\": null, \"exchanges\": 1764, \
             \"exchanges_completed\": 1700, \"repairs\": 3, \"aborts\": 1, \"shim_drops\": 0, \
             \"malformed_frames\": 0, \"backpressure_drops\": 2, \"throughput_eps\": 1205.55, \
             \"p99_latency_us\": 4707, \"duration_s\": 1.402, \"clean_shutdown\": true}},"
        )
    }

    fn deploy_bench_json() -> String {
        let scale_line = "    {\"backend\": \"reactor\", \"nodes\": 10000, \"tick_ms\": 2000, \
             \"err_a\": 1.1e-3, \"sim_err_a\": 9.0e-4, \"peers_without_estimate\": 3, \
             \"mean_n_hat\": 9987.2101, \"exchanges_completed\": 280000, \
             \"throughput_eps\": 4385.12, \"p99_latency_us\": 12384, \"duration_s\": 63.9, \
             \"clean_shutdown\": true}";
        format!(
            "{{\n  \"benchmark\": \"deploy_runtime\",\n  \"manifest\": \
             {{\"schema_version\": 1, \"experiment\": \"t\", \"config_hash\": 5, \"seed\": 1, \
             \"threads\": 2, \"detected_cores\": 4, \"git_rev\": null}},\n  \"results\": [\n\
             {}\n{}\n  ],\n  \"scale\": [\n{scale_line}\n  ]\n}}\n",
            deploy_result_line("threaded", "clean"),
            deploy_result_line("reactor", "clean").trim_end_matches(',')
        )
    }

    #[test]
    fn bench_mode_accepts_the_deploy_schema() {
        let dir = std::env::temp_dir().join("telemetry_check_deploy_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_deploy.json");
        std::fs::write(&path, deploy_bench_json()).unwrap();
        assert_eq!(validate_bench(&path), Ok(2));

        // A renamed throughput field fails.
        std::fs::write(
            &path,
            deploy_bench_json().replace("throughput_eps", "throughput"),
        )
        .unwrap();
        assert!(validate_bench(&path).unwrap_err().contains("unknown field"));

        // Dropping the reactor backend's results fails.
        std::fs::write(
            &path,
            deploy_bench_json().replacen(
                "\"backend\": \"reactor\", \"nodes\": 64",
                "\"backend\": \"threaded\", \"nodes\": 64",
                1,
            ),
        )
        .unwrap();
        assert!(validate_bench(&path)
            .unwrap_err()
            .contains("no results for backend 'reactor'"));

        // A malformed scale record fails with the array named.
        std::fs::write(
            &path,
            deploy_bench_json().replace("\"sim_err_a\": 9.0e-4, ", ""),
        )
        .unwrap();
        let err = validate_bench(&path).unwrap_err();
        assert!(err.contains("scale") && err.contains("sim_err_a"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn streaming_result_line(mode: &str) -> String {
        format!(
            "    {{\"scenario\": \"ramp30\", \"mode\": \"{mode}\", \"time_avg_err\": 1.78e-1, \
             \"time_avg_err_max\": 5.77e-1, \"final_err\": 5.79e-2, \"launched\": 28, \
             \"completed\": 25, \"restarts\": 0, \"mean_divergence\": 4.1e-2, \
             \"final_period\": 8, \"messages\": 132000, \"bytes\": 110898486, \
             \"fingerprint\": 12779057224404187916}},"
        )
    }

    fn streaming_bench_json() -> String {
        let modes = [
            "restart_naive",
            "pipelined_fixed_fade",
            "pipelined_adaptive_fade",
            "pipelined_adaptive_restart",
        ];
        let mut lines: Vec<String> = modes.iter().map(|m| streaming_result_line(m)).collect();
        let last = lines.last_mut().expect("modes non-empty");
        *last = last.trim_end_matches(',').to_string();
        format!(
            "{{\n  \"benchmark\": \"streaming_tracker\",\n  \"manifest\": \
             {{\"schema_version\": 1, \"experiment\": \"t\", \"config_hash\": 5, \"seed\": 11, \
             \"threads\": 1, \"detected_cores\": 4, \"git_rev\": null}},\n  \"results\": [\n\
             {}\n  ]\n}}\n",
            lines.join("\n")
        )
    }

    #[test]
    fn bench_mode_accepts_the_streaming_schema() {
        let dir = std::env::temp_dir().join("telemetry_check_streaming_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_streaming.json");
        std::fs::write(&path, streaming_bench_json()).unwrap();
        assert_eq!(validate_bench(&path), Ok(4));

        // A renamed result field fails.
        std::fs::write(
            &path,
            streaming_bench_json().replace("time_avg_err\"", "avg_err\""),
        )
        .unwrap();
        assert!(validate_bench(&path).unwrap_err().contains("unknown field"));

        // Dropping one tracker mode's results fails.
        std::fs::write(
            &path,
            streaming_bench_json().replace("\"pipelined_adaptive_restart\"", "\"restart_naive\""),
        )
        .unwrap();
        assert!(validate_bench(&path)
            .unwrap_err()
            .contains("no results for mode 'pipelined_adaptive_restart'"));

        // A negative restart count fails.
        std::fs::write(
            &path,
            streaming_bench_json().replace("\"restarts\": 0", "\"restarts\": -1"),
        )
        .unwrap();
        assert!(validate_bench(&path).unwrap_err().contains("'restarts'"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn csv_header_tracks_round_fields() {
        assert_eq!(expected_csv_header().split(',').count(), ROUND_FIELDS.len());
        assert_eq!(ROUND_FIELDS.len(), 22);
    }
}
