//! Reproduces Fig. 12: approximation error per round within a single
//! instance/phase under churn (0.1 % of nodes replaced per round), RAM.

use adam2_baselines::EquiDepthConfig;
use adam2_bench::{
    adam2_engine, current_truth, equidepth_engine, equidepth_truth, export_telemetry, fmt_err,
    maybe_attach_telemetry, run_instance_tracked, start_instance, start_phase, Args, AsciiChart,
    Table,
};
use adam2_core::{discrete_errors_over, Adam2Config};
use adam2_sim::{derive_seed, seeded_rng, ChurnModel};
use adam2_traces::Attribute;
use rand::RngExt as _;

fn main() {
    let mut args = Args::parse("fig12_churn_instance");
    if args.attrs.len() > 1 {
        args.attrs = vec![Attribute::Ram];
    }
    let rounds: u64 = args
        .extra_parsed("track-rounds")
        .unwrap_or_else(|e| panic!("{e}"))
        .unwrap_or(80);
    let churn_rate: f64 = args
        .extra_parsed("churn")
        .unwrap_or_else(|e| panic!("{e}"))
        .unwrap_or(0.001);
    args.print_header(
        "fig12_churn_instance",
        "Fig. 12 (single-instance accuracy under churn, RAM)",
    );
    println!("churn rate: {churn_rate} per round\n");
    let attr = args.attrs[0];
    let setup = adam2_bench::setup(attr, args.nodes, args.seed);

    // ---- (a) Adam2 under churn ------------------------------------------
    let config = Adam2Config::new()
        .with_lambda(args.lambda)
        .with_rounds_per_instance(rounds);
    let mut engine = adam2_engine(&setup, config, args.seed, ChurnModel::uniform(churn_rate));
    maybe_attach_telemetry(&mut engine, args.telemetry.as_ref());
    let meta = start_instance(&mut engine);
    let series = run_instance_tracked(
        &mut engine,
        &meta,
        current_truth,
        rounds,
        args.sample_peers,
        args.seed,
    );
    if let Some(dir) = &args.telemetry {
        export_telemetry(
            &mut engine,
            dir,
            "adam2",
            "fig12_churn_instance",
            &format!(
                "nodes={} lambda={} rounds={rounds} churn={churn_rate}",
                args.nodes, args.lambda
            ),
            args.seed,
        );
    }

    let mut table = Table::new(vec![
        "round",
        "adam2 max@points",
        "adam2 avg@points",
        "adam2 max CDF",
        "adam2 avg CDF",
    ]);
    for s in &series {
        if s.round <= 10 || s.round % 5 == 0 {
            table.row(vec![
                s.round.to_string(),
                fmt_err(s.max_points),
                fmt_err(s.avg_points),
                fmt_err(s.max_cdf),
                fmt_err(s.avg_cdf),
            ]);
        }
    }
    println!("(a) Adam2, single instance under churn:");
    table.print();
    println!();
    AsciiChart::new(64, 16)
        .log_y()
        .series(
            'M',
            "max@points",
            series
                .iter()
                .map(|s| (s.round as f64, s.max_points))
                .collect(),
        )
        .series(
            'a',
            "avg@points",
            series
                .iter()
                .map(|s| (s.round as f64, s.avg_points))
                .collect(),
        )
        .print();
    println!();

    // ---- (b) EquiDepth under churn ----------------------------------------
    let mut ed = equidepth_engine(
        &setup,
        EquiDepthConfig::new(args.lambda, rounds),
        args.seed,
        ChurnModel::uniform(churn_rate),
    );
    let phase = start_phase(&mut ed);
    let mut ed_table = Table::new(vec![
        "round",
        "equidepth max@bins",
        "equidepth avg@bins",
        "equidepth max CDF",
        "equidepth avg CDF",
    ]);
    let mut rng = seeded_rng(derive_seed(args.seed, 0xEDC));
    for r in 1..=rounds {
        ed.run_round();
        let truth = equidepth_truth(&ed);
        let mut participants = Vec::new();
        let mut max_bins = 0.0f64;
        let mut sum_bins = 0.0f64;
        let mut absent = 0usize;
        for (id, node) in ed.nodes().iter() {
            if node.joined_round() > phase.start_round {
                continue;
            }
            let syn = node.synopsis();
            if syn.len() < 2 {
                absent += 1;
                continue;
            }
            participants.push(id);
            let s = syn.len();
            let mut peer_sum = 0.0f64;
            for (i, b) in syn.iter().enumerate() {
                let e = (truth.eval(*b) - i as f64 / (s - 1) as f64).abs();
                max_bins = max_bins.max(e);
                peer_sum += e;
            }
            sum_bins += peer_sum / s as f64;
        }
        if absent > 0 {
            max_bins = 1.0;
        }
        let avg_bins = (sum_bins + absent as f64) / (participants.len() + absent).max(1) as f64;

        let mut max_cdf = if absent > 0 { 1.0 } else { 0.0f64 };
        let mut sum_cdf = 0.0f64;
        let samples = args.sample_peers.min(participants.len());
        for _ in 0..samples {
            let id = participants[rng.random_range(0..participants.len())];
            if let Some(cdf) = ed.nodes().get(id).and_then(|n| n.phase_estimate()) {
                let (m, a) = discrete_errors_over(&truth, &cdf, truth.min(), truth.max());
                max_cdf = max_cdf.max(m);
                sum_cdf += a;
            } else {
                sum_cdf += 1.0;
            }
        }
        let sampled_mean = if samples > 0 {
            sum_cdf / samples as f64
        } else {
            1.0
        };
        let avg_cdf = (sampled_mean * participants.len() as f64 + absent as f64)
            / (participants.len() + absent).max(1) as f64;
        if r <= 10 || r % 5 == 0 {
            ed_table.row(vec![
                r.to_string(),
                fmt_err(max_bins),
                fmt_err(avg_bins),
                fmt_err(max_cdf),
                fmt_err(avg_cdf),
            ]);
        }
    }
    println!("(b) EquiDepth, single phase under churn:");
    ed_table.print();
    println!();
    println!(
        "expected shape: Adam2's error at the interpolation points no longer converges to \
         zero under churn (departing nodes take un-averaged mass with them) but settles \
         around 1e-4..1e-3 — plenty for interpolation; EquiDepth is largely unaffected but \
         stuck at percent-level as before."
    );
}
