//! Reproduces Fig. 13: approximation accuracy after 8 instances (phases)
//! as a function of the churn rate, 0 .. 30 % of nodes replaced per round.
//! Joining nodes are included in the metrics (they inherit estimates from
//! neighbours).

use adam2_baselines::EquiDepthConfig;
use adam2_bench::{
    adam2_engine, complete_instance, current_truth, equidepth_engine, equidepth_truth,
    evaluate_equidepth_estimates, evaluate_estimates, fmt_err, start_instance, start_phase, Args,
    Table,
};
use adam2_core::{Adam2Config, RefineKind};
use adam2_sim::ChurnModel;

fn main() {
    let args = Args::parse("fig13_churn_rate");
    args.print_header("fig13_churn_rate", "Fig. 13 (accuracy vs churn rate)");
    let instances: usize = args
        .extra_parsed("instances")
        .unwrap_or_else(|e| panic!("{e}"))
        .unwrap_or(8);
    let rates: Vec<f64> = vec![0.0, 0.001, 0.003, 0.01, 0.03, 0.1, 0.3];

    for (metric_name, pick_max, refine) in [
        (
            "(a) maximum error Err_m (MinMax vs EquiDepth)",
            true,
            RefineKind::MinMax,
        ),
        (
            "(b) average error Err_a (LCut vs EquiDepth)",
            false,
            RefineKind::LCut,
        ),
    ] {
        let mut headers = vec!["churn/round".to_string()];
        for attr in &args.attrs {
            headers.push(format!(
                "{attr}-{}",
                if pick_max { "minmax" } else { "lcut" }
            ));
            headers.push(format!("{attr}-equidepth"));
        }
        let mut rows: Vec<Vec<String>> = rates.iter().map(|r| vec![format!("{r}")]).collect();

        for attr in &args.attrs {
            let setup = adam2_bench::setup(*attr, args.nodes, args.seed);
            for (row, rate) in rows.iter_mut().zip(&rates) {
                let churn = ChurnModel::uniform(*rate);

                let config = Adam2Config::new()
                    .with_lambda(args.lambda)
                    .with_rounds_per_instance(args.rounds)
                    .with_refine(refine);
                let mut engine = adam2_engine(&setup, config, args.seed, churn);
                for _ in 0..instances {
                    start_instance(&mut engine);
                    complete_instance(&mut engine, args.rounds);
                }
                let truth = current_truth(&engine);
                let report = evaluate_estimates(&engine, &truth, args.sample_peers, args.seed);
                row.push(fmt_err(if pick_max {
                    report.max_cdf
                } else {
                    report.avg_cdf
                }));

                let mut ed = equidepth_engine(
                    &setup,
                    EquiDepthConfig::new(args.lambda, args.rounds),
                    args.seed,
                    churn,
                );
                for _ in 0..instances {
                    start_phase(&mut ed);
                    complete_instance(&mut ed, args.rounds);
                }
                let ed_truth = equidepth_truth(&ed);
                let ed_report =
                    evaluate_equidepth_estimates(&ed, &ed_truth, args.sample_peers, args.seed);
                row.push(fmt_err(if pick_max {
                    ed_report.max_cdf
                } else {
                    ed_report.avg_cdf
                }));
            }
        }

        let mut table = Table::new(headers);
        for row in rows {
            table.row(row);
        }
        println!("{metric_name}:");
        table.print();
        println!();
    }

    println!(
        "expected shape: both systems hold their no-churn accuracy until about 1% churn per \
         round (10x the churn of real P2P deployments), then degrade; Adam2 remains better \
         throughout."
    );
}
