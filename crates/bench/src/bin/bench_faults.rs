//! Fault-injection matrix: Err_a and mass-conservation drift per scenario.
//!
//! Replays four canned [`FaultScenario`]s — fault-free, a 20 % burst loss,
//! burst loss plus a 10-round overlay bisection, and a crash–recover wave —
//! against one 35-round Adam2 instance, each with the two-phase exchange
//! repair off and on, plus one self-healing run (restart-on-bad-verify)
//! under the combined scenario. Results go to `BENCH_faults.json` at the
//! repository root (override with `--out PATH`).
//!
//! Extra flags: `--out PATH`, `--check 1` (assert the robustness
//! invariants and exit non-zero on violation — used by CI's fault-matrix
//! job). The standard `--nodes` / `--seed` / `--lambda` flags also apply.

use adam2_bench::{
    adam2_engine_with, evaluate_estimates, export_telemetry, run_instance_audited, setup,
    start_instance, Args, AUDIT_FRACTION, AUDIT_WEIGHT,
};
use adam2_core::Adam2Config;
use adam2_sim::{Engine, ExchangeRepair, FaultScenario, PartitionKind, RunManifest, SimTelemetry};
use adam2_traces::Attribute;

const ROUNDS: u64 = 35;

/// Extra fault-free rounds after finalisation so crash-recovered
/// (estimate-less) nodes can bootstrap their estimate from the completed
/// snapshot of a gossip partner. Two rounds cover the unlucky case of a
/// recovered node first pairing with another recovered node.
const SETTLE_ROUNDS: u64 = 2;

struct ScenarioResult {
    name: &'static str,
    repair: bool,
    self_heal: bool,
    avg_cdf: f64,
    max_cdf: f64,
    weight_drift: f64,
    fraction_drift: f64,
    peers_without_estimate: usize,
    healed: u64,
    bootstraps: u64,
}

fn scenario_of(name: &str, seed: u64) -> Option<FaultScenario> {
    match name {
        "fault_free" => None,
        "burst20" => Some(FaultScenario::new(seed).with_burst_loss(5, 15, 0.2)),
        "burst20_partition10" => Some(
            FaultScenario::new(seed)
                .with_burst_loss(5, 15, 0.2)
                .with_partition(10, 20, PartitionKind::Bisect),
        ),
        "crash_recover" => Some(FaultScenario::new(seed).with_crash_recover(8, 16, 0.1)),
        _ => unreachable!("unknown scenario {name}"),
    }
}

fn main() {
    let args = Args::parse("bench_faults");
    // Extras are `--key value`; `--check 1` (any value) turns checking on.
    let check = args.extra("check").is_some();
    let default_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_faults.json");
    let out = args.extra("out").unwrap_or(default_out).to_string();

    let nodes = args.nodes;
    let s = setup(Attribute::Ram, nodes, args.seed);
    let base_config = Adam2Config::new()
        .with_lambda(args.lambda)
        .with_rounds_per_instance(ROUNDS);

    println!("== bench_faults — Err_a and mass drift per fault scenario ==");
    println!("nodes={} seed={} lambda={}", nodes, args.seed, args.lambda);
    println!();

    let mut results: Vec<ScenarioResult> = Vec::new();
    let names = [
        "fault_free",
        "burst20",
        "burst20_partition10",
        "crash_recover",
    ];
    for name in names {
        for repair in [false, true] {
            let mut engine = adam2_engine_with(&s, base_config, args.seed, |c| {
                if repair {
                    c.with_repair(ExchangeRepair::enabled())
                } else {
                    c
                }
            });
            if let Some(scenario) = scenario_of(name, args.seed) {
                engine
                    .set_fault_scenario(scenario)
                    .expect("canned scenario is valid");
            }
            results.push(run_one(name, repair, false, engine, &s, &args));
        }
    }
    // Self-healing run: a threshold below the interpolation error floor
    // forces every verification vote to demand a restart, demonstrating the
    // restart epoch end-to-end — the healed instance must still finalise
    // (one duration later) with fault-free accuracy.
    {
        let heal_config = base_config.with_verify_points(10).with_self_heal(1e-15, 1);
        let mut engine = adam2_engine_with(&s, heal_config, args.seed, |c| {
            c.with_repair(ExchangeRepair::enabled())
        });
        engine
            .set_fault_scenario(scenario_of("burst20_partition10", args.seed).unwrap())
            .expect("valid");
        results.push(run_one(
            "burst20_partition10",
            true,
            true,
            engine,
            &s,
            &args,
        ));
    }

    for r in &results {
        println!(
            "{:<22} repair={:<5} heal={:<5} Err_a={:.3e} Err_m={:.3e} w-drift={:.3e} f-drift={:.3e} healed={} bootstraps={}",
            r.name, r.repair, r.self_heal, r.avg_cdf, r.max_cdf, r.weight_drift, r.fraction_drift, r.healed, r.bootstraps
        );
    }

    let json = render_json(&args, nodes, &results);
    match std::fs::write(&out, &json) {
        Ok(()) => println!("\nwrote {out}"),
        Err(e) => {
            eprintln!("bench_faults: cannot write {out}: {e}");
            std::process::exit(1);
        }
    }

    if check {
        run_checks(&results, nodes);
        println!("all fault-matrix checks passed");
    }
}

fn run_one(
    name: &'static str,
    repair: bool,
    self_heal: bool,
    mut engine: Engine<adam2_core::Adam2Protocol>,
    s: &adam2_bench::ExperimentSetup,
    args: &Args,
) -> ScenarioResult {
    // Telemetry is always attached here (it is observation-only, so the
    // results are identical either way) — it supplies the bootstrap count;
    // the full export happens only under `--telemetry DIR`.
    engine.attach_telemetry(SimTelemetry::new());
    let meta = start_instance(&mut engine);
    // One extra healing epoch when self-healing is on: a restarted
    // instance needs its extended deadline to pass before finalising.
    // SETTLE_ROUNDS more let crash-recovered nodes bootstrap estimates.
    let rounds = if self_heal {
        2 * ROUNDS + 1
    } else {
        ROUNDS + 1
    } + SETTLE_ROUNDS;
    let auditor = run_instance_audited(&mut engine, &meta, rounds);
    let report = evaluate_estimates(&engine, &s.truth, args.sample_peers, args.seed);
    let last_round = engine.round() - 1;
    let bootstraps = {
        let t = engine.telemetry_mut().expect("telemetry attached above");
        // Stamp the headline errors onto the final exported round so the
        // JSONL series reproduces the BENCH_faults.json numbers.
        t.annotate_round(
            last_round,
            report.max_cdf,
            report.avg_cdf,
            f64::NAN,
            f64::NAN,
        );
        t.telemetry()
            .metrics
            .counters()
            .find(|(n, _)| *n == "estimate_bootstraps")
            .map_or(0, |(_, v)| v)
    };
    if let Some(dir) = &args.telemetry {
        let label = format!(
            "{name}_{}{}",
            if repair { "repair" } else { "norepair" },
            if self_heal { "_heal" } else { "" }
        );
        let config_desc = format!(
            "nodes={} lambda={} rounds={ROUNDS} scenario={name} repair={repair} heal={self_heal}",
            args.nodes, args.lambda
        );
        export_telemetry(
            &mut engine,
            dir,
            &label,
            "bench_faults",
            &config_desc,
            args.seed,
        );
    }
    ScenarioResult {
        name,
        repair,
        self_heal,
        avg_cdf: report.avg_cdf,
        max_cdf: report.max_cdf,
        weight_drift: auditor.max_drift_of(AUDIT_WEIGHT).unwrap_or(0.0),
        fraction_drift: auditor.max_drift_of(AUDIT_FRACTION).unwrap_or(0.0),
        peers_without_estimate: report.peers_without_estimate,
        healed: engine.protocol().healed_count(),
        bootstraps,
    }
}

fn render_json(args: &Args, nodes: usize, results: &[ScenarioResult]) -> String {
    let manifest = RunManifest::new(
        "bench_faults",
        &format!("nodes={nodes} lambda={} rounds={ROUNDS}", args.lambda),
        args.seed,
        1,
    );
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"fault_matrix\",\n");
    json.push_str(&format!("  \"manifest\": {},\n", manifest.to_inline_json()));
    json.push_str(&format!("  \"nodes\": {nodes},\n"));
    json.push_str(&format!("  \"seed\": {},\n", args.seed));
    json.push_str(&format!("  \"lambda\": {},\n", args.lambda));
    json.push_str(&format!("  \"rounds\": {ROUNDS},\n"));
    json.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"repair\": {}, \"self_heal\": {}, \
             \"err_a\": {:.6e}, \"err_m\": {:.6e}, \"weight_drift\": {:.6e}, \
             \"fraction_drift\": {:.6e}, \"peers_without_estimate\": {}, \"healed\": {}, \
             \"bootstraps\": {}}}{}\n",
            r.name,
            r.repair,
            r.self_heal,
            r.avg_cdf,
            r.max_cdf,
            r.weight_drift,
            r.fraction_drift,
            r.peers_without_estimate,
            r.healed,
            r.bootstraps,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    json
}

fn find<'a>(
    results: &'a [ScenarioResult],
    name: &str,
    repair: bool,
    self_heal: bool,
) -> &'a ScenarioResult {
    results
        .iter()
        .find(|r| r.name == name && r.repair == repair && r.self_heal == self_heal)
        .expect("scenario present")
}

fn run_checks(results: &[ScenarioResult], nodes: usize) {
    let mut failures = Vec::new();
    let clean = find(results, "fault_free", false, false);

    // Conservation: every repaired loss/partition run must keep the mass
    // auditor flat; the unrepaired burst runs must show a measurable leak.
    for name in ["fault_free", "burst20", "burst20_partition10"] {
        let r = find(results, name, true, false);
        if r.weight_drift.abs() > 1e-9 || r.fraction_drift > 1e-6 {
            failures.push(format!(
                "{name}+repair leaked mass (w {:.3e}, f {:.3e})",
                r.weight_drift, r.fraction_drift
            ));
        }
    }
    for name in ["burst20", "burst20_partition10"] {
        let r = find(results, name, false, false);
        if r.weight_drift.abs() < 1e-4 {
            failures.push(format!(
                "{name} without repair should measurably drift, got {:.3e}",
                r.weight_drift
            ));
        }
    }

    // Accuracy: the repaired faulted runs stay within 2x of fault-free
    // Err_a, and nobody is left without an estimate.
    for name in ["burst20", "burst20_partition10"] {
        let r = find(results, name, true, false);
        if r.avg_cdf > clean.avg_cdf * 2.0 + 1e-9 {
            failures.push(format!(
                "{name}+repair Err_a {:.3e} exceeds 2x fault-free {:.3e}",
                r.avg_cdf, clean.avg_cdf
            ));
        }
        if r.peers_without_estimate > 0 {
            failures.push(format!(
                "{name}+repair left {} peers without an estimate",
                r.peers_without_estimate
            ));
        }
    }

    // Crash–recover: recovered nodes re-joined after the start round and
    // cannot participate in the instance, but during the settle rounds
    // each must bootstrap its estimate from a completed partner snapshot —
    // nobody may end estimate-less, and the bootstraps must be recorded.
    let crash = find(results, "crash_recover", true, false);
    let wave = (nodes as f64 * 0.1).ceil() as usize;
    if crash.peers_without_estimate > 0 {
        failures.push(format!(
            "crash_recover+repair left {} peers without an estimate despite \
             recovery bootstraps (wave {wave})",
            crash.peers_without_estimate
        ));
    }
    if crash.bootstraps < wave as u64 {
        failures.push(format!(
            "crash_recover+repair recorded only {} estimate bootstraps for a \
             recovered wave of {wave}",
            crash.bootstraps
        ));
    }

    // Self-healing: the forced-restart run must actually restart, and the
    // healed epoch must still converge to fault-free accuracy.
    let heal = find(results, "burst20_partition10", true, true);
    if heal.healed == 0 {
        failures.push("self-heal run recorded no restarts".to_string());
    }
    if heal.avg_cdf > clean.avg_cdf * 2.0 + 1e-9 {
        failures.push(format!(
            "healed Err_a {:.3e} exceeds 2x fault-free {:.3e}",
            heal.avg_cdf, clean.avg_cdf
        ));
    }
    if heal.peers_without_estimate > 0 {
        failures.push(format!(
            "self-heal run left {} peers without an estimate",
            heal.peers_without_estimate
        ));
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("bench_faults check FAILED: {f}");
        }
        std::process::exit(1);
    }
}
