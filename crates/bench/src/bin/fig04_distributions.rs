//! Reproduces Fig. 4: the true CDFs of the synthetic BOINC-like attribute
//! populations (CPU smooth, RAM stepped).

use adam2_bench::{Args, AsciiChart, Table};
use adam2_traces::{Attribute, EmpiricalSummary};

fn main() {
    let args = Args::parse("fig04_distributions");
    args.print_header(
        "fig04_distributions",
        "Fig. 4 (actual attribute distributions)",
    );

    let mut table = Table::new(vec![
        "attribute",
        "n",
        "min",
        "p10",
        "median",
        "p90",
        "max",
        "distinct",
        "top-step mass",
    ]);
    let mut chart = AsciiChart::new(72, 18).log_x();
    let symbols = ['c', 'r', 'd', 'b'];

    for (attr, symbol) in Attribute::ALL.into_iter().zip(symbols) {
        let setup = adam2_bench::setup(attr, args.nodes, args.seed);
        let values = setup.population.values();
        let summary = EmpiricalSummary::of(values);

        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let pct = |q: f64| sorted[((q * (sorted.len() - 1) as f64) as usize).min(sorted.len() - 1)];

        // Distinct values and the mass of the heaviest step.
        let mut distinct = 0usize;
        let mut heaviest = 0usize;
        let mut i = 0;
        while i < sorted.len() {
            let j = sorted[i..].partition_point(|v| *v <= sorted[i]) + i;
            distinct += 1;
            heaviest = heaviest.max(j - i);
            i = j;
        }

        table.row(vec![
            attr.name().to_string(),
            summary.count.to_string(),
            format!("{:.0}", summary.min),
            format!("{:.0}", pct(0.1)),
            format!("{:.0}", summary.median),
            format!("{:.0}", pct(0.9)),
            format!("{:.0}", summary.max),
            distinct.to_string(),
            format!("{:.1}%", heaviest as f64 / sorted.len() as f64 * 100.0),
        ]);

        // CDF polyline for the chart (subsampled).
        let points: Vec<(f64, f64)> = (0..=100)
            .map(|k| {
                let q = k as f64 / 100.0;
                (pct(q), q)
            })
            .collect();
        chart = chart.series(symbol, attr.name(), points);
    }

    table.print();
    println!();
    println!("CDFs (x log-scale, y = fraction of nodes):");
    chart.print();
    println!();
    println!(
        "expected shape: cpu/bandwidth smooth and heavy-tailed; ram/disk dominated by a few \
         steps (the paper's hard case)."
    );
    table.maybe_write_csv(args.csv.as_deref());
}
