//! Extension ablations:
//!
//! 1. **Interpolation scheme** — linear (the paper's choice) vs monotone
//!    cubic (the paper's "more complex approaches are possible").
//! 2. **Combining instances** — pooling interpolation points from two
//!    consecutive instances of a stable CDF (Section VII-D's in-text
//!    suggestion).
//! 3. **Fixed equi-width bins** — Adam2's exact averaging *without* its
//!    adaptive threshold placement, isolating what refinement buys.

use adam2_baselines::{EquiWidthConfig, EquiWidthProtocol};
use adam2_bench::{adam2_engine, complete_instance, fmt_err, start_instance, Args, Table};
use adam2_core::{discrete_errors_over, Adam2Config, MonotoneCubicCdf, RefineKind, StepCdf};
use adam2_sim::{ChurnModel, Engine, EngineConfig};

fn main() {
    let args = Args::parse("exp_ablations");
    args.print_header("exp_ablations", "extension ablations (not paper figures)");

    interpolation_ablation(&args);
    combination_ablation(&args);
    equiwidth_ablation(&args);
}

/// Linear vs monotone cubic interpolation of the same aggregated points.
fn interpolation_ablation(args: &Args) {
    println!("1. interpolation scheme (after 3 LCut instances):");
    let mut table = Table::new(vec![
        "attribute",
        "Err_a linear",
        "Err_a cubic",
        "Err_m linear",
        "Err_m cubic",
    ]);
    for attr in &args.attrs {
        let setup = adam2_bench::setup(*attr, args.nodes, args.seed);
        let config = Adam2Config::new()
            .with_lambda(args.lambda)
            .with_rounds_per_instance(args.rounds)
            .with_refine(RefineKind::LCut);
        let mut engine = adam2_engine(&setup, config, args.seed, ChurnModel::None);
        for _ in 0..3 {
            start_instance(&mut engine);
            complete_instance(&mut engine, args.rounds);
        }
        let (_, node) = engine.nodes().iter().next().expect("nodes");
        let est = node.estimate().expect("estimate");
        let (lin_m, lin_a) =
            discrete_errors_over(&setup.truth, &est.cdf, setup.truth.min(), setup.truth.max());
        let cubic = MonotoneCubicCdf::from_linear(&est.cdf);
        let (cub_m, cub_a) = cubic_errors(&setup.truth, &cubic);
        table.row(vec![
            attr.name().to_string(),
            fmt_err(lin_a),
            fmt_err(cub_a),
            fmt_err(lin_m),
            fmt_err(cub_m),
        ]);
    }
    table.print();
    println!(
        "   expected: cubic helps on the smooth cpu CDF (curvature between points), is \
         neutral-to-equal on stepped ram (the shape limiter collapses to the chord).\n"
    );
}

/// Exact discrete errors for the cubic interpolant.
fn cubic_errors(truth: &StepCdf, cubic: &MonotoneCubicCdf) -> (f64, f64) {
    let lo = truth.min();
    let hi = truth.max();
    let start = lo.ceil() as i64;
    let end = hi.floor() as i64;
    let mut max = 0.0f64;
    let mut sum = 0.0f64;
    for k in start..=end {
        let x = k as f64;
        let d = (truth.eval(x) - cubic.eval(x)).abs();
        max = max.max(d);
        sum += d;
    }
    (max, sum / (hi - lo))
}

/// Combining the point sets of two consecutive instances (Section VII-D).
fn combination_ablation(args: &Args) {
    println!("2. combining two instances' interpolation points (Section VII-D):");
    let mut table = Table::new(vec![
        "attribute",
        "instance 2 alone (Err_a)",
        "combined 2+3 (Err_a)",
        "instance 2 alone (Err_m)",
        "combined 2+3 (Err_m)",
    ]);
    for attr in &args.attrs {
        let setup = adam2_bench::setup(*attr, args.nodes, args.seed);
        let config = Adam2Config::new()
            .with_lambda(args.lambda)
            .with_rounds_per_instance(args.rounds)
            .with_refine(RefineKind::LCut);
        let mut engine = adam2_engine(&setup, config, args.seed, ChurnModel::None);
        start_instance(&mut engine);
        complete_instance(&mut engine, args.rounds);
        start_instance(&mut engine);
        complete_instance(&mut engine, args.rounds);
        let second = {
            let (_, node) = engine.nodes().iter().next().expect("nodes");
            node.estimate().expect("estimate").clone()
        };
        start_instance(&mut engine);
        complete_instance(&mut engine, args.rounds);
        let third = {
            let (_, node) = engine.nodes().iter().next().expect("nodes");
            node.estimate().expect("estimate").clone()
        };
        let combined = second.combined_with(&third).expect("combinable");
        let (alone_m, alone_a) = discrete_errors_over(
            &setup.truth,
            &third.cdf,
            setup.truth.min(),
            setup.truth.max(),
        );
        let (comb_m, comb_a) = discrete_errors_over(
            &setup.truth,
            &combined.cdf,
            setup.truth.min(),
            setup.truth.max(),
        );
        table.row(vec![
            attr.name().to_string(),
            fmt_err(alone_a),
            fmt_err(comb_a),
            fmt_err(alone_m),
            fmt_err(comb_m),
        ]);
    }
    table.print();
    println!(
        "   expected: pooling ~doubles the effective point count for free on a stable CDF, \
         reducing the interpolation error below either single instance.\n"
    );
}

/// Adam2 vs exact-averaging equi-width histograms with the same budget.
fn equiwidth_ablation(args: &Args) {
    println!("3. adaptive thresholds vs fixed equi-width bins (same point budget):");
    let mut table = Table::new(vec![
        "attribute",
        "adam2 minmax Err_m",
        "equi-width Err_m",
        "adam2 lcut Err_a",
        "equi-width Err_a",
    ]);
    for attr in &args.attrs {
        let setup = adam2_bench::setup(*attr, args.nodes, args.seed);

        let mut results = Vec::new();
        for refine in [RefineKind::MinMax, RefineKind::LCut] {
            let config = Adam2Config::new()
                .with_lambda(args.lambda)
                .with_rounds_per_instance(args.rounds)
                .with_refine(refine);
            let mut engine = adam2_engine(&setup, config, args.seed, ChurnModel::None);
            for _ in 0..3 {
                start_instance(&mut engine);
                complete_instance(&mut engine, args.rounds);
            }
            let (_, node) = engine.nodes().iter().next().expect("nodes");
            let est = node.estimate().expect("estimate");
            results.push(discrete_errors_over(
                &setup.truth,
                &est.cdf,
                setup.truth.min(),
                setup.truth.max(),
            ));
        }

        let ew_config = EquiWidthConfig::new(
            args.lambda,
            args.rounds,
            (setup.truth.min(), setup.truth.max()),
        );
        let pop = setup.population.clone();
        let proto =
            EquiWidthProtocol::with_population(ew_config, pop.values().to_vec(), move |rng| {
                pop.draw_fresh(rng)
            });
        let mut engine = Engine::new(EngineConfig::new(args.nodes, args.seed), proto);
        for _ in 0..3 {
            engine.with_ctx(|proto, ctx| {
                let initiator = ctx.nodes.random_id(ctx.rng).expect("nodes");
                proto.start_phase(initiator, ctx)
            });
            complete_instance(&mut engine, args.rounds);
        }
        let (_, node) = engine.nodes().iter().next().expect("nodes");
        let est = node.estimate().expect("estimate");
        let (ew_m, ew_a) =
            discrete_errors_over(&setup.truth, est, setup.truth.min(), setup.truth.max());

        table.row(vec![
            attr.name().to_string(),
            fmt_err(results[0].0),
            fmt_err(ew_m),
            fmt_err(results[1].1),
            fmt_err(ew_a),
        ]);
    }
    table.print();
    println!(
        "   expected: on smooth cpu the fixed bins are serviceable; on the skewed/stepped \
         ram attribute adaptive placement wins decisively — refinement, not just exact \
         averaging, is what makes Adam2 accurate."
    );
}
