//! Reproduces Fig. 14: accuracy of the *self-assessed* error (Section VI)
//! as a function of the number of verification points — the relative
//! difference `|Err(p) - EstErr(p)| / Err(p)` averaged over peers, for the
//! maximum and average error metrics (MinMax refinement).

use adam2_bench::{adam2_engine, complete_instance, fmt_err, start_instance, Args, Table};
use adam2_core::{discrete_errors_over, Adam2Config, ErrorMetric, RefineKind};
use adam2_sim::{derive_seed, seeded_rng, ChurnModel};
use rand::RngExt as _;

fn main() {
    let args = Args::parse("fig14_confidence");
    args.print_header(
        "fig14_confidence",
        "Fig. 14 (confidence-estimation error, MinMax)",
    );
    let instances: usize = args
        .extra_parsed("instances")
        .unwrap_or_else(|e| panic!("{e}"))
        .unwrap_or(4);
    let verify_counts: Vec<usize> = vec![10, 20, 30, 40, 50, 60, 70, 80, 90, 100];

    for (metric_name, metric) in [
        ("(a) maximum error Err_m estimation", ErrorMetric::Max),
        ("(b) average error Err_a estimation", ErrorMetric::Average),
    ] {
        let mut headers = vec!["verify points".to_string()];
        for attr in &args.attrs {
            headers.push(attr.name().to_string());
        }
        let mut rows: Vec<Vec<String>> =
            verify_counts.iter().map(|v| vec![v.to_string()]).collect();

        for attr in &args.attrs {
            let setup = adam2_bench::setup(*attr, args.nodes, args.seed);
            for (row, verify) in rows.iter_mut().zip(&verify_counts) {
                let config = Adam2Config::new()
                    .with_lambda(args.lambda)
                    .with_rounds_per_instance(args.rounds)
                    .with_refine(RefineKind::MinMax)
                    .with_verify_points(*verify)
                    .with_verify_metric(metric);
                let mut engine = adam2_engine(&setup, config, args.seed, ChurnModel::None);
                for _ in 0..instances {
                    start_instance(&mut engine);
                    complete_instance(&mut engine, args.rounds);
                }

                // Relative estimation error over a deterministic peer
                // sample.
                let ids = engine.nodes().id_vec();
                let mut rng = seeded_rng(derive_seed(args.seed, 0xF14));
                let mut total = 0.0f64;
                let mut count = 0usize;
                for _ in 0..args.sample_peers.min(ids.len()) {
                    let id = ids[rng.random_range(0..ids.len())];
                    let Some(node) = engine.nodes().get(id) else {
                        continue;
                    };
                    let Some(est) = node.estimate() else { continue };
                    let (act_m, act_a) = discrete_errors_over(
                        &setup.truth,
                        &est.cdf,
                        setup.truth.min(),
                        setup.truth.max(),
                    );
                    let (actual, assessed) = match metric {
                        ErrorMetric::Max => (act_m, est.est_err_max),
                        ErrorMetric::Average => (act_a, est.est_err_avg),
                    };
                    let Some(assessed) = assessed else { continue };
                    if actual > 1e-12 {
                        total += (actual - assessed).abs() / actual;
                        count += 1;
                    }
                }
                let rel = if count > 0 {
                    total / count as f64
                } else {
                    f64::NAN
                };
                row.push(fmt_err(rel));
            }
        }

        let mut table = Table::new(headers);
        for row in rows {
            table.row(row);
        }
        println!("{metric_name}:");
        table.print();
        println!();
    }

    println!(
        "expected shape: ~20 verification points estimate Err_a within ~10% relative error \
         (costing 40% extra traffic); Err_m is a single-point property and needs many more \
         points for a rough estimate."
    );
}
