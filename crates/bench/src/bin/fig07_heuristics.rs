//! Reproduces Fig. 7: HCut vs MinMax vs LCut over multiple consecutive
//! aggregation instances — (a) maximum error Err_m, (b) average error
//! Err_a.

use adam2_bench::{
    adam2_engine, complete_instance, evaluate_estimates, fmt_err, start_instance, Args, Table,
};
use adam2_core::{Adam2Config, RefineKind};
use adam2_sim::ChurnModel;

fn main() {
    let args = Args::parse("fig07_heuristics");
    args.print_header("fig07_heuristics", "Fig. 7 (HCut vs MinMax vs LCut)");
    let instances: usize = args
        .extra_parsed("instances")
        .unwrap_or_else(|e| panic!("{e}"))
        .unwrap_or(5);

    let heuristics = [
        (RefineKind::HCut, "hcut"),
        (RefineKind::MinMax, "minmax"),
        (RefineKind::LCut, "lcut"),
    ];

    for (metric_name, pick_max) in [
        ("(a) maximum error Err_m", true),
        ("(b) average error Err_a", false),
    ] {
        let mut headers = vec!["instance".to_string()];
        for attr in &args.attrs {
            for (_, label) in &heuristics {
                headers.push(format!("{attr}-{label}"));
            }
        }
        let mut rows: Vec<Vec<String>> = (1..=instances).map(|i| vec![i.to_string()]).collect();

        for attr in &args.attrs {
            let setup = adam2_bench::setup(*attr, args.nodes, args.seed);
            for (refine, _) in &heuristics {
                let config = Adam2Config::new()
                    .with_lambda(args.lambda)
                    .with_rounds_per_instance(args.rounds)
                    .with_refine(*refine);
                let mut engine = adam2_engine(&setup, config, args.seed, ChurnModel::None);
                for row in rows.iter_mut() {
                    start_instance(&mut engine);
                    complete_instance(&mut engine, args.rounds);
                    let report =
                        evaluate_estimates(&engine, &setup.truth, args.sample_peers, args.seed);
                    row.push(fmt_err(if pick_max {
                        report.max_cdf
                    } else {
                        report.avg_cdf
                    }));
                }
            }
        }

        let mut table = Table::new(headers);
        for row in rows {
            table.row(row);
        }
        println!("{metric_name}:");
        table.print();
        println!();
        if let Some(path) = args.csv.as_deref() {
            let suffixed = format!("{}.{}", path, if pick_max { "errm" } else { "erra" });
            table.maybe_write_csv(Some(&suffixed));
        }
    }

    println!(
        "expected shape: on the stepped ram attribute MinMax clearly wins Err_m; LCut wins \
         Err_a by about an order of magnitude after 3 instances; all heuristics do fine on \
         the smooth cpu attribute."
    );
}
