//! Reproduces Fig. 6: approximation error per round within a single
//! aggregation instance (a) Adam2 and (b) EquiDepth, for the RAM
//! attribute — errors at the interpolation points/bins and over the
//! entire CDF domain.

use adam2_baselines::EquiDepthConfig;
use adam2_bench::{
    adam2_engine, equidepth_engine, export_telemetry, fmt_err, maybe_attach_telemetry,
    run_instance_tracked, start_instance, start_phase, Args, AsciiChart, Table,
};
use adam2_core::{discrete_errors_over, Adam2Config, StepCdf};
use adam2_sim::{derive_seed, seeded_rng, ChurnModel};
use adam2_traces::Attribute;
use rand::RngExt as _;

fn main() {
    let mut args = Args::parse("fig06_single_instance");
    // The paper shows RAM; 80 rounds to display the full exponential decay.
    if args.attrs.len() > 1 {
        args.attrs = vec![Attribute::Ram];
    }
    let rounds: u64 = args
        .extra_parsed("track-rounds")
        .unwrap_or_else(|e| panic!("{e}"))
        .unwrap_or(80);
    args.print_header(
        "fig06_single_instance",
        "Fig. 6 (single-instance error per round, RAM)",
    );
    let attr = args.attrs[0];
    let setup = adam2_bench::setup(attr, args.nodes, args.seed);

    // ---- (a) Adam2 ------------------------------------------------------
    let config = Adam2Config::new()
        .with_lambda(args.lambda)
        .with_rounds_per_instance(rounds);
    let mut engine = adam2_engine(&setup, config, args.seed, ChurnModel::None);
    maybe_attach_telemetry(&mut engine, args.telemetry.as_ref());
    let meta = start_instance(&mut engine);
    let truth = setup.truth.clone();
    let series = run_instance_tracked(
        &mut engine,
        &meta,
        move |_| truth.clone(),
        rounds,
        args.sample_peers,
        args.seed,
    );
    if let Some(dir) = &args.telemetry {
        export_telemetry(
            &mut engine,
            dir,
            "adam2",
            "fig06_single_instance",
            &format!(
                "nodes={} lambda={} rounds={rounds}",
                args.nodes, args.lambda
            ),
            args.seed,
        );
    }

    let mut table = Table::new(vec![
        "round",
        "adam2 max@points",
        "adam2 avg@points",
        "adam2 max CDF",
        "adam2 avg CDF",
        "participation",
    ]);
    for s in &series {
        if s.round <= 10 || s.round % 5 == 0 {
            table.row(vec![
                s.round.to_string(),
                fmt_err(s.max_points),
                fmt_err(s.avg_points),
                fmt_err(s.max_cdf),
                fmt_err(s.avg_cdf),
                format!("{:.3}", s.participation),
            ]);
        }
    }
    println!("(a) Adam2, single instance:");
    table.print();
    println!();
    let chart = AsciiChart::new(64, 18)
        .log_y()
        .series(
            'M',
            "max@points",
            series
                .iter()
                .map(|s| (s.round as f64, s.max_points))
                .collect(),
        )
        .series(
            'a',
            "avg@points",
            series
                .iter()
                .map(|s| (s.round as f64, s.avg_points))
                .collect(),
        )
        .series(
            'C',
            "max CDF",
            series.iter().map(|s| (s.round as f64, s.max_cdf)).collect(),
        );
    chart.print();
    println!();

    // ---- (b) EquiDepth ---------------------------------------------------
    let ed_config = EquiDepthConfig::new(args.lambda, rounds);
    let mut ed_engine = equidepth_engine(&setup, ed_config, args.seed, ChurnModel::None);
    let phase = start_phase(&mut ed_engine);
    let mut ed_table = Table::new(vec![
        "round",
        "equidepth max@bins",
        "equidepth avg@bins",
        "equidepth max CDF",
        "equidepth avg CDF",
    ]);
    let mut rng = seeded_rng(derive_seed(args.seed, 0xED));
    let mut final_row = (0.0, 0.0, 0.0, 0.0);
    for r in 1..=rounds {
        ed_engine.run_round();
        let (max_b, avg_b, max_c, avg_c) = equidepth_round_errors(
            &ed_engine,
            &setup.truth,
            phase.start_round,
            args.sample_peers,
            &mut rng,
        );
        final_row = (max_b, avg_b, max_c, avg_c);
        if r <= 10 || r % 5 == 0 {
            ed_table.row(vec![
                r.to_string(),
                fmt_err(max_b),
                fmt_err(avg_b),
                fmt_err(max_c),
                fmt_err(avg_c),
            ]);
        }
    }
    println!("(b) EquiDepth, single phase:");
    ed_table.print();
    println!();
    println!(
        "expected shape: Adam2's error at the interpolation points decays exponentially to \
         ~1e-15 after round ~10 while the entire-CDF error floors at a few percent \
         (interpolation error); EquiDepth's error at the bins stays at percent level — \
         sample duplication — and never improves. Final EquiDepth row: max@bins={} \
         avg@bins={} maxCDF={} avgCDF={}",
        fmt_err(final_row.0),
        fmt_err(final_row.1),
        fmt_err(final_row.2),
        fmt_err(final_row.3),
    );
    table.maybe_write_csv(args.csv.as_deref());
}

/// EquiDepth per-round errors: at the synopsis bins and over the whole
/// CDF (sampled peers). Non-participants count as error 1.0.
fn equidepth_round_errors(
    engine: &adam2_sim::Engine<adam2_baselines::EquiDepthProtocol>,
    truth: &StepCdf,
    phase_start: u64,
    sample_peers: usize,
    rng: &mut rand::rngs::StdRng,
) -> (f64, f64, f64, f64) {
    let mut participants = Vec::new();
    let mut absent = 0usize;
    let mut max_bins = 0.0f64;
    let mut sum_bins = 0.0f64;
    for (id, node) in engine.nodes().iter() {
        if node.joined_round() > phase_start {
            continue;
        }
        let syn = node.synopsis();
        if syn.len() < 2 {
            absent += 1;
            continue;
        }
        participants.push(id);
        let s = syn.len();
        let mut peer_sum = 0.0f64;
        for (i, b) in syn.iter().enumerate() {
            let e = (truth.eval(*b) - i as f64 / (s - 1) as f64).abs();
            max_bins = max_bins.max(e);
            peer_sum += e;
        }
        sum_bins += peer_sum / s as f64;
    }
    if absent > 0 {
        max_bins = 1.0;
    }
    let avg_bins = (sum_bins + absent as f64) / (participants.len() + absent).max(1) as f64;

    let mut max_cdf = if absent > 0 { 1.0 } else { 0.0f64 };
    let mut sum_cdf = 0.0f64;
    let samples = sample_peers.min(participants.len());
    for _ in 0..samples {
        let id = participants[rng.random_range(0..participants.len())];
        let node = engine.nodes().get(id).expect("live");
        if let Some(cdf) = node.phase_estimate() {
            let (m, a) = discrete_errors_over(truth, &cdf, truth.min(), truth.max());
            max_cdf = max_cdf.max(m);
            sum_cdf += a;
        } else {
            sum_cdf += 1.0;
        }
    }
    let sampled_mean = if samples > 0 {
        sum_cdf / samples as f64
    } else {
        1.0
    };
    let avg_cdf = (sampled_mean * participants.len() as f64 + absent as f64)
        / (participants.len() + absent).max(1) as f64;
    (max_bins, avg_bins, max_cdf, avg_cdf)
}
