//! Reproduces Fig. 5: MinMax convergence with Uniform vs Neighbour-based
//! initial interpolation points, over 10 consecutive instances.

use adam2_bench::{
    adam2_engine, complete_instance, evaluate_estimates, fmt_err, start_instance, Args, AsciiChart,
    Table,
};
use adam2_core::{Adam2Config, BootstrapKind, RefineKind};
use adam2_sim::ChurnModel;

fn main() {
    let args = Args::parse("fig05_bootstrap");
    args.print_header(
        "fig05_bootstrap",
        "Fig. 5 (bootstrap comparison, Err_m, MinMax)",
    );
    let instances: usize = args
        .extra_parsed("instances")
        .unwrap_or_else(|e| panic!("{e}"))
        .unwrap_or(10);

    let bootstraps = [
        (BootstrapKind::Uniform, "uniform"),
        (BootstrapKind::Neighbours, "neighbour"),
    ];

    let mut headers = vec!["instance".to_string()];
    for attr in &args.attrs {
        for (_, label) in &bootstraps {
            headers.push(format!("{attr}-{label}"));
        }
    }
    let mut table = Table::new(headers);
    let mut rows: Vec<Vec<String>> = (1..=instances).map(|i| vec![i.to_string()]).collect();
    let mut chart = AsciiChart::new(64, 16).log_y();
    let symbols = ['U', 'N', 'u', 'n'];
    let mut symbol_idx = 0;

    for attr in &args.attrs {
        let setup = adam2_bench::setup(*attr, args.nodes, args.seed);
        for (bootstrap, label) in &bootstraps {
            let mut config = Adam2Config::new()
                .with_lambda(args.lambda)
                .with_rounds_per_instance(args.rounds)
                .with_bootstrap(*bootstrap)
                .with_refine(RefineKind::MinMax);
            if *bootstrap == BootstrapKind::Uniform {
                // The paper's simulator knows the attribute domain; the
                // uniform bootstrap spreads points over it.
                config = config.with_domain_hint(setup.truth.min(), setup.truth.max());
            }
            let mut engine = adam2_engine(&setup, config, args.seed, ChurnModel::None);
            let mut series = Vec::new();
            for (i, row) in rows.iter_mut().enumerate() {
                start_instance(&mut engine);
                complete_instance(&mut engine, args.rounds);
                let report =
                    evaluate_estimates(&engine, &setup.truth, args.sample_peers, args.seed);
                row.push(fmt_err(report.max_cdf));
                series.push(((i + 1) as f64, report.max_cdf));
            }
            chart = chart.series(
                symbols[symbol_idx % symbols.len()],
                format!("{attr}-{label}"),
                series,
            );
            symbol_idx += 1;
        }
    }

    for row in rows {
        table.row(row);
    }
    table.print();
    println!();
    println!("maximum error Err_m per instance (log y):");
    chart.print();
    println!();
    println!(
        "expected shape: neighbour-based bootstrap converges in 2-4 instances; uniform needs \
         many more, especially on the stepped ram distribution."
    );
    table.maybe_write_csv(args.csv.as_deref());
}
