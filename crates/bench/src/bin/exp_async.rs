//! Extension experiment: how much do Adam2's results owe to the
//! cycle-driven (atomic push–pull) idealisation?
//!
//! Runs the same single aggregation instance (identical thresholds,
//! identical population) under: (a) the cycle-driven engine, (b) the
//! event-driven engine with short message latency, (c) long latency
//! approaching the gossip period, (d) short latency plus 10 % message
//! loss. Reports the converged error at the interpolation points — the
//! quantity that is ~1e-15 in the atomic model — and over the whole CDF.

use std::sync::Arc;

use adam2_bench::{adam2_engine, fmt_err, start_instance, Args, Table};
use adam2_core::{
    discrete_errors_over, uniform_points, Adam2Config, AsyncAdam2, BootstrapKind, InstanceId,
    InstanceMeta, InterpCdf, StepCdf,
};
use adam2_sim::{ChurnModel, EventConfig, EventEngine, LatencyModel};
use adam2_traces::Attribute;

fn main() {
    let mut args = Args::parse("exp_async");
    if args.attrs.len() > 1 {
        args.attrs = vec![Attribute::Ram];
    }
    args.print_header(
        "exp_async",
        "extension (atomic vs asynchronous push-pull; not a paper figure)",
    );
    let attr = args.attrs[0];
    let setup = adam2_bench::setup(attr, args.nodes, args.seed);
    let rounds = args.rounds.max(40);
    let thresholds = uniform_points(setup.truth.min(), setup.truth.max(), args.lambda);

    let mut table = Table::new(vec![
        "execution model",
        "max@points",
        "avg@points",
        "max CDF",
        "coverage",
    ]);

    // (a) Cycle-driven (atomic).
    {
        let config = Adam2Config::new()
            .with_lambda(args.lambda)
            .with_rounds_per_instance(rounds)
            .with_bootstrap(BootstrapKind::Uniform)
            .with_domain_hint(setup.truth.min(), setup.truth.max());
        let mut engine = adam2_engine(&setup, config, args.seed, ChurnModel::None);
        start_instance(&mut engine);
        engine.run_rounds(rounds + 1);
        let (maxp, avgp, maxc, cov) = cycle_errors(&engine, &setup.truth);
        table.row(vec![
            "cycle-driven (atomic)".into(),
            fmt_err(maxp),
            fmt_err(avgp),
            fmt_err(maxc),
            format!("{cov:.3}"),
        ]);
    }

    // (b)-(d) Event-driven variants.
    let period = 1000u64;
    let variants = [
        (
            "event, latency 1% of period",
            LatencyModel::Uniform { min: 5, max: 15 },
            0.0,
        ),
        (
            "event, latency ~50% of period",
            LatencyModel::Uniform { min: 300, max: 700 },
            0.0,
        ),
        (
            "event, 1% latency + 10% loss",
            LatencyModel::Uniform { min: 5, max: 15 },
            0.10,
        ),
    ];
    for (label, latency, loss) in variants {
        let proto = AsyncAdam2::with_population(period, setup.population.values().to_vec(), {
            let pop = setup.population.clone();
            move |rng| pop.draw_fresh(rng)
        });
        let config = EventConfig::new(args.nodes, args.seed)
            .with_gossip_period(period)
            .with_latency(latency)
            .with_loss_rate(loss);
        let mut engine = EventEngine::new(config, proto);
        let meta = Arc::new(InstanceMeta {
            id: InstanceId::derive(0, 0, 1),
            thresholds: thresholds.clone().into(),
            verify_thresholds: Vec::new().into(),
            start_round: 0,
            end_round: rounds,
            multi: false,
        });
        engine.with_ctx(|proto, ctx| {
            let initiator = ctx.nodes.random_id(ctx.rng).expect("nodes");
            proto.start_instance(initiator, meta.clone(), ctx)
        });
        engine.run_until(period * (rounds + 2));
        let (maxp, avgp, maxc, cov) = event_errors(&engine, &setup.truth);
        table.row(vec![
            label.into(),
            fmt_err(maxp),
            fmt_err(avgp),
            fmt_err(maxc),
            format!("{cov:.3}"),
        ]);
    }

    table.print();
    println!();
    println!(
        "expected shape: the atomic model reaches ~1e-15 at the points; asynchrony floors \
         the point error at a small but visible value (concurrent exchanges break exact \
         mass conservation), well below the interpolation floor — the paper's headline \
         accuracy survives realistic asynchrony."
    );
    table.maybe_write_csv(args.csv.as_deref());
}

fn cycle_errors(
    engine: &adam2_sim::Engine<adam2_core::Adam2Protocol>,
    truth: &StepCdf,
) -> (f64, f64, f64, f64) {
    let mut maxp = 0.0f64;
    let mut sump = 0.0f64;
    let mut maxc = 0.0f64;
    let mut with = 0usize;
    let mut total = 0usize;
    for (_, node) in engine.nodes().iter() {
        total += 1;
        let Some(est) = node.estimate() else { continue };
        with += 1;
        accumulate(
            truth,
            &est.thresholds,
            &est.fractions,
            &est.cdf,
            &mut maxp,
            &mut sump,
            &mut maxc,
            with,
        );
    }
    (
        maxp,
        sump / with.max(1) as f64,
        maxc,
        with as f64 / total.max(1) as f64,
    )
}

fn event_errors(engine: &EventEngine<AsyncAdam2>, truth: &StepCdf) -> (f64, f64, f64, f64) {
    let mut maxp = 0.0f64;
    let mut sump = 0.0f64;
    let mut maxc = 0.0f64;
    let mut with = 0usize;
    let mut total = 0usize;
    for (_, node) in engine.nodes().iter() {
        total += 1;
        let Some(est) = node.estimate() else { continue };
        with += 1;
        accumulate(
            truth,
            &est.thresholds,
            &est.fractions,
            &est.cdf,
            &mut maxp,
            &mut sump,
            &mut maxc,
            with,
        );
    }
    (
        maxp,
        sump / with.max(1) as f64,
        maxc,
        with as f64 / total.max(1) as f64,
    )
}

#[allow(clippy::too_many_arguments)]
fn accumulate(
    truth: &StepCdf,
    thresholds: &[f64],
    fractions: &[f64],
    cdf: &InterpCdf,
    maxp: &mut f64,
    sump: &mut f64,
    maxc: &mut f64,
    nth: usize,
) {
    let mut peer_sum = 0.0f64;
    for (t, f) in thresholds.iter().zip(fractions) {
        let e = (truth.eval(*t) - f).abs();
        *maxp = maxp.max(e);
        peer_sum += e;
    }
    *sump += peer_sum / thresholds.len().max(1) as f64;
    // Whole-CDF error on a subsample (it is dominated by interpolation and
    // nearly identical across peers).
    if nth <= 16 {
        let (m, _) = discrete_errors_over(truth, cdf, truth.min(), truth.max());
        *maxc = maxc.max(m);
    }
}
