//! Reproduces Section VII-I (cost evaluation): communication cost per node
//! for Adam2, EquiDepth and random sampling.
//!
//! Paper reference numbers at λ = 50, 25 rounds/instance: ≈800 B per
//! gossip message, ≈40 kB sent per node per instance (50 messages),
//! ≈120 kB / 150 messages for the 3-instance converged estimate —
//! independent of system size. Random sampling needs 1 000-10 000 samples
//! × ~10 walk hops ⇒ 10 000-100 000 messages.

use adam2_baselines::{sampling_cost_messages, EquiDepthConfig};
use adam2_bench::{
    adam2_engine, complete_instance, equidepth_engine, start_instance, start_phase, Args, Table,
};
use adam2_core::{wire, Adam2Config};
use adam2_sim::ChurnModel;

fn main() {
    let mut args = Args::parse("cost_table");
    if args.extra("rounds-set").is_none() {
        // The paper's cost accounting uses 25-round instances.
        args.rounds = args.extra_parsed("rounds").unwrap_or(None).unwrap_or(25);
    }
    args.print_header("cost_table", "Section VII-I (communication cost)");
    let instances: usize = args
        .extra_parsed("instances")
        .unwrap_or_else(|e| panic!("{e}"))
        .unwrap_or(3);

    let attr = args.attrs[0];
    let setup = adam2_bench::setup(attr, args.nodes, args.seed);

    // ---- Adam2 ------------------------------------------------------------
    let config = Adam2Config::new()
        .with_lambda(args.lambda)
        .with_rounds_per_instance(args.rounds);
    let mut engine = adam2_engine(&setup, config, args.seed, ChurnModel::None);
    let mut per_instance_bytes = Vec::new();
    for _ in 0..instances {
        let before = engine.net().total_bytes();
        start_instance(&mut engine);
        complete_instance(&mut engine, args.rounds);
        let delta = engine.net().total_bytes() - before;
        per_instance_bytes.push(delta as f64 / args.nodes as f64); // one sender per message
    }
    let sent = engine.net().sent_bytes_summary(engine.nodes().ids());
    let total_msgs_per_node = engine.net().total_msgs() as f64 / args.nodes as f64;

    // ---- EquiDepth ---------------------------------------------------------
    let mut ed = equidepth_engine(
        &setup,
        EquiDepthConfig::new(args.lambda, args.rounds),
        args.seed,
        ChurnModel::None,
    );
    for _ in 0..instances {
        start_phase(&mut ed);
        complete_instance(&mut ed, args.rounds);
    }
    let ed_sent = ed.net().sent_bytes_summary(ed.nodes().ids());

    let mut table = Table::new(vec!["quantity", "measured", "paper"]);
    table.row(vec![
        format!("adam2 message size (lambda={})", args.lambda),
        format!("{} B", wire::payload_len(args.lambda, 0) + 2),
        "~800 B".into(),
    ]);
    table.row(vec![
        "adam2 sent per node per instance".into(),
        format!(
            "{:.1} kB",
            per_instance_bytes.iter().sum::<f64>() / instances as f64 / 1000.0
        ),
        "~40 kB".into(),
    ]);
    table.row(vec![
        format!("adam2 sent per node, {instances} instances"),
        format!(
            "{:.1} kB (mean; max {:.1} kB)",
            sent.mean() / 1000.0,
            sent.max() / 1000.0
        ),
        "~120 kB".into(),
    ]);
    table.row(vec![
        format!("adam2 messages per node, {instances} instances"),
        format!("{total_msgs_per_node:.0} sent"),
        "~150".into(),
    ]);
    table.row(vec![
        "adam2 bandwidth at 1 s gossip period".into(),
        format!(
            "{:.2} kB/s over {} s",
            sent.mean() / 1000.0 / (instances as f64 * (args.rounds + 1) as f64),
            instances as f64 * (args.rounds + 1) as f64
        ),
        "~1.6 kB/s over 75 s".into(),
    ]);
    table.row(vec![
        format!("equidepth sent per node, {instances} phases"),
        format!("{:.1} kB", ed_sent.mean() / 1000.0),
        "similar to adam2".into(),
    ]);
    table.row(vec![
        "random sampling, 1000 samples".into(),
        format!("{} msgs", sampling_cost_messages(1000, 10)),
        "1000 walks x hops".into(),
    ]);
    table.row(vec![
        "random sampling, 10000 samples".into(),
        format!("{} msgs", sampling_cost_messages(10_000, 10)),
        "10x more".into(),
    ]);
    table.print();
    println!();
    println!("note: cost per node is independent of system size — rerun with --nodes to verify.");
    table.maybe_write_csv(args.csv.as_deref());
}
