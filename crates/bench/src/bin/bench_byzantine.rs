//! Byzantine-resilience matrix: honest-peer Err_a versus adversary
//! fraction, vanilla versus robust aggregation, on both engines.
//!
//! Sweeps the Byzantine fraction f ∈ {0, 1 %, 5 %, 10 %, 20 %} under a
//! consistent value-poisoning adversary and runs each point twice — with
//! the vanilla merge and with the robust (trimmed, plausibility-screened)
//! merge — on the cycle-driven engine and on the event-driven engine. A
//! second section pins all four adversary models at f = 10 % on the cycle
//! engine. Accuracy is evaluated over the *honest* peers only (a Byzantine
//! node's own report is meaningless; the question is how much damage the
//! lies do to everyone else). Results go to `BENCH_byzantine.json` at the
//! repository root (override with `--out PATH`).
//!
//! Extra flags: `--out PATH`, `--threads T`, `--check` (assert the
//! resilience invariants — robust stays within 2x of fault-free accuracy
//! up to f = 10 % while vanilla diverges — plus bit-identical replay
//! across thread counts; CI's byzantine-smoke job runs this). The
//! standard `--nodes` / `--seed` / `--lambda` flags also apply.

use std::sync::Arc;

use adam2_bench::{
    adam2_engine_with, evaluate_peer_estimates, setup, Args, ExperimentSetup, PeerEstimate,
};
use adam2_core::{uniform_points, Adam2Config, AsyncAdam2, InstanceId, InstanceMeta, RobustPolicy};
use adam2_sim::{
    ActiveAdversary, AdversaryModel, EventConfig, EventEngine, FaultScenario, LatencyModel, NodeId,
    RunManifest, SimTelemetry,
};
use adam2_traces::Attribute;

/// Gossip rounds per instance. Long enough that fault-free Err_a reaches
/// its interpolation floor, so adversarial damage is cleanly visible.
const ROUNDS: u64 = 35;

/// Extra rounds after finalisation (mirrors `bench_faults`).
const SETTLE_ROUNDS: u64 = 2;

/// Poisoned components are drawn from `[0, MAGNITUDE)`; honest fractions
/// live in `[0, 1]`, so the lies sit far outside the plausible band.
const MAGNITUDE: f64 = 5.0;

/// Weight claimed by inflating nodes (honest claims are ≤ 1).
const INFLATION: f64 = 8.0;

/// The swept Byzantine fractions.
const FRACTIONS: &[f64] = &[0.0, 0.01, 0.05, 0.10, 0.20];

/// Per-component influence cap of the benchmarked robust policy. The
/// heavy lifting against out-of-range poison is the plausibility screen
/// (reject any contribution no honest node could produce); the cap bounds
/// what an in-range lie can move per exchange. Trimming is off in the
/// headline sweep — with a trim every merge skips its most-divergent
/// component, which freezes the slowest-converging component of
/// late-joining peers (property tests cover the trimmed merge instead).
const INFLUENCE_CAP: f64 = 0.25;

/// The robust policy every robust-mode run uses.
fn bench_policy() -> RobustPolicy {
    RobustPolicy::new()
        .with_trim_fraction(0.0)
        .with_influence_cap(INFLUENCE_CAP)
}

/// Event-engine gossip period in ticks.
const PERIOD: u64 = 200;

/// One matrix point reduced to the reported numbers.
struct ByzResult {
    engine: &'static str,
    model: &'static str,
    fraction: f64,
    robust: bool,
    /// Err_a over the honest peers (absent estimates count as 1.0).
    err_a: f64,
    /// Err_m over the honest peers.
    err_m: f64,
    /// Mean relative error of the honest peers' `n_hat` (weight-inflation
    /// damage shows up here, not in the CDF error).
    n_hat_rel_err: f64,
    honest_without_estimate: usize,
    byzantine: u32,
    robust_rejects: u64,
    robust_trims: u64,
    /// Bit-exact digest over every node's final estimate.
    fingerprint: u64,
}

/// FNV-1a over the little-endian bytes of `v`, folded into `h`.
fn mix(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn model_name(model: AdversaryModel) -> &'static str {
    match model {
        AdversaryModel::ValuePoisoning { .. } => "value_poisoning",
        AdversaryModel::WeightInflation { .. } => "weight_inflation",
        AdversaryModel::TargetedPartner { .. } => "targeted_partner",
        AdversaryModel::Equivocation { .. } => "equivocation",
    }
}

/// The scenario for one matrix point: the adversary window covers the
/// whole instance including the settle rounds. `None` at f = 0.
fn scenario_for(seed: u64, fraction: f64, model: AdversaryModel) -> Option<FaultScenario> {
    (fraction > 0.0)
        .then(|| FaultScenario::new(seed).with_adversary(0, ROUNDS + 3, fraction, model))
}

/// Scores the honest peers' estimates against `truth`, returning the
/// error report, the honest `n_hat` mean relative error, and a bit-exact
/// fingerprint over *all* peers (determinism must cover Byzantine state
/// too). `peers` is `(slot, estimate)` in deterministic slot order.
fn score_honest(
    peers: &[(usize, Option<PeerEstimate>)],
    n_hats: &[(usize, Option<f64>)],
    adversary: Option<&ActiveAdversary>,
    s: &ExperimentSetup,
    args: &Args,
) -> (adam2_bench::ErrorReport, f64, u64) {
    let is_honest = |slot: usize| adversary.is_none_or(|adv| !adv.is_byzantine(slot));
    let honest: Vec<Option<PeerEstimate>> = peers
        .iter()
        .filter(|(slot, _)| is_honest(*slot))
        .map(|(_, est)| est.clone())
        .collect();
    let report = evaluate_peer_estimates(&honest, &s.truth, args.sample_peers, args.seed);

    let truth_n = s.population.len() as f64;
    let (mut sum, mut count) = (0.0f64, 0usize);
    for (slot, n_hat) in n_hats {
        if !is_honest(*slot) {
            continue;
        }
        if let Some(n) = n_hat {
            sum += (n - truth_n).abs() / truth_n;
            count += 1;
        }
    }
    let n_hat_rel_err = if count > 0 {
        sum / count as f64
    } else {
        f64::NAN
    };

    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for (slot, est) in peers {
        h = mix(h, *slot as u64);
        let Some(est) = est else { continue };
        for f in &est.fractions {
            h = mix(h, f.to_bits());
        }
        h = mix(h, est.min.to_bits());
        h = mix(h, est.max.to_bits());
    }
    for (_, n_hat) in n_hats {
        if let Some(n) = n_hat {
            h = mix(h, n.to_bits());
        }
    }
    (report, n_hat_rel_err, h)
}

/// Lowest honest slot: the instance initiator is assumed honest (a
/// Byzantine initiator is the degenerate everything-is-poison case), and
/// picking the lowest slot doubles as the worst case for the
/// targeted-partner model, whose victim is exactly the lowest live slot.
fn honest_initiator(ids: &[NodeId], adversary: Option<&ActiveAdversary>) -> NodeId {
    *ids.iter()
        .filter(|id| adversary.is_none_or(|adv| !adv.is_byzantine(id.slot())))
        .min_by_key(|id| id.slot())
        .expect("at least one honest node")
}

/// One cycle-engine run on the phase-split parallel round path.
fn run_cycle(
    s: &ExperimentSetup,
    args: &Args,
    model: AdversaryModel,
    fraction: f64,
    robust: bool,
    threads: usize,
) -> ByzResult {
    let mut config = Adam2Config::new()
        .with_lambda(args.lambda)
        .with_rounds_per_instance(ROUNDS);
    if robust {
        config = config.with_robust(bench_policy());
    }
    let mut engine = adam2_engine_with(s, config, args.seed, |c| c.with_threads(threads));
    engine.attach_telemetry(SimTelemetry::new());
    let scenario = scenario_for(args.seed, fraction, model);
    let adversary = scenario.as_ref().and_then(|sc| sc.adversary_at(0));
    if let Some(sc) = scenario {
        engine.set_fault_scenario(sc).expect("valid scenario");
    }
    let ids: Vec<NodeId> = engine.nodes().iter().map(|(id, _)| id).collect();
    let initiator = honest_initiator(&ids, adversary.as_ref());
    engine
        .with_ctx(|proto, ctx| proto.start_instance(initiator, ctx))
        .expect("instance start");
    engine.run_rounds_parallel(ROUNDS + 1 + SETTLE_ROUNDS);

    let peers: Vec<(usize, Option<PeerEstimate>)> = engine
        .nodes()
        .iter()
        .map(|(id, node)| {
            let est = node.estimate().map(|est| PeerEstimate {
                instance: est.instance.as_u64(),
                thresholds: est.thresholds.clone(),
                fractions: est.fractions.clone(),
                min: est.min,
                max: est.max,
            });
            (id.slot(), est)
        })
        .collect();
    let n_hats: Vec<(usize, Option<f64>)> = engine
        .nodes()
        .iter()
        .map(|(id, node)| (id.slot(), node.estimate().and_then(|est| est.n_hat)))
        .collect();
    let (report, n_hat_rel_err, fingerprint) =
        score_honest(&peers, &n_hats, adversary.as_ref(), s, args);
    let mut counter = |name: &str| {
        engine
            .telemetry_mut()
            .expect("telemetry attached above")
            .telemetry()
            .metrics
            .counters()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| v)
    };
    let (rejects, trims) = (counter("robust_rejects"), counter("robust_trims"));
    let byzantine = adversary
        .as_ref()
        .map_or(0, |adv| adv.count_byzantine(ids.iter().map(|id| id.slot())));
    ByzResult {
        engine: "cycle",
        model: model_name(model),
        fraction,
        robust,
        err_a: report.avg_cdf,
        err_m: report.max_cdf,
        n_hat_rel_err,
        honest_without_estimate: report.peers_without_estimate,
        byzantine,
        robust_rejects: rejects,
        robust_trims: trims,
        fingerprint,
    }
}

/// One event-engine run on the batch-parallel driver.
fn run_event(
    s: &ExperimentSetup,
    args: &Args,
    model: AdversaryModel,
    fraction: f64,
    robust: bool,
    threads: usize,
) -> ByzResult {
    let mut proto = AsyncAdam2::with_population(PERIOD, s.population.values().to_vec(), {
        let pop = s.population.clone();
        move |rng| pop.draw_fresh(rng)
    });
    if robust {
        proto = proto.with_robust(bench_policy());
    }
    let config = EventConfig::new(s.population.len(), args.seed)
        .with_gossip_period(PERIOD)
        .with_latency(LatencyModel::Uniform { min: 5, max: 40 })
        .with_threads(threads);
    let mut engine = EventEngine::new(config, proto);
    let scenario = scenario_for(args.seed, fraction, model);
    let adversary = scenario.as_ref().and_then(|sc| sc.adversary_at(0));
    if let Some(sc) = scenario {
        engine.set_fault_scenario(sc).expect("valid scenario");
    }
    let thresholds = uniform_points(s.truth.min(), s.truth.max(), args.lambda);
    let meta = Arc::new(InstanceMeta {
        id: InstanceId::derive(0, 0, 1),
        thresholds: thresholds.into(),
        verify_thresholds: Vec::new().into(),
        start_round: 0,
        end_round: ROUNDS,
        multi: false,
    });
    let ids: Vec<NodeId> = engine.nodes().iter().map(|(id, _)| id).collect();
    let initiator = honest_initiator(&ids, adversary.as_ref());
    engine.with_ctx(|proto, ctx| proto.start_instance(initiator, meta.clone(), ctx));
    engine.run_until_parallel(PERIOD * (ROUNDS + 1 + SETTLE_ROUNDS));

    let peers: Vec<(usize, Option<PeerEstimate>)> = engine
        .nodes()
        .iter()
        .map(|(id, node)| {
            let est = node.estimate().map(|est| PeerEstimate {
                instance: est.instance.as_u64(),
                thresholds: est.thresholds.clone(),
                fractions: est.fractions.clone(),
                min: est.min,
                max: est.max,
            });
            (id.slot(), est)
        })
        .collect();
    let n_hats: Vec<(usize, Option<f64>)> = engine
        .nodes()
        .iter()
        .map(|(id, node)| (id.slot(), node.estimate().and_then(|est| est.n_hat)))
        .collect();
    let (report, n_hat_rel_err, fingerprint) =
        score_honest(&peers, &n_hats, adversary.as_ref(), s, args);
    let byzantine = adversary
        .as_ref()
        .map_or(0, |adv| adv.count_byzantine(ids.iter().map(|id| id.slot())));
    ByzResult {
        engine: "event",
        model: model_name(model),
        fraction,
        robust,
        err_a: report.avg_cdf,
        err_m: report.max_cdf,
        n_hat_rel_err,
        honest_without_estimate: report.peers_without_estimate,
        byzantine,
        robust_rejects: engine.protocol().robust_rejects(),
        robust_trims: engine.protocol().robust_trims(),
        fingerprint,
    }
}

fn take_flag(raw: &mut Vec<String>, name: &str) -> bool {
    let before = raw.len();
    raw.retain(|a| a != name);
    raw.len() != before
}

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let check = take_flag(&mut raw, "--check");
    let args = match Args::try_parse(raw) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("bench_byzantine: {msg}");
            eprintln!(
                "usage: bench_byzantine [--nodes N] [--seed S] [--lambda L] [--threads T] \
                 [--out PATH] [--check]"
            );
            std::process::exit(if msg == "help requested" { 0 } else { 2 });
        }
    };
    let threads: usize = args
        .extra_parsed("threads")
        .unwrap_or_else(|e| panic!("{e}"))
        .unwrap_or(0);
    let default_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_byzantine.json");
    let out = args.extra("out").unwrap_or(default_out).to_string();
    let detected = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let effective_threads = if threads == 0 { detected } else { threads };
    let nodes = args.nodes;

    println!("== bench_byzantine — honest-peer Err_a vs Byzantine fraction ==");
    println!(
        "nodes={nodes} seed={} lambda={} threads={effective_threads}",
        args.seed, args.lambda
    );
    println!();

    let s = setup(Attribute::Ram, nodes, args.seed);
    let poisoning = AdversaryModel::ValuePoisoning {
        magnitude: MAGNITUDE,
    };

    let mut results: Vec<ByzResult> = Vec::new();
    for &fraction in FRACTIONS {
        for robust in [false, true] {
            results.push(run_cycle(&s, &args, poisoning, fraction, robust, threads));
            results.push(run_event(&s, &args, poisoning, fraction, robust, threads));
        }
    }
    // All four adversary models pinned at f = 10 % on the cycle engine.
    let models = [
        AdversaryModel::WeightInflation { factor: INFLATION },
        AdversaryModel::TargetedPartner {
            magnitude: MAGNITUDE,
        },
        AdversaryModel::Equivocation {
            magnitude: MAGNITUDE,
        },
    ];
    for model in models {
        for robust in [false, true] {
            results.push(run_cycle(&s, &args, model, 0.10, robust, threads));
        }
    }

    for r in &results {
        println!(
            "{:<5} {:<16} f={:<4} robust={:<5} Err_a={:.3e} Err_m={:.3e} n_hat_err={:.3e} \
             byz={} rejects={} trims={} no_est={}",
            r.engine,
            r.model,
            r.fraction,
            r.robust,
            r.err_a,
            r.err_m,
            r.n_hat_rel_err,
            r.byzantine,
            r.robust_rejects,
            r.robust_trims,
            r.honest_without_estimate
        );
    }

    let json = render_json(&args, nodes, effective_threads, detected, &results);
    match std::fs::write(&out, &json) {
        Ok(()) => println!("\nwrote {out}"),
        Err(e) => {
            eprintln!("bench_byzantine: cannot write {out}: {e}");
            std::process::exit(1);
        }
    }

    if check {
        run_checks(&results);
        run_determinism_checks(&s, &args, poisoning, effective_threads, &results);
        println!("all byzantine-resilience checks passed");
    }
}

fn render_json(
    args: &Args,
    nodes: usize,
    threads: usize,
    detected: usize,
    results: &[ByzResult],
) -> String {
    let manifest = RunManifest::new(
        "bench_byzantine",
        &format!(
            "nodes={nodes} lambda={} rounds={ROUNDS} magnitude={MAGNITUDE}",
            args.lambda
        ),
        args.seed,
        threads,
    );
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"byzantine_resilience\",\n");
    json.push_str(&format!("  \"manifest\": {},\n", manifest.to_inline_json()));
    json.push_str(&format!("  \"nodes\": {nodes},\n"));
    json.push_str(&format!("  \"seed\": {},\n", args.seed));
    json.push_str(&format!("  \"lambda\": {},\n", args.lambda));
    json.push_str(&format!("  \"rounds\": {ROUNDS},\n"));
    json.push_str(&format!("  \"magnitude\": {MAGNITUDE},\n"));
    json.push_str(&format!("  \"inflation\": {INFLATION},\n"));
    json.push_str(&format!("  \"detected_cores\": {detected},\n"));
    // `{:.6e}` would print NaN/inf verbatim, which is not JSON.
    let num = |v: f64| {
        if v.is_finite() {
            format!("{v:.6e}")
        } else {
            "null".to_string()
        }
    };
    json.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"engine\": \"{}\", \"model\": \"{}\", \"fraction\": {}, \"robust\": {}, \
             \"err_a\": {}, \"err_m\": {}, \"n_hat_rel_err\": {}, \
             \"honest_without_estimate\": {}, \"byzantine\": {}, \"robust_rejects\": {}, \
             \"robust_trims\": {}, \"fingerprint\": {}}}{}\n",
            r.engine,
            r.model,
            r.fraction,
            r.robust,
            num(r.err_a),
            num(r.err_m),
            num(r.n_hat_rel_err),
            r.honest_without_estimate,
            r.byzantine,
            r.robust_rejects,
            r.robust_trims,
            r.fingerprint,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    json
}

fn find<'a>(
    results: &'a [ByzResult],
    engine: &str,
    model: &str,
    fraction: f64,
    robust: bool,
) -> &'a ByzResult {
    results
        .iter()
        .find(|r| {
            r.engine == engine && r.model == model && r.fraction == fraction && r.robust == robust
        })
        .expect("matrix point present")
}

fn run_checks(results: &[ByzResult]) {
    let mut failures = Vec::new();
    for engine in ["cycle", "event"] {
        let clean = find(results, engine, "value_poisoning", 0.0, false);

        // Robust mode at f = 0 must not cost accuracy: the influence cap
        // only binds while disagreement is large, so the fault-free run
        // reaches the same interpolation floor (on the cycle engine it is
        // bit-identical once the cap stops binding; 2x is the safe band).
        let clean_robust = find(results, engine, "value_poisoning", 0.0, true);
        if clean_robust.err_a > clean.err_a * 2.0 + 1e-9 {
            failures.push(format!(
                "{engine}: robust fault-free Err_a {:.3e} exceeds 2x vanilla {:.3e}",
                clean_robust.err_a, clean.err_a
            ));
        }

        for &f in &[0.01, 0.05, 0.10] {
            // Vanilla diverges: already at 1 % Byzantine the poisoned
            // components drag honest estimates ≥ 10x off the floor.
            let vanilla = find(results, engine, "value_poisoning", f, false);
            if vanilla.err_a < clean.err_a * 10.0 {
                failures.push(format!(
                    "{engine} f={f}: vanilla Err_a {:.3e} did not diverge 10x from \
                     fault-free {:.3e}",
                    vanilla.err_a, clean.err_a
                ));
            }
            // Robust holds: within 2x of its own fault-free baseline up
            // to f = 10 % (the paper-style criterion — the adversary must
            // not degrade the robust mode's accuracy).
            let robust = find(results, engine, "value_poisoning", f, true);
            if robust.err_a > clean_robust.err_a * 2.0 + 1e-9 {
                failures.push(format!(
                    "{engine} f={f}: robust Err_a {:.3e} exceeds 2x fault-free {:.3e}",
                    robust.err_a, clean_robust.err_a
                ));
            }
            if robust.robust_rejects == 0 {
                failures.push(format!(
                    "{engine} f={f}: robust run rejected nothing despite {} byzantine nodes",
                    robust.byzantine
                ));
            }
            if robust.honest_without_estimate > 0 {
                failures.push(format!(
                    "{engine} f={f}: robust run left {} honest peers without an estimate",
                    robust.honest_without_estimate
                ));
            }
        }
    }

    // Weight inflation does not move the CDF but wrecks n_hat (the lie
    // injects weight mass, so every honest n_hat collapses by roughly the
    // inflation factor). The robust screen caps claimed weight at 1 and
    // rejects the liars outright; what remains is the honest-subpopulation
    // bias of rejection — weight captured by Byzantine nodes before their
    // first lie is trapped — which stays well below the vanilla collapse.
    let inflated = find(results, "cycle", "weight_inflation", 0.10, false);
    let guarded = find(results, "cycle", "weight_inflation", 0.10, true);
    if inflated.n_hat_rel_err < 0.5 {
        failures.push(format!(
            "weight inflation barely moved vanilla n_hat ({:.3e})",
            inflated.n_hat_rel_err
        ));
    }
    if guarded.n_hat_rel_err > 0.5 || guarded.n_hat_rel_err > inflated.n_hat_rel_err * 0.5 {
        failures.push(format!(
            "robust n_hat error {:.3e} under weight inflation should stay below 0.5 \
             and under half the vanilla collapse {:.3e}",
            guarded.n_hat_rel_err, inflated.n_hat_rel_err
        ));
    }

    // The remaining poisoning variants must also be contained.
    let clean_robust = find(results, "cycle", "value_poisoning", 0.0, true);
    for model in ["targeted_partner", "equivocation"] {
        let robust = find(results, "cycle", model, 0.10, true);
        if robust.err_a > clean_robust.err_a * 2.0 + 1e-9 {
            failures.push(format!(
                "{model} f=0.10: robust Err_a {:.3e} exceeds 2x fault-free {:.3e}",
                robust.err_a, clean_robust.err_a
            ));
        }
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("bench_byzantine check FAILED: {f}");
        }
        std::process::exit(1);
    }
}

/// Re-runs the f = 10 % robust point on both engines at a different
/// worker count and requires the exact same estimate fingerprint.
fn run_determinism_checks(
    s: &ExperimentSetup,
    args: &Args,
    poisoning: AdversaryModel,
    effective_threads: usize,
    results: &[ByzResult],
) {
    let other = if effective_threads == 2 { 1 } else { 2 };
    let cycle = find(results, "cycle", "value_poisoning", 0.10, true);
    let cycle_rerun = run_cycle(s, args, poisoning, 0.10, true, other);
    assert_eq!(
        cycle.fingerprint, cycle_rerun.fingerprint,
        "cycle engine not bit-identical under adversary (threads {effective_threads} vs {other})"
    );
    let event = find(results, "event", "value_poisoning", 0.10, true);
    let event_rerun = run_event(s, args, poisoning, 0.10, true, other);
    assert_eq!(
        event.fingerprint, event_rerun.fingerprint,
        "event engine not bit-identical under adversary (threads {effective_threads} vs {other})"
    );
    println!(
        "determinism OK: threads {effective_threads} == threads {other} on both engines \
         (cycle {:016x}, event {:016x})",
        cycle.fingerprint, event.fingerprint
    );
}
