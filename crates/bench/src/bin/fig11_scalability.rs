//! Reproduces Fig. 11: approximation accuracy as a function of system
//! size (100 .. 100 000 nodes).
//!
//! Extra flags: `--instances K` (aggregation instances per size, default
//! 4) and `--threads T` (run rounds on the parallel engine with `T`
//! worker threads, `0` = auto-detect; omitted = sequential reference
//! path). Thanks to the deterministic phase-split design, `--threads`
//! changes wall-clock time, not results.

use adam2_bench::{
    adam2_engine, adam2_engine_threaded, complete_instance, complete_instance_parallel,
    evaluate_estimates, fmt_err, start_instance, Args, Table,
};
use adam2_core::{Adam2Config, RefineKind};
use adam2_sim::ChurnModel;

fn main() {
    let args = Args::parse("fig11_scalability");
    args.print_header("fig11_scalability", "Fig. 11 (accuracy vs system size)");
    let instances: usize = args
        .extra_parsed("instances")
        .unwrap_or_else(|e| panic!("{e}"))
        .unwrap_or(4);
    let threads: Option<usize> = args
        .extra_parsed("threads")
        .unwrap_or_else(|e| panic!("{e}"));
    if let Some(t) = threads {
        println!("engine: parallel round path, threads={t} (0 = auto)");
        println!();
    }
    let mut sizes: Vec<usize> = vec![100, 316, 1_000, 3_162, 10_000];
    if args.full {
        sizes.push(31_623);
        sizes.push(100_000);
    }

    let mut headers = vec!["nodes".to_string()];
    for attr in &args.attrs {
        headers.push(format!("{attr}-Err_m (minmax)"));
        headers.push(format!("{attr}-Err_a (lcut)"));
    }
    let mut rows: Vec<Vec<String>> = sizes.iter().map(|n| vec![n.to_string()]).collect();

    for attr in &args.attrs {
        for (row, n) in rows.iter_mut().zip(&sizes) {
            let setup = adam2_bench::setup(*attr, *n, args.seed);
            for refine in [RefineKind::MinMax, RefineKind::LCut] {
                let config = Adam2Config::new()
                    .with_lambda(args.lambda)
                    .with_rounds_per_instance(args.rounds)
                    .with_refine(refine);
                let mut engine = match threads {
                    Some(t) => {
                        adam2_engine_threaded(&setup, config, args.seed, ChurnModel::None, t)
                    }
                    None => adam2_engine(&setup, config, args.seed, ChurnModel::None),
                };
                for _ in 0..instances {
                    start_instance(&mut engine);
                    match threads {
                        Some(_) => complete_instance_parallel(&mut engine, args.rounds),
                        None => complete_instance(&mut engine, args.rounds),
                    }
                }
                let report =
                    evaluate_estimates(&engine, &setup.truth, args.sample_peers, args.seed);
                row.push(fmt_err(if refine == RefineKind::MinMax {
                    report.max_cdf
                } else {
                    report.avg_cdf
                }));
            }
        }
    }

    let mut table = Table::new(headers);
    for row in rows {
        table.row(row);
    }
    table.print();
    println!();
    println!(
        "expected shape: Err_m stays in the same order of magnitude across sizes (random \
         variation only); Err_a *decreases* for larger systems — longer distribution tails \
         are easy to interpolate and dilute the normalised area. The only size-dependent \
         parameter is the instance TTL ({} rounds here).",
        args.rounds
    );
    table.maybe_write_csv(args.csv.as_deref());
}
