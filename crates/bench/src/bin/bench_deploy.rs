//! Deploy-runtime benchmark: the socket-based cluster vs the sequential
//! simulator on an identical trace, across both deploy backends.
//!
//! Runs the sequential simulator once to get the ground-truth accuracy of
//! one aggregation instance, then launches real N-node loopback clusters
//! (`adam2-deploy`) on **both** runtimes — thread-per-node and the reactor
//! pool — injects an instance with the *same thresholds* over a control
//! socket, lets the nodes gossip over TCP to convergence, collects every
//! node's estimate back over the control sockets, and scores everything
//! through the same [`evaluate_peer_estimates`] pipeline. Each backend
//! runs two scenarios: clean, and a 10 % socket-loss shim exercising the
//! retransmit/seq-cache repair path. Every run reports gossip throughput
//! (completed exchanges/sec) and p99 exchange latency.
//!
//! A separate *scale sweep* (`--scale N`) boots an N-node reactor cluster
//! — ten thousand nodes on one host — with the round length stretched to
//! what one machine can actually gossip (`max(tick, N/5 ms)`), and matches
//! its Err_a against the simulator on the same population. Results go to
//! `BENCH_deploy.json` at the repository root (override with `--out
//! PATH`).
//!
//! Extra flags: `--out PATH`, `--check 1` (assert convergence — deploy
//! Err_a within 2x of the simulator — plus full estimate coverage and a
//! clean shutdown; CI's deploy jobs use this), `--tick-ms T` (gossip round
//! length, default 40), `--scale N` (reactor scale sweep, default off).
//! The standard `--nodes` / `--seed` / `--lambda` / `--telemetry` flags
//! also apply; `--nodes` is clamped to 256 because the comparison matrix
//! includes the thread-per-node backend (three OS threads per node). The
//! scale sweep is additionally clamped to what `ulimit -n` leaves room
//! for (every node holds a listener fd).

use std::sync::Arc;
use std::time::{Duration, Instant};

use adam2_bench::{
    adam2_engine, complete_instance, evaluate_estimates, evaluate_peer_estimates, setup,
    start_instance, Args, ErrorReport, PeerEstimate,
};
use adam2_core::{Adam2Config, AttrValue, InstanceMeta};
use adam2_deploy::{
    Cluster, ClusterConfig, ClusterTelemetry, EstimateWire, LossShim, NodeConfig, RuntimeKind,
};
use adam2_sim::{ChurnModel, RunManifest};
use adam2_traces::Attribute;

/// Gossip rounds per instance, simulator and deploy alike.
const ROUNDS: u64 = 30;

/// Rounds between cluster launch and the instance's start round: enough
/// for the injected `StartInstance` to land before gossip begins.
const WARMUP_ROUNDS: u64 = 3;

/// Node cap for the backend comparison matrix (the threaded backend burns
/// three OS threads per node).
const MAX_DEPLOY_NODES: usize = 256;

/// File descriptors reserved for everything that is not a node listener:
/// in-flight exchange sockets, inbound connections, driver workers.
const FD_SLACK: usize = 2048;

struct ScenarioResult {
    name: &'static str,
    backend: &'static str,
    nodes: usize,
    tick_ms: u64,
    outcome: DeployOutcome,
}

struct DeployOutcome {
    report: ErrorReport,
    mean_n_hat: f64,
    exchanges: u64,
    completed: u64,
    repairs: u64,
    aborts: u64,
    shim_drops: u64,
    malformed: u64,
    backpressure_drops: u64,
    throughput_eps: f64,
    p99_latency_us: u64,
    duration_s: f64,
    clean_shutdown: bool,
}

fn main() {
    let args = Args::parse("bench_deploy");
    let check = args.extra("check").is_some();
    let default_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_deploy.json");
    let out = args.extra("out").unwrap_or(default_out).to_string();
    let tick_ms: u64 = parse_extra(&args, "tick-ms").unwrap_or(40);
    let scale: usize = parse_extra(&args, "scale").unwrap_or(0);

    let nodes = args.nodes.clamp(2, MAX_DEPLOY_NODES);
    if nodes != args.nodes {
        println!(
            "note: --nodes {} clamped to {nodes} (threaded backend: 3 threads/node)",
            args.nodes
        );
    }
    let scale = clamp_to_fd_limit(scale);

    println!("== bench_deploy — socket runtimes vs sequential simulator ==");
    println!(
        "nodes={nodes} seed={} lambda={} rounds={ROUNDS} tick={tick_ms}ms scale={scale}",
        args.seed, args.lambda
    );
    println!();

    // Ground truth: the sequential simulator on the same population.
    let sim_report = simulator_report(nodes, &args);
    println!(
        "simulator     Err_a={:.3e} Err_m={:.3e}",
        sim_report.1.avg_cdf, sim_report.1.max_cdf
    );

    // Backend comparison matrix: same population, same thresholds, real
    // sockets, both runtimes.
    let node_config = NodeConfig {
        tick: Duration::from_millis(tick_ms),
        io_timeout: Duration::from_millis((tick_ms / 2).clamp(10, 50)),
        retries: 2,
        queue_capacity: 4,
        view_size: 12,
        seed: args.seed,
    };
    node_config.validate().expect("bench node config is valid");
    let backends: [(&'static str, RuntimeKind); 2] = [
        ("threaded", RuntimeKind::Threaded),
        (
            "reactor",
            RuntimeKind::Reactor {
                threads: reactor_threads(),
            },
        ),
    ];
    type ShimFactory = fn(u64) -> LossShim;
    let scenarios: [(&'static str, ShimFactory); 2] = [
        ("clean", |_seed| LossShim::none()),
        ("loss10", |seed| LossShim::flat(seed, 0.10)),
    ];
    let mut results = Vec::new();
    for (backend_name, runtime) in backends {
        for (scenario, make_shim) in scenarios {
            let outcome = run_deploy(
                &format!("{backend_name}_{scenario}"),
                runtime,
                make_shim(args.seed),
                nodes,
                &sim_report.0,
                &node_config,
                &args,
            );
            println!(
                "deploy/{backend_name:<8}/{scenario:<7} Err_a={:.3e} Err_m={:.3e} \
                 peers_without={} exchanges={} throughput={:.0}/s p99={}us clean_shutdown={}",
                outcome.report.avg_cdf,
                outcome.report.max_cdf,
                outcome.report.peers_without_estimate,
                outcome.exchanges,
                outcome.throughput_eps,
                outcome.p99_latency_us,
                outcome.clean_shutdown,
            );
            results.push(ScenarioResult {
                name: scenario,
                backend: backend_name,
                nodes,
                tick_ms,
                outcome,
            });
        }
    }

    // Scale sweep: an N-node reactor cluster with the round length
    // stretched to what one host can gossip, Err_a matched against the
    // simulator on the same population.
    let scale_result = if scale > 0 {
        let scale_tick = tick_ms.max(scale as u64 / 5);
        let scale_config = NodeConfig {
            tick: Duration::from_millis(scale_tick),
            io_timeout: Duration::from_millis((scale_tick / 4).clamp(10, 500)),
            retries: 2,
            queue_capacity: 4,
            view_size: 12,
            seed: args.seed,
        };
        scale_config.validate().expect("scale node config is valid");
        let scale_sim = simulator_report(scale, &args);
        println!(
            "\nscale sweep: {scale} reactor nodes, tick={scale_tick}ms \
             (simulator Err_a={:.3e})",
            scale_sim.1.avg_cdf
        );
        let outcome = run_deploy(
            "scale",
            RuntimeKind::Reactor {
                threads: reactor_threads(),
            },
            LossShim::none(),
            scale,
            &scale_sim.0,
            &scale_config,
            &args,
        );
        println!(
            "deploy/scale    Err_a={:.3e} peers_without={} throughput={:.0}/s p99={}us \
             duration={:.1}s clean_shutdown={}",
            outcome.report.avg_cdf,
            outcome.report.peers_without_estimate,
            outcome.throughput_eps,
            outcome.p99_latency_us,
            outcome.duration_s,
            outcome.clean_shutdown,
        );
        Some((scale, scale_tick, scale_sim.1, outcome))
    } else {
        None
    };

    let json = render_json(
        &args,
        nodes,
        tick_ms,
        &sim_report.1,
        &results,
        &scale_result,
    );
    match std::fs::write(&out, &json) {
        Ok(()) => println!("\nwrote {out}"),
        Err(e) => {
            eprintln!("bench_deploy: cannot write {out}: {e}");
            std::process::exit(1);
        }
    }

    if check {
        run_checks(&sim_report.1, &results, &scale_result);
        println!("all deploy checks passed");
    }
}

fn parse_extra<T: std::str::FromStr>(args: &Args, key: &str) -> Option<T>
where
    T::Err: std::fmt::Display,
{
    args.extra_parsed(key).unwrap_or_else(|e| {
        eprintln!("bench_deploy: {e}");
        std::process::exit(2);
    })
}

/// Reactor threads for this host: one per core, at least two so a stall
/// in one shard cannot freeze the whole cluster, capped small because
/// reactor threads are busy-polling loops.
fn reactor_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .clamp(2, 8)
}

/// Clamps the scale sweep to the fd budget: every node holds a listener
/// fd, plus [`FD_SLACK`] for live connections.
fn clamp_to_fd_limit(scale: usize) -> usize {
    if scale == 0 {
        return 0;
    }
    let Some(limit) = fd_soft_limit() else {
        return scale;
    };
    let budget = limit.saturating_sub(FD_SLACK);
    if scale > budget {
        println!(
            "note: --scale {scale} clamped to {budget} \
             (ulimit -n {limit}, {FD_SLACK} fds reserved for connections)"
        );
        return budget.max(2);
    }
    scale
}

fn fd_soft_limit() -> Option<usize> {
    let limits = std::fs::read_to_string("/proc/self/limits").ok()?;
    let line = limits.lines().find(|l| l.starts_with("Max open files"))?;
    line.split_whitespace().nth(3)?.parse().ok()
}

/// One simulator run at `nodes`: the instance meta (for its thresholds)
/// and the ground-truth error report.
fn simulator_report(nodes: usize, args: &Args) -> (SimTrace, ErrorReport) {
    let s = setup(Attribute::Ram, nodes, args.seed);
    let config = Adam2Config::new()
        .with_lambda(args.lambda)
        .with_rounds_per_instance(ROUNDS);
    let mut engine = adam2_engine(&s, config, args.seed, ChurnModel::None);
    let meta = start_instance(&mut engine);
    complete_instance(&mut engine, ROUNDS);
    let report = evaluate_estimates(&engine, &s.truth, args.sample_peers, args.seed);
    (
        SimTrace {
            meta,
            population: s.population,
        },
        report,
    )
}

/// The parts of a simulator run a deploy cluster replays: the population
/// (one attribute value per node) and the instance it aggregated.
struct SimTrace {
    meta: Arc<InstanceMeta>,
    population: adam2_traces::Population,
}

fn run_deploy(
    label: &str,
    runtime: RuntimeKind,
    shim: LossShim,
    nodes: usize,
    trace: &SimTrace,
    node_config: &NodeConfig,
    args: &Args,
) -> DeployOutcome {
    let values: Vec<AttrValue> = trace
        .population
        .values()
        .iter()
        .take(nodes)
        .map(|v| AttrValue::Single(*v))
        .collect();
    let n = values.len();
    // Bootstrap round-trips traverse the reactor's rate-limited accept
    // sweep, so the join timeout scales with the round length at scale.
    let bootstrap_timeout =
        Duration::from_millis((node_config.tick.as_millis() as u64 / 2).max(50));
    let config = ClusterConfig::try_new(node_config.clone())
        .expect("validated above")
        .with_runtime(runtime)
        .expect("nonzero reactor threads")
        .with_bootstrap(10, bootstrap_timeout)
        .expect("nonzero bootstrap budget")
        .with_shim(shim);
    let cluster = Cluster::launch(values, config).expect("cluster launch");
    let mut sampler = ClusterTelemetry::new(n);

    // Same instance, rebased onto the deploy clock: identical thresholds
    // (and verify thresholds), identical duration.
    let start_round = cluster.current_round() + WARMUP_ROUNDS;
    let meta = Arc::new(InstanceMeta {
        id: trace.meta.id,
        thresholds: trace.meta.thresholds.clone(),
        verify_thresholds: trace.meta.verify_thresholds.clone(),
        start_round,
        end_round: start_round + ROUNDS,
        multi: trace.meta.multi,
    });
    cluster
        .start_instance(0, Arc::clone(&meta))
        .expect("start instance");

    // Throughput window: from instance injection to the end of sampling.
    let window_start = Instant::now();
    let completed_before: u64 = cluster
        .nodes()
        .iter()
        .map(|node| node.stats.snapshot().exchanges_completed)
        .sum();

    // Drive the sampler once per completed round until one round past the
    // instance deadline (the finalisation round).
    let mut last = cluster.current_round();
    while last <= meta.end_round + 1 {
        std::thread::sleep(node_config.tick / 4);
        let now = cluster.current_round();
        if now > last {
            sampler.sample(&cluster, now - 1);
            last = now;
        }
    }
    sampler.sample(&cluster, last); // drain the tail of the latency series
    let duration_s = window_start.elapsed().as_secs_f64();
    let completed: u64 = cluster
        .nodes()
        .iter()
        .map(|node| node.stats.snapshot().exchanges_completed)
        .sum::<u64>()
        .saturating_sub(completed_before);
    let throughput_eps = completed as f64 / duration_s.max(1e-9);
    let p99_latency_us = percentile_us(sampler.latency_samples(), 0.99);

    // Estimate collection scales its deadline with the cluster's round
    // length (collection itself traverses the accept sweep at scale).
    let collect_deadline = Duration::from_secs(10).max(8 * node_config.tick);
    let estimates = cluster.collect_estimates(collect_deadline);
    let peers: Vec<Option<PeerEstimate>> = estimates
        .iter()
        .map(|e| e.as_ref().map(peer_estimate))
        .collect();
    let truth = adam2_core::StepCdf::from_values(
        trace
            .population
            .values()
            .iter()
            .take(nodes)
            .copied()
            .collect(),
    );
    let report = evaluate_peer_estimates(&peers, &truth, args.sample_peers, args.seed);
    let n_hats: Vec<f64> = estimates.iter().flatten().filter_map(|e| e.n_hat).collect();
    let mean_n_hat = if n_hats.is_empty() {
        f64::NAN
    } else {
        n_hats.iter().sum::<f64>() / n_hats.len() as f64
    };

    let mut exchanges = 0;
    let mut repairs = 0;
    let mut aborts = 0;
    let mut shim_drops = 0;
    let mut malformed = 0;
    let mut backpressure_drops = 0;
    for node in cluster.nodes() {
        let snap = node.stats.snapshot();
        exchanges += snap.exchanges_started;
        repairs += snap.retransmissions;
        aborts += snap.exchanges_aborted;
        shim_drops += snap.shim_dropped;
        malformed += snap.malformed_frames;
        backpressure_drops += snap.backpressure_drops;
    }

    if let Some(dir) = &args.telemetry {
        let manifest = RunManifest::new(
            &format!("bench_deploy_{label}"),
            &format!(
                "nodes={n} lambda={} rounds={ROUNDS} tick_ms={} scenario={label}",
                args.lambda,
                node_config.tick.as_millis()
            ),
            args.seed,
            1,
        );
        let path = std::path::Path::new(dir).join(format!("deploy_{label}"));
        if let Err(e) = sampler.export(&path, &manifest) {
            eprintln!(
                "bench_deploy: telemetry export to {} failed: {e}",
                path.display()
            );
        }
    }

    let shutdown = cluster.shutdown();
    DeployOutcome {
        report,
        mean_n_hat,
        exchanges,
        completed,
        repairs,
        aborts,
        shim_drops,
        malformed,
        backpressure_drops,
        throughput_eps,
        p99_latency_us,
        duration_s,
        clean_shutdown: shutdown.clean,
    }
}

/// The `q`-quantile of the latency series, in microseconds (0 when no
/// exchange completed).
fn percentile_us(samples: &[u64], q: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn peer_estimate(e: &EstimateWire) -> PeerEstimate {
    PeerEstimate {
        instance: e.instance,
        thresholds: e.thresholds.clone(),
        fractions: e.fractions.clone(),
        min: e.min,
        max: e.max,
    }
}

/// `{:.4}` of a NaN would emit bare `NaN` — not valid JSON — so an empty
/// n-hat series renders as `null`.
fn json_mean(mean: f64) -> String {
    if mean.is_finite() {
        format!("{mean:.4}")
    } else {
        "null".to_string()
    }
}

type ScaleResult = Option<(usize, u64, ErrorReport, DeployOutcome)>;

fn render_json(
    args: &Args,
    nodes: usize,
    tick_ms: u64,
    sim: &ErrorReport,
    results: &[ScenarioResult],
    scale: &ScaleResult,
) -> String {
    let manifest = RunManifest::new(
        "bench_deploy",
        &format!(
            "nodes={nodes} lambda={} rounds={ROUNDS} tick_ms={tick_ms}",
            args.lambda
        ),
        args.seed,
        1,
    );
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"deploy_runtime\",\n");
    json.push_str(&format!("  \"manifest\": {},\n", manifest.to_inline_json()));
    json.push_str(&format!("  \"nodes\": {nodes},\n"));
    json.push_str(&format!("  \"seed\": {},\n", args.seed));
    json.push_str(&format!("  \"lambda\": {},\n", args.lambda));
    json.push_str(&format!("  \"rounds\": {ROUNDS},\n"));
    json.push_str(&format!("  \"tick_ms\": {tick_ms},\n"));
    json.push_str(&format!(
        "  \"simulator\": {{\"err_a\": {:.6e}, \"err_m\": {:.6e}}},\n",
        sim.avg_cdf, sim.max_cdf
    ));
    json.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let o = &r.outcome;
        json.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"backend\": \"{}\", \"nodes\": {}, \"tick_ms\": {}, \
             \"err_a\": {:.6e}, \"err_m\": {:.6e}, \"peers_without_estimate\": {}, \
             \"mean_n_hat\": {}, \"exchanges\": {}, \"exchanges_completed\": {}, \
             \"repairs\": {}, \"aborts\": {}, \"shim_drops\": {}, \"malformed_frames\": {}, \
             \"backpressure_drops\": {}, \"throughput_eps\": {:.2}, \"p99_latency_us\": {}, \
             \"duration_s\": {:.3}, \"clean_shutdown\": {}}}{}\n",
            r.name,
            r.backend,
            r.nodes,
            r.tick_ms,
            o.report.avg_cdf,
            o.report.max_cdf,
            o.report.peers_without_estimate,
            json_mean(o.mean_n_hat),
            o.exchanges,
            o.completed,
            o.repairs,
            o.aborts,
            o.shim_drops,
            o.malformed,
            o.backpressure_drops,
            o.throughput_eps,
            o.p99_latency_us,
            o.duration_s,
            o.clean_shutdown,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"scale\": [\n");
    if let Some((scale_nodes, scale_tick, scale_sim, o)) = scale {
        json.push_str(&format!(
            "    {{\"backend\": \"reactor\", \"nodes\": {scale_nodes}, \"tick_ms\": {scale_tick}, \
             \"err_a\": {:.6e}, \"sim_err_a\": {:.6e}, \"peers_without_estimate\": {}, \
             \"mean_n_hat\": {}, \"exchanges_completed\": {}, \"throughput_eps\": {:.2}, \
             \"p99_latency_us\": {}, \"duration_s\": {:.3}, \"clean_shutdown\": {}}}\n",
            o.report.avg_cdf,
            scale_sim.avg_cdf,
            o.report.peers_without_estimate,
            json_mean(o.mean_n_hat),
            o.completed,
            o.throughput_eps,
            o.p99_latency_us,
            o.duration_s,
            o.clean_shutdown,
        ));
    }
    json.push_str("  ]\n}\n");
    json
}

fn find<'a>(results: &'a [ScenarioResult], backend: &str, name: &str) -> &'a ScenarioResult {
    results
        .iter()
        .find(|r| r.backend == backend && r.name == name)
        .expect("scenario present")
}

fn run_checks(sim: &ErrorReport, results: &[ScenarioResult], scale: &ScaleResult) {
    let mut failures = Vec::new();

    for r in results {
        let o = &r.outcome;
        let who = format!("{}/{}", r.backend, r.name);
        if !o.clean_shutdown {
            failures.push(format!("{who}: runtime did not shut down cleanly"));
        }
        if o.malformed > 0 {
            failures.push(format!(
                "{who}: {} malformed frames on a trusted loopback cluster",
                o.malformed
            ));
        }
        if o.report.peers_with_estimate == 0 {
            failures.push(format!("{who}: no peer produced an estimate"));
        }
        if o.completed == 0 {
            failures.push(format!("{who}: no exchange ever completed"));
        }
    }

    // Convergence on both backends: the clean cluster matches the
    // simulator within 2x (plus a tiny absolute floor for when the
    // simulator's error is ~0), and 10% socket loss still converges via
    // the retransmit path.
    for backend in ["threaded", "reactor"] {
        let clean = &find(results, backend, "clean").outcome;
        let bound = sim.avg_cdf * 2.0 + 1e-3;
        if clean.report.avg_cdf > bound {
            failures.push(format!(
                "{backend}/clean deploy Err_a {:.3e} exceeds 2x simulator {:.3e}",
                clean.report.avg_cdf, sim.avg_cdf
            ));
        }
        if clean.report.peers_without_estimate > 0 {
            failures.push(format!(
                "{backend}/clean deploy left {} peers without an estimate",
                clean.report.peers_without_estimate
            ));
        }
        let lossy = &find(results, backend, "loss10").outcome;
        if lossy.shim_drops == 0 {
            failures.push(format!(
                "{backend}/loss10 ran but the shim never dropped a frame"
            ));
        }
        if lossy.report.avg_cdf > sim.avg_cdf * 2.0 + 1e-2 {
            failures.push(format!(
                "{backend}/loss10 deploy Err_a {:.3e} did not converge (simulator {:.3e})",
                lossy.report.avg_cdf, sim.avg_cdf
            ));
        }
        if lossy.report.peers_without_estimate > 0 {
            failures.push(format!(
                "{backend}/loss10 deploy left {} peers without an estimate",
                lossy.report.peers_without_estimate
            ));
        }
    }

    // Scale sweep: the big reactor cluster must finish the instance with
    // near-total coverage and an Err_a in the simulator's neighbourhood.
    if let Some((scale_nodes, _, scale_sim, o)) = scale {
        if !o.clean_shutdown {
            failures.push("scale: runtime did not shut down cleanly".into());
        }
        if o.completed == 0 {
            failures.push("scale: no exchange ever completed".into());
        }
        let allowed_missing = scale_nodes / 100; // 1% stragglers
        if o.report.peers_without_estimate > allowed_missing {
            failures.push(format!(
                "scale: {} of {scale_nodes} peers without an estimate (allowed {allowed_missing})",
                o.report.peers_without_estimate
            ));
        }
        if o.report.avg_cdf > scale_sim.avg_cdf * 2.0 + 1e-2 {
            failures.push(format!(
                "scale deploy Err_a {:.3e} did not converge (simulator {:.3e})",
                o.report.avg_cdf, scale_sim.avg_cdf
            ));
        }
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("bench_deploy check FAILED: {f}");
        }
        std::process::exit(1);
    }
}
