//! Deploy-runtime benchmark: the socket-based cluster vs the sequential
//! simulator on an identical trace.
//!
//! Runs the sequential simulator once to get the ground-truth accuracy of
//! one aggregation instance, then launches a real N-node loopback cluster
//! (`adam2-deploy`), injects an instance with the *same thresholds* over a
//! control socket, lets the nodes gossip over TCP to convergence, collects
//! every node's estimate back over the control sockets, and scores both
//! through the same [`evaluate_peer_estimates`] pipeline. Two cluster
//! scenarios run: clean, and a 10 % socket-loss shim exercising the
//! retransmit/seq-cache repair path. Results go to `BENCH_deploy.json` at
//! the repository root (override with `--out PATH`).
//!
//! Extra flags: `--out PATH`, `--check 1` (assert convergence — deploy
//! Err_a within 2x of the simulator — plus full estimate coverage and a
//! clean shutdown; CI's deploy-smoke job uses this), `--tick-ms T` (gossip
//! round length, default 40). The standard `--nodes` / `--seed` /
//! `--lambda` / `--telemetry` flags also apply; `--nodes` is clamped to
//! 256 because every deployed node runs three OS threads.

use std::sync::Arc;
use std::time::Duration;

use adam2_bench::{
    adam2_engine, complete_instance, evaluate_estimates, evaluate_peer_estimates, setup,
    start_instance, Args, ErrorReport, PeerEstimate,
};
use adam2_core::{Adam2Config, AttrValue, InstanceMeta};
use adam2_deploy::{Cluster, ClusterConfig, ClusterTelemetry, EstimateWire, LossShim, NodeConfig};
use adam2_sim::{ChurnModel, RunManifest};
use adam2_traces::Attribute;

/// Gossip rounds per instance, simulator and deploy alike.
const ROUNDS: u64 = 30;

/// Rounds between cluster launch and the instance's start round: enough
/// for the injected `StartInstance` to land before gossip begins.
const WARMUP_ROUNDS: u64 = 3;

/// Thread budget: three OS threads per node.
const MAX_DEPLOY_NODES: usize = 256;

struct ScenarioResult {
    name: &'static str,
    report: ErrorReport,
    mean_n_hat: f64,
    exchanges: u64,
    repairs: u64,
    aborts: u64,
    shim_drops: u64,
    malformed: u64,
    backpressure_drops: u64,
    clean_shutdown: bool,
}

fn main() {
    let args = Args::parse("bench_deploy");
    let check = args.extra("check").is_some();
    let default_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_deploy.json");
    let out = args.extra("out").unwrap_or(default_out).to_string();
    let tick_ms: u64 = args
        .extra_parsed("tick-ms")
        .unwrap_or_else(|e| {
            eprintln!("bench_deploy: {e}");
            std::process::exit(2);
        })
        .unwrap_or(40);

    let nodes = args.nodes.clamp(2, MAX_DEPLOY_NODES);
    if nodes != args.nodes {
        println!(
            "note: --nodes {} clamped to {nodes} (3 threads/node)",
            args.nodes
        );
    }

    println!("== bench_deploy — socket runtime vs sequential simulator ==");
    println!(
        "nodes={nodes} seed={} lambda={} rounds={ROUNDS} tick={tick_ms}ms",
        args.seed, args.lambda
    );
    println!();

    // Ground truth: the sequential simulator on the same population.
    let s = setup(Attribute::Ram, nodes, args.seed);
    let config = Adam2Config::new()
        .with_lambda(args.lambda)
        .with_rounds_per_instance(ROUNDS);
    let mut engine = adam2_engine(&s, config, args.seed, ChurnModel::None);
    let sim_meta = start_instance(&mut engine);
    complete_instance(&mut engine, ROUNDS);
    let sim_report = evaluate_estimates(&engine, &s.truth, args.sample_peers, args.seed);
    println!(
        "simulator     Err_a={:.3e} Err_m={:.3e}",
        sim_report.avg_cdf, sim_report.max_cdf
    );

    // Deploy scenarios: same population, same thresholds, real sockets.
    let node_config = NodeConfig {
        tick: Duration::from_millis(tick_ms),
        io_timeout: Duration::from_millis((tick_ms / 2).clamp(10, 50)),
        retries: 2,
        queue_capacity: 4,
        view_size: 12,
        seed: args.seed,
    };
    let scenarios: [(&'static str, LossShim); 2] = [
        ("clean", LossShim::none()),
        ("loss10", LossShim::flat(args.seed, 0.10)),
    ];
    let mut results = Vec::new();
    for (name, shim) in scenarios {
        let result = run_deploy(name, shim, &s.population, &sim_meta, &node_config, &args);
        println!(
            "deploy/{name:<7} Err_a={:.3e} Err_m={:.3e} peers_without={} exchanges={} \
             repairs={} aborts={} shim_drops={} clean_shutdown={}",
            result.report.avg_cdf,
            result.report.max_cdf,
            result.report.peers_without_estimate,
            result.exchanges,
            result.repairs,
            result.aborts,
            result.shim_drops,
            result.clean_shutdown,
        );
        results.push(result);
    }

    let json = render_json(&args, nodes, tick_ms, &sim_report, &results);
    match std::fs::write(&out, &json) {
        Ok(()) => println!("\nwrote {out}"),
        Err(e) => {
            eprintln!("bench_deploy: cannot write {out}: {e}");
            std::process::exit(1);
        }
    }

    if check {
        run_checks(&sim_report, &results);
        println!("all deploy checks passed");
    }
}

fn run_deploy(
    name: &'static str,
    shim: LossShim,
    population: &adam2_traces::Population,
    sim_meta: &InstanceMeta,
    node_config: &NodeConfig,
    args: &Args,
) -> ScenarioResult {
    let values: Vec<AttrValue> = population
        .values()
        .iter()
        .map(|v| AttrValue::Single(*v))
        .collect();
    let n = values.len();
    let cluster = Cluster::launch(
        values,
        ClusterConfig {
            node: node_config.clone(),
            shim,
            initial_n_estimate: 1.0,
        },
    )
    .expect("cluster launch");
    let mut sampler = ClusterTelemetry::new(n);

    // Same instance, rebased onto the deploy clock: identical thresholds
    // (and verify thresholds), identical duration.
    let start_round = cluster.current_round() + WARMUP_ROUNDS;
    let meta = Arc::new(InstanceMeta {
        id: sim_meta.id,
        thresholds: sim_meta.thresholds.clone(),
        verify_thresholds: sim_meta.verify_thresholds.clone(),
        start_round,
        end_round: start_round + ROUNDS,
        multi: sim_meta.multi,
    });
    cluster
        .start_instance(0, Arc::clone(&meta))
        .expect("start instance");

    // Drive the sampler once per completed round until one round past the
    // instance deadline (the finalisation round).
    let mut last = cluster.current_round();
    while last <= meta.end_round + 1 {
        std::thread::sleep(node_config.tick / 4);
        let now = cluster.current_round();
        if now > last {
            sampler.sample(&cluster, now - 1);
            last = now;
        }
    }

    let estimates = cluster.collect_estimates(Duration::from_secs(10));
    let peers: Vec<Option<PeerEstimate>> = estimates
        .iter()
        .map(|e| e.as_ref().map(peer_estimate))
        .collect();
    let report = evaluate_peer_estimates(
        &peers,
        &population_truth(population),
        args.sample_peers,
        args.seed,
    );
    let n_hats: Vec<f64> = estimates.iter().flatten().filter_map(|e| e.n_hat).collect();
    let mean_n_hat = if n_hats.is_empty() {
        f64::NAN
    } else {
        n_hats.iter().sum::<f64>() / n_hats.len() as f64
    };

    let mut exchanges = 0;
    let mut repairs = 0;
    let mut aborts = 0;
    let mut shim_drops = 0;
    let mut malformed = 0;
    let mut backpressure_drops = 0;
    for node in cluster.nodes() {
        let snap = node.shared.stats.snapshot();
        exchanges += snap.exchanges_started;
        repairs += snap.retransmissions;
        aborts += snap.exchanges_aborted;
        shim_drops += snap.shim_dropped;
        malformed += snap.malformed_frames;
        backpressure_drops += snap.backpressure_drops;
    }

    if let Some(dir) = &args.telemetry {
        let manifest = RunManifest::new(
            &format!("bench_deploy_{name}"),
            &format!(
                "nodes={n} lambda={} rounds={ROUNDS} tick_ms={} scenario={name}",
                args.lambda,
                node_config.tick.as_millis()
            ),
            args.seed,
            1,
        );
        let path = std::path::Path::new(dir).join(format!("deploy_{name}"));
        if let Err(e) = sampler.export(&path, &manifest) {
            eprintln!(
                "bench_deploy: telemetry export to {} failed: {e}",
                path.display()
            );
        }
    }

    let shutdown = cluster.shutdown();
    ScenarioResult {
        name,
        report,
        mean_n_hat,
        exchanges,
        repairs,
        aborts,
        shim_drops,
        malformed,
        backpressure_drops,
        clean_shutdown: shutdown.clean,
    }
}

fn peer_estimate(e: &EstimateWire) -> PeerEstimate {
    PeerEstimate {
        instance: e.instance,
        thresholds: e.thresholds.clone(),
        fractions: e.fractions.clone(),
        min: e.min,
        max: e.max,
    }
}

fn population_truth(population: &adam2_traces::Population) -> adam2_core::StepCdf {
    adam2_core::StepCdf::from_values(population.values().to_vec())
}

fn render_json(
    args: &Args,
    nodes: usize,
    tick_ms: u64,
    sim: &ErrorReport,
    results: &[ScenarioResult],
) -> String {
    let manifest = RunManifest::new(
        "bench_deploy",
        &format!(
            "nodes={nodes} lambda={} rounds={ROUNDS} tick_ms={tick_ms}",
            args.lambda
        ),
        args.seed,
        1,
    );
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"deploy_runtime\",\n");
    json.push_str(&format!("  \"manifest\": {},\n", manifest.to_inline_json()));
    json.push_str(&format!("  \"nodes\": {nodes},\n"));
    json.push_str(&format!("  \"seed\": {},\n", args.seed));
    json.push_str(&format!("  \"lambda\": {},\n", args.lambda));
    json.push_str(&format!("  \"rounds\": {ROUNDS},\n"));
    json.push_str(&format!("  \"tick_ms\": {tick_ms},\n"));
    json.push_str(&format!(
        "  \"simulator\": {{\"err_a\": {:.6e}, \"err_m\": {:.6e}}},\n",
        sim.avg_cdf, sim.max_cdf
    ));
    json.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"err_a\": {:.6e}, \"err_m\": {:.6e}, \
             \"peers_without_estimate\": {}, \"mean_n_hat\": {:.4}, \"exchanges\": {}, \
             \"repairs\": {}, \"aborts\": {}, \"shim_drops\": {}, \"malformed_frames\": {}, \
             \"backpressure_drops\": {}, \"clean_shutdown\": {}}}{}\n",
            r.name,
            r.report.avg_cdf,
            r.report.max_cdf,
            r.report.peers_without_estimate,
            r.mean_n_hat,
            r.exchanges,
            r.repairs,
            r.aborts,
            r.shim_drops,
            r.malformed,
            r.backpressure_drops,
            r.clean_shutdown,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    json
}

fn find<'a>(results: &'a [ScenarioResult], name: &str) -> &'a ScenarioResult {
    results
        .iter()
        .find(|r| r.name == name)
        .expect("scenario present")
}

fn run_checks(sim: &ErrorReport, results: &[ScenarioResult]) {
    let mut failures = Vec::new();

    for r in results {
        if !r.clean_shutdown {
            failures.push(format!(
                "{}: node threads did not shut down cleanly",
                r.name
            ));
        }
        if r.malformed > 0 {
            failures.push(format!(
                "{}: {} malformed frames on a trusted loopback cluster",
                r.name, r.malformed
            ));
        }
        if r.report.peers_with_estimate == 0 {
            failures.push(format!("{}: no peer produced an estimate", r.name));
        }
    }

    // Convergence: the clean cluster matches the simulator within 2x (plus
    // a tiny absolute floor for when the simulator's error is ~0).
    let clean = find(results, "clean");
    let bound = sim.avg_cdf * 2.0 + 1e-3;
    if clean.report.avg_cdf > bound {
        failures.push(format!(
            "clean deploy Err_a {:.3e} exceeds 2x simulator {:.3e}",
            clean.report.avg_cdf, sim.avg_cdf
        ));
    }
    if clean.report.peers_without_estimate > 0 {
        failures.push(format!(
            "clean deploy left {} peers without an estimate",
            clean.report.peers_without_estimate
        ));
    }

    // Under 10% socket loss the retransmit path must still converge.
    let lossy = find(results, "loss10");
    if lossy.shim_drops == 0 {
        failures.push("loss10 ran but the shim never dropped a frame".into());
    }
    if lossy.report.avg_cdf > sim.avg_cdf * 2.0 + 1e-2 {
        failures.push(format!(
            "loss10 deploy Err_a {:.3e} did not converge (simulator {:.3e})",
            lossy.report.avg_cdf, sim.avg_cdf
        ));
    }
    if lossy.report.peers_without_estimate > 0 {
        failures.push(format!(
            "loss10 deploy left {} peers without an estimate",
            lossy.report.peers_without_estimate
        ));
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("bench_deploy check FAILED: {f}");
        }
        std::process::exit(1);
    }
}
