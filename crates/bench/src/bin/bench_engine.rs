//! Sequential vs. parallel engine throughput, plus the event-engine
//! scaling curve.
//!
//! Part 1 measures `Engine::run_round` against `Engine::run_round_parallel`
//! on an Adam2 simulation with one spread λ=50 instance, for
//! N ∈ {1k, 10k, 100k}. Part 2 runs a full Adam2 instance on the
//! event-driven engine (`EventEngine::run_until_parallel`) for
//! N ∈ {10k, 100k, 1M}, reporting simulated ticks/sec, delivered
//! messages/sec, instance coverage, and peak-RSS bytes per node (VmHWM
//! from `/proc/self/status`; the process high-water mark is monotone, so
//! the per-node figure is exact at the largest size and an upper bound
//! below it). Results are written as JSON to `BENCH_engine.json` at the
//! repository root (override with `--out PATH`).
//!
//! Extra flags: `--threads T` (parallel worker threads, default 0 = auto),
//! `--out PATH`, `--event-max N` (largest event-engine size, default 1M),
//! `--event-only` (skip the cycle-driven comparison), `--check` (re-run
//! each event size at a different thread count and fail unless the result
//! fingerprint is bit-identical). The standard `--seed` / `--lambda` /
//! `--rounds` flags also apply.

use std::sync::Arc;
use std::time::Instant;

use adam2_bench::{
    adam2_engine, adam2_engine_threaded, export_telemetry, maybe_attach_telemetry, setup,
    start_instance, Args, ExperimentSetup,
};
use adam2_core::{uniform_points, Adam2Config, AsyncAdam2, InstanceId, InstanceMeta};
use adam2_sim::{ChurnModel, EventConfig, EventEngine, LatencyModel, RunManifest};
use adam2_traces::Attribute;

struct SizeResult {
    nodes: usize,
    rounds: u64,
    seq_rounds_per_sec: f64,
    par_rounds_per_sec: f64,
    speedup: f64,
}

struct EventResult {
    nodes: usize,
    rounds: u64,
    ticks: u64,
    secs: f64,
    ticks_per_sec: f64,
    msgs_per_sec: f64,
    coverage: f64,
    completed: u64,
    peak_rss_bytes: u64,
    peak_rss_bytes_per_node: f64,
}

/// One event-engine run reduced to the numbers the bench reports plus a
/// bit-exact fingerprint over every estimate and counter.
struct EventRun {
    secs: f64,
    delivered: u64,
    coverage: f64,
    completed: u64,
    fingerprint: u64,
}

fn measured_rounds(nodes: usize) -> u64 {
    // Keep each measurement in the seconds range across three decades.
    ((2_000_000 / nodes) as u64).clamp(5, 50)
}

/// FNV-1a over the little-endian bytes of `v`, folded into `h`.
fn mix(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Peak resident set size of this process (VmHWM), in bytes.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line
        .trim_start_matches("VmHWM:")
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kb * 1024)
}

/// Runs one full Adam2 instance on the event engine and reduces it to
/// throughput numbers and a bit-exact fingerprint.
fn run_event(
    s: &ExperimentSetup,
    nodes: usize,
    seed: u64,
    lambda: usize,
    period: u64,
    rounds: u64,
    threads: usize,
) -> EventRun {
    let proto = AsyncAdam2::with_population(period, s.population.values().to_vec(), {
        let pop = s.population.clone();
        move |rng| pop.draw_fresh(rng)
    });
    let config = EventConfig::new(nodes, seed)
        .with_gossip_period(period)
        .with_latency(LatencyModel::Uniform { min: 10, max: 60 })
        .with_threads(threads);
    let mut engine = EventEngine::new(config, proto);
    let thresholds = uniform_points(s.truth.min(), s.truth.max(), lambda);
    let meta = Arc::new(InstanceMeta {
        id: InstanceId::derive(0, 0, 1),
        thresholds: thresholds.into(),
        verify_thresholds: Vec::new().into(),
        start_round: 0,
        end_round: rounds,
        multi: false,
    });
    engine.with_ctx(|proto, ctx| {
        let initiator = ctx.nodes.random_id(ctx.rng).expect("population non-empty");
        proto.start_instance(initiator, meta.clone(), ctx)
    });
    let t0 = Instant::now();
    engine.run_until_parallel(period * (rounds + 2));
    let secs = t0.elapsed().as_secs_f64();

    let mut with = 0usize;
    let mut total = 0usize;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for (_, node) in engine.nodes().iter() {
        total += 1;
        let Some(est) = node.estimate() else { continue };
        with += 1;
        for f in est.fractions.iter() {
            h = mix(h, f.to_bits());
        }
        if let Some(n) = est.n_hat {
            h = mix(h, n.to_bits());
        }
    }
    h = mix(h, engine.delivered_count());
    h = mix(h, engine.lost_count());
    h = mix(h, engine.net().total_bytes());
    h = mix(h, engine.net().total_msgs());
    h = mix(h, engine.protocol().completed_count());
    EventRun {
        secs,
        delivered: engine.delivered_count(),
        coverage: with as f64 / total.max(1) as f64,
        completed: engine.protocol().completed_count(),
        fingerprint: h,
    }
}

/// Removes every occurrence of the valueless flag `name`, reporting
/// whether it was present.
fn take_flag(raw: &mut Vec<String>, name: &str) -> bool {
    let before = raw.len();
    raw.retain(|a| a != name);
    raw.len() != before
}

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let check = take_flag(&mut raw, "--check");
    let event_only = take_flag(&mut raw, "--event-only");
    let args = match Args::try_parse(raw) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("bench_engine: {msg}");
            eprintln!(
                "usage: bench_engine [--nodes N] [--seed S] [--lambda L] [--rounds R] \
                 [--threads T] [--out PATH] [--event-max N] [--event-only] [--check]"
            );
            std::process::exit(if msg == "help requested" { 0 } else { 2 });
        }
    };
    let threads: usize = args
        .extra_parsed("threads")
        .unwrap_or_else(|e| panic!("{e}"))
        .unwrap_or(0);
    let event_max: usize = args
        .extra_parsed("event-max")
        .unwrap_or_else(|e| panic!("{e}"))
        .unwrap_or(1_000_000);
    let default_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    let out = args.extra("out").unwrap_or(default_out).to_string();
    let detected = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let effective_threads = if threads == 0 { detected } else { threads };

    println!("== bench_engine — engine throughput (cycle + event drivers) ==");
    println!(
        "seed={} lambda={} threads={} (detected cores: {})",
        args.seed, args.lambda, effective_threads, detected
    );
    println!();

    let config = Adam2Config::new()
        .with_lambda(args.lambda)
        .with_rounds_per_instance(1_000_000);

    let mut results = Vec::new();
    if !event_only {
        for nodes in [1_000usize, 10_000, 100_000] {
            let rounds = measured_rounds(nodes);
            let s = setup(Attribute::Ram, nodes, args.seed);

            let mut seq = adam2_engine(&s, config, args.seed, ChurnModel::None);
            start_instance(&mut seq);
            seq.run_rounds(10); // spread the instance so rounds carry payloads
            let t0 = Instant::now();
            seq.run_rounds(rounds);
            let seq_secs = t0.elapsed().as_secs_f64();

            let mut par = adam2_engine_threaded(&s, config, args.seed, ChurnModel::None, threads);
            // Telemetry only on the parallel leg, and only when requested:
            // with the flag absent both legs run with the zero-cost no-op sink.
            maybe_attach_telemetry(&mut par, args.telemetry.as_ref());
            start_instance(&mut par);
            par.run_rounds_parallel(10);
            let t0 = Instant::now();
            par.run_rounds_parallel(rounds);
            let par_secs = t0.elapsed().as_secs_f64();
            if let Some(dir) = &args.telemetry {
                export_telemetry(
                    &mut par,
                    dir,
                    &format!("n{nodes}"),
                    "bench_engine",
                    &format!(
                        "nodes={nodes} lambda={} threads={effective_threads}",
                        args.lambda
                    ),
                    args.seed,
                );
            }

            // Both paths must have carried the same number of messages.
            assert_eq!(
                seq.net().total_msgs(),
                par.net().total_msgs(),
                "message-count equivalence violated at n={nodes}"
            );

            let r = SizeResult {
                nodes,
                rounds,
                seq_rounds_per_sec: rounds as f64 / seq_secs,
                par_rounds_per_sec: rounds as f64 / par_secs,
                speedup: seq_secs / par_secs,
            };
            println!(
                "n={:>7}  rounds={:>3}  seq {:>9.2} r/s  par {:>9.2} r/s  speedup {:.2}x",
                r.nodes, r.rounds, r.seq_rounds_per_sec, r.par_rounds_per_sec, r.speedup
            );
            results.push(r);
        }
        println!();
    }

    // Part 2: the event-driven engine, one full Adam2 instance per size.
    let period = 1_000u64;
    let event_rounds = args.rounds.max(20);
    let mut event_results: Vec<EventResult> = Vec::new();
    for nodes in [10_000usize, 100_000, 1_000_000] {
        if nodes > event_max {
            continue;
        }
        let s = setup(Attribute::Ram, nodes, args.seed);
        let run = run_event(
            &s,
            nodes,
            args.seed,
            args.lambda,
            period,
            event_rounds,
            effective_threads,
        );
        assert!(
            run.coverage >= 0.99,
            "event instance incomplete at n={nodes}: coverage {:.4}",
            run.coverage
        );
        if check {
            // Bit-identity across thread counts: re-run with a different
            // worker count and require the exact same fingerprint.
            let other = if effective_threads == 2 { 1 } else { 2 };
            let rerun = run_event(
                &s,
                nodes,
                args.seed,
                args.lambda,
                period,
                event_rounds,
                other,
            );
            assert_eq!(
                run.fingerprint, rerun.fingerprint,
                "event engine not bit-identical at n={nodes} (threads {effective_threads} vs {other})"
            );
            println!(
                "n={nodes:>8}  check OK: threads {effective_threads} == threads {other} \
                 (fingerprint {:016x})",
                run.fingerprint
            );
        }
        let ticks = period * (event_rounds + 2);
        let peak = peak_rss_bytes().unwrap_or(0);
        let r = EventResult {
            nodes,
            rounds: event_rounds,
            ticks,
            secs: run.secs,
            ticks_per_sec: ticks as f64 / run.secs,
            msgs_per_sec: run.delivered as f64 / run.secs,
            coverage: run.coverage,
            completed: run.completed,
            peak_rss_bytes: peak,
            peak_rss_bytes_per_node: peak as f64 / nodes as f64,
        };
        println!(
            "n={:>8}  ticks={:>6}  {:>10.0} ticks/s  {:>10.0} msg/s  coverage {:.3}  \
             rss/node {:.0} B",
            r.nodes,
            r.ticks,
            r.ticks_per_sec,
            r.msgs_per_sec,
            r.coverage,
            r.peak_rss_bytes_per_node
        );
        event_results.push(r);
    }

    let manifest = RunManifest::new(
        "bench_engine",
        &format!("lambda={} threads={effective_threads}", args.lambda),
        args.seed,
        effective_threads,
    );
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"engine_rounds_per_sec\",\n");
    json.push_str(&format!("  \"manifest\": {},\n", manifest.to_inline_json()));
    json.push_str(&format!("  \"seed\": {},\n", args.seed));
    json.push_str(&format!("  \"lambda\": {},\n", args.lambda));
    json.push_str(&format!("  \"threads\": {effective_threads},\n"));
    json.push_str(&format!("  \"detected_cores\": {detected},\n"));
    json.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"nodes\": {}, \"rounds\": {}, \"seq_rounds_per_sec\": {:.4}, \
             \"par_rounds_per_sec\": {:.4}, \"speedup\": {:.4}}}{}\n",
            r.nodes,
            r.rounds,
            r.seq_rounds_per_sec,
            r.par_rounds_per_sec,
            r.speedup,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"event_results\": [\n");
    for (i, r) in event_results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"nodes\": {}, \"rounds\": {}, \"ticks\": {}, \"secs\": {:.4}, \
             \"ticks_per_sec\": {:.2}, \"msgs_per_sec\": {:.2}, \"coverage\": {:.4}, \
             \"completed\": {}, \"peak_rss_bytes\": {}, \"peak_rss_bytes_per_node\": {:.1}}}{}\n",
            r.nodes,
            r.rounds,
            r.ticks,
            r.secs,
            r.ticks_per_sec,
            r.msgs_per_sec,
            r.coverage,
            r.completed,
            r.peak_rss_bytes,
            r.peak_rss_bytes_per_node,
            if i + 1 < event_results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    match std::fs::write(&out, &json) {
        Ok(()) => println!("\nwrote {out}"),
        Err(e) => {
            eprintln!("bench_engine: cannot write {out}: {e}");
            std::process::exit(1);
        }
    }
}
