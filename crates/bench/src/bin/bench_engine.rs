//! Sequential vs. parallel engine throughput (rounds/sec).
//!
//! Measures `Engine::run_round` against `Engine::run_round_parallel` on an
//! Adam2 simulation with one spread λ=50 instance, for N ∈ {1k, 10k, 100k},
//! and writes the results as JSON to `BENCH_engine.json` at the repository
//! root (override with `--out PATH`).
//!
//! Extra flags: `--threads T` (parallel worker threads, default 0 = auto),
//! `--out PATH`. The standard `--seed` / `--lambda` flags also apply.

use std::time::Instant;

use adam2_bench::{
    adam2_engine, adam2_engine_threaded, export_telemetry, maybe_attach_telemetry, setup,
    start_instance, Args,
};
use adam2_core::Adam2Config;
use adam2_sim::{ChurnModel, RunManifest};
use adam2_traces::Attribute;

struct SizeResult {
    nodes: usize,
    rounds: u64,
    seq_rounds_per_sec: f64,
    par_rounds_per_sec: f64,
    speedup: f64,
}

fn measured_rounds(nodes: usize) -> u64 {
    // Keep each measurement in the seconds range across three decades.
    ((2_000_000 / nodes) as u64).clamp(5, 50)
}

fn main() {
    let args = Args::parse("bench_engine");
    let threads: usize = args
        .extra_parsed("threads")
        .unwrap_or_else(|e| panic!("{e}"))
        .unwrap_or(0);
    let default_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    let out = args.extra("out").unwrap_or(default_out).to_string();
    let detected = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let effective_threads = if threads == 0 { detected } else { threads };

    println!("== bench_engine — sequential vs parallel rounds/sec ==");
    println!(
        "seed={} lambda={} threads={} (detected cores: {})",
        args.seed, args.lambda, effective_threads, detected
    );
    println!();

    let config = Adam2Config::new()
        .with_lambda(args.lambda)
        .with_rounds_per_instance(1_000_000);

    let mut results = Vec::new();
    for nodes in [1_000usize, 10_000, 100_000] {
        let rounds = measured_rounds(nodes);
        let s = setup(Attribute::Ram, nodes, args.seed);

        let mut seq = adam2_engine(&s, config, args.seed, ChurnModel::None);
        start_instance(&mut seq);
        seq.run_rounds(10); // spread the instance so rounds carry payloads
        let t0 = Instant::now();
        seq.run_rounds(rounds);
        let seq_secs = t0.elapsed().as_secs_f64();

        let mut par = adam2_engine_threaded(&s, config, args.seed, ChurnModel::None, threads);
        // Telemetry only on the parallel leg, and only when requested:
        // with the flag absent both legs run with the zero-cost no-op sink.
        maybe_attach_telemetry(&mut par, args.telemetry.as_ref());
        start_instance(&mut par);
        par.run_rounds_parallel(10);
        let t0 = Instant::now();
        par.run_rounds_parallel(rounds);
        let par_secs = t0.elapsed().as_secs_f64();
        if let Some(dir) = &args.telemetry {
            export_telemetry(
                &mut par,
                dir,
                &format!("n{nodes}"),
                "bench_engine",
                &format!(
                    "nodes={nodes} lambda={} threads={effective_threads}",
                    args.lambda
                ),
                args.seed,
            );
        }

        // Both paths must have carried the same number of messages.
        assert_eq!(
            seq.net().total_msgs(),
            par.net().total_msgs(),
            "message-count equivalence violated at n={nodes}"
        );

        let r = SizeResult {
            nodes,
            rounds,
            seq_rounds_per_sec: rounds as f64 / seq_secs,
            par_rounds_per_sec: rounds as f64 / par_secs,
            speedup: seq_secs / par_secs,
        };
        println!(
            "n={:>7}  rounds={:>3}  seq {:>9.2} r/s  par {:>9.2} r/s  speedup {:.2}x",
            r.nodes, r.rounds, r.seq_rounds_per_sec, r.par_rounds_per_sec, r.speedup
        );
        results.push(r);
    }

    let manifest = RunManifest::new(
        "bench_engine",
        &format!("lambda={} threads={effective_threads}", args.lambda),
        args.seed,
        effective_threads,
    );
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"engine_rounds_per_sec\",\n");
    json.push_str(&format!("  \"manifest\": {},\n", manifest.to_inline_json()));
    json.push_str(&format!("  \"seed\": {},\n", args.seed));
    json.push_str(&format!("  \"lambda\": {},\n", args.lambda));
    json.push_str(&format!("  \"threads\": {effective_threads},\n"));
    json.push_str(&format!("  \"detected_cores\": {detected},\n"));
    json.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"nodes\": {}, \"rounds\": {}, \"seq_rounds_per_sec\": {:.4}, \
             \"par_rounds_per_sec\": {:.4}, \"speedup\": {:.4}}}{}\n",
            r.nodes,
            r.rounds,
            r.seq_rounds_per_sec,
            r.par_rounds_per_sec,
            r.speedup,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    match std::fs::write(&out, &json) {
        Ok(()) => println!("\nwrote {out}"),
        Err(e) => {
            eprintln!("bench_engine: cannot write {out}: {e}");
            std::process::exit(1);
        }
    }
}
