//! Reproduces Fig. 10: approximation accuracy after 4 instances/phases as
//! a function of the number of interpolation points (histogram bins),
//! 10 .. 100.

use adam2_baselines::EquiDepthConfig;
use adam2_bench::{
    adam2_engine, complete_instance, equidepth_engine, evaluate_equidepth_estimates,
    evaluate_estimates, fmt_err, start_instance, start_phase, Args, Table,
};
use adam2_core::{Adam2Config, RefineKind};
use adam2_sim::ChurnModel;

fn main() {
    let args = Args::parse("fig10_points");
    args.print_header(
        "fig10_points",
        "Fig. 10 (accuracy vs number of interpolation points)",
    );
    let instances: usize = args
        .extra_parsed("instances")
        .unwrap_or_else(|e| panic!("{e}"))
        .unwrap_or(4);
    let point_counts: Vec<usize> = vec![10, 20, 30, 40, 50, 60, 70, 80, 90, 100];

    for (metric_name, pick_max, refine) in [
        (
            "(a) maximum error Err_m after 4 instances (MinMax vs EquiDepth)",
            true,
            RefineKind::MinMax,
        ),
        (
            "(b) average error Err_a after 4 instances (LCut vs EquiDepth)",
            false,
            RefineKind::LCut,
        ),
    ] {
        let mut headers = vec!["points".to_string()];
        for attr in &args.attrs {
            headers.push(format!(
                "{attr}-{}",
                if pick_max { "minmax" } else { "lcut" }
            ));
            headers.push(format!("{attr}-equidepth"));
        }
        let mut rows: Vec<Vec<String>> = point_counts.iter().map(|p| vec![p.to_string()]).collect();

        for attr in &args.attrs {
            let setup = adam2_bench::setup(*attr, args.nodes, args.seed);
            for (row, lambda) in rows.iter_mut().zip(&point_counts) {
                // Adam2.
                let config = Adam2Config::new()
                    .with_lambda(*lambda)
                    .with_rounds_per_instance(args.rounds)
                    .with_refine(refine);
                let mut engine = adam2_engine(&setup, config, args.seed, ChurnModel::None);
                for _ in 0..instances {
                    start_instance(&mut engine);
                    complete_instance(&mut engine, args.rounds);
                }
                let report =
                    evaluate_estimates(&engine, &setup.truth, args.sample_peers, args.seed);
                row.push(fmt_err(if pick_max {
                    report.max_cdf
                } else {
                    report.avg_cdf
                }));

                // EquiDepth with the same number of bins.
                let mut ed = equidepth_engine(
                    &setup,
                    EquiDepthConfig::new(*lambda, args.rounds),
                    args.seed,
                    ChurnModel::None,
                );
                for _ in 0..instances {
                    start_phase(&mut ed);
                    complete_instance(&mut ed, args.rounds);
                }
                let ed_report =
                    evaluate_equidepth_estimates(&ed, &setup.truth, args.sample_peers, args.seed);
                row.push(fmt_err(if pick_max {
                    ed_report.max_cdf
                } else {
                    ed_report.avg_cdf
                }));
            }
        }

        let mut table = Table::new(headers);
        for row in rows {
            table.row(row);
        }
        println!("{metric_name}:");
        table.print();
        println!();
    }

    println!(
        "expected shape: more points help both systems; Adam2 beats EquiDepth at every size; \
         ~50 points reach Err_m ≈ 2% (MinMax) and Err_a ≈ 0.1% (LCut); +10 points cost only \
         ~160 B per message."
    );
}
