//! Reproduces Fig. 9: random-sampling approximation error as a function
//! of the number of samples (1 .. 100 000).

use adam2_baselines::{sample_estimate, sampling_cost_messages};
use adam2_bench::{fmt_err, Args, AsciiChart, Table};
use adam2_core::discrete_errors_over;
use adam2_sim::{derive_seed, seeded_rng};

fn main() {
    let args = Args::parse("fig09_sampling");
    args.print_header(
        "fig09_sampling",
        "Fig. 9 (random sampling error vs sample count)",
    );
    let trials: usize = args
        .extra_parsed("trials")
        .unwrap_or_else(|e| panic!("{e}"))
        .unwrap_or(5);

    let sample_counts: Vec<usize> = [
        1usize, 3, 10, 30, 100, 300, 1_000, 3_000, 10_000, 30_000, 100_000,
    ]
    .into_iter()
    .filter(|k| *k <= args.nodes.max(100_000))
    .collect();

    let mut headers = vec!["samples".to_string(), "walk msgs".to_string()];
    for attr in &args.attrs {
        headers.push(format!("{attr}-Err_m"));
        headers.push(format!("{attr}-Err_a"));
    }
    let mut table = Table::new(headers);
    let mut chart = AsciiChart::new(64, 16).log_x().log_y();

    let mut columns: Vec<Vec<(f64, f64)>> = Vec::new();
    for attr in &args.attrs {
        let setup = adam2_bench::setup(*attr, args.nodes, args.seed);
        let mut rng = seeded_rng(derive_seed(args.seed, 0x9A));
        let mut maxs = Vec::new();
        let mut avgs = Vec::new();
        for k in &sample_counts {
            let mut sum_m = 0.0;
            let mut sum_a = 0.0;
            for _ in 0..trials {
                let est = sample_estimate(setup.population.values(), *k, &mut rng);
                let (m, a) = discrete_errors_over(
                    &setup.truth,
                    &est.cdf,
                    setup.truth.min(),
                    setup.truth.max(),
                );
                sum_m += m;
                sum_a += a;
            }
            maxs.push((*k as f64, sum_m / trials as f64));
            avgs.push((*k as f64, sum_a / trials as f64));
        }
        chart = chart.series(
            attr.name()
                .chars()
                .next()
                .unwrap_or('?')
                .to_ascii_uppercase(),
            format!("{attr}-Err_m"),
            maxs.clone(),
        );
        columns.push(maxs);
        columns.push(avgs);
    }

    for (i, k) in sample_counts.iter().enumerate() {
        let mut row = vec![k.to_string(), sampling_cost_messages(*k, 10).to_string()];
        for col in &columns {
            row.push(fmt_err(col[i].1));
        }
        table.row(row);
    }
    table.print();
    println!();
    println!("Err_m vs samples (log-log):");
    chart.print();
    println!();
    println!(
        "expected shape: error falls like 1/sqrt(k); matching Adam2's accuracy needs \
         1 000-10 000 samples, i.e. 10 000-100 000 random-walk messages per querying node — \
         an order of magnitude above Adam2's ~150 messages."
    );
    table.maybe_write_csv(args.csv.as_deref());
}
