//! Section VII-F made quantitative: dynamic attribute distributions.
//!
//! The paper argues qualitatively that under attribute *drift* the
//! estimation error at instance end is the aggregation error plus the CDF
//! change over the instance, so shorter instances track a moving
//! distribution better (at the same per-instance cost). This experiment
//! drifts every node's value by a multiplicative factor each round while
//! an instance runs, and reports the end-of-instance error against the
//! *final* CDF for several instance durations.

use adam2_bench::{current_truth, evaluate_estimates, fmt_err, start_instance, Args, Table};
use adam2_core::{Adam2Config, AttrValue};
use adam2_sim::ChurnModel;
use adam2_traces::Attribute;

fn main() {
    let mut args = Args::parse("exp_dynamic");
    if args.attrs.len() > 1 {
        args.attrs = vec![Attribute::Cpu];
    }
    args.print_header(
        "exp_dynamic",
        "Section VII-F quantified (dynamic attribute distributions; in-text, no figure)",
    );
    let attr = args.attrs[0];
    let drift_rates = [0.0, 0.0005, 0.001, 0.002, 0.005, 0.01];
    let durations = [10u64, 25, 50];

    let mut headers = vec!["drift/round".to_string()];
    for d in durations {
        headers.push(format!("Err_m @ {d} rounds"));
    }
    let mut table = Table::new(headers);

    for drift in drift_rates {
        let mut row = vec![format!("{drift}")];
        for duration in durations {
            let setup = adam2_bench::setup(attr, args.nodes, args.seed);
            let config = Adam2Config::new()
                .with_lambda(args.lambda)
                .with_rounds_per_instance(duration);
            let mut engine = adam2_bench::adam2_engine(&setup, config, args.seed, ChurnModel::None);
            // Warm-up instance on the static distribution so refinement
            // has a starting point (as a deployed system would).
            start_instance(&mut engine);
            engine.run_rounds(duration + 1);

            // The tracked instance: values drift every round while the
            // averaging runs. A node's contribution is fixed at join time
            // (the paper's model: "a node evaluates its attribute value
            // only when it creates or joins a new aggregation instance").
            start_instance(&mut engine);
            for _ in 0..=duration {
                engine.run_round();
                for (_, node) in engine.nodes_mut().iter_mut() {
                    if let AttrValue::Single(v) = node.value() {
                        let moved = (v * (1.0 + drift)).round();
                        node.set_value(AttrValue::Single(moved));
                    }
                }
            }
            let truth_now = current_truth(&engine);
            let report = evaluate_estimates(&engine, &truth_now, args.sample_peers, args.seed);
            row.push(fmt_err(report.max_cdf));
        }
        table.row(row);
    }
    table.print();
    println!();
    println!(
        "expected shape: with no drift all durations reach the static interpolation floor; \
         under drift the error grows roughly with drift x duration, so shorter instances \
         track a moving distribution better — the paper's Section VII-F argument."
    );
    table.maybe_write_csv(args.csv.as_deref());
}
