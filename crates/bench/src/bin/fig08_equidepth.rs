//! Reproduces Fig. 8: EquiDepth across multiple phases, compared with
//! Adam2's MinMax (Err_m) and LCut (Err_a).

use adam2_baselines::EquiDepthConfig;
use adam2_bench::{
    adam2_engine, complete_instance, equidepth_engine, evaluate_equidepth_estimates,
    evaluate_estimates, fmt_err, start_instance, start_phase, Args, Table,
};
use adam2_core::{Adam2Config, RefineKind};
use adam2_sim::ChurnModel;

fn main() {
    let args = Args::parse("fig08_equidepth");
    args.print_header("fig08_equidepth", "Fig. 8 (EquiDepth over multiple phases)");
    let instances: usize = args
        .extra_parsed("instances")
        .unwrap_or_else(|e| panic!("{e}"))
        .unwrap_or(5);

    for (metric_name, pick_max, adam2_refine) in [
        (
            "(a) maximum error Err_m: EquiDepth vs MinMax",
            true,
            RefineKind::MinMax,
        ),
        (
            "(b) average error Err_a: EquiDepth vs LCut",
            false,
            RefineKind::LCut,
        ),
    ] {
        let mut headers = vec!["instance".to_string()];
        for attr in &args.attrs {
            headers.push(format!("{attr}-equidepth"));
            headers.push(format!(
                "{attr}-{}",
                if pick_max { "minmax" } else { "lcut" }
            ));
        }
        let mut rows: Vec<Vec<String>> = (1..=instances).map(|i| vec![i.to_string()]).collect();

        for attr in &args.attrs {
            let setup = adam2_bench::setup(*attr, args.nodes, args.seed);

            // EquiDepth phases.
            let mut ed = equidepth_engine(
                &setup,
                EquiDepthConfig::new(args.lambda, args.rounds),
                args.seed,
                ChurnModel::None,
            );
            let mut ed_errors = Vec::new();
            for _ in 0..instances {
                start_phase(&mut ed);
                complete_instance(&mut ed, args.rounds);
                let report =
                    evaluate_equidepth_estimates(&ed, &setup.truth, args.sample_peers, args.seed);
                ed_errors.push(if pick_max {
                    report.max_cdf
                } else {
                    report.avg_cdf
                });
            }

            // Adam2 instances.
            let config = Adam2Config::new()
                .with_lambda(args.lambda)
                .with_rounds_per_instance(args.rounds)
                .with_refine(adam2_refine);
            let mut engine = adam2_engine(&setup, config, args.seed, ChurnModel::None);
            let mut adam_errors = Vec::new();
            for _ in 0..instances {
                start_instance(&mut engine);
                complete_instance(&mut engine, args.rounds);
                let report =
                    evaluate_estimates(&engine, &setup.truth, args.sample_peers, args.seed);
                adam_errors.push(if pick_max {
                    report.max_cdf
                } else {
                    report.avg_cdf
                });
            }

            for (row, (ed_e, ad_e)) in rows.iter_mut().zip(ed_errors.iter().zip(&adam_errors)) {
                row.push(fmt_err(*ed_e));
                row.push(fmt_err(*ad_e));
            }
        }

        let mut table = Table::new(headers);
        for row in rows {
            table.row(row);
        }
        println!("{metric_name}:");
        table.print();
        println!();
    }

    println!(
        "expected shape: EquiDepth's error is flat across phases (no refinement); Adam2 \
         improves each instance, ending a few times better on Err_m and ~10x better on Err_a."
    );
}
