//! Minimal command-line parsing for the experiment binaries.
//!
//! No external CLI crate is sanctioned for this reproduction, so flags are
//! parsed by hand. Every binary shares the same vocabulary:
//!
//! ```text
//! --nodes N      population size (default 10000; --full forces 100000)
//! --seed S       master seed (default 42)
//! --lambda L     interpolation points (default 50)
//! --rounds R     rounds per instance/phase (default 30)
//! --peers P      peers sampled for Err_a aggregation (default 32)
//! --attr LIST    comma-separated attributes (default cpu,ram)
//! --csv PATH     also write the result table as CSV
//! --telemetry D  export per-round telemetry (JSONL/CSV + manifest) to D
//! --full         paper scale: 100000 nodes
//! --help         print usage
//! ```

use std::collections::HashMap;

use adam2_traces::Attribute;

/// Parsed command-line arguments shared by all experiment binaries.
#[derive(Debug, Clone)]
pub struct Args {
    /// Population size.
    pub nodes: usize,
    /// Master seed.
    pub seed: u64,
    /// Interpolation points λ.
    pub lambda: usize,
    /// Rounds per instance/phase.
    pub rounds: u64,
    /// Number of peers sampled for average-error aggregation.
    pub sample_peers: usize,
    /// Attributes to evaluate.
    pub attrs: Vec<Attribute>,
    /// Optional CSV output path.
    pub csv: Option<String>,
    /// Optional telemetry export directory (`--telemetry DIR`): runs
    /// attach a telemetry store and export rounds/events/manifest files.
    pub telemetry: Option<String>,
    /// Paper-scale run requested.
    pub full: bool,
    extras: HashMap<String, String>,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            nodes: 10_000,
            seed: 42,
            lambda: 50,
            rounds: 30,
            sample_peers: 32,
            attrs: vec![Attribute::Cpu, Attribute::Ram],
            csv: None,
            telemetry: None,
            full: false,
            extras: HashMap::new(),
        }
    }
}

impl Args {
    /// Parses `std::env::args()`, printing usage and exiting on `--help`
    /// or a malformed flag.
    pub fn parse(experiment: &str) -> Self {
        match Self::try_parse(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("{experiment}: {msg}");
                eprintln!(
                    "usage: {experiment} [--nodes N] [--seed S] [--lambda L] [--rounds R] \
                     [--peers P] [--attr cpu,ram] [--csv PATH] [--telemetry DIR] [--full]"
                );
                std::process::exit(if msg == "help requested" { 0 } else { 2 });
            }
        }
    }

    /// Parses an explicit argument list.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed flag.
    pub fn try_parse(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut out = Self::default();
        let mut iter = args.into_iter();
        while let Some(flag) = iter.next() {
            let mut value_of = |name: &str| {
                iter.next()
                    .ok_or_else(|| format!("{name} requires a value"))
            };
            match flag.as_str() {
                "--help" | "-h" => return Err("help requested".into()),
                "--full" => out.full = true,
                "--nodes" => {
                    out.nodes = value_of("--nodes")?
                        .parse()
                        .map_err(|e| format!("--nodes: {e}"))?;
                }
                "--seed" => {
                    out.seed = value_of("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?;
                }
                "--lambda" => {
                    out.lambda = value_of("--lambda")?
                        .parse()
                        .map_err(|e| format!("--lambda: {e}"))?;
                }
                "--rounds" => {
                    out.rounds = value_of("--rounds")?
                        .parse()
                        .map_err(|e| format!("--rounds: {e}"))?;
                }
                "--peers" => {
                    out.sample_peers = value_of("--peers")?
                        .parse()
                        .map_err(|e| format!("--peers: {e}"))?;
                }
                "--attr" => {
                    let list = value_of("--attr")?;
                    out.attrs = list
                        .split(',')
                        .map(|name| {
                            Attribute::from_name(name.trim())
                                .ok_or_else(|| format!("unknown attribute '{name}'"))
                        })
                        .collect::<Result<_, _>>()?;
                }
                "--csv" => out.csv = Some(value_of("--csv")?),
                "--telemetry" => out.telemetry = Some(value_of("--telemetry")?),
                other if other.starts_with("--") => {
                    // Experiment-specific extras: --key value.
                    let key = other.trim_start_matches("--").to_string();
                    let value = value_of(other)?;
                    out.extras.insert(key, value);
                }
                other => return Err(format!("unexpected argument '{other}'")),
            }
        }
        if out.full {
            out.nodes = 100_000;
        }
        if out.nodes == 0 {
            return Err("--nodes must be positive".into());
        }
        if out.lambda == 0 {
            return Err("--lambda must be positive".into());
        }
        Ok(out)
    }

    /// An experiment-specific extra flag (`--key value`).
    pub fn extra(&self, key: &str) -> Option<&str> {
        self.extras.get(key).map(String::as_str)
    }

    /// An experiment-specific extra parsed to a type.
    ///
    /// # Errors
    ///
    /// Returns an error string if present but unparsable.
    pub fn extra_parsed<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.extras.get(key) {
            None => Ok(None),
            Some(raw) => raw.parse().map(Some).map_err(|e| format!("--{key}: {e}")),
        }
    }

    /// Prints the standard experiment header.
    pub fn print_header(&self, experiment: &str, figure: &str) {
        println!("== {experiment} — reproduces {figure} ==");
        println!(
            "nodes={} seed={} lambda={} rounds/instance={} sample_peers={} attrs={}",
            self.nodes,
            self.seed,
            self.lambda,
            self.rounds,
            self.sample_peers,
            self.attrs
                .iter()
                .map(|a| a.name())
                .collect::<Vec<_>>()
                .join(",")
        );
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(list: &[&str]) -> Result<Args, String> {
        Args::try_parse(list.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.nodes, 10_000);
        assert_eq!(a.seed, 42);
        assert_eq!(a.lambda, 50);
        assert_eq!(a.attrs, vec![Attribute::Cpu, Attribute::Ram]);
    }

    #[test]
    fn flags_are_parsed() {
        let a = parse(&[
            "--nodes",
            "500",
            "--seed",
            "7",
            "--lambda",
            "20",
            "--rounds",
            "40",
            "--peers",
            "16",
            "--attr",
            "ram",
            "--csv",
            "/tmp/x.csv",
            "--telemetry",
            "/tmp/telemetry",
        ])
        .unwrap();
        assert_eq!(a.nodes, 500);
        assert_eq!(a.seed, 7);
        assert_eq!(a.lambda, 20);
        assert_eq!(a.rounds, 40);
        assert_eq!(a.sample_peers, 16);
        assert_eq!(a.attrs, vec![Attribute::Ram]);
        assert_eq!(a.csv.as_deref(), Some("/tmp/x.csv"));
        assert_eq!(a.telemetry.as_deref(), Some("/tmp/telemetry"));
    }

    #[test]
    fn full_overrides_nodes() {
        let a = parse(&["--nodes", "500", "--full"]).unwrap();
        assert_eq!(a.nodes, 100_000);
    }

    #[test]
    fn extras_are_collected() {
        let a = parse(&["--churn", "0.01"]).unwrap();
        assert_eq!(a.extra("churn"), Some("0.01"));
        assert_eq!(a.extra_parsed::<f64>("churn").unwrap(), Some(0.01));
        assert_eq!(a.extra_parsed::<f64>("missing").unwrap(), None);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse(&["--nodes"]).is_err());
        assert!(parse(&["--nodes", "abc"]).is_err());
        assert!(parse(&["--attr", "nope"]).is_err());
        assert!(parse(&["positional"]).is_err());
        assert!(parse(&["--nodes", "0"]).is_err());
    }

    #[test]
    fn multi_attr_list() {
        let a = parse(&["--attr", "cpu, ram ,disk"]).unwrap();
        assert_eq!(
            a.attrs,
            vec![Attribute::Cpu, Attribute::Ram, Attribute::Disk]
        );
    }
}
