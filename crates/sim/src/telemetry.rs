//! Engine-side telemetry glue.
//!
//! [`SimTelemetry`] owns an [`adam2_telemetry::Telemetry`] store plus the
//! well-known metric handles the simulator records into, and accumulates
//! per-round scratch counters that [`SimTelemetry::end_round`] folds into a
//! [`RoundSnapshot`]. The engine exposes it to protocols through
//! [`TelemetryHandle`], an `Option<&mut SimTelemetry>` wrapper whose
//! methods compile to a single `None` branch when telemetry is disabled —
//! the zero-cost no-op sink required so `adam2-core` can instrument
//! without a telemetry dependency or measurable overhead.
//!
//! **Determinism rule:** nothing in this module touches any engine RNG or
//! simulation state; recording is purely observational, so runs with and
//! without telemetry attached are bit-identical. On the threaded apply
//! path workers record into [`TelemetryShard`]s merged in chunk order,
//! mirroring the `NetShard` pattern; because counter and histogram merges
//! are commutative sums, merged totals are thread-count invariant.

use adam2_telemetry::{
    CounterId, Event, EventKind, GaugeId, HistogramId, MetricShard, RoundSnapshot, RunManifest,
    Telemetry,
};

use crate::engine::{ExchangeFate, ExchangeTraffic, PlannedExchange};

/// Per-round scratch counters, reset by [`SimTelemetry::end_round`].
#[derive(Debug, Default, Clone, Copy)]
struct RoundScratch {
    exchanges: u64,
    repairs: u64,
    aborts: u64,
    faults: u64,
    crashes: u64,
    recoveries: u64,
    joins: u64,
    leaves: u64,
    heal_bumps: u64,
    bootstraps: u64,
    robust_rejects: u64,
    robust_trims: u64,
    inflight_peak: u64,
    queue_depth_peak: u64,
}

/// Telemetry store wired to the simulator's vocabulary: exchange, fault,
/// churn, and self-healing metrics plus the structured event trace.
#[derive(Debug)]
pub struct SimTelemetry {
    inner: Telemetry,
    c_exchanges: CounterId,
    c_repairs: CounterId,
    c_aborts: CounterId,
    c_faults: CounterId,
    c_crashes: CounterId,
    c_recoveries: CounterId,
    c_joins: CounterId,
    c_leaves: CounterId,
    c_heal_bumps: CounterId,
    c_bootstraps: CounterId,
    c_robust_rejects: CounterId,
    c_robust_trims: CounterId,
    h_request_bytes: HistogramId,
    h_response_bytes: HistogramId,
    c_async_delivered: CounterId,
    c_async_lost: CounterId,
    c_async_duplicated: CounterId,
    g_live_nodes: GaugeId,
    g_inflight: GaugeId,
    g_queue_depth: GaugeId,
    scratch: RoundScratch,
}

impl Default for SimTelemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl SimTelemetry {
    /// Creates a store with the default event-ring capacity.
    pub fn new() -> Self {
        Self::with_event_capacity(adam2_telemetry::DEFAULT_EVENT_CAPACITY)
    }

    /// Creates a store whose event ring retains `event_capacity` events.
    pub fn with_event_capacity(event_capacity: usize) -> Self {
        let mut inner = Telemetry::new(event_capacity);
        let m = &mut inner.metrics;
        let c_exchanges = m.counter("exchanges");
        let c_repairs = m.counter("repair_retransmissions");
        let c_aborts = m.counter("exchange_aborts");
        let c_faults = m.counter("fault_events");
        let c_crashes = m.counter("crashes");
        let c_recoveries = m.counter("recoveries");
        let c_joins = m.counter("churn_joins");
        let c_leaves = m.counter("churn_leaves");
        let c_heal_bumps = m.counter("self_heal_bumps");
        let c_bootstraps = m.counter("estimate_bootstraps");
        let c_robust_rejects = m.counter("robust_rejects");
        let c_robust_trims = m.counter("robust_trims");
        let h_request_bytes = m.histogram("exchange_request_bytes");
        let h_response_bytes = m.histogram("exchange_response_bytes");
        let c_async_delivered = m.counter("async_delivered");
        let c_async_lost = m.counter("async_lost");
        let c_async_duplicated = m.counter("async_duplicated");
        let g_live_nodes = m.gauge("live_nodes");
        let g_inflight = m.gauge("inflight_exchanges");
        let g_queue_depth = m.gauge("queue_depth");
        Self {
            inner,
            c_exchanges,
            c_repairs,
            c_aborts,
            c_faults,
            c_crashes,
            c_recoveries,
            c_joins,
            c_leaves,
            c_heal_bumps,
            c_bootstraps,
            c_robust_rejects,
            c_robust_trims,
            h_request_bytes,
            h_response_bytes,
            c_async_delivered,
            c_async_lost,
            c_async_duplicated,
            g_live_nodes,
            g_inflight,
            g_queue_depth,
            scratch: RoundScratch::default(),
        }
    }

    fn event(&mut self, round: u64, slot: u32, instance: u64, kind: EventKind, detail: u64) {
        self.inner.events.push(Event {
            round,
            slot,
            instance,
            kind,
            detail,
        });
    }

    /// Records the plan-derived half of one exchange: the started event,
    /// repair retransmissions, and aborts. Derived from the plan alone so
    /// it can be emitted on the driver thread in deterministic order.
    pub fn record_exchange_plan(&mut self, round: u64, plan: &PlannedExchange) {
        self.scratch.exchanges += 1;
        // The sequential path applies exchanges one at a time, so at least
        // one is in flight whenever any exchange ran this round; the
        // parallel engine raises the peak via record_inflight_exchanges.
        self.scratch.inflight_peak = self.scratch.inflight_peak.max(1);
        self.inner.metrics.add(self.c_exchanges, 1);
        self.event(
            round,
            plan.initiator.slot() as u32,
            0,
            EventKind::ExchangeStarted,
            plan.partner.slot() as u64,
        );
        let retransmissions = u64::from(plan.request_msgs.saturating_sub(1))
            + u64::from(plan.response_msgs.saturating_sub(1));
        if retransmissions > 0 {
            self.scratch.repairs += retransmissions;
            self.inner.metrics.add(self.c_repairs, retransmissions);
            self.event(
                round,
                plan.initiator.slot() as u32,
                0,
                EventKind::ExchangeRepaired,
                retransmissions,
            );
        }
        if plan.fate == ExchangeFate::Aborted {
            self.scratch.aborts += 1;
            self.inner.metrics.add(self.c_aborts, 1);
            self.event(
                round,
                plan.initiator.slot() as u32,
                0,
                EventKind::ExchangeAborted,
                plan.partner.slot() as u64,
            );
        }
    }

    /// Records the traffic-derived half of one exchange: message-size
    /// histograms and estimate bootstraps. Shardable (see
    /// [`TelemetryShard::record_traffic`]).
    pub fn record_exchange_traffic(&mut self, traffic: &ExchangeTraffic) {
        if let Some(bytes) = traffic.request {
            self.inner
                .metrics
                .record(self.h_request_bytes, bytes as u64);
        }
        if let Some(bytes) = traffic.response {
            self.inner
                .metrics
                .record(self.h_response_bytes, bytes as u64);
        }
        let bootstraps = u64::from(traffic.bootstraps.count_ones());
        if bootstraps > 0 {
            self.scratch.bootstraps += bootstraps;
            self.inner.metrics.add(self.c_bootstraps, bootstraps);
        }
        if traffic.robust_rejects > 0 {
            let n = u64::from(traffic.robust_rejects);
            self.scratch.robust_rejects += n;
            self.inner.metrics.add(self.c_robust_rejects, n);
        }
        if traffic.robust_trims > 0 {
            let n = u64::from(traffic.robust_trims);
            self.scratch.robust_trims += n;
            self.inner.metrics.add(self.c_robust_trims, n);
        }
    }

    /// Records `n` exchanges being applied concurrently (the parallel
    /// engine's conflict-free batch width, or the deploy runtime's live
    /// in-flight count). The per-round peak lands in the round snapshot
    /// and the `inflight_exchanges` gauge.
    pub fn record_inflight_exchanges(&mut self, n: u64) {
        self.scratch.inflight_peak = self.scratch.inflight_peak.max(n);
    }

    /// Records an observed outbound-queue depth (deploy runtime; the
    /// in-memory simulator has no queues). The per-round peak lands in the
    /// round snapshot and the `queue_depth` gauge.
    pub fn record_queue_depth(&mut self, depth: u64) {
        self.scratch.queue_depth_peak = self.scratch.queue_depth_peak.max(depth);
    }

    /// Records a round-level loss-rate override from a fault scenario.
    pub fn record_fault_loss(&mut self, round: u64, loss_rate: f64) {
        self.scratch.faults += 1;
        self.inner.metrics.add(self.c_faults, 1);
        self.event(round, 0, 0, EventKind::FaultLoss, loss_rate.to_bits());
    }

    /// Records an active overlay partition (checksum identifies the cut).
    pub fn record_fault_partition(&mut self, round: u64, checksum: u64) {
        self.scratch.faults += 1;
        self.inner.metrics.add(self.c_faults, 1);
        self.event(round, 0, 0, EventKind::FaultPartition, checksum);
    }

    /// Records a round's attribute-drift wave; `drifted` = nodes mutated.
    pub fn record_fault_drift(&mut self, round: u64, drifted: u32) {
        self.scratch.faults += 1;
        self.inner.metrics.add(self.c_faults, 1);
        self.event(round, 0, 0, EventKind::FaultDrift, u64::from(drifted));
    }

    /// Records one node crash.
    pub fn record_crash(&mut self, round: u64, slot: u32) {
        self.scratch.crashes += 1;
        self.inner.metrics.add(self.c_crashes, 1);
        self.event(round, slot, 0, EventKind::FaultCrash, 0);
    }

    /// Records one node recovery.
    pub fn record_recovery(&mut self, round: u64, slot: u32) {
        self.scratch.recoveries += 1;
        self.inner.metrics.add(self.c_recoveries, 1);
        self.event(round, slot, 0, EventKind::FaultRecovery, 0);
    }

    /// Records one churn join.
    pub fn record_churn_join(&mut self, round: u64, slot: u32) {
        self.scratch.joins += 1;
        self.inner.metrics.add(self.c_joins, 1);
        self.event(round, slot, 0, EventKind::ChurnJoin, 0);
    }

    /// Records one churn leave.
    pub fn record_churn_leave(&mut self, round: u64, slot: u32) {
        self.scratch.leaves += 1;
        self.inner.metrics.add(self.c_leaves, 1);
        self.event(round, slot, 0, EventKind::ChurnLeave, 0);
    }

    /// Records self-healing restarts voted at one node this round.
    pub fn record_heal_bump(&mut self, round: u64, slot: u32, restarts: u64) {
        self.scratch.heal_bumps += restarts;
        self.inner.metrics.add(self.c_heal_bumps, restarts);
        self.event(round, slot, 0, EventKind::SelfHealBump, restarts);
    }

    /// Records the start of a protocol instance.
    pub fn record_instance_started(&mut self, round: u64, slot: u32, instance: u64) {
        self.event(round, slot, instance, EventKind::InstanceStarted, 0);
    }

    /// Records one delivered message in the event-driven engine. Counter
    /// only: per-message events would flood the ring at realistic rates.
    pub fn record_async_delivery(&mut self) {
        self.inner.metrics.add(self.c_async_delivered, 1);
    }

    /// Records one message lost in transit in the event-driven engine.
    pub fn record_async_loss(&mut self) {
        self.inner.metrics.add(self.c_async_lost, 1);
    }

    /// Records one message duplicated by the fault injector in the
    /// event-driven engine.
    pub fn record_async_duplicate(&mut self) {
        self.inner.metrics.add(self.c_async_duplicated, 1);
    }

    /// Creates a worker-local shard for the threaded apply path.
    pub fn shard(&self) -> TelemetryShard {
        TelemetryShard {
            metrics: self.inner.metrics.shard(),
            bootstraps: 0,
            robust_rejects: 0,
            robust_trims: 0,
        }
    }

    /// Folds a worker shard back in; call in deterministic chunk order.
    pub fn merge_shard(&mut self, shard: &TelemetryShard) {
        self.inner.metrics.merge_shard(&shard.metrics);
        if shard.bootstraps > 0 {
            self.scratch.bootstraps += shard.bootstraps;
            self.inner.metrics.add(self.c_bootstraps, shard.bootstraps);
        }
        if shard.robust_rejects > 0 {
            self.scratch.robust_rejects += shard.robust_rejects;
            self.inner
                .metrics
                .add(self.c_robust_rejects, shard.robust_rejects);
        }
        if shard.robust_trims > 0 {
            self.scratch.robust_trims += shard.robust_trims;
            self.inner
                .metrics
                .add(self.c_robust_trims, shard.robust_trims);
        }
    }

    /// Closes the round: folds the scratch counters plus the engine-known
    /// totals into a [`RoundSnapshot`] and resets the scratch.
    pub fn end_round(&mut self, round: u64, live_nodes: u64, round_bytes: u64, round_msgs: u64) {
        let s = self.scratch;
        let mut snap = RoundSnapshot::empty(round);
        snap.live_nodes = live_nodes;
        snap.round_bytes = round_bytes;
        snap.round_msgs = round_msgs;
        snap.exchanges = s.exchanges;
        snap.repairs = s.repairs;
        snap.aborts = s.aborts;
        snap.faults = s.faults;
        snap.crashes = s.crashes;
        snap.recoveries = s.recoveries;
        snap.joins = s.joins;
        snap.leaves = s.leaves;
        snap.heal_bumps = s.heal_bumps;
        snap.bootstraps = s.bootstraps;
        snap.robust_rejects = s.robust_rejects;
        snap.robust_trims = s.robust_trims;
        snap.inflight_exchanges = s.inflight_peak;
        snap.queue_depth_max = s.queue_depth_peak;
        let m = &mut self.inner.metrics;
        m.set(self.g_live_nodes, live_nodes as f64);
        m.set(self.g_inflight, s.inflight_peak as f64);
        m.set(self.g_queue_depth, s.queue_depth_peak as f64);
        self.inner.push_snapshot(snap);
        self.scratch = RoundScratch::default();
    }

    /// Annotates an already-recorded round with the harness-side
    /// measurements only the experiment driver can take (errors against
    /// ground truth, mass-auditor defects). NaN arguments leave the field
    /// unmeasured. Returns `false` when the round has no snapshot.
    pub fn annotate_round(
        &mut self,
        round: u64,
        err_max: f64,
        err_avg: f64,
        mass_weight_defect: f64,
        mass_fraction_defect: f64,
    ) -> bool {
        let Some(snap) = self.inner.snapshot_mut(round) else {
            return false;
        };
        if !err_max.is_nan() {
            snap.err_max = err_max;
        }
        if !err_avg.is_nan() {
            snap.err_avg = err_avg;
        }
        if !mass_weight_defect.is_nan() {
            snap.mass_weight_defect = mass_weight_defect;
        }
        if !mass_fraction_defect.is_nan() {
            snap.mass_fraction_defect = mass_fraction_defect;
        }
        true
    }

    /// The underlying telemetry store (metrics, events, snapshots).
    pub fn telemetry(&self) -> &Telemetry {
        &self.inner
    }

    /// Mutable access to the underlying telemetry store.
    pub fn telemetry_mut(&mut self) -> &mut Telemetry {
        &mut self.inner
    }

    /// Exports `manifest.json` + `rounds.jsonl` + `rounds.csv` +
    /// `events.jsonl` under `dir`.
    pub fn export(&self, dir: &std::path::Path, manifest: &RunManifest) -> std::io::Result<()> {
        self.inner.export(dir, manifest)
    }
}

/// Worker-local telemetry shard for the threaded apply path: sharded
/// metrics plus the bootstrap tally, merged in chunk order by
/// [`SimTelemetry::merge_shard`].
#[derive(Debug, Clone)]
pub struct TelemetryShard {
    metrics: MetricShard,
    bootstraps: u64,
    robust_rejects: u64,
    robust_trims: u64,
}

impl TelemetryShard {
    /// Shard-side twin of [`SimTelemetry::record_exchange_traffic`].
    pub fn record_traffic(
        &mut self,
        traffic: &ExchangeTraffic,
        request_bytes: HistogramId,
        response_bytes: HistogramId,
    ) {
        if let Some(bytes) = traffic.request {
            self.metrics.record(request_bytes, bytes as u64);
        }
        if let Some(bytes) = traffic.response {
            self.metrics.record(response_bytes, bytes as u64);
        }
        self.bootstraps += u64::from(traffic.bootstraps.count_ones());
        self.robust_rejects += u64::from(traffic.robust_rejects);
        self.robust_trims += u64::from(traffic.robust_trims);
    }
}

impl SimTelemetry {
    /// Histogram handles a [`TelemetryShard`] records message sizes into.
    pub fn traffic_histograms(&self) -> (HistogramId, HistogramId) {
        (self.h_request_bytes, self.h_response_bytes)
    }
}

/// Borrowed, possibly-absent telemetry sink handed to protocols through
/// [`Ctx`](crate::Ctx). Every method is `#[inline]` and reduces to one
/// branch on `None` when telemetry is disabled, so instrumented protocol
/// code costs nothing in ordinary runs.
#[derive(Debug)]
pub struct TelemetryHandle<'a>(pub(crate) Option<&'a mut SimTelemetry>);

impl<'a> TelemetryHandle<'a> {
    /// A sink that drops everything (telemetry disabled).
    pub fn disabled() -> Self {
        Self(None)
    }

    /// Wraps an optional mutable borrow of the engine's telemetry.
    pub(crate) fn new(inner: Option<&'a mut SimTelemetry>) -> Self {
        Self(inner)
    }

    /// Whether a telemetry store is attached.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Reborrows the handle (e.g. to pass it down a call chain while
    /// keeping the original usable afterwards).
    #[inline]
    pub fn reborrow(&mut self) -> TelemetryHandle<'_> {
        TelemetryHandle(self.0.as_deref_mut())
    }

    /// Records both halves of one applied exchange.
    #[inline]
    pub fn record_exchange(
        &mut self,
        round: u64,
        plan: &PlannedExchange,
        traffic: &ExchangeTraffic,
    ) {
        if let Some(t) = self.0.as_deref_mut() {
            t.record_exchange_plan(round, plan);
            t.record_exchange_traffic(traffic);
        }
    }

    /// Records self-healing restarts voted at one node this round.
    #[inline]
    pub fn record_heal_bump(&mut self, round: u64, slot: u32, restarts: u64) {
        if restarts == 0 {
            return;
        }
        if let Some(t) = self.0.as_deref_mut() {
            t.record_heal_bump(round, slot, restarts);
        }
    }

    /// Records the start of a protocol instance.
    #[inline]
    pub fn record_instance_started(&mut self, round: u64, slot: u32, instance: u64) {
        if let Some(t) = self.0.as_deref_mut() {
            t.record_instance_started(round, slot, instance);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;

    fn plan(request_msgs: u32, response_msgs: u32, fate: ExchangeFate) -> PlannedExchange {
        PlannedExchange {
            initiator: NodeId::for_tests(0, 0),
            partner: NodeId::for_tests(1, 0),
            fate,
            request_msgs,
            response_msgs,
            attack: None,
        }
    }

    #[test]
    fn exchange_plan_counts_repairs_and_aborts() {
        let mut t = SimTelemetry::new();
        t.record_exchange_plan(3, &plan(1, 1, ExchangeFate::Complete));
        t.record_exchange_plan(3, &plan(3, 2, ExchangeFate::Complete));
        t.record_exchange_plan(3, &plan(3, 1, ExchangeFate::Aborted));
        t.end_round(3, 10, 0, 0);
        let snap = &t.telemetry().snapshots()[0];
        assert_eq!(snap.exchanges, 3);
        assert_eq!(snap.repairs, 3 + 2); // (2+1) + (2+0)
        assert_eq!(snap.aborts, 1);
        let kinds: Vec<_> = t.telemetry().events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::ExchangeStarted,
                EventKind::ExchangeStarted,
                EventKind::ExchangeRepaired,
                EventKind::ExchangeStarted,
                EventKind::ExchangeRepaired,
                EventKind::ExchangeAborted,
            ]
        );
    }

    #[test]
    fn end_round_resets_scratch() {
        let mut t = SimTelemetry::new();
        t.record_crash(0, 4);
        t.end_round(0, 9, 100, 2);
        t.end_round(1, 9, 0, 0);
        let snaps = t.telemetry().snapshots();
        assert_eq!(snaps[0].crashes, 1);
        assert_eq!(snaps[0].round_bytes, 100);
        assert_eq!(snaps[1].crashes, 0);
    }

    #[test]
    fn shard_traffic_merges_into_round() {
        let mut t = SimTelemetry::new();
        let (hreq, hresp) = t.traffic_histograms();
        let mut shard = t.shard();
        shard.record_traffic(
            &ExchangeTraffic {
                request: Some(16),
                response: Some(32),
                bootstraps: 0b11,
                robust_rejects: 2,
                robust_trims: 5,
            },
            hreq,
            hresp,
        );
        t.merge_shard(&shard);
        t.end_round(0, 2, 48, 2);
        assert_eq!(t.telemetry().snapshots()[0].bootstraps, 2);
        assert_eq!(t.telemetry().snapshots()[0].robust_rejects, 2);
        assert_eq!(t.telemetry().snapshots()[0].robust_trims, 5);
        let (_, hist) = t
            .telemetry()
            .metrics
            .histograms()
            .find(|(name, _)| *name == "exchange_request_bytes")
            .unwrap();
        assert_eq!(hist.count(), 1);
        assert_eq!(hist.sum(), 16);
    }

    #[test]
    fn annotate_round_patches_latest_snapshot() {
        let mut t = SimTelemetry::new();
        t.end_round(0, 5, 0, 0);
        assert!(t.annotate_round(0, 0.5, 0.25, f64::NAN, 1e-9));
        let snap = &t.telemetry().snapshots()[0];
        assert_eq!(snap.err_max, 0.5);
        assert_eq!(snap.err_avg, 0.25);
        assert!(snap.mass_weight_defect.is_nan());
        assert_eq!(snap.mass_fraction_defect, 1e-9);
        assert!(!t.annotate_round(7, 0.0, 0.0, 0.0, 0.0));
    }

    #[test]
    fn gauges_land_in_rounds_jsonl() {
        let mut t = SimTelemetry::new();
        t.record_exchange_plan(0, &plan(1, 1, ExchangeFate::Complete));
        t.record_inflight_exchanges(7);
        t.record_queue_depth(3);
        t.end_round(0, 42, 0, 1);
        // The gauges reflect the just-closed round...
        let gauges: std::collections::HashMap<&str, f64> = t.telemetry().metrics.gauges().collect();
        assert_eq!(gauges["live_nodes"], 42.0);
        assert_eq!(gauges["inflight_exchanges"], 7.0);
        assert_eq!(gauges["queue_depth"], 3.0);
        // ...and the per-round peaks are exported in rounds.jsonl.
        let dir = std::env::temp_dir().join(format!("adam2-gauge-export-{}", std::process::id()));
        let manifest = RunManifest::new("gauge-test", "default", 1, 1);
        t.export(&dir, &manifest).unwrap();
        let rounds = std::fs::read_to_string(dir.join("rounds.jsonl")).unwrap();
        assert!(rounds.contains("\"live_nodes\":42"), "{rounds}");
        assert!(rounds.contains("\"inflight_exchanges\":7"), "{rounds}");
        assert!(rounds.contains("\"queue_depth_max\":3"), "{rounds}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn inflight_peak_defaults_to_exchange_presence() {
        // Sequential path: record_exchange_plan alone must yield peak 1,
        // and an idle round must reset it to 0.
        let mut t = SimTelemetry::new();
        t.record_exchange_plan(0, &plan(1, 1, ExchangeFate::Complete));
        t.end_round(0, 2, 0, 0);
        t.end_round(1, 2, 0, 0);
        let snaps = t.telemetry().snapshots();
        assert_eq!(snaps[0].inflight_exchanges, 1);
        assert_eq!(snaps[1].inflight_exchanges, 0);
    }

    #[test]
    fn disabled_handle_is_a_no_op() {
        let mut h = TelemetryHandle::disabled();
        assert!(!h.is_enabled());
        h.record_heal_bump(0, 0, 3);
        h.record_instance_started(0, 0, 1);
        h.record_exchange(
            0,
            &plan(1, 1, ExchangeFate::Complete),
            &ExchangeTraffic::default(),
        );
    }
}
